//! Umbrella crate re-exporting the full reproduction of
//! *Enabling Incremental Query Re-Optimization* (Liu, Ives, Loo; SIGMOD 2016).
//!
//! See the individual crates for documentation:
//! - [`core`] — the incremental declarative optimizer (the paper's contribution)
//! - [`bridge`] — the same rule spec compiled onto the dataflow substrate
//! - [`baselines`] — Volcano / System-R procedural optimizers
//! - [`datalog`] — the delta-processing dataflow substrate
//! - [`exec`] — the pipelined stored/stream execution engine
//! - [`workloads`] — TPC-H / Linear Road generators and the query suite
//! - [`aqp`] — the adaptive query processing driver

pub use reopt_aqp as aqp;
pub use reopt_baselines as baselines;
pub use reopt_bridge as bridge;
pub use reopt_catalog as catalog;
pub use reopt_common as common;
pub use reopt_core as core;
pub use reopt_cost as cost;
pub use reopt_datalog as datalog;
pub use reopt_exec as exec;
pub use reopt_expr as expr;
pub use reopt_workloads as workloads;
