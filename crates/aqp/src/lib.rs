//! Adaptive query processing driver (paper §5.4): data-partitioned
//! adaptation in the style of Tukwila [15] — execution pauses at slice
//! boundaries ("split points"), statistics observed so far feed the
//! re-optimizer, and a new plan may be installed for the next slice,
//! with CAPS-style state migration [26] carrying window state across.
//!
//! Two re-optimization back-ends are provided for the Fig 9 comparison:
//! the incremental declarative optimizer, and a from-scratch Volcano run
//! per slice (the paper's "Tukwila's Non-Inc Re-Opt" line). Statistics
//! can be cumulative (damped blending) or non-cumulative (jump to the
//! latest observation) for the Fig 10 comparison.

pub mod olap;
pub mod stream_driver;

pub use olap::{run_partitions, PartitionReport};
pub use stream_driver::{AqpConfig, AqpDriver, ReoptMode, SliceReport, StatsMode};
