//! Repeated OLAP execution with per-iteration feedback — the paper's
//! §5.2.2 experiment: "we ran the resulting query over different
//! partitions of skewed data …; at the end we re-optimized given the
//! cumulatively observed statistics".

use std::time::{Duration, Instant};

use reopt_baselines::optimize_volcano;
use reopt_catalog::Catalog;
use reopt_core::{IncrementalOptimizer, PruningConfig, RunMetrics, StateMetrics};
use reopt_cost::CostContext;
use reopt_exec::{observed_deltas, Database, Executor};
use reopt_expr::{JoinGraph, QuerySpec};

/// Measurements for one partition round (one x-position of Fig 6).
#[derive(Clone, Debug)]
pub struct PartitionReport {
    pub round: usize,
    /// Incremental re-optimization time after executing this partition.
    pub incremental_reopt: Duration,
    /// From-scratch (Volcano) re-optimization time on the same deltas.
    pub volcano_reopt: Duration,
    pub run: RunMetrics,
    pub state: StateMetrics,
    pub plan_changed: bool,
    pub observed_rows: usize,
}

/// Optimizes once on the first partition's statistics, then executes
/// each partition in turn, feeding observed cardinalities back and
/// re-optimizing incrementally (with a from-scratch Volcano run timed on
/// identical inputs for comparison).
pub fn run_partitions(
    catalog: &Catalog,
    q: &QuerySpec,
    partitions: &[Database],
    pruning: PruningConfig,
    damping: f64,
) -> Vec<PartitionReport> {
    let graph = JoinGraph::new(q);
    let mut optimizer = IncrementalOptimizer::new(catalog, q.clone(), pruning);
    let mut current = optimizer.optimize();
    let mut scratch_ctx = CostContext::new(catalog, q);
    let mut reports = Vec::with_capacity(partitions.len());
    for (round, db) in partitions.iter().enumerate() {
        let mut exec = Executor::from_database(q, catalog, db);
        let (rows, _) = exec.run(&current.plan);
        let deltas = observed_deltas(q, optimizer.cost_context(), &exec.stats, damping);
        let t0 = Instant::now();
        let out = optimizer.reoptimize(&deltas);
        let incremental_reopt = t0.elapsed();
        let t1 = Instant::now();
        scratch_ctx.apply(&deltas);
        let _ = optimize_volcano(q, &graph, &mut scratch_ctx);
        let volcano_reopt = t1.elapsed();
        let plan_changed = out.plan.fingerprint() != current.plan.fingerprint();
        reports.push(PartitionReport {
            round,
            incremental_reopt,
            volcano_reopt,
            run: out.run,
            state: out.state,
            plan_changed,
            observed_rows: rows.len(),
        });
        current = out;
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_workloads::{QueryId, TpchGen};

    #[test]
    fn skewed_partitions_drive_incremental_reoptimization() {
        let gen = TpchGen {
            sf: 0.001,
            zipf_theta: 0.5,
            ..Default::default()
        };
        let (catalog, db) = gen.generate();
        let q = QueryId::Q5.build(&catalog);
        let parts = gen.partition(&db, &catalog, 5);
        let reports = run_partitions(&catalog, &q, &parts, PruningConfig::all(), 0.5);
        assert_eq!(reports.len(), 5);
        // Feedback produced real work at least once, and the update
        // ratio stays a strict subset of the space.
        assert!(reports.iter().any(|r| r.run.touched_groups > 0));
        for r in &reports {
            assert!(r.run.touched_groups <= r.state.total_groups);
        }
    }

    #[test]
    fn stable_statistics_converge_to_no_work() {
        // Uniform partitions: after the first rounds of feedback the
        // estimates match observations and re-optimization goes idle.
        let gen = TpchGen {
            sf: 0.001,
            zipf_theta: 0.0,
            ..Default::default()
        };
        let (catalog, db) = gen.generate();
        let q = QueryId::Q10.build(&catalog);
        let parts: Vec<Database> = vec![db.clone(), db.clone(), db.clone(), db];
        let reports = run_partitions(&catalog, &q, &parts, PruningConfig::all(), 1.0);
        let last = reports.last().unwrap();
        let first = reports.first().unwrap();
        assert!(
            last.run.touched_alts <= first.run.touched_alts,
            "{:?}",
            reports
                .iter()
                .map(|r| r.run.touched_alts)
                .collect::<Vec<_>>()
        );
    }
}
