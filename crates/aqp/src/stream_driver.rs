//! The streaming adaptation loop.

use std::time::{Duration, Instant};

use reopt_baselines::optimize_volcano;
use reopt_catalog::Catalog;
use reopt_core::{IncrementalOptimizer, PruningConfig, RunMetrics};
use reopt_cost::CostContext;
use reopt_exec::{observed_deltas, StreamExecutor, StreamTuple};
use reopt_expr::{JoinGraph, PlanNode, QuerySpec};

/// Which re-optimizer runs at each split point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReoptMode {
    /// The paper's contribution: incremental re-optimization.
    Incremental,
    /// Tukwila-style: a full Volcano optimization from scratch.
    FromScratch,
    /// No adaptation: keep the initial plan (the static baselines of
    /// Fig 10).
    Never,
}

/// How observed statistics are folded in (Fig 10's AQP-Cumulative vs
/// AQP-NonCumulative).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsMode {
    /// Blend each observation into the running estimate.
    Cumulative,
    /// Jump straight to the latest slice's observation.
    NonCumulative,
}

impl StatsMode {
    fn damping(self) -> f64 {
        match self {
            StatsMode::Cumulative => 0.5,
            StatsMode::NonCumulative => 1.0,
        }
    }
}

/// Driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct AqpConfig {
    pub mode: ReoptMode,
    pub stats: StatsMode,
    /// Re-optimize every `n` slices (1 = every slice).
    pub reopt_every: usize,
    pub pruning: PruningConfig,
}

impl Default for AqpConfig {
    fn default() -> AqpConfig {
        AqpConfig {
            mode: ReoptMode::Incremental,
            stats: StatsMode::Cumulative,
            reopt_every: 1,
            pruning: PruningConfig::all(),
        }
    }
}

/// Per-slice measurements (one row of Fig 9/10).
#[derive(Clone, Debug)]
pub struct SliceReport {
    pub slice: usize,
    pub exec_time: Duration,
    pub reopt_time: Duration,
    pub out_rows: usize,
    pub plan_changed: bool,
    pub migrated_rows: usize,
    pub run: RunMetrics,
    pub window_rows: usize,
}

/// The adaptive execution loop for one continuous query.
pub struct AqpDriver {
    q: QuerySpec,
    graph: JoinGraph,
    cfg: AqpConfig,
    exec: StreamExecutor,
    optimizer: IncrementalOptimizer,
    /// Parallel context for the from-scratch comparator (kept in sync
    /// with the same deltas).
    scratch_ctx: CostContext,
    plan: PlanNode,
    slice_no: usize,
}

impl AqpDriver {
    /// Starts with a cold optimization on whatever statistics the
    /// catalog carries ("the optimizer starts with zero statistical
    /// information on the data" is modelled by generic defaults).
    pub fn new(catalog: &Catalog, q: QuerySpec, cfg: AqpConfig) -> AqpDriver {
        let graph = JoinGraph::new(&q);
        let mut optimizer = IncrementalOptimizer::new(catalog, q.clone(), cfg.pruning);
        let initial = optimizer.optimize();
        let scratch_ctx = CostContext::new(catalog, &q);
        AqpDriver {
            exec: StreamExecutor::new(&q),
            graph,
            cfg,
            optimizer,
            scratch_ctx,
            plan: initial.plan,
            q,
            slice_no: 0,
        }
    }

    /// Installs an explicit plan and disables adaptation (static
    /// baseline runs).
    pub fn pin_plan(&mut self, plan: PlanNode) {
        self.plan = plan;
        self.cfg.mode = ReoptMode::Never;
    }

    pub fn current_plan(&self) -> &PlanNode {
        &self.plan
    }

    pub fn query(&self) -> &QuerySpec {
        &self.q
    }

    /// Current cardinality factor for one leaf (diagnostics).
    pub fn optimizer_ctx_factors(&self, leaf: reopt_expr::LeafId) -> f64 {
        self.optimizer.cost_context().factors().leaf_card(leaf)
    }

    /// Ingests and executes one slice, then (possibly) re-optimizes at
    /// the split point.
    pub fn run_slice(&mut self, tuples: &[StreamTuple]) -> SliceReport {
        self.slice_no += 1;
        self.exec.ingest(tuples);
        let t0 = Instant::now();
        let result = self.exec.execute(&self.plan);
        let exec_time = t0.elapsed();
        let mut run = RunMetrics::default();
        let mut reopt_time = Duration::ZERO;
        let mut plan_changed = false;
        let should_reopt = self.cfg.mode != ReoptMode::Never
            && self.slice_no.is_multiple_of(self.cfg.reopt_every);
        if should_reopt {
            let deltas = observed_deltas(
                &self.q,
                self.optimizer.cost_context(),
                &result.stats,
                self.cfg.stats.damping(),
            );
            let t1 = Instant::now();
            let new_plan = match self.cfg.mode {
                ReoptMode::Incremental => {
                    let out = self.optimizer.reoptimize(&deltas);
                    run = out.run;
                    out.plan
                }
                ReoptMode::FromScratch => {
                    self.scratch_ctx.apply(&deltas);
                    optimize_volcano(&self.q, &self.graph, &mut self.scratch_ctx).plan
                }
                ReoptMode::Never => unreachable!(),
            };
            reopt_time = t1.elapsed();
            plan_changed = new_plan.fingerprint() != self.plan.fingerprint();
            if plan_changed {
                self.plan = new_plan;
            }
        }
        SliceReport {
            slice: self.slice_no,
            exec_time,
            reopt_time,
            out_rows: result.out_rows,
            plan_changed,
            migrated_rows: result.migrated_rows,
            run,
            window_rows: result.window_sizes.iter().sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_workloads::{seg_toll_query, LinearRoadGen};

    fn setup() -> (Catalog, QuerySpec, LinearRoadGen) {
        let mut c = Catalog::new();
        let mut gen = LinearRoadGen::new(11);
        gen.rate = 30.0;
        gen.n_cars = 400;
        gen.n_segments = 20;
        gen.register(&mut c);
        let q = seg_toll_query(&c);
        (c, q, gen)
    }

    #[test]
    fn adaptive_loop_runs_and_adapts() {
        // The 300s/30s time windows fill at different speeds, so the
        // relative leaf cardinalities — and with them the best join
        // order — evolve as the stream warms up.
        let (c, q, mut gen) = setup();
        let mut driver = AqpDriver::new(&c, q, AqpConfig::default());
        let mut any_change = false;
        let mut any_work = false;
        for i in 0..14 {
            let tuples = gen.slice(i as f64 * 15.0, 15.0);
            let r = driver.run_slice(&tuples);
            any_change |= r.plan_changed;
            any_work |= r.run.touched_groups > 0;
            assert!(r.window_rows > 0);
        }
        assert!(any_work, "feedback never produced optimizer work");
        assert!(any_change, "no plan change across drifting slices");
    }

    #[test]
    fn incremental_work_decays_when_statistics_stabilize() {
        // Run past the largest (300s) window so the stream becomes
        // stationary, then compare early vs late optimizer work.
        let (c, q, mut gen) = setup();
        gen.burstiness = 0.0;
        gen.hotspot_speed = 0.0;
        gen.rate = 30.0;
        let mut driver = AqpDriver::new(&c, q, AqpConfig::default());
        let mut touched = Vec::new();
        for i in 0..15 {
            let tuples = gen.slice(i as f64 * 30.0, 30.0);
            let r = driver.run_slice(&tuples);
            touched.push(r.run.touched_alts);
        }
        // Fig 9's shape: warm-up slices recompute much more than the
        // saturated tail.
        let early: u64 = touched[..4].iter().sum();
        let late: u64 = touched[11..].iter().sum();
        assert!(
            late < early,
            "incremental work did not decay: {touched:?}"
        );
    }

    #[test]
    fn pinned_plan_never_changes() {
        let (c, q, mut gen) = setup();
        let mut driver = AqpDriver::new(&c, q, AqpConfig::default());
        let plan = driver.current_plan().clone();
        driver.pin_plan(plan.clone());
        for i in 0..4 {
            let r = driver.run_slice(&gen.slice(i as f64 * 5.0, 5.0));
            assert!(!r.plan_changed);
            assert_eq!(r.reopt_time, Duration::ZERO);
        }
        assert_eq!(driver.current_plan().fingerprint(), plan.fingerprint());
    }

    #[test]
    fn from_scratch_mode_matches_incremental_plan_quality() {
        let (c, q, mut gen) = setup();
        let mut inc = AqpDriver::new(&c, q.clone(), AqpConfig::default());
        let mut scratch = AqpDriver::new(
            &c,
            q,
            AqpConfig {
                mode: ReoptMode::FromScratch,
                ..Default::default()
            },
        );
        for i in 0..6 {
            let tuples = gen.slice(i as f64 * 5.0, 5.0);
            let a = inc.run_slice(&tuples);
            let b = scratch.run_slice(&tuples);
            // Same stream, same statistics pipeline: both report the
            // same result cardinality.
            assert_eq!(a.out_rows, b.out_rows, "slice {i}");
        }
    }

    #[test]
    fn reopt_interval_skips_split_points() {
        let (c, q, mut gen) = setup();
        let mut driver = AqpDriver::new(
            &c,
            q,
            AqpConfig {
                reopt_every: 3,
                ..Default::default()
            },
        );
        let mut reopts = 0;
        for i in 0..6 {
            let r = driver.run_slice(&gen.slice(i as f64 * 5.0, 5.0));
            if r.reopt_time > Duration::ZERO || r.run.queue_pops > 0 || r.plan_changed {
                reopts += 1;
            }
        }
        assert!(reopts <= 2, "re-optimized {reopts} times with interval 3");
    }
}
