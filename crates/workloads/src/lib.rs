//! Experimental workloads (paper §5): a deterministic TPC-H data
//! generator with optional Zipfian skew (standing in for dbgen and the
//! Microsoft skewed TPC-D generator [22]), the paper's query suite
//! (Q1, Q3/Q3S, Q5/Q5S, Q6, Q10, Q8Join/Q8JoinS — Table 2), and a
//! Linear Road stream generator [3] with the modified `SegTollS` query.

pub mod linear_road;
pub mod queries;
pub mod tpch;
pub mod zipf;

pub use linear_road::{seg_toll_query, LinearRoadGen};
pub use queries::{fig5_edge_labels, QueryId};
pub use tpch::TpchGen;
pub use zipf::Zipf;
