//! Deterministic TPC-H data generation at laptop scale.
//!
//! Reproduces the schema, key relationships, and value distributions the
//! paper's queries touch. Scale factor 1 corresponds to the standard
//! row counts (orders 1.5M, …); the experiments here run at small
//! fractions, which preserves the optimizer-relevant structure
//! (relative table sizes, key selectivities, skew) at a fraction of the
//! wall time. `zipf_theta > 0` skews foreign keys and attributes as in
//! the Microsoft skewed TPC-D generator the paper uses for §5.2.2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reopt_catalog::{Catalog, Datum, TableBuilder, TableId};
use reopt_exec::{Database, TableData};

use crate::zipf::Zipf;

/// TPC-H dates span 1992-01-01 .. 1998-12-31; stored as day offsets.
pub const DATE_MIN: i64 = 0;
pub const DATE_MAX: i64 = 2556;
/// `1995-03-15`, the Q3 literal, as a day offset.
pub const DATE_1995_03_15: i64 = 1169;

/// The market segments (Q3 filters on `MACHINERY`).
pub const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"];
/// Region names (Q5 filters on one).
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TpchGen {
    /// Scale factor: 1.0 = standard TPC-H sizes.
    pub sf: f64,
    /// Zipf skew exponent for foreign keys / attributes (0 = uniform).
    pub zipf_theta: f64,
    pub seed: u64,
    /// Histogram buckets for the derived statistics.
    pub buckets: usize,
}

impl Default for TpchGen {
    fn default() -> TpchGen {
        TpchGen {
            sf: 0.002,
            zipf_theta: 0.0,
            seed: 7,
            buckets: 32,
        }
    }
}

/// Row counts per table at this scale (minimums keep joins meaningful at
/// tiny scale factors).
impl TpchGen {
    pub fn counts(&self) -> TpchCounts {
        let sf = self.sf;
        TpchCounts {
            region: 5,
            nation: 25,
            supplier: ((10_000.0 * sf) as usize).max(20),
            customer: ((150_000.0 * sf) as usize).max(50),
            part: ((200_000.0 * sf) as usize).max(50),
            partsupp: ((800_000.0 * sf) as usize).max(100),
            orders: ((1_500_000.0 * sf) as usize).max(150),
            lineitem: ((6_000_000.0 * sf) as usize).max(600),
        }
    }

    /// Generates the catalog (schemas + statistics computed from the
    /// data) and the database.
    pub fn generate(&self) -> (Catalog, Database) {
        let counts = self.counts();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut catalog = Catalog::new();
        let mut db = Database::new();
        let zipf = |n: usize| Zipf::new(n.max(1), self.zipf_theta);

        // region(r_regionkey, r_name)
        let region_rows: Vec<Vec<Datum>> = (0..counts.region)
            .map(|i| vec![Datum::Int(i as i64), Datum::str(REGIONS[i % REGIONS.len()])])
            .collect();
        // nation(n_nationkey, n_regionkey, n_name)
        let nation_rows: Vec<Vec<Datum>> = (0..counts.nation)
            .map(|i| {
                vec![
                    Datum::Int(i as i64),
                    Datum::Int((i % counts.region) as i64),
                    Datum::str(&format!("NATION_{i}")),
                ]
            })
            .collect();
        // supplier(s_suppkey, s_nationkey, s_name)
        let nation_z = zipf(counts.nation);
        let supplier_rows: Vec<Vec<Datum>> = (0..counts.supplier)
            .map(|i| {
                vec![
                    Datum::Int(i as i64),
                    Datum::Int((nation_z.sample(&mut rng) - 1) as i64),
                    Datum::str(&format!("SUPP_{i}")),
                ]
            })
            .collect();
        // customer(c_custkey, c_nationkey, c_mktsegment, c_name)
        let customer_rows: Vec<Vec<Datum>> = (0..counts.customer)
            .map(|i| {
                vec![
                    Datum::Int(i as i64),
                    Datum::Int((nation_z.sample(&mut rng) - 1) as i64),
                    Datum::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                    Datum::str(&format!("CUST_{i}")),
                ]
            })
            .collect();
        // part(p_partkey, p_size)
        let part_rows: Vec<Vec<Datum>> = (0..counts.part)
            .map(|i| vec![Datum::Int(i as i64), Datum::Int(rng.gen_range(1..=50))])
            .collect();
        // partsupp(ps_partkey, ps_suppkey, ps_availqty)
        let part_z = zipf(counts.part);
        let supp_z = zipf(counts.supplier);
        let partsupp_rows: Vec<Vec<Datum>> = (0..counts.partsupp)
            .map(|_| {
                vec![
                    Datum::Int((part_z.sample(&mut rng) - 1) as i64),
                    Datum::Int((supp_z.sample(&mut rng) - 1) as i64),
                    Datum::Int(rng.gen_range(1..=9999)),
                ]
            })
            .collect();
        // orders(o_orderkey, o_custkey, o_orderdate, o_shippriority)
        let cust_z = zipf(counts.customer);
        let orders_rows: Vec<Vec<Datum>> = (0..counts.orders)
            .map(|i| {
                vec![
                    Datum::Int(i as i64),
                    Datum::Int((cust_z.sample(&mut rng) - 1) as i64),
                    Datum::Int(rng.gen_range(DATE_MIN..=DATE_MAX)),
                    Datum::Int(rng.gen_range(0..5)),
                ]
            })
            .collect();
        // lineitem(l_orderkey, l_partkey, l_suppkey, l_extendedprice,
        //          l_discount, l_shipdate, l_quantity)
        let order_z = zipf(counts.orders);
        let lineitem_rows: Vec<Vec<Datum>> = (0..counts.lineitem)
            .map(|_| {
                let order = (order_z.sample(&mut rng) - 1) as i64;
                vec![
                    Datum::Int(order),
                    Datum::Int((part_z.sample(&mut rng) - 1) as i64),
                    Datum::Int((supp_z.sample(&mut rng) - 1) as i64),
                    Datum::Int(rng.gen_range(10_000..=1_000_000)), // cents
                    Datum::Int(rng.gen_range(0..=10)),             // discount %
                    Datum::Int(rng.gen_range(DATE_MIN..=DATE_MAX)),
                    Datum::Int(rng.gen_range(1..=50)),
                ]
            })
            .collect();

        let placeholder = |cols: usize| reopt_catalog::TableStats {
            row_count: 0.0,
            columns: vec![reopt_catalog::ColumnStats::uniform_key(1.0); cols],
        };
        let add = |catalog: &mut Catalog,
                       db: &mut Database,
                       name: &str,
                       build: &dyn Fn(TableBuilder) -> TableBuilder,
                       rows: Vec<Vec<Datum>>| {
            let cols = rows.first().map_or(1, Vec::len);
            let id = catalog.add_table(
                |id| build(TableBuilder::new(name)).build(id),
                placeholder(cols),
            );
            db.set_table(id, TableData::new(rows));
            id
        };

        add(
            &mut catalog,
            &mut db,
            "region",
            &|b| b.int_col("r_regionkey").str_col("r_name").index_on("r_regionkey"),
            region_rows,
        );
        add(
            &mut catalog,
            &mut db,
            "nation",
            &|b| {
                b.int_col("n_nationkey")
                    .int_col("n_regionkey")
                    .str_col("n_name")
                    .index_on("n_nationkey")
            },
            nation_rows,
        );
        add(
            &mut catalog,
            &mut db,
            "supplier",
            &|b| {
                b.int_col("s_suppkey")
                    .int_col("s_nationkey")
                    .str_col("s_name")
                    .index_on("s_suppkey")
            },
            supplier_rows,
        );
        add(
            &mut catalog,
            &mut db,
            "customer",
            &|b| {
                b.int_col("c_custkey")
                    .int_col("c_nationkey")
                    .str_col("c_mktsegment")
                    .str_col("c_name")
                    .index_on("c_custkey")
            },
            customer_rows,
        );
        add(
            &mut catalog,
            &mut db,
            "part",
            &|b| b.int_col("p_partkey").int_col("p_size").index_on("p_partkey"),
            part_rows,
        );
        add(
            &mut catalog,
            &mut db,
            "partsupp",
            &|b| {
                b.int_col("ps_partkey")
                    .int_col("ps_suppkey")
                    .int_col("ps_availqty")
                    .index_on("ps_partkey")
            },
            partsupp_rows,
        );
        add(
            &mut catalog,
            &mut db,
            "orders",
            &|b| {
                b.int_col("o_orderkey")
                    .int_col("o_custkey")
                    .int_col("o_orderdate")
                    .int_col("o_shippriority")
                    .index_on("o_orderkey")
                    .clustered_on("o_orderkey")
            },
            orders_rows,
        );
        add(
            &mut catalog,
            &mut db,
            "lineitem",
            &|b| {
                b.int_col("l_orderkey")
                    .int_col("l_partkey")
                    .int_col("l_suppkey")
                    .int_col("l_extendedprice")
                    .int_col("l_discount")
                    .int_col("l_shipdate")
                    .int_col("l_quantity")
                    .index_on("l_orderkey")
            },
            lineitem_rows,
        );

        // Replace placeholder statistics with real ones computed from
        // the generated data (histograms included).
        for i in 0..catalog.len() as u32 {
            let id = TableId(i);
            let stats = db.compute_stats(&catalog, id, self.buckets);
            catalog.set_stats(id, stats);
        }
        (catalog, db)
    }

    /// Splits the fact tables into `n` partitions for the §5.2.2
    /// experiment (each partition is a self-contained database sharing
    /// the dimension tables).
    pub fn partition(&self, db: &Database, catalog: &Catalog, n: usize) -> Vec<Database> {
        (0..n)
            .map(|p| {
                let mut part = Database::new();
                for table in catalog.tables() {
                    let data = db.table(table.id);
                    let rows = if matches!(table.name.as_str(), "orders" | "lineitem") {
                        data.rows
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| i % n == p)
                            .map(|(_, r)| r.clone())
                            .collect()
                    } else {
                        data.rows.clone()
                    };
                    part.set_table(table.id, TableData::new(rows));
                }
                part
            })
            .collect()
    }
}

/// Row counts at a given scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TpchCounts {
    pub region: usize,
    pub nation: usize,
    pub supplier: usize,
    pub customer: usize,
    pub part: usize,
    pub partsupp: usize,
    pub orders: usize,
    pub lineitem: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let gen = TpchGen::default();
        let (_, db1) = gen.generate();
        let (_, db2) = gen.generate();
        let li = reopt_catalog::TableId(7);
        assert_eq!(db1.table(li).rows, db2.table(li).rows);
    }

    #[test]
    fn row_counts_match_scale() {
        let gen = TpchGen {
            sf: 0.01,
            ..Default::default()
        };
        let (catalog, db) = gen.generate();
        let counts = gen.counts();
        assert_eq!(
            db.table(catalog.table_by_name("orders").unwrap().id).len(),
            counts.orders
        );
        assert_eq!(
            db.table(catalog.table_by_name("region").unwrap().id).len(),
            5
        );
        assert_eq!(counts.orders, 15_000);
    }

    #[test]
    fn stats_reflect_generated_data() {
        let gen = TpchGen::default();
        let (catalog, db) = gen.generate();
        let orders = catalog.table_by_name("orders").unwrap().id;
        let stats = catalog.stats(orders);
        assert_eq!(stats.row_count, db.table(orders).len() as f64);
        // o_orderkey is a key: NDV == row count.
        assert_eq!(stats.columns[0].ndv, stats.row_count);
    }

    #[test]
    fn zipf_skews_foreign_keys() {
        let uniform = TpchGen {
            zipf_theta: 0.0,
            ..Default::default()
        };
        let skewed = TpchGen {
            zipf_theta: 1.0,
            ..Default::default()
        };
        let max_fk_count = |gen: &TpchGen| {
            let (catalog, db) = gen.generate();
            let li = catalog.table_by_name("lineitem").unwrap().id;
            let mut counts = std::collections::HashMap::new();
            for row in &db.table(li).rows {
                *counts.entry(row[0].as_int()).or_insert(0usize) += 1;
            }
            *counts.values().max().unwrap()
        };
        assert!(max_fk_count(&skewed) > 3 * max_fk_count(&uniform));
    }

    #[test]
    fn partitions_split_facts_and_share_dimensions() {
        let gen = TpchGen::default();
        let (catalog, db) = gen.generate();
        let parts = gen.partition(&db, &catalog, 4);
        assert_eq!(parts.len(), 4);
        let orders = catalog.table_by_name("orders").unwrap().id;
        let nation = catalog.table_by_name("nation").unwrap().id;
        let total: usize = parts.iter().map(|p| p.table(orders).len()).sum();
        assert_eq!(total, db.table(orders).len());
        for p in &parts {
            assert_eq!(p.table(nation).len(), db.table(nation).len());
        }
    }
}
