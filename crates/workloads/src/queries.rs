//! The paper's TPC-H query suite (§5, Table 2): Q1, Q3/Q3S, Q5/Q5S, Q6,
//! Q10, Q8Join/Q8JoinS. The `S` variants drop the aggregate, exactly as
//! the paper constructs them ("to create greater query diversity, we
//! modified the … queries by removing aggregation").

use reopt_catalog::{Catalog, CmpOp, Datum};
use reopt_expr::{AggFunc, AggSpec, EdgeId, LeafCol, QuerySpec};

use crate::tpch::DATE_1995_03_15;

/// Query identifiers used throughout the benchmark harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryId {
    Q1,
    Q3,
    Q3S,
    Q5,
    Q5S,
    Q6,
    Q10,
    Q8Join,
    Q8JoinS,
}

impl QueryId {
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "Q1",
            QueryId::Q3 => "Q3",
            QueryId::Q3S => "Q3S",
            QueryId::Q5 => "Q5",
            QueryId::Q5S => "Q5S",
            QueryId::Q6 => "Q6",
            QueryId::Q10 => "Q10",
            QueryId::Q8Join => "Q8Join",
            QueryId::Q8JoinS => "Q8JoinS",
        }
    }

    /// The join-query subset the paper's figures focus on ("we focus our
    /// presentation on join queries with more than 3-way joins").
    pub fn figure4_suite() -> [QueryId; 5] {
        [
            QueryId::Q5,
            QueryId::Q5S,
            QueryId::Q10,
            QueryId::Q8Join,
            QueryId::Q8JoinS,
        ]
    }

    pub fn build(self, c: &Catalog) -> QuerySpec {
        match self {
            QueryId::Q1 => q1(c),
            QueryId::Q3 => q3(c, true),
            QueryId::Q3S => q3(c, false),
            QueryId::Q5 => q5(c, true),
            QueryId::Q5S => q5(c, false),
            QueryId::Q6 => q6(c),
            QueryId::Q10 => q10(c),
            QueryId::Q8Join => q8join(c, true),
            QueryId::Q8JoinS => q8join(c, false),
        }
    }
}

/// Q1: aggregation-only over lineitem (shipdate filter, group by
/// quantity as a stand-in for the flag columns).
fn q1(c: &Catalog) -> QuerySpec {
    let mut b = QuerySpec::builder("Q1");
    let l = b.leaf(c, "lineitem");
    b.filter(c, l, "l_shipdate", CmpOp::Le, Datum::Int(DATE_1995_03_15));
    b.aggregate(AggSpec {
        group_by: vec![lc(c, "lineitem", 0, "l_quantity")],
        aggs: vec![
            AggFunc::CountStar,
            AggFunc::Sum(lc(c, "lineitem", 0, "l_extendedprice")),
        ],
    });
    b.build()
}

/// Q3 (simplified per the paper's Example 1, `Q3S` drops the aggregate):
/// customer ⋈ orders ⋈ lineitem with segment/date predicates.
fn q3(c: &Catalog, agg: bool) -> QuerySpec {
    let mut b = QuerySpec::builder(if agg { "Q3" } else { "Q3S" });
    let cu = b.leaf(c, "customer");
    let o = b.leaf(c, "orders");
    let l = b.leaf(c, "lineitem");
    b.join(c, cu, "c_custkey", o, "o_custkey");
    b.join(c, o, "o_orderkey", l, "l_orderkey");
    b.filter(c, cu, "c_mktsegment", CmpOp::Eq, Datum::str("MACHINERY"));
    b.filter(c, o, "o_orderdate", CmpOp::Lt, Datum::Int(DATE_1995_03_15));
    b.filter(c, l, "l_shipdate", CmpOp::Gt, Datum::Int(DATE_1995_03_15));
    if agg {
        b.aggregate(AggSpec {
            group_by: vec![lc(c, "lineitem", 2, "l_orderkey")],
            aggs: vec![AggFunc::Sum(lc(c, "lineitem", 2, "l_extendedprice"))],
        });
    }
    b.build()
}

/// Q5 (6-way join; `Q5S` drops the aggregate). Leaf order matches the
/// paper's Figure 5 labelling: REGION, NATION, CUSTOMER, ORDERS,
/// LINEITEM, SUPPLIER.
fn q5(c: &Catalog, agg: bool) -> QuerySpec {
    let mut b = QuerySpec::builder(if agg { "Q5" } else { "Q5S" });
    let r = b.leaf(c, "region");
    let n = b.leaf(c, "nation");
    let cu = b.leaf(c, "customer");
    let o = b.leaf(c, "orders");
    let l = b.leaf(c, "lineitem");
    let s = b.leaf(c, "supplier");
    // Edge order matches Figure 5's expressions:
    //   A = REGION ⋈ NATION, B = CUSTOMER ⋈ A, C = ORDERS ⋈ B,
    //   D = LINEITEM ⋈ C, E = SUPPLIER ⋈ D.
    b.join(c, n, "n_regionkey", r, "r_regionkey"); // edge 0: A
    b.join(c, cu, "c_nationkey", n, "n_nationkey"); // edge 1: B
    b.join(c, o, "o_custkey", cu, "c_custkey"); // edge 2: C
    b.join(c, l, "l_orderkey", o, "o_orderkey"); // edge 3: D
    b.join(c, s, "s_suppkey", l, "l_suppkey"); // edge 4: E
    b.join(c, s, "s_nationkey", n, "n_nationkey"); // edge 5: cycle closer
    b.filter(c, r, "r_name", CmpOp::Eq, Datum::str("ASIA"));
    b.filter(c, o, "o_orderdate", CmpOp::Lt, Datum::Int(DATE_1995_03_15));
    if agg {
        b.aggregate(AggSpec {
            group_by: vec![lc(c, "nation", 1, "n_name")],
            aggs: vec![AggFunc::Sum(lc(c, "lineitem", 4, "l_extendedprice"))],
        });
    }
    b.build()
}

/// Q6: single-table filter + scalar aggregate over lineitem.
fn q6(c: &Catalog) -> QuerySpec {
    let mut b = QuerySpec::builder("Q6");
    let l = b.leaf(c, "lineitem");
    b.filter(c, l, "l_shipdate", CmpOp::Ge, Datum::Int(DATE_1995_03_15 - 365));
    b.filter(c, l, "l_shipdate", CmpOp::Lt, Datum::Int(DATE_1995_03_15));
    b.filter(c, l, "l_discount", CmpOp::Ge, Datum::Int(5));
    b.filter(c, l, "l_quantity", CmpOp::Lt, Datum::Int(24));
    b.aggregate(AggSpec {
        group_by: vec![],
        aggs: vec![AggFunc::Sum(lc(c, "lineitem", 0, "l_extendedprice"))],
    });
    b.build()
}

/// Q10: 4-way join (customer, orders, lineitem, nation) with an
/// aggregate.
fn q10(c: &Catalog) -> QuerySpec {
    let mut b = QuerySpec::builder("Q10");
    let cu = b.leaf(c, "customer");
    let o = b.leaf(c, "orders");
    let l = b.leaf(c, "lineitem");
    let n = b.leaf(c, "nation");
    b.join(c, cu, "c_custkey", o, "o_custkey");
    b.join(c, o, "o_orderkey", l, "l_orderkey");
    b.join(c, cu, "c_nationkey", n, "n_nationkey");
    b.filter(c, o, "o_orderdate", CmpOp::Ge, Datum::Int(DATE_1995_03_15 - 90));
    b.filter(c, o, "o_orderdate", CmpOp::Lt, Datum::Int(DATE_1995_03_15));
    b.aggregate(AggSpec {
        group_by: vec![lc(c, "customer", 0, "c_custkey")],
        aggs: vec![AggFunc::Sum(lc(c, "lineitem", 2, "l_extendedprice"))],
    });
    b.build()
}

/// Q8Join (Table 2): the hand-constructed 8-way join; `Q8JoinS` drops
/// the aggregate.
fn q8join(c: &Catalog, agg: bool) -> QuerySpec {
    let mut b = QuerySpec::builder(if agg { "Q8Join" } else { "Q8JoinS" });
    let o = b.leaf(c, "orders");
    let l = b.leaf(c, "lineitem");
    let cu = b.leaf(c, "customer");
    let p = b.leaf(c, "part");
    let ps = b.leaf(c, "partsupp");
    let s = b.leaf(c, "supplier");
    let n = b.leaf(c, "nation");
    let r = b.leaf(c, "region");
    b.join(c, o, "o_orderkey", l, "l_orderkey");
    b.join(c, cu, "c_custkey", o, "o_custkey");
    b.join(c, p, "p_partkey", l, "l_partkey");
    b.join(c, ps, "ps_partkey", p, "p_partkey");
    b.join(c, s, "s_suppkey", ps, "ps_suppkey");
    b.join(c, r, "r_regionkey", n, "n_regionkey");
    b.join(c, s, "s_nationkey", n, "n_nationkey");
    if agg {
        b.aggregate(AggSpec {
            group_by: vec![
                lc(c, "customer", 2, "c_name"),
                lc(c, "supplier", 5, "s_name"),
            ],
            aggs: vec![AggFunc::Sum(lc(c, "lineitem", 1, "l_extendedprice"))],
        });
    }
    b.build()
}

/// Resolves `table.column` for leaf index `leaf` (the query builders
/// place leaves in a fixed, documented order).
fn lc(c: &Catalog, table: &str, leaf: u32, column: &str) -> LeafCol {
    let t = c.table_by_name(table).unwrap();
    LeafCol {
        leaf: reopt_expr::LeafId(leaf),
        col: t.col(column).unwrap(),
    }
}

/// The Figure 5 sweep: labels and the Q5 edge perturbed for each
/// expression A–E ("the first join Region ⋈ Nation is expression A, …").
pub fn fig5_edge_labels() -> [(&'static str, EdgeId); 5] {
    [
        ("A=REGION*NATION", EdgeId(0)),
        ("B=CUSTOMER*A", EdgeId(1)),
        ("C=ORDERS*B", EdgeId(2)),
        ("D=LINEITEM*C", EdgeId(3)),
        ("E=SUPPLIER*D", EdgeId(4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::TpchGen;
    use reopt_expr::JoinGraph;

    fn catalog() -> Catalog {
        TpchGen::default().generate().0
    }

    #[test]
    fn all_queries_build_and_are_connected() {
        let c = catalog();
        for q in [
            QueryId::Q1,
            QueryId::Q3,
            QueryId::Q3S,
            QueryId::Q5,
            QueryId::Q5S,
            QueryId::Q6,
            QueryId::Q10,
            QueryId::Q8Join,
            QueryId::Q8JoinS,
        ] {
            let spec = q.build(&c);
            let g = JoinGraph::new(&spec);
            assert!(
                g.is_connected(spec.all_rels()),
                "{} join graph disconnected",
                q.name()
            );
        }
    }

    #[test]
    fn leaf_counts_match_paper() {
        let c = catalog();
        assert_eq!(QueryId::Q1.build(&c).n_leaves(), 1);
        assert_eq!(QueryId::Q3.build(&c).n_leaves(), 3);
        assert_eq!(QueryId::Q5.build(&c).n_leaves(), 6);
        assert_eq!(QueryId::Q10.build(&c).n_leaves(), 4);
        assert_eq!(QueryId::Q8Join.build(&c).n_leaves(), 8);
    }

    #[test]
    fn s_variants_drop_the_aggregate() {
        let c = catalog();
        assert!(QueryId::Q5.build(&c).aggregate.is_some());
        assert!(QueryId::Q5S.build(&c).aggregate.is_none());
        assert!(QueryId::Q8Join.build(&c).aggregate.is_some());
        assert!(QueryId::Q8JoinS.build(&c).aggregate.is_none());
    }

    #[test]
    fn fig5_edges_exist_in_q5() {
        let c = catalog();
        let q5 = QueryId::Q5.build(&c);
        for (label, e) in fig5_edge_labels() {
            assert!(
                (e.0 as usize) < q5.edges.len(),
                "{label} references missing edge"
            );
        }
        // Edge 0 really is region-nation.
        let e0 = q5.edges[0];
        assert_eq!(e0.l.leaf.0, 1); // nation
        assert_eq!(e0.r.leaf.0, 0); // region
    }

    #[test]
    fn queries_are_optimizable() {
        let (c, _db) = TpchGen::default().generate();
        for q in QueryId::figure4_suite() {
            let spec = q.build(&c);
            let g = JoinGraph::new(&spec);
            let mut ctx = reopt_cost::CostContext::new(&c, &spec);
            let r = reopt_baselines::optimize_system_r(&spec, &g, &mut ctx);
            assert!(r.cost.is_finite(), "{} has no finite plan", q.name());
        }
    }
}
