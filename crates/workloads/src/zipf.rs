//! Zipfian sampling via inverse-CDF over precomputed cumulative weights
//! — the skew model of the Microsoft skewed TPC-D generator [22] the
//! paper uses ("Zipfian skew factor", §5).

use rand::Rng;

/// A Zipf(θ) distribution over `1..=n`. θ = 0 is uniform; the paper uses
/// θ ∈ {0, 0.5}.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Samples a value in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).unwrap())
        {
            Ok(i) => i + 1,
            Err(i) => i + 1,
        }
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(theta: f64, n: usize, samples: usize) -> Vec<usize> {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(42);
        let mut h = vec![0usize; n];
        for _ in 0..samples {
            h[z.sample(&mut rng) - 1] += 1;
        }
        h
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let h = histogram(0.0, 10, 100_000);
        for &count in &h {
            assert!((count as f64 - 10_000.0).abs() < 1_000.0, "{h:?}");
        }
    }

    #[test]
    fn positive_theta_skews_toward_small_values() {
        let h = histogram(1.0, 10, 100_000);
        assert!(h[0] > 3 * h[4], "{h:?}");
        assert!(h[4] > h[9], "{h:?}");
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(7, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = z.sample(&mut rng);
            assert!((1..=7).contains(&s));
        }
    }
}
