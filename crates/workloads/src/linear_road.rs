//! Linear Road stream workload [3] and the modified `SegTollS` query
//! (paper Table 2).
//!
//! The generator synthesizes `CarLocStr(carid, expway, dir, seg, xpos)`
//! position reports "whose characteristics frequently change" (§5.4):
//! a congestion hotspot drifts across segments over time and the report
//! rate is bursty, so per-window statistics differ slice to slice and
//! different plans win on different slices.
//!
//! Reproduction note: the paper's `SegTollS` includes the range
//! predicate `r2_seg < r3_seg < r2_seg + 10`; this engine supports
//! equi-join edges plus leaf predicates, so the query here uses the
//! equi-join skeleton of the same 5-way self-join (documented in
//! DESIGN.md). The adaptive behaviour under study — per-slice statistics
//! drift driving plan changes — is unaffected.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use reopt_catalog::{Catalog, CmpOp, ColId, Datum, TableBuilder, TableStats};
use reopt_exec::StreamTuple;
use reopt_expr::{AggFunc, AggSpec, LeafCol, QuerySpec, WindowSpec};

/// Stream generator configuration.
#[derive(Clone, Debug)]
pub struct LinearRoadGen {
    pub seed: u64,
    pub n_expressways: i64,
    pub n_segments: i64,
    pub n_cars: i64,
    /// Mean reports per second.
    pub rate: f64,
    /// Congestion drift speed (segments per second).
    pub hotspot_speed: f64,
    /// Burstiness: rate multiplier amplitude (0 = steady).
    pub burstiness: f64,
    rng: StdRng,
}

impl LinearRoadGen {
    pub fn new(seed: u64) -> LinearRoadGen {
        LinearRoadGen {
            seed,
            n_expressways: 4,
            n_segments: 100,
            n_cars: 500,
            rate: 200.0,
            hotspot_speed: 2.0,
            burstiness: 0.8,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Registers the `CarLocStr` stream in a catalog. `row_count` is the
    /// arrival rate (tuples/second), the convention the cost model uses
    /// for windowed leaves.
    pub fn register(&self, catalog: &mut Catalog) {
        let columns = |ndv: f64| reopt_catalog::ColumnStats::uniform_key(ndv);
        catalog.add_table(
            |id| {
                TableBuilder::new("CarLocStr")
                    .int_col("carid")
                    .int_col("expway")
                    .int_col("dir")
                    .int_col("seg")
                    .int_col("xpos")
                    .build(id)
            },
            TableStats {
                row_count: self.rate,
                columns: vec![
                    columns(self.n_cars as f64),
                    columns(self.n_expressways as f64),
                    columns(2.0),
                    columns(self.n_segments as f64),
                    columns(1000.0),
                ],
            },
        );
    }

    /// Generates the tuples arriving during `[start, start + dur)`.
    ///
    /// Drift comes from three coupled effects, all present in the Linear
    /// Road scenario: a bursty report rate, a congestion hotspot moving
    /// across segments, and cars entering/leaving the expressway (the
    /// *active pool* of distinct cars swells and shrinks with traffic,
    /// and its membership rotates over time).
    pub fn slice(&mut self, start: f64, dur: f64) -> Vec<StreamTuple> {
        // Bursty rate: a slow sinusoid.
        let phase = (start / 17.0).sin();
        let mult = (1.0 + self.burstiness * phase).max(0.1);
        let n = ((self.rate * dur * mult) as usize).max(1);
        // The congestion hotspot drifts across segments; most reports
        // cluster near it (skewed seg distribution whose mode moves).
        let hotspot =
            ((start * self.hotspot_speed) as i64).rem_euclid(self.n_segments);
        // Active car pool: size tracks traffic volume, membership
        // rotates (cars enter at one end of the id space and leave at
        // the other).
        let pool = (((self.n_cars as f64 / 4.0) * (1.0 + self.burstiness * phase)) as i64)
            .clamp(5, self.n_cars);
        let pool_start = (start * self.n_cars as f64 / 240.0) as i64;
        (0..n)
            .map(|i| {
                let ts = start + dur * (i as f64 / n as f64);
                let car = (pool_start + self.rng.gen_range(0..pool)).rem_euclid(self.n_cars);
                let expway = self.rng.gen_range(0..self.n_expressways);
                let dir = if self.rng.gen_bool(0.7) { 0 } else { 1 };
                let near_hotspot = self.rng.gen_bool(0.6);
                let seg = if near_hotspot {
                    (hotspot + self.rng.gen_range(-3i64..=3)).rem_euclid(self.n_segments)
                } else {
                    self.rng.gen_range(0..self.n_segments)
                };
                StreamTuple {
                    ts,
                    row: vec![
                        Datum::Int(car),
                        Datum::Int(expway),
                        Datum::Int(dir),
                        Datum::Int(seg),
                        Datum::Int(seg * 5280 + self.rng.gen_range(0..5280)),
                    ],
                }
            })
            .collect()
    }
}

/// The modified `SegTollS` query (Table 2): a 5-way self-join of
/// `CarLocStr` with per-alias windows and a distinct-count aggregate.
///
/// - r1: `[size 300 time]`
/// - r2: `[size 1 tuple partition by expway, dir, seg]`
/// - r3: `[size 1 tuple partition by carid]`
/// - r4: `[size 30 time]`
/// - r5: `[size 4 tuple partition by carid]`
pub fn seg_toll_query(c: &Catalog) -> QuerySpec {
    let t = c
        .table_by_name("CarLocStr")
        .expect("register the stream first");
    let col = |name: &str| t.col(name).unwrap();
    let mut b = QuerySpec::builder("SegTollS");
    let r1 = b.leaf_aliased(c, "CarLocStr", "r1");
    let r2 = b.leaf_aliased(c, "CarLocStr", "r2");
    let r3 = b.leaf_aliased(c, "CarLocStr", "r3");
    let r4 = b.leaf_aliased(c, "CarLocStr", "r4");
    let r5 = b.leaf_aliased(c, "CarLocStr", "r5");
    b.window(r1, WindowSpec::Time { seconds: 300.0 });
    b.window(
        r2,
        WindowSpec::PartitionedTuples {
            cols: vec![col("expway"), col("dir"), col("seg")],
            count: 1,
        },
    );
    b.window(
        r3,
        WindowSpec::PartitionedTuples {
            cols: vec![col("carid")],
            count: 1,
        },
    );
    b.window(r4, WindowSpec::Time { seconds: 30.0 });
    b.window(
        r5,
        WindowSpec::PartitionedTuples {
            cols: vec![col("carid")],
            count: 4,
        },
    );
    // Equi-join skeleton of the paper's predicate set.
    b.join(c, r2, "expway", r3, "expway");
    b.join(c, r2, "seg", r3, "seg");
    b.join(c, r3, "carid", r4, "carid");
    b.join(c, r3, "carid", r5, "carid");
    b.join(c, r1, "expway", r2, "expway");
    b.join(c, r1, "dir", r2, "dir");
    b.join(c, r1, "seg", r2, "seg");
    b.filter(c, r2, "dir", CmpOp::Eq, Datum::Int(0));
    b.filter(c, r3, "dir", CmpOp::Eq, Datum::Int(0));
    b.aggregate(AggSpec {
        group_by: vec![
            LeafCol {
                leaf: reopt_expr::LeafId(0),
                col: ColId(1), // r1.expway
            },
            LeafCol {
                leaf: reopt_expr::LeafId(0),
                col: ColId(2), // r1.dir
            },
            LeafCol {
                leaf: reopt_expr::LeafId(0),
                col: ColId(3), // r1.seg
            },
        ],
        aggs: vec![AggFunc::CountDistinct(LeafCol {
            leaf: reopt_expr::LeafId(4),
            col: ColId(4), // r5.xpos
        })],
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_expr::JoinGraph;

    fn setup() -> (Catalog, LinearRoadGen) {
        let mut c = Catalog::new();
        let gen = LinearRoadGen::new(3);
        gen.register(&mut c);
        (c, gen)
    }

    #[test]
    fn generator_respects_rate_and_burstiness() {
        let (_c, mut gen) = setup();
        let sizes: Vec<usize> = (0..20)
            .map(|i| gen.slice(i as f64 * 5.0, 5.0).len())
            .collect();
        let min = *sizes.iter().min().unwrap() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max / min > 1.5, "no burstiness: {sizes:?}");
        let total: usize = sizes.iter().sum();
        let expected = 200.0 * 100.0;
        assert!((total as f64) > expected * 0.3 && (total as f64) < expected * 3.0);
    }

    #[test]
    fn hotspot_drifts_over_time() {
        let (_c, mut gen) = setup();
        let mode = |tuples: &[StreamTuple]| {
            let mut counts = std::collections::HashMap::new();
            for t in tuples {
                *counts.entry(t.row[3].as_int()).or_insert(0usize) += 1;
            }
            counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
        };
        let early = gen.slice(0.0, 5.0);
        let late = gen.slice(30.0, 5.0);
        assert_ne!(mode(&early), mode(&late));
    }

    #[test]
    fn seg_toll_query_is_connected_and_windowed() {
        let (c, _gen) = setup();
        let q = seg_toll_query(&c);
        assert_eq!(q.n_leaves(), 5);
        let g = JoinGraph::new(&q);
        assert!(g.is_connected(q.all_rels()));
        assert!(q.leaves.iter().all(|l| l.window.is_some()));
        assert!(q.aggregate.is_some());
    }

    #[test]
    fn seg_toll_is_optimizable_and_executable() {
        let (c, mut gen) = setup();
        let q = seg_toll_query(&c);
        let g = JoinGraph::new(&q);
        let mut ctx = reopt_cost::CostContext::new(&c, &q);
        let plan = reopt_baselines::optimize_system_r(&q, &g, &mut ctx).plan;
        let mut se = reopt_exec::StreamExecutor::new(&q);
        se.ingest(&gen.slice(0.0, 10.0));
        let r = se.execute(&plan);
        // Results exist (cars reported in dir 0 joined across windows).
        assert!(r.window_sizes.iter().all(|&s| s > 0));
        let _ = r.out_rows;
    }
}
