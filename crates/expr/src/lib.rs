//! Relational algebra layer: query specifications (join graph +
//! predicates + windows + aggregation), logical expressions as leaf-set
//! bitmasks, physical properties ("interesting orders" / index access,
//! paper §2.1), physical operators, and the `Fn_split` plan enumeration
//! that merges logical and physical enumeration in a single recursion
//! (paper §2.3 "Merging of logical and physical plan enumeration").

pub mod enumerate;
pub mod graph;
pub mod ops;
pub mod plan;
pub mod props;
pub mod query;
pub mod relset;
pub mod space;

pub use enumerate::{enumerate_alts, AltSpec, ChildRef, SplitCache};
pub use graph::JoinGraph;
pub use ops::PhysOp;
pub use plan::PlanNode;
pub use props::PhysProp;
pub use query::{
    AggFunc, AggSpec, EdgeId, ExprId, JoinEdge, Leaf, LeafCol, LeafFilter, LeafId, QuerySpec,
    WindowSpec,
};
pub use relset::RelSet;
pub use space::{GroupDef, GroupIdx, Space};
