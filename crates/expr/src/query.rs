//! Query specifications: the optimizer's input.
//!
//! A [`QuerySpec`] is a single-block select-project-join-aggregate query
//! over a set of *leaves*. A leaf is a base table or a windowed stream
//! alias (self-joins, as in the Linear Road `SegTollS` query, are
//! expressed as multiple leaves over the same table). Join predicates are
//! equi-join *edges* between leaf columns; local predicates are attached
//! to leaves; an optional aggregate caps the query.

use reopt_catalog::{Catalog, CmpOp, ColId, Datum, TableId};

use crate::relset::RelSet;

/// Index of a leaf within a query (0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeafId(pub u32);

/// Index of a join edge within a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// A column of a specific query leaf. Unlike `catalog::AttrRef`, this is
/// unambiguous under self-joins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeafCol {
    pub leaf: LeafId,
    pub col: ColId,
}

impl LeafCol {
    pub fn new(leaf: u32, col: u32) -> LeafCol {
        LeafCol {
            leaf: LeafId(leaf),
            col: ColId(col),
        }
    }
}

/// A local (selection) predicate on a leaf: `col <op> literal`.
#[derive(Clone, Debug)]
pub struct LeafFilter {
    pub col: ColId,
    pub op: CmpOp,
    pub value: Datum,
}

/// Stream window specification (paper §5 `SegTollS`, e.g.
/// `CarLocStr [size 300 time]`, `[size 1 tuple partition by carid]`).
#[derive(Clone, Debug, PartialEq)]
pub enum WindowSpec {
    /// `[size N time]`: all tuples in the last N time units.
    Time { seconds: f64 },
    /// `[size N tuple]`: the last N tuples.
    Tuples { count: u64 },
    /// `[size N tuple partition by cols]`: the last N tuples per group.
    PartitionedTuples { cols: Vec<ColId>, count: u64 },
}

/// A query leaf.
#[derive(Clone, Debug)]
pub struct Leaf {
    pub table: TableId,
    pub alias: String,
    pub filters: Vec<LeafFilter>,
    pub window: Option<WindowSpec>,
    /// Columns of the underlying table with a secondary index
    /// (denormalized from the catalog at build time so enumeration does
    /// not need catalog access).
    pub indexed_cols: Vec<ColId>,
    /// Physical sort column of the underlying table, if any.
    pub clustered_on: Option<ColId>,
}

/// An equi-join edge `l = r` between two leaf columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    pub l: LeafCol,
    pub r: LeafCol,
}

impl JoinEdge {
    /// Leaf-set containing both endpoints.
    pub fn rels(&self) -> RelSet {
        RelSet::singleton(self.l.leaf.0).union(RelSet::singleton(self.r.leaf.0))
    }

    /// Returns `(endpoint in side, endpoint in other)` if the edge crosses
    /// the `(side, other)` cut, else `None`.
    pub fn across(&self, side: RelSet, other: RelSet) -> Option<(LeafCol, LeafCol)> {
        if side.contains(self.l.leaf.0) && other.contains(self.r.leaf.0) {
            Some((self.l, self.r))
        } else if side.contains(self.r.leaf.0) && other.contains(self.l.leaf.0) {
            Some((self.r, self.l))
        } else {
            None
        }
    }
}

/// Aggregate functions supported by the executor and costed uniformly by
/// the optimizer.
#[derive(Clone, Debug, PartialEq)]
pub enum AggFunc {
    CountStar,
    Count(LeafCol),
    CountDistinct(LeafCol),
    Sum(LeafCol),
    Min(LeafCol),
    Max(LeafCol),
}

/// A `GROUP BY` + aggregate list.
#[derive(Clone, Debug, Default)]
pub struct AggSpec {
    pub group_by: Vec<LeafCol>,
    pub aggs: Vec<AggFunc>,
}

/// Identifies a memo expression: a leaf set plus whether the (single,
/// top-level) aggregate has been applied. `Q5` and `Q5S` (aggregate
/// removed) differ exactly in whether an `agg` root group exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId {
    pub rel: RelSet,
    pub agg: bool,
}

impl ExprId {
    pub fn rel(rel: RelSet) -> ExprId {
        ExprId { rel, agg: false }
    }

    /// The paper's `Fn_isleaf`: a single relation with no pending
    /// aggregate.
    pub fn is_leaf(self) -> bool {
        !self.agg && self.rel.is_singleton()
    }
}

/// A single-block query.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    pub name: String,
    pub leaves: Vec<Leaf>,
    pub edges: Vec<JoinEdge>,
    pub aggregate: Option<AggSpec>,
    /// Output columns (ignored by the optimizer, used by the executor).
    pub projection: Vec<LeafCol>,
}

impl QuerySpec {
    pub fn leaf(&self, id: LeafId) -> &Leaf {
        &self.leaves[id.0 as usize]
    }

    pub fn edge(&self, id: EdgeId) -> &JoinEdge {
        &self.edges[id.0 as usize]
    }

    pub fn n_leaves(&self) -> u32 {
        self.leaves.len() as u32
    }

    /// The full leaf set.
    pub fn all_rels(&self) -> RelSet {
        RelSet::full(self.n_leaves())
    }

    /// The root memo expression.
    pub fn root_expr(&self) -> ExprId {
        ExprId {
            rel: self.all_rels(),
            agg: self.aggregate.is_some(),
        }
    }

    /// Edge ids crossing the `(l, r)` cut.
    pub fn edges_across(&self, l: RelSet, r: RelSet) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().enumerate().filter_map(move |(i, e)| {
            e.across(l, r).map(|_| EdgeId(i as u32))
        })
    }

    /// Builder entry point.
    pub fn builder(name: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            name: name.into(),
            leaves: Vec::new(),
            edges: Vec::new(),
            aggregate: None,
            projection: Vec::new(),
        }
    }
}

/// Fluent builder resolving table/column names against a [`Catalog`].
pub struct QueryBuilder {
    name: String,
    leaves: Vec<Leaf>,
    edges: Vec<JoinEdge>,
    aggregate: Option<AggSpec>,
    projection: Vec<LeafCol>,
}

impl QueryBuilder {
    /// Adds a leaf over `table_name`, returning its [`LeafId`].
    pub fn leaf(&mut self, catalog: &Catalog, table_name: &str) -> LeafId {
        self.leaf_aliased(catalog, table_name, table_name)
    }

    /// Adds an aliased leaf (needed for self-joins).
    pub fn leaf_aliased(&mut self, catalog: &Catalog, table_name: &str, alias: &str) -> LeafId {
        let table = catalog
            .table_by_name(table_name)
            .unwrap_or_else(|| panic!("unknown table `{table_name}`"));
        let id = LeafId(self.leaves.len() as u32);
        self.leaves.push(Leaf {
            table: table.id,
            alias: alias.to_string(),
            filters: Vec::new(),
            window: None,
            indexed_cols: table.indexed.clone(),
            clustered_on: table.clustered_on,
        });
        id
    }

    /// Attaches a window to the most recently added leaf.
    pub fn window(&mut self, leaf: LeafId, window: WindowSpec) -> &mut Self {
        self.leaves[leaf.0 as usize].window = Some(window);
        self
    }

    /// Adds a local predicate `leaf.col <op> value`.
    pub fn filter(
        &mut self,
        catalog: &Catalog,
        leaf: LeafId,
        col: &str,
        op: CmpOp,
        value: Datum,
    ) -> &mut Self {
        let table = catalog.table(self.leaves[leaf.0 as usize].table);
        let col = table
            .col(col)
            .unwrap_or_else(|| panic!("unknown column `{col}` on `{}`", table.name));
        self.leaves[leaf.0 as usize]
            .filters
            .push(LeafFilter { col, op, value });
        self
    }

    /// Adds an equi-join edge `a.ca = b.cb`.
    pub fn join(
        &mut self,
        catalog: &Catalog,
        a: LeafId,
        ca: &str,
        b: LeafId,
        cb: &str,
    ) -> EdgeId {
        let resolve = |leaf: LeafId, col: &str| -> LeafCol {
            let table = catalog.table(self.leaves[leaf.0 as usize].table);
            let col = table
                .col(col)
                .unwrap_or_else(|| panic!("unknown column `{col}` on `{}`", table.name));
            LeafCol { leaf, col }
        };
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(JoinEdge {
            l: resolve(a, ca),
            r: resolve(b, cb),
        });
        id
    }

    pub fn aggregate(&mut self, agg: AggSpec) -> &mut Self {
        self.aggregate = Some(agg);
        self
    }

    pub fn project(&mut self, cols: Vec<LeafCol>) -> &mut Self {
        self.projection = cols;
        self
    }

    pub fn build(self) -> QuerySpec {
        assert!(!self.leaves.is_empty(), "query needs at least one leaf");
        QuerySpec {
            name: self.name,
            leaves: self.leaves,
            edges: self.edges,
            aggregate: self.aggregate,
            projection: self.projection,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_catalog::{ColumnStats, TableBuilder, TableStats};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        for (name, cols) in [("r", vec!["rk"]), ("s", vec!["rk", "sk"]), ("t", vec!["sk"])] {
            let n = cols.len();
            c.add_table(
                |id| {
                    let mut b = TableBuilder::new(name);
                    for col in &cols {
                        b = b.int_col(col);
                    }
                    b.build(id)
                },
                TableStats {
                    row_count: 100.0,
                    columns: (0..n).map(|_| ColumnStats::uniform_key(100.0)).collect(),
                },
            );
        }
        c
    }

    fn chain_query() -> QuerySpec {
        let c = catalog();
        let mut b = QuerySpec::builder("chain");
        let r = b.leaf(&c, "r");
        let s = b.leaf(&c, "s");
        let t = b.leaf(&c, "t");
        b.join(&c, r, "rk", s, "rk");
        b.join(&c, s, "sk", t, "sk");
        b.filter(&c, r, "rk", CmpOp::Lt, Datum::Int(50));
        b.build()
    }

    #[test]
    fn builder_resolves_names() {
        let q = chain_query();
        assert_eq!(q.n_leaves(), 3);
        assert_eq!(q.edges.len(), 2);
        assert_eq!(q.edges[0].l, LeafCol::new(0, 0));
        assert_eq!(q.edges[0].r, LeafCol::new(1, 0));
        assert_eq!(q.leaves[0].filters.len(), 1);
    }

    #[test]
    fn edge_across_detects_cuts() {
        let q = chain_query();
        let e0 = q.edges[0];
        let l = RelSet::singleton(0);
        let r = RelSet::singleton(1).union(RelSet::singleton(2));
        let (a, b) = e0.across(l, r).unwrap();
        assert_eq!(a.leaf, LeafId(0));
        assert_eq!(b.leaf, LeafId(1));
        // Reversed cut flips the endpoints.
        let (a2, _) = e0.across(r, l).unwrap();
        assert_eq!(a2.leaf, LeafId(1));
        // Edge 1 (s-t) does not cross the {r} | {s,t} cut.
        assert!(q.edges[1].across(l, r).is_none());
    }

    #[test]
    fn edges_across_enumerates_ids() {
        let q = chain_query();
        let l = RelSet::singleton(1); // {s}
        let r = RelSet::singleton(0).union(RelSet::singleton(2)); // {r,t}
        let ids: Vec<EdgeId> = q.edges_across(l, r).collect();
        assert_eq!(ids, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn root_expr_reflects_aggregate() {
        let mut q = chain_query();
        assert!(!q.root_expr().agg);
        q.aggregate = Some(AggSpec::default());
        assert!(q.root_expr().agg);
        assert_eq!(q.root_expr().rel, RelSet::full(3));
    }

    #[test]
    fn leaf_expr_detection() {
        assert!(ExprId::rel(RelSet::singleton(2)).is_leaf());
        assert!(!ExprId::rel(RelSet(0b11)).is_leaf());
        assert!(!ExprId {
            rel: RelSet::singleton(0),
            agg: true
        }
        .is_leaf());
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn unknown_table_panics() {
        let c = catalog();
        QuerySpec::builder("bad").leaf(&c, "nope");
    }
}
