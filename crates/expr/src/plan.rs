//! Extracted physical plan trees — the optimizer's output (the paper's
//! `BestPlan` closure over the and-or graph) and the executor's input.

use std::fmt;

use crate::ops::PhysOp;
use crate::props::PhysProp;
use crate::query::ExprId;

/// A node of a fully resolved physical plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanNode {
    pub expr: ExprId,
    pub prop: PhysProp,
    pub op: PhysOp,
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    /// Pre-order operator list (useful for plan-shape assertions).
    pub fn ops(&self) -> Vec<PhysOp> {
        let mut out = Vec::with_capacity(self.size());
        self.collect_ops(&mut out);
        out
    }

    fn collect_ops(&self, out: &mut Vec<PhysOp>) {
        out.push(self.op);
        for c in &self.children {
            c.collect_ops(out);
        }
    }

    /// A stable structural fingerprint: two plans with the same shape and
    /// operators produce the same fingerprint. Used to detect plan
    /// switches in the adaptive driver.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = reopt_common::FxHasher::default();
        self.hash_into(&mut h);
        h.finish()
    }

    fn hash_into<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        self.expr.rel.0.hash(h);
        self.expr.agg.hash(h);
        self.op.hash(h);
        for c in &self.children {
            c.hash_into(h);
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        writeln!(
            f,
            "{:indent$}{} [{} {}]",
            "",
            self.op,
            self.expr.rel,
            self.prop,
            indent = depth * 2
        )?;
        for c in &self.children {
            c.fmt_indented(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relset::RelSet;

    fn leaf(i: u32) -> PlanNode {
        PlanNode {
            expr: ExprId::rel(RelSet::singleton(i)),
            prop: PhysProp::Any,
            op: PhysOp::FullScan,
            children: vec![],
        }
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode {
            expr: ExprId::rel(l.expr.rel.union(r.expr.rel)),
            prop: PhysProp::Any,
            op: PhysOp::HashJoin,
            children: vec![l, r],
        }
    }

    #[test]
    fn size_and_ops() {
        let p = join(leaf(0), join(leaf(1), leaf(2)));
        assert_eq!(p.size(), 5);
        assert_eq!(
            p.ops(),
            vec![
                PhysOp::HashJoin,
                PhysOp::FullScan,
                PhysOp::HashJoin,
                PhysOp::FullScan,
                PhysOp::FullScan
            ]
        );
    }

    #[test]
    fn fingerprint_distinguishes_shapes() {
        let a = join(leaf(0), join(leaf(1), leaf(2)));
        let b = join(join(leaf(0), leaf(1)), leaf(2));
        let a2 = join(leaf(0), join(leaf(1), leaf(2)));
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn display_is_indented() {
        let p = join(leaf(0), leaf(1));
        let s = p.to_string();
        assert!(s.contains("pipelined-hash"));
        assert!(s.contains("  local-scan"));
    }
}
