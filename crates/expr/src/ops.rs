//! Physical operators — the `PhyOp` column of the paper's `SearchSpace`
//! relation (Table 1): local scan, index scan, pipelined-hash join,
//! sort-merge join, indexed nested-loop join; plus the `Sort` enforcer
//! (Volcano-style) and the aggregation roots.

use std::fmt;

use crate::query::{EdgeId, LeafCol};

/// A physical operator rooted at a plan node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhysOp {
    /// Full ("local") scan of a base leaf.
    FullScan,
    /// Index scan of a base leaf via the index on `col`; produces both
    /// `Indexed(col)` and `Sorted(col)` access.
    IndexScan { col: LeafCol },
    /// Pipelined (symmetric) hash join on all edges across the cut.
    /// Left = build side, right = probe side.
    HashJoin,
    /// Sort-merge join merging on `edge`; requires children sorted on the
    /// edge endpoints and produces output sorted on the left endpoint.
    SortMergeJoin { edge: EdgeId },
    /// Indexed nested-loop join on `edge`. Following Table 1 of the
    /// paper, the *left* child is the indexed inner (requires
    /// `Indexed(col)` on it) and the right child is the outer.
    IndexNLJoin { edge: EdgeId },
    /// Sort enforcer: same expression, sorts its input on `col`.
    Sort { col: LeafCol },
    /// Hash aggregation root.
    HashAgg,
    /// Sort-based aggregation root; requires input sorted on the first
    /// group-by column.
    SortAgg,
}

impl PhysOp {
    pub fn is_scan(self) -> bool {
        matches!(self, PhysOp::FullScan | PhysOp::IndexScan { .. })
    }

    pub fn is_join(self) -> bool {
        matches!(
            self,
            PhysOp::HashJoin | PhysOp::SortMergeJoin { .. } | PhysOp::IndexNLJoin { .. }
        )
    }

    pub fn is_unary(self) -> bool {
        matches!(self, PhysOp::Sort { .. } | PhysOp::HashAgg | PhysOp::SortAgg)
    }

    /// The paper's `LogOp` column: the logical operator this implements.
    pub fn logical_name(self) -> &'static str {
        match self {
            PhysOp::FullScan | PhysOp::IndexScan { .. } => "scan",
            PhysOp::HashJoin | PhysOp::SortMergeJoin { .. } | PhysOp::IndexNLJoin { .. } => "join",
            PhysOp::Sort { .. } => "sort",
            PhysOp::HashAgg | PhysOp::SortAgg => "agg",
        }
    }
}

impl fmt::Display for PhysOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysOp::FullScan => write!(f, "local-scan"),
            PhysOp::IndexScan { col } => write!(f, "index-scan(l{}.c{})", col.leaf.0, col.col.0),
            PhysOp::HashJoin => write!(f, "pipelined-hash"),
            PhysOp::SortMergeJoin { edge } => write!(f, "sort-merge(e{})", edge.0),
            PhysOp::IndexNLJoin { edge } => write!(f, "indexed-nl(e{})", edge.0),
            PhysOp::Sort { col } => write!(f, "sort(l{}.c{})", col.leaf.0, col.col.0),
            PhysOp::HashAgg => write!(f, "hash-agg"),
            PhysOp::SortAgg => write!(f, "sort-agg"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(PhysOp::FullScan.is_scan());
        assert!(PhysOp::HashJoin.is_join());
        assert!(PhysOp::SortMergeJoin { edge: EdgeId(0) }.is_join());
        assert!(PhysOp::Sort {
            col: LeafCol::new(0, 0)
        }
        .is_unary());
        assert!(PhysOp::HashAgg.is_unary());
        assert!(!PhysOp::HashAgg.is_join());
    }

    #[test]
    fn logical_names_match_paper_logop_column() {
        assert_eq!(PhysOp::FullScan.logical_name(), "scan");
        assert_eq!(PhysOp::HashJoin.logical_name(), "join");
        assert_eq!(
            PhysOp::IndexNLJoin { edge: EdgeId(1) }.logical_name(),
            "join"
        );
        assert_eq!(PhysOp::SortAgg.logical_name(), "agg");
    }
}
