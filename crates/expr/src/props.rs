//! Physical properties — the paper's `Prop` column in the `SearchSpace`
//! relation (Table 1): "a physical plan has not only a root physical
//! operator, but also a set of physical properties over the data that it
//! maintains or produces".

use std::fmt;

use crate::query::LeafCol;

/// The physical property required of / produced by a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PhysProp {
    /// No requirement (the `–` entries in Table 1).
    Any,
    /// Output sorted on the given column (an "interesting order", e.g.
    /// `C_custkey order` in Table 1).
    Sorted(LeafCol),
    /// Accessible through an index on the given column (the
    /// `index on L_orderkey` inner requirement of the indexed
    /// nested-loop join in Table 1). Only leaf expressions can produce
    /// this property.
    Indexed(LeafCol),
}

impl PhysProp {
    pub fn is_any(self) -> bool {
        self == PhysProp::Any
    }

    /// Whether a plan producing `self` satisfies a requirement of `req`.
    /// `Any` is satisfied by everything; `Sorted`/`Indexed` must match
    /// exactly.
    pub fn satisfies(self, req: PhysProp) -> bool {
        req == PhysProp::Any || self == req
    }
}

impl fmt::Display for PhysProp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysProp::Any => write!(f, "–"),
            PhysProp::Sorted(c) => write!(f, "sorted(l{}.c{})", c.leaf.0, c.col.0),
            PhysProp::Indexed(c) => write!(f, "indexed(l{}.c{})", c.leaf.0, c.col.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfaction() {
        let c = LeafCol::new(0, 1);
        let d = LeafCol::new(1, 1);
        assert!(PhysProp::Sorted(c).satisfies(PhysProp::Any));
        assert!(PhysProp::Sorted(c).satisfies(PhysProp::Sorted(c)));
        assert!(!PhysProp::Sorted(c).satisfies(PhysProp::Sorted(d)));
        assert!(!PhysProp::Any.satisfies(PhysProp::Sorted(c)));
        assert!(!PhysProp::Indexed(c).satisfies(PhysProp::Sorted(c)));
    }

    #[test]
    fn display() {
        assert_eq!(PhysProp::Any.to_string(), "–");
        assert_eq!(
            PhysProp::Sorted(LeafCol::new(2, 3)).to_string(),
            "sorted(l2.c3)"
        );
    }
}
