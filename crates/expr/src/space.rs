//! The reachable plan space: the full and-or graph of Figure 2.
//!
//! Exploration starts from the root `(expression, Any)` demand and
//! follows child references of every enumerated alternative — exactly the
//! set of `SearchSpace` tuples rules R1–R5 derive at fixpoint with no
//! pruning. Its size is the denominator of the paper's "pruning ratio"
//! metrics (Figs 4b/4c, 7b/7c).

use std::collections::VecDeque;

use reopt_common::FxHashMap;

use crate::enumerate::{AltSpec, SplitCache};
use crate::graph::JoinGraph;
use crate::props::PhysProp;
use crate::query::{ExprId, QuerySpec};

/// Index of a group within a [`Space`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupIdx(pub u32);

/// One "OR" node: an `(expression, property)` pair with its enumerated
/// alternatives.
#[derive(Clone, Debug)]
pub struct GroupDef {
    pub expr: ExprId,
    pub prop: PhysProp,
    pub alts: Vec<AltSpec>,
}

/// The reachable and-or graph.
#[derive(Clone, Debug)]
pub struct Space {
    pub groups: Vec<GroupDef>,
    index: FxHashMap<(ExprId, PhysProp), GroupIdx>,
    /// Group indexes in bottom-up (children before parents) order.
    topo: Vec<GroupIdx>,
    root: GroupIdx,
}

impl Space {
    /// Explores the full space from the query root.
    pub fn explore(q: &QuerySpec, g: &JoinGraph) -> Space {
        let mut cache = SplitCache::new();
        let mut groups: Vec<GroupDef> = Vec::new();
        let mut index: FxHashMap<(ExprId, PhysProp), GroupIdx> = FxHashMap::default();
        let mut queue = VecDeque::new();
        let root_key = (q.root_expr(), PhysProp::Any);
        queue.push_back(root_key);
        index.insert(root_key, GroupIdx(0));
        groups.push(GroupDef {
            expr: root_key.0,
            prop: root_key.1,
            alts: Vec::new(),
        });
        while let Some((expr, prop)) = queue.pop_front() {
            let alts = cache.get(q, g, expr, prop).to_vec();
            for alt in &alts {
                for child in alt.children() {
                    let key = (child.expr, child.prop);
                    if let std::collections::hash_map::Entry::Vacant(e) = index.entry(key) {
                        let idx = GroupIdx(groups.len() as u32);
                        e.insert(idx);
                        groups.push(GroupDef {
                            expr: key.0,
                            prop: key.1,
                            alts: Vec::new(),
                        });
                        queue.push_back(key);
                    }
                }
            }
            let idx = index[&(expr, prop)];
            groups[idx.0 as usize].alts = alts;
        }
        let mut topo: Vec<GroupIdx> = (0..groups.len() as u32).map(GroupIdx).collect();
        topo.sort_by_key(|i| {
            let def = &groups[i.0 as usize];
            (
                def.expr.rel.len(),
                def.expr.agg,
                !matches!(def.prop, PhysProp::Any),
            )
        });
        Space {
            groups,
            index,
            topo,
            root: GroupIdx(0),
        }
    }

    pub fn root(&self) -> GroupIdx {
        self.root
    }

    pub fn group(&self, idx: GroupIdx) -> &GroupDef {
        &self.groups[idx.0 as usize]
    }

    pub fn lookup(&self, expr: ExprId, prop: PhysProp) -> Option<GroupIdx> {
        self.index.get(&(expr, prop)).copied()
    }

    /// Bottom-up order: every alternative's children precede the group
    /// itself.
    pub fn topo_order(&self) -> &[GroupIdx] {
        &self.topo
    }

    /// Total "OR" node count (plan-table entries).
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total "AND" node count (plan alternatives).
    pub fn n_alts(&self) -> usize {
        self.groups.iter().map(|g| g.alts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QuerySpec;
    use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};

    fn chain(n: usize) -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        for i in 0..n {
            let name = format!("t{i}");
            c.add_table(
                |id| {
                    TableBuilder::new(&name)
                        .int_col("a")
                        .int_col("b")
                        .build(id)
                },
                TableStats {
                    row_count: 100.0,
                    columns: vec![ColumnStats::uniform_key(100.0); 2],
                },
            );
        }
        let mut b = QuerySpec::builder("chain");
        let leaves: Vec<_> = (0..n)
            .map(|i| b.leaf(&c, &format!("t{i}")))
            .collect();
        for w in leaves.windows(2) {
            b.join(&c, w[0], "b", w[1], "a");
        }
        let q = b.build();
        (c, q)
    }

    #[test]
    fn space_covers_all_connected_subsets() {
        let (_c, q) = chain(3);
        let g = JoinGraph::new(&q);
        let space = Space::explore(&q, &g);
        // Every connected subset appears at least with prop Any.
        for rel in g.connected_subsets() {
            assert!(
                space.lookup(ExprId::rel(rel), PhysProp::Any).is_some(),
                "missing group for {rel}"
            );
        }
        // Root is the full set.
        assert_eq!(space.group(space.root()).expr, q.root_expr());
    }

    #[test]
    fn topo_order_puts_children_first() {
        let (_c, q) = chain(4);
        let g = JoinGraph::new(&q);
        let space = Space::explore(&q, &g);
        let pos: FxHashMap<GroupIdx, usize> = space
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, g)| (*g, i))
            .collect();
        for (gi, def) in space.groups.iter().enumerate() {
            let gi = GroupIdx(gi as u32);
            for alt in &def.alts {
                for child in alt.children() {
                    let ci = space.lookup(child.expr, child.prop).unwrap();
                    assert!(
                        pos[&ci] < pos[&gi],
                        "child {:?} after parent {:?}",
                        space.group(ci),
                        def
                    );
                }
            }
        }
    }

    #[test]
    fn space_size_grows_with_query_size() {
        let sizes: Vec<usize> = [2, 3, 4, 5]
            .iter()
            .map(|&n| {
                let (_c, q) = chain(n);
                let g = JoinGraph::new(&q);
                Space::explore(&q, &g).n_alts()
            })
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]), "{sizes:?}");
    }

    #[test]
    fn every_group_has_alternatives() {
        // In a reachable space, a group only exists because some parent
        // demanded it — and every demanded property is satisfiable (the
        // Sort enforcer guarantees it for Sorted; Indexed is only
        // demanded where an index exists).
        let (_c, q) = chain(4);
        let g = JoinGraph::new(&q);
        let space = Space::explore(&q, &g);
        for def in &space.groups {
            assert!(
                !def.alts.is_empty(),
                "group ({:?},{}) has no alternatives",
                def.expr,
                def.prop
            );
        }
    }
}
