//! Logical expressions as bitmasks over query leaves.
//!
//! The paper's `Expr` values — `(C)`, `(OL)`, `(COL)` in Figure 2 — are
//! sets of base relations; equivalence under join commutativity and
//! associativity collapses to set equality, which is why every modern
//! optimizer (and this one) keys its memo by a leaf bitmask.

use std::fmt;

/// A set of query leaves, at most 32 (far above the paper's largest
/// query, the 8-way `Q8Join`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelSet(pub u32);

impl RelSet {
    pub const EMPTY: RelSet = RelSet(0);

    /// The singleton set `{leaf}`.
    #[inline]
    pub fn singleton(leaf: u32) -> RelSet {
        debug_assert!(leaf < 32);
        RelSet(1 << leaf)
    }

    /// The full set `{0..n}`.
    #[inline]
    pub fn full(n: u32) -> RelSet {
        debug_assert!(n <= 32);
        if n == 32 {
            RelSet(u32::MAX)
        } else {
            RelSet((1u32 << n) - 1)
        }
    }

    #[inline]
    pub fn contains(self, leaf: u32) -> bool {
        self.0 & (1 << leaf) != 0
    }

    #[inline]
    pub fn union(self, other: RelSet) -> RelSet {
        RelSet(self.0 | other.0)
    }

    #[inline]
    pub fn intersect(self, other: RelSet) -> RelSet {
        RelSet(self.0 & other.0)
    }

    #[inline]
    pub fn minus(self, other: RelSet) -> RelSet {
        RelSet(self.0 & !other.0)
    }

    #[inline]
    pub fn is_subset_of(self, other: RelSet) -> bool {
        self.0 & !other.0 == 0
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True iff this is a single leaf (the paper's `Fn_isleaf`).
    #[inline]
    pub fn is_singleton(self) -> bool {
        self.0 != 0 && self.0 & (self.0 - 1) == 0
    }

    /// The single leaf index; panics unless `is_singleton`.
    #[inline]
    pub fn leaf(self) -> u32 {
        assert!(self.is_singleton(), "leaf() on non-singleton {self:?}");
        self.0.trailing_zeros()
    }

    /// Iterates the leaf indices in ascending order.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let leaf = bits.trailing_zeros();
                bits &= bits - 1;
                Some(leaf)
            }
        })
    }

    /// Iterates all *proper, non-empty* submasks of this set. Each
    /// unordered split `{s, self \ s}` is visited twice (once per side),
    /// which is exactly what asymmetric physical operators need
    /// (paper §2.1: "exchanging the left and right child would become a
    /// different physical plan").
    pub fn proper_subsets(self) -> impl Iterator<Item = RelSet> {
        let full = self.0;
        let mut sub = full & full.wrapping_sub(1); // largest proper submask
        std::iter::from_fn(move || {
            if sub == 0 {
                None
            } else {
                let cur = sub;
                sub = (sub - 1) & full;
                Some(RelSet(cur))
            }
        })
    }
}

// Small macro so Debug and Display share the implementation without a
// helper function polluting the namespace.
macro_rules! fmt_relset {
    () => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{{")?;
            for (i, leaf) in self.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{leaf}")?;
            }
            write!(f, "}}")
        }
    };
}

impl fmt::Debug for RelSet {
    fmt_relset!();
}

impl fmt::Display for RelSet {
    fmt_relset!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_full() {
        assert_eq!(RelSet::singleton(3).0, 0b1000);
        assert_eq!(RelSet::full(4).0, 0b1111);
        assert_eq!(RelSet::full(32).0, u32::MAX);
    }

    #[test]
    fn set_algebra() {
        let a = RelSet(0b1010);
        let b = RelSet(0b0110);
        assert_eq!(a.union(b), RelSet(0b1110));
        assert_eq!(a.intersect(b), RelSet(0b0010));
        assert_eq!(a.minus(b), RelSet(0b1000));
        assert!(RelSet(0b0010).is_subset_of(a));
        assert!(!a.is_subset_of(b));
    }

    #[test]
    fn singleton_detection() {
        assert!(RelSet(0b0100).is_singleton());
        assert!(!RelSet(0b0110).is_singleton());
        assert!(!RelSet::EMPTY.is_singleton());
        assert_eq!(RelSet(0b0100).leaf(), 2);
    }

    #[test]
    fn iteration_order() {
        let leaves: Vec<u32> = RelSet(0b10110).iter().collect();
        assert_eq!(leaves, vec![1, 2, 4]);
    }

    #[test]
    fn proper_subsets_enumerates_both_sides_of_each_split() {
        let s = RelSet(0b111);
        let subs: Vec<u32> = s.proper_subsets().map(|r| r.0).collect();
        assert_eq!(subs.len(), 6); // 2^3 - 2
        for sub in &subs {
            assert!(subs.contains(&(0b111 & !sub)), "complement of {sub:b}");
        }
    }

    #[test]
    fn proper_subsets_of_singleton_is_empty() {
        assert_eq!(RelSet::singleton(0).proper_subsets().count(), 0);
    }

    #[test]
    fn display_lists_leaves() {
        assert_eq!(format!("{}", RelSet(0b101)), "{0,2}");
    }
}
