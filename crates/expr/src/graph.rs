//! Join-graph connectivity. Plan enumeration only considers connected
//! subexpressions and splits joined by at least one edge (no cross
//! products), matching the System-R / Volcano convention the paper's
//! baselines use.

use crate::query::QuerySpec;
use crate::relset::RelSet;

/// Adjacency view of a query's join graph.
#[derive(Clone, Debug)]
pub struct JoinGraph {
    /// `adj[i]` = leaves adjacent to leaf `i`.
    adj: Vec<RelSet>,
    n: u32,
}

impl JoinGraph {
    pub fn new(q: &QuerySpec) -> JoinGraph {
        let n = q.n_leaves();
        let mut adj = vec![RelSet::EMPTY; n as usize];
        for e in &q.edges {
            let (a, b) = (e.l.leaf.0, e.r.leaf.0);
            adj[a as usize] = adj[a as usize].union(RelSet::singleton(b));
            adj[b as usize] = adj[b as usize].union(RelSet::singleton(a));
        }
        JoinGraph { adj, n }
    }

    pub fn n_leaves(&self) -> u32 {
        self.n
    }

    /// Leaves adjacent to any member of `rels`, excluding `rels` itself.
    pub fn neighbors(&self, rels: RelSet) -> RelSet {
        let mut out = RelSet::EMPTY;
        for leaf in rels.iter() {
            out = out.union(self.adj[leaf as usize]);
        }
        out.minus(rels)
    }

    /// True iff the induced subgraph on `rels` is connected (singletons
    /// and the empty set count as connected).
    pub fn is_connected(&self, rels: RelSet) -> bool {
        if rels.len() <= 1 {
            return true;
        }
        let start = RelSet::singleton(rels.iter().next().unwrap());
        let mut frontier = start;
        let mut seen = start;
        while !frontier.is_empty() {
            let next = self.neighbors_within(frontier, rels).minus(seen);
            seen = seen.union(next);
            frontier = next;
        }
        seen == rels
    }

    fn neighbors_within(&self, from: RelSet, within: RelSet) -> RelSet {
        let mut out = RelSet::EMPTY;
        for leaf in from.iter() {
            out = out.union(self.adj[leaf as usize].intersect(within));
        }
        out
    }

    /// True iff some edge connects `l` and `r`.
    pub fn are_joined(&self, l: RelSet, r: RelSet) -> bool {
        !self.neighbors(l).intersect(r).is_empty()
    }

    /// All connected subsets of the full leaf set, in ascending size
    /// order (the System-R DP enumeration order, also the denominator for
    /// the paper's "pruning ratio" metrics).
    pub fn connected_subsets(&self) -> Vec<RelSet> {
        let full = RelSet::full(self.n);
        let mut out: Vec<RelSet> = (1..=full.0)
            .map(RelSet)
            .filter(|r| r.is_subset_of(full) && self.is_connected(*r))
            .collect();
        out.sort_by_key(|r| (r.len(), r.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{JoinEdge, LeafCol};

    /// Builds a graph from explicit leaf-pair edges, without a catalog.
    fn graph(n: u32, edges: &[(u32, u32)]) -> JoinGraph {
        let q = QuerySpec {
            name: "g".into(),
            leaves: (0..n)
                .map(|i| crate::query::Leaf {
                    table: reopt_catalog::TableId(i),
                    alias: format!("l{i}"),
                    filters: vec![],
                    window: None,
                    indexed_cols: vec![],
                    clustered_on: None,
                })
                .collect(),
            edges: edges
                .iter()
                .map(|&(a, b)| JoinEdge {
                    l: LeafCol::new(a, 0),
                    r: LeafCol::new(b, 0),
                })
                .collect(),
            aggregate: None,
            projection: vec![],
        };
        JoinGraph::new(&q)
    }

    #[test]
    fn chain_connectivity() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.is_connected(RelSet(0b1111)));
        assert!(g.is_connected(RelSet(0b0111)));
        assert!(!g.is_connected(RelSet(0b1001))); // {0,3} not adjacent
        assert!(g.is_connected(RelSet(0b0001)));
        assert!(g.is_connected(RelSet::EMPTY));
    }

    #[test]
    fn neighbors_excludes_self() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.neighbors(RelSet(0b0010)), RelSet(0b0101)); // {1} -> {0,2}
        assert_eq!(g.neighbors(RelSet(0b0110)), RelSet(0b1001));
    }

    #[test]
    fn are_joined() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(g.are_joined(RelSet(0b0011), RelSet(0b0100)));
        assert!(!g.are_joined(RelSet(0b0001), RelSet(0b1000)));
    }

    #[test]
    fn connected_subsets_chain() {
        // Chain of 3: {0},{1},{2},{01},{12},{012} — but not {02}.
        let g = graph(3, &[(0, 1), (1, 2)]);
        let subs = g.connected_subsets();
        assert_eq!(subs.len(), 6);
        assert!(!subs.contains(&RelSet(0b101)));
    }

    #[test]
    fn connected_subsets_cycle_counts() {
        // A 4-cycle has all 4 singletons, 4 edges-pairs, 4 triples, 1 full
        // = 13 connected subsets.
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.connected_subsets().len(), 13);
    }

    #[test]
    fn connected_subsets_sorted_by_size() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let sizes: Vec<u32> = g.connected_subsets().iter().map(|r| r.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }
}
