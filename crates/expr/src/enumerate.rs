//! `Fn_split`: given an expression and a required physical property,
//! enumerate every alternative (an "AND" node): all algebraically
//! equivalent splits *and* the physical operators implementing them with
//! their child property requirements (paper §2.1, rules R1–R5).
//!
//! Logical and physical enumeration are merged in one function, exactly
//! as §2.3 prescribes; results are memoized in a [`SplitCache`] ("we use
//! caching to memoize the results of Fn_nonscansummary and Fn_split").

use reopt_common::FxHashMap;

use crate::graph::JoinGraph;
use crate::ops::PhysOp;
use crate::props::PhysProp;
use crate::query::{ExprId, LeafCol, LeafId, QuerySpec};
use crate::relset::RelSet;

/// A reference to a child group: `(expression, required property)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChildRef {
    pub expr: ExprId,
    pub prop: PhysProp,
}

impl ChildRef {
    pub fn new(expr: ExprId, prop: PhysProp) -> ChildRef {
        ChildRef { expr, prop }
    }
}

/// One enumerated alternative: the root physical operator and its child
/// group references. Scans have no children; unary operators have only
/// `left`; joins have both (left = build side / indexed inner, matching
/// Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AltSpec {
    pub op: PhysOp,
    pub left: Option<ChildRef>,
    pub right: Option<ChildRef>,
}

impl AltSpec {
    fn leaf(op: PhysOp) -> AltSpec {
        AltSpec {
            op,
            left: None,
            right: None,
        }
    }

    fn unary(op: PhysOp, child: ChildRef) -> AltSpec {
        AltSpec {
            op,
            left: Some(child),
            right: None,
        }
    }

    fn binary(op: PhysOp, left: ChildRef, right: ChildRef) -> AltSpec {
        AltSpec {
            op,
            left: Some(left),
            right: Some(right),
        }
    }

    pub fn children(&self) -> impl Iterator<Item = ChildRef> + '_ {
        self.left.into_iter().chain(self.right)
    }
}

/// Enumerates all alternatives for `(expr, prop)`.
pub fn enumerate_alts(
    q: &QuerySpec,
    g: &JoinGraph,
    expr: ExprId,
    prop: PhysProp,
) -> Vec<AltSpec> {
    if expr.agg {
        return enumerate_agg(q, expr, prop);
    }
    if expr.rel.is_singleton() {
        return enumerate_scan(q, expr, prop);
    }
    enumerate_join(q, g, expr, prop)
}

/// Aggregate root group (only the full relation set carries `agg`).
fn enumerate_agg(q: &QuerySpec, expr: ExprId, prop: PhysProp) -> Vec<AltSpec> {
    debug_assert_eq!(expr.rel, q.all_rels(), "aggregate applies at the root");
    if prop != PhysProp::Any {
        return Vec::new();
    }
    let input = ExprId::rel(expr.rel);
    let mut alts = vec![AltSpec::unary(
        PhysOp::HashAgg,
        ChildRef::new(input, PhysProp::Any),
    )];
    if let Some(agg) = &q.aggregate {
        if let Some(&g0) = agg.group_by.first() {
            alts.push(AltSpec::unary(
                PhysOp::SortAgg,
                ChildRef::new(input, PhysProp::Sorted(g0)),
            ));
        }
    }
    alts
}

/// Leaf access paths (rules R4/R5 + `Fn_phyOp`).
fn enumerate_scan(q: &QuerySpec, expr: ExprId, prop: PhysProp) -> Vec<AltSpec> {
    let leaf_id = expr.rel.leaf();
    let leaf = q.leaf(LeafId(leaf_id));
    // Windowed stream leaves have neither indexes nor clustering: their
    // contents are transient.
    let windowed = leaf.window.is_some();
    let mut alts = Vec::new();
    match prop {
        PhysProp::Any => {
            alts.push(AltSpec::leaf(PhysOp::FullScan));
            if !windowed {
                for &col in &indexed_cols(q, leaf_id) {
                    alts.push(AltSpec::leaf(PhysOp::IndexScan { col }));
                }
            }
        }
        PhysProp::Sorted(c) if c.leaf.0 == leaf_id => {
            if !windowed && table_has_index(q, leaf_id, c) {
                alts.push(AltSpec::leaf(PhysOp::IndexScan { col: c }));
            }
            if !windowed && is_clustered_on(q, leaf_id, c) {
                alts.push(AltSpec::leaf(PhysOp::FullScan));
            }
            // Sort enforcer over the unordered scan.
            alts.push(AltSpec::unary(
                PhysOp::Sort { col: c },
                ChildRef::new(expr, PhysProp::Any),
            ));
        }
        PhysProp::Indexed(c) if c.leaf.0 == leaf_id
            && !windowed && table_has_index(q, leaf_id, c) => {
                alts.push(AltSpec::leaf(PhysOp::IndexScan { col: c }));
            }
        // A property referring to another leaf's column is unsatisfiable.
        _ => {}
    }
    alts
}

/// Join splits (rules R1–R3): every connected, edge-joined, ordered split
/// of the leaf set, elaborated with each applicable physical operator.
fn enumerate_join(q: &QuerySpec, g: &JoinGraph, expr: ExprId, prop: PhysProp) -> Vec<AltSpec> {
    let mut alts = Vec::new();
    if let PhysProp::Indexed(_) = prop {
        return alts; // only leaves can satisfy an index requirement
    }
    for l in expr.rel.proper_subsets() {
        let r = expr.rel.minus(l);
        if !g.is_connected(l) || !g.is_connected(r) || !g.are_joined(l, r) {
            continue;
        }
        let (le, re) = (ExprId::rel(l), ExprId::rel(r));
        if prop == PhysProp::Any {
            // Pipelined hash join: build on left, probe on right.
            alts.push(AltSpec::binary(
                PhysOp::HashJoin,
                ChildRef::new(le, PhysProp::Any),
                ChildRef::new(re, PhysProp::Any),
            ));
        }
        for eid in q.edges_across(l, r) {
            let (lc, rc) = q.edge(eid).across(l, r).expect("edge crosses the cut");
            // Sort-merge join produces output sorted on the left merge
            // column: usable for Any or for exactly Sorted(lc).
            if prop == PhysProp::Any || prop == PhysProp::Sorted(lc) {
                alts.push(AltSpec::binary(
                    PhysOp::SortMergeJoin { edge: eid },
                    ChildRef::new(le, PhysProp::Sorted(lc)),
                    ChildRef::new(re, PhysProp::Sorted(rc)),
                ));
            }
            // Indexed nested-loop: left child must be a single indexed
            // base leaf (the inner), per Table 1.
            if prop == PhysProp::Any
                && l.is_singleton()
                && table_has_index(q, l.leaf(), lc)
                && q.leaf(lc.leaf).window.is_none()
            {
                alts.push(AltSpec::binary(
                    PhysOp::IndexNLJoin { edge: eid },
                    ChildRef::new(le, PhysProp::Indexed(lc)),
                    ChildRef::new(re, PhysProp::Any),
                ));
            }
        }
    }
    if let PhysProp::Sorted(c) = prop {
        // Sort enforcer over the unordered join result.
        alts.push(AltSpec::unary(
            PhysOp::Sort { col: c },
            ChildRef::new(expr, PhysProp::Any),
        ));
    }
    alts
}

fn indexed_cols(q: &QuerySpec, leaf_id: u32) -> Vec<LeafCol> {
    q.leaf(LeafId(leaf_id))
        .indexed_cols
        .iter()
        .map(|&col| LeafCol {
            leaf: LeafId(leaf_id),
            col,
        })
        .collect()
}

fn table_has_index(q: &QuerySpec, leaf_id: u32, c: LeafCol) -> bool {
    q.leaf(LeafId(leaf_id)).indexed_cols.contains(&c.col)
}

fn is_clustered_on(q: &QuerySpec, leaf_id: u32, c: LeafCol) -> bool {
    q.leaf(LeafId(leaf_id)).clustered_on == Some(c.col)
}

/// Memoizing wrapper around [`enumerate_alts`].
#[derive(Debug, Default)]
pub struct SplitCache {
    cache: FxHashMap<(ExprId, PhysProp), Vec<AltSpec>>,
    pub hits: u64,
    pub misses: u64,
}

impl SplitCache {
    pub fn new() -> SplitCache {
        SplitCache::default()
    }

    pub fn get(
        &mut self,
        q: &QuerySpec,
        g: &JoinGraph,
        expr: ExprId,
        prop: PhysProp,
    ) -> &[AltSpec] {
        use std::collections::hash_map::Entry;
        match self.cache.entry((expr, prop)) {
            Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(enumerate_alts(q, g, expr, prop))
            }
        }
    }
}

/// The "interesting" sort columns for a relation set: edge endpoints
/// inside it, plus the first group-by column at the root (System R's
/// interesting orders, paper §2.1).
pub fn interesting_sort_cols(q: &QuerySpec, rel: RelSet) -> Vec<LeafCol> {
    let mut cols: Vec<LeafCol> = q
        .edges
        .iter()
        .flat_map(|e| [e.l, e.r])
        .filter(|c| rel.contains(c.leaf.0))
        .collect();
    if rel == q.all_rels() {
        if let Some(agg) = &q.aggregate {
            cols.extend(agg.group_by.first().copied());
        }
    }
    cols.sort_unstable();
    cols.dedup();
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AggFunc, AggSpec, QuerySpec};
    use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};

    /// Catalog with three tables; `b` is indexed + clustered on `k`.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let stats = |n: usize| TableStats {
            row_count: 100.0,
            columns: (0..n).map(|_| ColumnStats::uniform_key(100.0)).collect(),
        };
        c.add_table(
            |id| TableBuilder::new("a").int_col("k").build(id),
            stats(1),
        );
        c.add_table(
            |id| {
                TableBuilder::new("b")
                    .int_col("k")
                    .int_col("j")
                    .index_on("k")
                    .clustered_on("k")
                    .build(id)
            },
            stats(2),
        );
        c.add_table(
            |id| TableBuilder::new("c").int_col("j").build(id),
            stats(1),
        );
        c
    }

    /// a ⋈ b ⋈ c chain (a.k = b.k, b.j = c.j).
    fn chain() -> QuerySpec {
        let cat = catalog();
        let mut qb = QuerySpec::builder("chain");
        let a = qb.leaf(&cat, "a");
        let b = qb.leaf(&cat, "b");
        let c = qb.leaf(&cat, "c");
        qb.join(&cat, a, "k", b, "k");
        qb.join(&cat, b, "j", c, "j");
        qb.build()
    }

    fn alts(q: &QuerySpec, expr: ExprId, prop: PhysProp) -> Vec<AltSpec> {
        let g = JoinGraph::new(q);
        enumerate_alts(q, &g, expr, prop)
    }

    #[test]
    fn leaf_any_enumerates_access_paths() {
        let q = chain();
        // `a`: full scan only.
        let a = alts(&q, ExprId::rel(RelSet::singleton(0)), PhysProp::Any);
        assert_eq!(a, vec![AltSpec::leaf(PhysOp::FullScan)]);
        // `b`: full scan + index scan on k.
        let b = alts(&q, ExprId::rel(RelSet::singleton(1)), PhysProp::Any);
        assert_eq!(b.len(), 2);
        assert!(b.iter().any(|s| matches!(s.op, PhysOp::IndexScan { .. })));
    }

    #[test]
    fn leaf_sorted_prop_uses_index_clustering_and_enforcer() {
        let q = chain();
        let bk = LeafCol::new(1, 0);
        let got = alts(&q, ExprId::rel(RelSet::singleton(1)), PhysProp::Sorted(bk));
        // index scan (sorted), clustered full scan, sort enforcer.
        assert_eq!(got.len(), 3);
        assert!(got.iter().any(|s| s.op == PhysOp::IndexScan { col: bk }));
        assert!(got.iter().any(|s| s.op == PhysOp::FullScan));
        assert!(got.iter().any(|s| s.op == PhysOp::Sort { col: bk }));
        // Unindexed column: enforcer only.
        let bj = LeafCol::new(1, 1);
        let got = alts(&q, ExprId::rel(RelSet::singleton(1)), PhysProp::Sorted(bj));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].op, PhysOp::Sort { col: bj });
    }

    #[test]
    fn indexed_prop_only_on_indexed_leaf() {
        let q = chain();
        let bk = LeafCol::new(1, 0);
        let got = alts(&q, ExprId::rel(RelSet::singleton(1)), PhysProp::Indexed(bk));
        assert_eq!(got, vec![AltSpec::leaf(PhysOp::IndexScan { col: bk })]);
        let ak = LeafCol::new(0, 0);
        let got = alts(&q, ExprId::rel(RelSet::singleton(0)), PhysProp::Indexed(ak));
        assert!(got.is_empty());
        // Composite expressions cannot satisfy Indexed.
        let got = alts(&q, ExprId::rel(RelSet(0b011)), PhysProp::Indexed(bk));
        assert!(got.is_empty());
    }

    #[test]
    fn two_way_join_alternatives() {
        let q = chain();
        let ab = ExprId::rel(RelSet(0b011));
        let got = alts(&q, ab, PhysProp::Any);
        // Splits (a|b) and (b|a), each: hash join + SMJ; plus INLJ with b
        // as indexed inner (only when b is on the left). a has no index.
        let hash = got.iter().filter(|s| s.op == PhysOp::HashJoin).count();
        let smj = got
            .iter()
            .filter(|s| matches!(s.op, PhysOp::SortMergeJoin { .. }))
            .count();
        let inlj = got
            .iter()
            .filter(|s| matches!(s.op, PhysOp::IndexNLJoin { .. }))
            .count();
        assert_eq!((hash, smj, inlj), (2, 2, 1));
        // INLJ's left child requires the Indexed property.
        let inlj_alt = got
            .iter()
            .find(|s| matches!(s.op, PhysOp::IndexNLJoin { .. }))
            .unwrap();
        assert!(matches!(
            inlj_alt.left.unwrap().prop,
            PhysProp::Indexed(c) if c.leaf.0 == 1
        ));
    }

    #[test]
    fn no_cross_products() {
        let q = chain();
        // {a,c} is not connected: a join group over it yields nothing.
        let got = alts(&q, ExprId::rel(RelSet(0b101)), PhysProp::Any);
        assert!(got.is_empty());
        // The 3-way join never splits into {a,c} | {b}.
        let got = alts(&q, ExprId::rel(RelSet(0b111)), PhysProp::Any);
        for s in &got {
            let l = s.left.unwrap().expr.rel;
            assert_ne!(l, RelSet(0b101), "cross-product split leaked: {s:?}");
        }
    }

    #[test]
    fn sorted_join_prop_restricts_to_matching_smj_plus_enforcer() {
        let q = chain();
        let ab = ExprId::rel(RelSet(0b011));
        let ak = LeafCol::new(0, 0);
        let got = alts(&q, ab, PhysProp::Sorted(ak));
        // SMJ with left=a on edge0 produces Sorted(a.k); plus enforcer.
        assert_eq!(got.len(), 2);
        assert!(got
            .iter()
            .any(|s| matches!(s.op, PhysOp::SortMergeJoin { .. })
                && s.left.unwrap().prop == PhysProp::Sorted(ak)));
        assert!(got.iter().any(|s| s.op == PhysOp::Sort { col: ak }));
    }

    #[test]
    fn agg_root_enumerates_hash_and_sort_agg() {
        let mut q = chain();
        let g0 = LeafCol::new(0, 0);
        q.aggregate = Some(AggSpec {
            group_by: vec![g0],
            aggs: vec![AggFunc::CountStar],
        });
        let root = q.root_expr();
        assert!(root.agg);
        let got = alts(&q, root, PhysProp::Any);
        assert_eq!(got.len(), 2);
        assert!(got.iter().any(|s| s.op == PhysOp::HashAgg
            && s.left.unwrap().prop == PhysProp::Any
            && !s.left.unwrap().expr.agg));
        assert!(got
            .iter()
            .any(|s| s.op == PhysOp::SortAgg && s.left.unwrap().prop == PhysProp::Sorted(g0)));
        // Scalar aggregate (no group-by): hash agg only.
        q.aggregate = Some(AggSpec {
            group_by: vec![],
            aggs: vec![AggFunc::CountStar],
        });
        let got = alts(&q, q.root_expr(), PhysProp::Any);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn windowed_leaf_loses_index_access() {
        let mut q = chain();
        q.leaves[1].window = Some(crate::query::WindowSpec::Time { seconds: 30.0 });
        let b = alts(&q, ExprId::rel(RelSet::singleton(1)), PhysProp::Any);
        assert_eq!(b, vec![AltSpec::leaf(PhysOp::FullScan)]);
        let bk = LeafCol::new(1, 0);
        let got = alts(&q, ExprId::rel(RelSet::singleton(1)), PhysProp::Indexed(bk));
        assert!(got.is_empty());
        // And the INLJ alternative over it disappears.
        let got = alts(&q, ExprId::rel(RelSet(0b011)), PhysProp::Any);
        assert!(!got
            .iter()
            .any(|s| matches!(s.op, PhysOp::IndexNLJoin { .. })));
    }

    #[test]
    fn split_cache_memoizes() {
        let q = chain();
        let g = JoinGraph::new(&q);
        let mut cache = SplitCache::new();
        let e = ExprId::rel(RelSet(0b111));
        let first = cache.get(&q, &g, e, PhysProp::Any).len();
        let second = cache.get(&q, &g, e, PhysProp::Any).len();
        assert_eq!(first, second);
        assert_eq!(cache.misses, 1);
        assert_eq!(cache.hits, 1);
    }

    #[test]
    fn interesting_sort_cols_are_edge_endpoints() {
        let q = chain();
        let cols = interesting_sort_cols(&q, RelSet(0b011));
        assert_eq!(
            cols,
            vec![LeafCol::new(0, 0), LeafCol::new(1, 0), LeafCol::new(1, 1)]
        );
        let cols = interesting_sort_cols(&q, RelSet::singleton(2));
        assert_eq!(cols, vec![LeafCol::new(2, 0)]);
    }
}
