//! Catalog substrate: table schemas, indexes, and the base statistics
//! (cardinalities, distinct counts, equi-width histograms) consumed by the
//! optimizer's `Fn_scansummary` / `Fn_nonscansummary` functions (paper
//! §2.2: "cost estimation requires a set of summaries (statistics) on the
//! input relations and indexes, e.g., cardinality of a (indexed) relation,
//! selectivity of operators, data distribution").

pub mod catalog;
pub mod datum;
pub mod histogram;
pub mod schema;
pub mod stats;

pub use catalog::Catalog;
pub use datum::{DataType, Datum};
pub use histogram::Histogram;
pub use schema::{AttrRef, ColId, Column, Table, TableBuilder, TableId};
pub use stats::{CmpOp, ColumnStats, TableStats};
