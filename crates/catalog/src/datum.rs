//! Runtime values. The execution engine, workload generators and
//! statistics builders all exchange rows of [`Datum`]s.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// Column data types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit integer. Dates are stored as days-since-epoch, monetary
    /// values as integer cents — the usual trick to keep keys orderable
    /// and hashable without floating point.
    Int,
    /// 64-bit float (used for computed aggregates only).
    Double,
    /// Interned string.
    Str,
}

/// A single value. `Double` is kept orderable by normalizing NaN (the
/// engine never produces NaN, but sort operators must not panic).
#[derive(Clone, Debug)]
pub enum Datum {
    Int(i64),
    Double(f64),
    Str(Arc<str>),
}

impl Datum {
    pub fn str(s: &str) -> Datum {
        Datum::Str(Arc::from(s))
    }

    /// Integer view; panics on non-integers (schema violations are bugs,
    /// not runtime conditions, in this engine).
    #[inline]
    pub fn as_int(&self) -> i64 {
        match self {
            Datum::Int(v) => *v,
            other => panic!("expected Int datum, got {other:?}"),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Datum::Str(s) => s,
            other => panic!("expected Str datum, got {other:?}"),
        }
    }

    pub fn as_double(&self) -> f64 {
        match self {
            Datum::Double(v) => *v,
            Datum::Int(v) => *v as f64,
            other => panic!("expected numeric datum, got {other:?}"),
        }
    }

    pub fn data_type(&self) -> DataType {
        match self {
            Datum::Int(_) => DataType::Int,
            Datum::Double(_) => DataType::Double,
            Datum::Str(_) => DataType::Str,
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Datum) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Datum) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    fn cmp(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(a), Double(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Double(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            // Heterogeneous comparisons order by type tag; they only occur
            // in degenerate hand-written tests, never in planned queries.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

fn type_rank(d: &Datum) -> u8 {
    match d {
        Datum::Int(_) => 0,
        Datum::Double(_) => 1,
        Datum::Str(_) => 2,
    }
}

impl std::hash::Hash for Datum {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Datum::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Datum::Double(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Datum::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Double(v) => write!(f, "{v}"),
            Datum::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ordering_and_equality() {
        assert!(Datum::Int(1) < Datum::Int(2));
        assert_eq!(Datum::Int(5), Datum::Int(5));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert!(Datum::Int(1) < Datum::Double(1.5));
        assert_eq!(Datum::Int(2), Datum::Double(2.0));
    }

    #[test]
    fn string_ordering() {
        assert!(Datum::str("abc") < Datum::str("abd"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Datum::Int(7).as_int(), 7);
        assert_eq!(Datum::str("x").as_str(), "x");
        assert_eq!(Datum::Int(3).as_double(), 3.0);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_str() {
        Datum::str("nope").as_int();
    }
}
