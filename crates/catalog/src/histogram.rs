//! Equi-width histograms over integer domains.
//!
//! The paper's external functions ("involving histograms, cost estimation,
//! and expression decomposition", §5) consume exactly this kind of
//! single-column summary. Histograms answer range/equality selectivity
//! questions and a histogram-aligned equi-join selectivity estimate.

/// An equi-width histogram over `i64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    min: i64,
    max: i64,
    /// Per-bucket tuple counts. Never empty.
    buckets: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// Builds a histogram with `bucket_count` equi-width buckets from raw
    /// values. Returns a degenerate single-bucket histogram for empty
    /// input so callers never need an `Option`.
    pub fn build(values: impl IntoIterator<Item = i64>, bucket_count: usize) -> Histogram {
        let values: Vec<i64> = values.into_iter().collect();
        if values.is_empty() {
            return Histogram {
                min: 0,
                max: 0,
                buckets: vec![0.0],
                total: 0.0,
            };
        }
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let n = bucket_count.max(1);
        let mut buckets = vec![0.0; n];
        for &v in &values {
            buckets[Self::bucket_of(min, max, n, v)] += 1.0;
        }
        Histogram {
            min,
            max,
            buckets,
            total: values.len() as f64,
        }
    }

    /// Builds a histogram directly from bucket counts (used by the
    /// workload generators when the distribution is known analytically).
    pub fn from_buckets(min: i64, max: i64, buckets: Vec<f64>) -> Histogram {
        assert!(!buckets.is_empty(), "histogram needs at least one bucket");
        assert!(min <= max, "histogram domain is empty");
        let total = buckets.iter().sum();
        Histogram {
            min,
            max,
            buckets,
            total,
        }
    }

    fn bucket_of(min: i64, max: i64, n: usize, v: i64) -> usize {
        if max == min {
            return 0;
        }
        let span = (max - min) as f64 + 1.0;
        let idx = (((v - min) as f64) / span * n as f64) as usize;
        idx.min(n - 1)
    }

    pub fn total(&self) -> f64 {
        self.total
    }

    pub fn min(&self) -> i64 {
        self.min
    }

    pub fn max(&self) -> i64 {
        self.max
    }

    /// Width of one bucket in value space.
    fn bucket_width(&self) -> f64 {
        ((self.max - self.min) as f64 + 1.0) / self.buckets.len() as f64
    }

    /// Estimated fraction of tuples with value `== v`, assuming uniform
    /// spread within a bucket.
    pub fn selectivity_eq(&self, v: i64) -> f64 {
        if self.total == 0.0 || v < self.min || v > self.max {
            return 0.0;
        }
        let b = Self::bucket_of(self.min, self.max, self.buckets.len(), v);
        let per_value = self.buckets[b] / self.bucket_width().max(1.0);
        (per_value / self.total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of tuples with value `< v`.
    pub fn selectivity_lt(&self, v: i64) -> f64 {
        if self.total == 0.0 || v <= self.min {
            return 0.0;
        }
        if v > self.max {
            return 1.0;
        }
        let n = self.buckets.len();
        let b = Self::bucket_of(self.min, self.max, n, v);
        let mut count: f64 = self.buckets[..b].iter().sum();
        // Partial coverage of bucket `b`.
        let bucket_start = self.min as f64 + b as f64 * self.bucket_width();
        let frac = ((v as f64 - bucket_start) / self.bucket_width()).clamp(0.0, 1.0);
        count += self.buckets[b] * frac;
        (count / self.total).clamp(0.0, 1.0)
    }

    /// Estimated fraction of tuples with value `> v`.
    pub fn selectivity_gt(&self, v: i64) -> f64 {
        (1.0 - self.selectivity_lt(v) - self.selectivity_eq(v)).clamp(0.0, 1.0)
    }

    /// Estimated fraction with `lo < value < hi` (exclusive on both ends).
    pub fn selectivity_between(&self, lo: i64, hi: i64) -> f64 {
        if lo >= hi {
            return 0.0;
        }
        (self.selectivity_lt(hi) - self.selectivity_lt(lo) - self.selectivity_eq(lo))
            .clamp(0.0, 1.0)
    }

    /// Histogram-aligned equi-join selectivity: for each aligned value
    /// range, multiply the densities (standard overlap estimate). Returns
    /// `P(l.x == r.y)` for a random tuple pair.
    pub fn join_selectivity(&self, other: &Histogram) -> f64 {
        if self.total == 0.0 || other.total == 0.0 {
            return 0.0;
        }
        let lo = self.min.max(other.min);
        let hi = self.max.min(other.max);
        if lo > hi {
            return 0.0;
        }
        // Integrate over the overlap in steps of the finer bucket width.
        let step = self.bucket_width().min(other.bucket_width()).max(1.0);
        let mut matches = 0.0;
        let mut x = lo as f64;
        while x <= hi as f64 {
            let v = x as i64;
            let dl = self.density_at(v);
            let dr = other.density_at(v);
            matches += dl * dr * step;
            x += step;
        }
        (matches / (self.total * other.total)).clamp(0.0, 1.0)
    }

    /// Estimated tuples-per-unit-value at `v`.
    fn density_at(&self, v: i64) -> f64 {
        if v < self.min || v > self.max {
            return 0.0;
        }
        let b = Self::bucket_of(self.min, self.max, self.buckets.len(), v);
        self.buckets[b] / self.bucket_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_0_99() -> Histogram {
        Histogram::build(0..100, 10)
    }

    #[test]
    fn build_counts_everything() {
        let h = uniform_0_99();
        assert_eq!(h.total(), 100.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 99);
    }

    #[test]
    fn empty_input_is_degenerate_not_panicking() {
        let h = Histogram::build(std::iter::empty(), 8);
        assert_eq!(h.total(), 0.0);
        assert_eq!(h.selectivity_eq(5), 0.0);
        assert_eq!(h.selectivity_lt(5), 0.0);
    }

    #[test]
    fn eq_selectivity_on_uniform_data() {
        let h = uniform_0_99();
        let s = h.selectivity_eq(50);
        assert!((s - 0.01).abs() < 0.003, "got {s}");
        assert_eq!(h.selectivity_eq(-1), 0.0);
        assert_eq!(h.selectivity_eq(1000), 0.0);
    }

    #[test]
    fn lt_selectivity_monotone_and_bounded() {
        let h = uniform_0_99();
        let mut prev = 0.0;
        for v in [0, 10, 25, 50, 75, 99, 150] {
            let s = h.selectivity_lt(v);
            assert!(s >= prev - 1e-12, "non-monotone at {v}");
            assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
        assert!((h.selectivity_lt(50) - 0.5).abs() < 0.05);
        assert_eq!(h.selectivity_lt(150), 1.0);
    }

    #[test]
    fn gt_complements_lt() {
        let h = uniform_0_99();
        let v = 30;
        let total = h.selectivity_lt(v) + h.selectivity_eq(v) + h.selectivity_gt(v);
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn between_matches_range() {
        let h = uniform_0_99();
        let s = h.selectivity_between(20, 40);
        assert!((s - 0.19).abs() < 0.05, "got {s}");
        assert_eq!(h.selectivity_between(40, 20), 0.0);
    }

    #[test]
    fn join_selectivity_uniform_keys() {
        // Two uniform key columns over the same domain of 100 values:
        // P(match) should be ~1/100.
        let a = Histogram::build(0..100, 10);
        let b = Histogram::build(0..100, 10);
        let s = a.join_selectivity(&b);
        assert!((s - 0.01).abs() < 0.005, "got {s}");
    }

    #[test]
    fn join_selectivity_disjoint_domains_is_zero() {
        let a = Histogram::build(0..100, 10);
        let b = Histogram::build(1000..1100, 10);
        assert_eq!(a.join_selectivity(&b), 0.0);
    }

    #[test]
    fn skewed_histogram_eq_reflects_skew() {
        // 90 copies of value 0, one each of 1..=10.
        let mut vals = vec![0i64; 90];
        vals.extend(1..=10);
        let h = Histogram::build(vals, 11);
        assert!(h.selectivity_eq(0) > 5.0 * h.selectivity_eq(7));
    }

    #[test]
    fn from_buckets_roundtrip() {
        let h = Histogram::from_buckets(0, 9, vec![5.0, 5.0]);
        assert_eq!(h.total(), 10.0);
        assert!((h.selectivity_lt(5) - 0.5).abs() < 0.01);
    }
}
