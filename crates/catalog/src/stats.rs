//! Per-table / per-column statistics: the "summaries" of paper §2.2.

use crate::datum::Datum;
use crate::histogram::Histogram;

/// Comparison operators appearing in query predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Statistics for one column.
#[derive(Clone, Debug)]
pub struct ColumnStats {
    /// Number of distinct values (estimate).
    pub ndv: f64,
    pub min: i64,
    pub max: i64,
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Builds stats from raw integer values.
    pub fn from_values(values: &[i64], buckets: usize) -> ColumnStats {
        if values.is_empty() {
            return ColumnStats {
                ndv: 0.0,
                min: 0,
                max: 0,
                histogram: Some(Histogram::build(std::iter::empty(), 1)),
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        ColumnStats {
            ndv: sorted.len() as f64,
            min: sorted[0],
            max: *sorted.last().unwrap(),
            histogram: Some(Histogram::build(values.iter().copied(), buckets)),
        }
    }

    /// Uniform-assumption stats for a synthetic key column: `count`
    /// distinct values over `[0, count)`.
    pub fn uniform_key(count: f64) -> ColumnStats {
        let hi = (count as i64 - 1).max(0);
        ColumnStats {
            ndv: count.max(1.0),
            min: 0,
            max: hi,
            histogram: None,
        }
    }

    /// Estimated selectivity of `col <op> literal`.
    pub fn pred_selectivity(&self, op: CmpOp, lit: &Datum) -> f64 {
        let v = match lit {
            Datum::Int(v) => *v,
            // String predicates are estimated via NDV only.
            Datum::Str(_) => {
                return match op {
                    CmpOp::Eq => 1.0 / self.ndv.max(1.0),
                    CmpOp::Ne => 1.0 - 1.0 / self.ndv.max(1.0),
                    _ => 1.0 / 3.0,
                };
            }
            Datum::Double(d) => *d as i64,
        };
        match (&self.histogram, op) {
            (Some(h), CmpOp::Eq) => h.selectivity_eq(v),
            (Some(h), CmpOp::Ne) => 1.0 - h.selectivity_eq(v),
            (Some(h), CmpOp::Lt) => h.selectivity_lt(v),
            (Some(h), CmpOp::Le) => h.selectivity_lt(v) + h.selectivity_eq(v),
            (Some(h), CmpOp::Gt) => h.selectivity_gt(v),
            (Some(h), CmpOp::Ge) => h.selectivity_gt(v) + h.selectivity_eq(v),
            (None, op) => self.uniform_selectivity(op, v),
        }
    }

    fn uniform_selectivity(&self, op: CmpOp, v: i64) -> f64 {
        let span = (self.max - self.min) as f64 + 1.0;
        let frac_lt = (((v - self.min) as f64) / span).clamp(0.0, 1.0);
        let frac_eq = (1.0 / span).min(1.0);
        match op {
            CmpOp::Eq => {
                if v < self.min || v > self.max {
                    0.0
                } else {
                    1.0 / self.ndv.max(1.0)
                }
            }
            CmpOp::Ne => 1.0 - 1.0 / self.ndv.max(1.0),
            CmpOp::Lt => frac_lt,
            CmpOp::Le => (frac_lt + frac_eq).min(1.0),
            CmpOp::Gt => (1.0 - frac_lt - frac_eq).clamp(0.0, 1.0),
            CmpOp::Ge => (1.0 - frac_lt).clamp(0.0, 1.0),
        }
    }

    /// Classic equi-join selectivity: `1 / max(ndv_l, ndv_r)` (System R),
    /// refined by histogram overlap when both sides have histograms.
    pub fn join_selectivity(&self, other: &ColumnStats) -> f64 {
        match (&self.histogram, &other.histogram) {
            (Some(a), Some(b)) => a.join_selectivity(b),
            _ => 1.0 / self.ndv.max(other.ndv).max(1.0),
        }
    }
}

/// Statistics for one table.
#[derive(Clone, Debug)]
pub struct TableStats {
    pub row_count: f64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn col(&self, col: u32) -> &ColumnStats {
        &self.columns[col as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_computes_ndv_and_bounds() {
        let s = ColumnStats::from_values(&[3, 1, 4, 1, 5, 9, 2, 6], 4);
        assert_eq!(s.ndv, 7.0);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn uniform_key_selectivities() {
        let s = ColumnStats::uniform_key(1000.0);
        assert!((s.pred_selectivity(CmpOp::Eq, &Datum::Int(5)) - 0.001).abs() < 1e-9);
        let lt = s.pred_selectivity(CmpOp::Lt, &Datum::Int(500));
        assert!((lt - 0.5).abs() < 0.01);
        let ge = s.pred_selectivity(CmpOp::Ge, &Datum::Int(500));
        assert!((lt + ge - 1.0).abs() < 0.01);
    }

    #[test]
    fn string_eq_uses_ndv() {
        let mut s = ColumnStats::uniform_key(5.0);
        s.histogram = None;
        let sel = s.pred_selectivity(CmpOp::Eq, &Datum::str("MACHINERY"));
        assert!((sel - 0.2).abs() < 1e-9);
    }

    #[test]
    fn join_selectivity_prefers_histograms() {
        let a = ColumnStats::from_values(&(0..100).collect::<Vec<_>>(), 10);
        let b = ColumnStats::from_values(&(0..100).collect::<Vec<_>>(), 10);
        let s = a.join_selectivity(&b);
        assert!((s - 0.01).abs() < 0.005, "got {s}");
    }

    #[test]
    fn join_selectivity_fallback_uses_max_ndv() {
        let a = ColumnStats::uniform_key(10.0);
        let b = ColumnStats::uniform_key(40.0);
        assert!((a.join_selectivity(&b) - 1.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_column_stats_do_not_panic() {
        let s = ColumnStats::from_values(&[], 4);
        assert_eq!(s.pred_selectivity(CmpOp::Eq, &Datum::Int(3)), 0.0);
    }
}
