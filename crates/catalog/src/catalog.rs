//! The catalog: table registry plus a mutable statistics store.
//!
//! The statistics store is deliberately separate from the schema: adaptive
//! query processing (paper §5.4) re-estimates statistics at runtime and
//! swaps them in between re-optimizations.

use reopt_common::FxHashMap;

use crate::schema::{Table, TableId};
use crate::stats::TableStats;

/// Table registry + statistics.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: Vec<Table>,
    by_name: FxHashMap<String, TableId>,
    stats: Vec<TableStats>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table built by `make` (which receives the assigned id)
    /// together with its statistics.
    pub fn add_table(
        &mut self,
        make: impl FnOnce(TableId) -> Table,
        stats: TableStats,
    ) -> TableId {
        let id = TableId(self.tables.len() as u32);
        let table = make(id);
        assert_eq!(
            table.columns.len(),
            stats.columns.len(),
            "stats column count must match schema for `{}`",
            table.name
        );
        assert!(
            self.by_name.insert(table.name.clone(), id).is_none(),
            "duplicate table name `{}`",
            table.name
        );
        self.tables.push(table);
        self.stats.push(stats);
        id
    }

    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.by_name.get(name).map(|id| self.table(*id))
    }

    pub fn stats(&self, id: TableId) -> &TableStats {
        &self.stats[id.0 as usize]
    }

    /// Replaces a table's statistics (runtime feedback path).
    pub fn set_stats(&mut self, id: TableId, stats: TableStats) {
        assert_eq!(
            stats.columns.len(),
            self.table(id).columns.len(),
            "stats column count must match schema"
        );
        self.stats[id.0 as usize] = stats;
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableBuilder;
    use crate::stats::ColumnStats;

    fn stats(rows: f64, cols: usize) -> TableStats {
        TableStats {
            row_count: rows,
            columns: (0..cols).map(|_| ColumnStats::uniform_key(rows)).collect(),
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        let id = c.add_table(
            |id| TableBuilder::new("nation").int_col("n_nationkey").build(id),
            stats(25.0, 1),
        );
        assert_eq!(c.table(id).name, "nation");
        assert_eq!(c.table_by_name("nation").unwrap().id, id);
        assert!(c.table_by_name("missing").is_none());
        assert_eq!(c.stats(id).row_count, 25.0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn set_stats_swaps_statistics() {
        let mut c = Catalog::new();
        let id = c.add_table(
            |id| TableBuilder::new("t").int_col("a").build(id),
            stats(10.0, 1),
        );
        c.set_stats(id, stats(99.0, 1));
        assert_eq!(c.stats(id).row_count, 99.0);
    }

    #[test]
    #[should_panic(expected = "duplicate table name")]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.add_table(
            |id| TableBuilder::new("t").int_col("a").build(id),
            stats(1.0, 1),
        );
        c.add_table(
            |id| TableBuilder::new("t").int_col("a").build(id),
            stats(1.0, 1),
        );
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn mismatched_stats_rejected() {
        let mut c = Catalog::new();
        c.add_table(
            |id| TableBuilder::new("t").int_col("a").int_col("b").build(id),
            stats(1.0, 1),
        );
    }
}
