//! Table schemas: names, columns, indexes, and physical layout hints
//! (clustering) used when enumerating access paths.

use crate::datum::DataType;

/// Identifies a table within a [`crate::Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Column ordinal within its table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId(pub u32);

/// A fully qualified attribute reference (`Orders.o_custkey`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    pub table: TableId,
    pub col: ColId,
}

impl AttrRef {
    pub fn new(table: TableId, col: u32) -> AttrRef {
        AttrRef {
            table,
            col: ColId(col),
        }
    }
}

/// A column definition.
#[derive(Clone, Debug)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: DataType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }

    pub fn int(name: impl Into<String>) -> Column {
        Column::new(name, DataType::Int)
    }

    pub fn str(name: impl Into<String>) -> Column {
        Column::new(name, DataType::Str)
    }
}

/// A base table (or a named stream with window semantics attached at the
/// query level — the optimizer sees both as leaf relations).
#[derive(Clone, Debug)]
pub struct Table {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<Column>,
    /// Columns with a secondary index (enables `IndexScan` /
    /// indexed-nested-loop inner access paths, per paper Table 1).
    pub indexed: Vec<ColId>,
    /// Column the table is physically sorted on, if any (a `LocalScan`
    /// then yields that sort order for free — an "interesting order").
    pub clustered_on: Option<ColId>,
}

impl Table {
    /// Resolves a column name to its ordinal.
    pub fn col(&self, name: &str) -> Option<ColId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColId(i as u32))
    }

    /// Resolves a column name to a fully qualified [`AttrRef`]; panics if
    /// missing (schema lookups in query definitions are static).
    pub fn attr(&self, name: &str) -> AttrRef {
        let col = self
            .col(name)
            .unwrap_or_else(|| panic!("no column `{name}` in table `{}`", self.name));
        AttrRef {
            table: self.id,
            col,
        }
    }

    pub fn has_index_on(&self, col: ColId) -> bool {
        self.indexed.contains(&col)
    }
}

/// Builder used by the workload generators.
#[derive(Clone, Debug, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<Column>,
    indexed: Vec<String>,
    clustered_on: Option<String>,
}

impl TableBuilder {
    pub fn new(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    pub fn column(mut self, name: &str, ty: DataType) -> Self {
        self.columns.push(Column::new(name, ty));
        self
    }

    pub fn int_col(self, name: &str) -> Self {
        self.column(name, DataType::Int)
    }

    pub fn str_col(self, name: &str) -> Self {
        self.column(name, DataType::Str)
    }

    pub fn index_on(mut self, name: &str) -> Self {
        self.indexed.push(name.to_string());
        self
    }

    pub fn clustered_on(mut self, name: &str) -> Self {
        self.clustered_on = Some(name.to_string());
        self
    }

    pub fn build(self, id: TableId) -> Table {
        let find = |n: &str| {
            ColId(
                self.columns
                    .iter()
                    .position(|c| c.name == n)
                    .unwrap_or_else(|| panic!("no column `{n}` in table `{}`", self.name))
                    as u32,
            )
        };
        let indexed = self.indexed.iter().map(|n| find(n)).collect();
        let clustered_on = self.clustered_on.as_deref().map(find);
        Table {
            id,
            name: self.name,
            columns: self.columns,
            indexed,
            clustered_on,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        TableBuilder::new("orders")
            .int_col("o_orderkey")
            .int_col("o_custkey")
            .str_col("o_comment")
            .index_on("o_orderkey")
            .clustered_on("o_orderkey")
            .build(TableId(3))
    }

    #[test]
    fn column_lookup() {
        let t = sample();
        assert_eq!(t.col("o_custkey"), Some(ColId(1)));
        assert_eq!(t.col("missing"), None);
        assert_eq!(t.attr("o_orderkey"), AttrRef::new(TableId(3), 0));
    }

    #[test]
    fn index_and_clustering() {
        let t = sample();
        assert!(t.has_index_on(ColId(0)));
        assert!(!t.has_index_on(ColId(1)));
        assert_eq!(t.clustered_on, Some(ColId(0)));
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn attr_panics_on_unknown() {
        sample().attr("nope");
    }
}
