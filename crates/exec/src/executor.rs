//! Batch plan interpreter with runtime cardinality collection.
//!
//! Executes the physical plan trees produced by any of the optimizers
//! over per-leaf input relations (stored tables, data partitions, or
//! stream window contents). Every operator records its actual output
//! cardinality into [`ExecStats`] — the feedback that drives
//! re-optimization in §5.2.2/§5.4.

use reopt_catalog::{Catalog, CmpOp, Datum};
use reopt_common::FxHashMap;
use reopt_expr::{
    AggFunc, ExprId, JoinEdge, LeafCol, LeafId, PhysOp, PlanNode, QuerySpec, RelSet,
};

use crate::database::{Database, Row};
use crate::layout::Layout;

/// Observed cardinalities per plan expression.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    pub rows: FxHashMap<ExprId, f64>,
}

impl ExecStats {
    fn record(&mut self, expr: ExprId, count: usize) {
        self.rows.insert(expr, count as f64);
    }

    pub fn rows_of(&self, expr: ExprId) -> Option<f64> {
        self.rows.get(&expr).copied()
    }
}

/// A batch executor over fixed per-leaf inputs.
pub struct Executor<'a> {
    q: &'a QuerySpec,
    inputs: Vec<Vec<Row>>,
    pub stats: ExecStats,
}

impl<'a> Executor<'a> {
    /// Executes over stored tables: each leaf reads its table in full.
    pub fn from_database(q: &'a QuerySpec, catalog: &Catalog, db: &Database) -> Executor<'a> {
        let _ = catalog;
        let inputs = q
            .leaves
            .iter()
            .map(|leaf| db.table(leaf.table).rows.clone())
            .collect();
        Executor {
            q,
            inputs,
            stats: ExecStats::default(),
        }
    }

    /// Executes over explicit per-leaf inputs (stream windows, data
    /// partitions).
    pub fn with_inputs(q: &'a QuerySpec, inputs: Vec<Vec<Row>>) -> Executor<'a> {
        assert_eq!(inputs.len(), q.leaves.len(), "one input per leaf");
        Executor {
            q,
            inputs,
            stats: ExecStats::default(),
        }
    }

    /// Runs the plan, returning output rows and their column layout.
    pub fn run(&mut self, plan: &PlanNode) -> (Vec<Row>, Layout) {
        self.eval(plan)
    }

    fn eval(&mut self, node: &PlanNode) -> (Vec<Row>, Layout) {
        let (rows, layout) = match node.op {
            PhysOp::FullScan | PhysOp::IndexScan { .. } => self.eval_scan(node),
            PhysOp::Sort { col } => {
                let (mut rows, layout) = self.eval(&node.children[0]);
                let pos = layout.pos(col);
                rows.sort_by(|a, b| a[pos].cmp(&b[pos]));
                (rows, layout)
            }
            PhysOp::HashJoin => self.eval_hash_join(node),
            PhysOp::SortMergeJoin { edge } => self.eval_merge_join(node, edge),
            PhysOp::IndexNLJoin { edge } => self.eval_index_join(node, edge),
            PhysOp::HashAgg | PhysOp::SortAgg => self.eval_agg(node),
        };
        self.stats.record(node.expr, rows.len());
        (rows, layout)
    }

    fn eval_scan(&mut self, node: &PlanNode) -> (Vec<Row>, Layout) {
        let leaf_id = LeafId(node.expr.rel.leaf());
        let leaf = self.q.leaf(leaf_id);
        let rows: Vec<Row> = self.inputs[leaf_id.0 as usize]
            .iter()
            .filter(|r| {
                leaf.filters
                    .iter()
                    .all(|f| cmp_matches(&r[f.col.0 as usize], f.op, &f.value))
            })
            .cloned()
            .collect();
        let width = rows.first().map_or_else(
            || self.inputs[leaf_id.0 as usize].first().map_or(0, Vec::len),
            Vec::len,
        );
        let layout = Layout::for_leaf(self.q, leaf_id, width.max(1));
        let mut rows = rows;
        // Honour a sorted output property (index scans return key order;
        // a clustered scan is already sorted — sorting is then a no-op
        // pass over sorted data).
        if let reopt_expr::PhysProp::Sorted(c) = node.prop {
            let pos = layout.pos(c);
            rows.sort_by(|a, b| a[pos].cmp(&b[pos]));
        }
        (rows, layout)
    }

    /// All join edges crossing the two children, resolved as
    /// `(left column, right column)`.
    fn cross_edges(&self, l: RelSet, r: RelSet) -> Vec<(LeafCol, LeafCol)> {
        self.q
            .edges
            .iter()
            .filter_map(|e| e.across(l, r))
            .collect()
    }

    fn eval_hash_join(&mut self, node: &PlanNode) -> (Vec<Row>, Layout) {
        let (lrows, llay) = self.eval(&node.children[0]);
        let (rrows, rlay) = self.eval(&node.children[1]);
        let keys = self.cross_edges(node.children[0].expr.rel, node.children[1].expr.rel);
        assert!(!keys.is_empty(), "hash join without a key (cross product)");
        let lpos: Vec<usize> = keys.iter().map(|(lc, _)| llay.pos(*lc)).collect();
        let rpos: Vec<usize> = keys.iter().map(|(_, rc)| rlay.pos(*rc)).collect();
        let mut table: FxHashMap<Vec<Datum>, Vec<usize>> = FxHashMap::default();
        for (i, row) in lrows.iter().enumerate() {
            let key: Vec<Datum> = lpos.iter().map(|&p| row[p].clone()).collect();
            table.entry(key).or_default().push(i);
        }
        let mut out = Vec::new();
        for rrow in &rrows {
            let key: Vec<Datum> = rpos.iter().map(|&p| rrow[p].clone()).collect();
            if let Some(matches) = table.get(&key) {
                for &li in matches {
                    let mut row = lrows[li].clone();
                    row.extend(rrow.iter().cloned());
                    out.push(row);
                }
            }
        }
        (out, llay.concat(&rlay))
    }

    fn eval_merge_join(&mut self, node: &PlanNode, edge: reopt_expr::EdgeId) -> (Vec<Row>, Layout) {
        let (mut lrows, llay) = self.eval(&node.children[0]);
        let (mut rrows, rlay) = self.eval(&node.children[1]);
        let lrel = node.children[0].expr.rel;
        let rrel = node.children[1].expr.rel;
        let e: &JoinEdge = self.q.edge(edge);
        let (lc, rc) = e.across(lrel, rrel).expect("merge edge crosses children");
        let lp = llay.pos(lc);
        let rp = rlay.pos(rc);
        // Children carry Sorted properties; re-sorting sorted data is a
        // cheap linear pass and keeps the operator robust.
        lrows.sort_by(|a, b| a[lp].cmp(&b[lp]));
        rrows.sort_by(|a, b| a[rp].cmp(&b[rp]));
        // Residual predicates: the other edges crossing this cut.
        let residual: Vec<(usize, usize)> = self
            .cross_edges(lrel, rrel)
            .into_iter()
            .filter(|&(a, b)| !(a == lc && b == rc))
            .map(|(a, b)| (llay.pos(a), rlay.pos(b)))
            .collect();
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < lrows.len() && j < rrows.len() {
            match lrows[i][lp].cmp(&rrows[j][rp]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Delimit the equal blocks on both sides.
                    let key = lrows[i][lp].clone();
                    let i_end = (i..lrows.len())
                        .find(|&x| lrows[x][lp] != key)
                        .unwrap_or(lrows.len());
                    let j_end = (j..rrows.len())
                        .find(|&x| rrows[x][rp] != key)
                        .unwrap_or(rrows.len());
                    for lrow in &lrows[i..i_end] {
                        for rrow in &rrows[j..j_end] {
                            if residual.iter().all(|&(a, b)| lrow[a] == rrow[b]) {
                                let mut row = lrow.clone();
                                row.extend(rrow.iter().cloned());
                                out.push(row);
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        let layout = llay.concat(&rlay);
        // The output order is the left merge column — matches the plan's
        // Sorted property when one was required.
        (out, layout)
    }

    fn eval_index_join(&mut self, node: &PlanNode, edge: reopt_expr::EdgeId) -> (Vec<Row>, Layout) {
        // Left child is the indexed inner (paper Table 1).
        let (irows, ilay) = self.eval(&node.children[0]);
        let (orows, olay) = self.eval(&node.children[1]);
        let irel = node.children[0].expr.rel;
        let orel = node.children[1].expr.rel;
        let e = self.q.edge(edge);
        let (ic, oc) = e.across(irel, orel).expect("index edge crosses children");
        let ip = ilay.pos(ic);
        let op = olay.pos(oc);
        let residual: Vec<(usize, usize)> = self
            .cross_edges(irel, orel)
            .into_iter()
            .filter(|&(a, b)| !(a == ic && b == oc))
            .map(|(a, b)| (ilay.pos(a), olay.pos(b)))
            .collect();
        // Simulated index: hash map over the inner key.
        let mut index: FxHashMap<Datum, Vec<usize>> = FxHashMap::default();
        for (i, row) in irows.iter().enumerate() {
            index.entry(row[ip].clone()).or_default().push(i);
        }
        let mut out = Vec::new();
        for orow in &orows {
            if let Some(matches) = index.get(&orow[op]) {
                for &ii in matches {
                    if residual.iter().all(|&(a, b)| irows[ii][a] == orow[b]) {
                        let mut row = irows[ii].clone();
                        row.extend(orow.iter().cloned());
                        out.push(row);
                    }
                }
            }
        }
        (out, ilay.concat(&olay))
    }

    fn eval_agg(&mut self, node: &PlanNode) -> (Vec<Row>, Layout) {
        let (rows, layout) = self.eval(&node.children[0]);
        let agg = self
            .q
            .aggregate
            .as_ref()
            .expect("aggregate node requires an aggregate spec");
        let group_pos: Vec<usize> = agg.group_by.iter().map(|c| layout.pos(*c)).collect();
        let mut groups: FxHashMap<Vec<Datum>, Vec<AggAcc>> = FxHashMap::default();
        for row in &rows {
            let key: Vec<Datum> = group_pos.iter().map(|&p| row[p].clone()).collect();
            let accs = groups
                .entry(key)
                .or_insert_with(|| agg.aggs.iter().map(AggAcc::new).collect());
            for (acc, f) in accs.iter_mut().zip(&agg.aggs) {
                acc.update(f, row, &layout);
            }
        }
        let mut out: Vec<Row> = groups
            .into_iter()
            .map(|(key, accs)| {
                let mut row = key;
                row.extend(accs.into_iter().map(AggAcc::finish));
                row
            })
            .collect();
        // Deterministic output order for tests and diffing.
        out.sort();
        (out, Layout::from_cols(agg.group_by.clone()))
    }
}

/// Aggregate accumulator.
enum AggAcc {
    Count(i64),
    Distinct(std::collections::BTreeSet<Datum>),
    Sum(i64),
    Min(Option<Datum>),
    Max(Option<Datum>),
}

impl AggAcc {
    fn new(f: &AggFunc) -> AggAcc {
        match f {
            AggFunc::CountStar | AggFunc::Count(_) => AggAcc::Count(0),
            AggFunc::CountDistinct(_) => AggAcc::Distinct(Default::default()),
            AggFunc::Sum(_) => AggAcc::Sum(0),
            AggFunc::Min(_) => AggAcc::Min(None),
            AggFunc::Max(_) => AggAcc::Max(None),
        }
    }

    fn update(&mut self, f: &AggFunc, row: &Row, layout: &Layout) {
        let val = |c: &LeafCol| row[layout.pos(*c)].clone();
        match (self, f) {
            (AggAcc::Count(n), AggFunc::CountStar) => *n += 1,
            (AggAcc::Count(n), AggFunc::Count(_)) => *n += 1,
            (AggAcc::Distinct(s), AggFunc::CountDistinct(c)) => {
                s.insert(val(c));
            }
            (AggAcc::Sum(s), AggFunc::Sum(c)) => *s += val(c).as_int(),
            (AggAcc::Min(m), AggFunc::Min(c)) => {
                let v = val(c);
                if m.as_ref().is_none_or(|cur| v < *cur) {
                    *m = Some(v);
                }
            }
            (AggAcc::Max(m), AggFunc::Max(c)) => {
                let v = val(c);
                if m.as_ref().is_none_or(|cur| v > *cur) {
                    *m = Some(v);
                }
            }
            _ => unreachable!("accumulator/function mismatch"),
        }
    }

    fn finish(self) -> Datum {
        match self {
            AggAcc::Count(n) => Datum::Int(n),
            AggAcc::Distinct(s) => Datum::Int(s.len() as i64),
            AggAcc::Sum(s) => Datum::Int(s),
            AggAcc::Min(m) | AggAcc::Max(m) => m.unwrap_or(Datum::Int(0)),
        }
    }
}

/// Predicate evaluation.
pub fn cmp_matches(v: &Datum, op: CmpOp, lit: &Datum) -> bool {
    match op {
        CmpOp::Eq => v == lit,
        CmpOp::Ne => v != lit,
        CmpOp::Lt => v < lit,
        CmpOp::Le => v <= lit,
        CmpOp::Gt => v > lit,
        CmpOp::Ge => v >= lit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_baselines::{optimize_system_r, optimize_volcano};
    use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};
    use reopt_cost::CostContext;
    use reopt_expr::{AggSpec, JoinGraph};

    /// Small three-table instance with deterministic synthetic data.
    fn fixture() -> (Catalog, Database) {
        let mut c = Catalog::new();
        let mut db = Database::new();
        // r(k, v): 40 rows, k = 0..40
        // s(k, j): 60 rows, k = i % 40, j = i % 10; indexed on k
        // t(j, w): 25 rows, j = i % 10
        type RowGen = fn(usize) -> Row;
        let defs: [(&str, &[&str], usize, RowGen); 3] = [
            ("r", &["k", "v"], 40, |i| {
                vec![Datum::Int(i as i64), Datum::Int((i * 7) as i64)]
            }),
            ("s", &["k", "j"], 60, |i| {
                vec![Datum::Int((i % 40) as i64), Datum::Int((i % 10) as i64)]
            }),
            ("t", &["j", "w"], 25, |i| {
                vec![Datum::Int((i % 10) as i64), Datum::Int((i * 3) as i64)]
            }),
        ];
        for (name, cols, n, gen) in defs {
            let rows: Vec<Row> = (0..n).map(gen).collect();
            let id = c.add_table(
                |id| {
                    let mut b = TableBuilder::new(name);
                    for col in cols {
                        b = b.int_col(col);
                    }
                    if name == "s" {
                        b = b.index_on("k");
                    }
                    b.build(id)
                },
                TableStats {
                    row_count: n as f64,
                    columns: vec![ColumnStats::uniform_key(n as f64); cols.len()],
                },
            );
            db.set_table(id, crate::database::TableData::new(rows));
        }
        (c, db)
    }

    fn three_way(c: &Catalog) -> QuerySpec {
        let mut b = QuerySpec::builder("rst");
        let r = b.leaf(c, "r");
        let s = b.leaf(c, "s");
        let t = b.leaf(c, "t");
        b.join(c, r, "k", s, "k");
        b.join(c, s, "j", t, "j");
        b.filter(c, r, "v", CmpOp::Lt, Datum::Int(200));
        b.build()
    }

    /// Brute-force reference: filtered cartesian product.
    fn naive(q: &QuerySpec, db: &Database, c: &Catalog) -> usize {
        let inputs: Vec<Vec<Row>> = q
            .leaves
            .iter()
            .map(|l| db.table(l.table).rows.clone())
            .collect();
        let _ = c;
        let mut count = 0usize;
        let mut idx = vec![0usize; inputs.len()];
        'outer: loop {
            let rows: Vec<&Row> = idx.iter().enumerate().map(|(l, &i)| &inputs[l][i]).collect();
            let filters_ok = q.leaves.iter().enumerate().all(|(l, leaf)| {
                leaf.filters
                    .iter()
                    .all(|f| cmp_matches(&rows[l][f.col.0 as usize], f.op, &f.value))
            });
            let edges_ok = q.edges.iter().all(|e| {
                rows[e.l.leaf.0 as usize][e.l.col.0 as usize]
                    == rows[e.r.leaf.0 as usize][e.r.col.0 as usize]
            });
            if filters_ok && edges_ok {
                count += 1;
            }
            // Odometer increment.
            for l in (0..idx.len()).rev() {
                idx[l] += 1;
                if idx[l] < inputs[l].len() {
                    continue 'outer;
                }
                idx[l] = 0;
                if l == 0 {
                    break 'outer;
                }
            }
        }
        count
    }

    #[test]
    fn optimized_plans_match_brute_force() {
        let (c, db) = fixture();
        let q = three_way(&c);
        let want = naive(&q, &db, &c);
        assert!(want > 0, "fixture produces results");
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        for plan in [
            optimize_system_r(&q, &g, &mut ctx).plan,
            optimize_volcano(&q, &g, &mut ctx).plan,
        ] {
            let mut exec = Executor::from_database(&q, &c, &db);
            let (rows, layout) = exec.run(&plan);
            assert_eq!(rows.len(), want, "plan:\n{plan}");
            assert_eq!(layout.width(), 6);
        }
    }

    #[test]
    fn stats_record_actual_cardinalities() {
        let (c, db) = fixture();
        let q = three_way(&c);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let plan = optimize_system_r(&q, &g, &mut ctx).plan;
        let mut exec = Executor::from_database(&q, &c, &db);
        let (rows, _) = exec.run(&plan);
        assert_eq!(
            exec.stats.rows_of(q.root_expr()),
            Some(rows.len() as f64)
        );
        // Leaf observations exist for every leaf in the plan.
        for l in 0..q.n_leaves() {
            let e = ExprId::rel(RelSet::singleton(l));
            assert!(exec.stats.rows_of(e).is_some(), "no stats for leaf {l}");
        }
    }

    #[test]
    fn aggregate_execution_groups_and_counts() {
        let (c, db) = fixture();
        let mut b = QuerySpec::builder("agg");
        let r = b.leaf(&c, "r");
        let s = b.leaf(&c, "s");
        b.join(&c, r, "k", s, "k");
        b.aggregate(AggSpec {
            group_by: vec![LeafCol::new(1, 1)], // s.j
            aggs: vec![
                AggFunc::CountStar,
                AggFunc::Sum(LeafCol::new(0, 1)),      // sum(r.v)
                AggFunc::CountDistinct(LeafCol::new(0, 0)), // count(distinct r.k)
                AggFunc::Min(LeafCol::new(0, 1)),
                AggFunc::Max(LeafCol::new(0, 1)),
            ],
        });
        let q = b.build();
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let plan = optimize_system_r(&q, &g, &mut ctx).plan;
        let mut exec = Executor::from_database(&q, &c, &db);
        let (rows, _) = exec.run(&plan);
        // s.j has 10 distinct values, all of which join.
        assert_eq!(rows.len(), 10);
        for row in &rows {
            let count = row[1].as_int();
            let min = row[4].as_int();
            let max = row[5].as_int();
            assert!(count > 0);
            assert!(min <= max);
        }
        // Total count across groups equals the join size.
        let total: i64 = rows.iter().map(|r| r[1].as_int()).sum();
        let mut b2 = QuerySpec::builder("plain");
        let r2 = b2.leaf(&c, "r");
        let s2 = b2.leaf(&c, "s");
        b2.join(&c, r2, "k", s2, "k");
        let q2 = b2.build();
        assert_eq!(total as usize, naive(&q2, &db, &c));
    }

    #[test]
    fn sorted_scan_orders_output() {
        let (c, db) = fixture();
        let mut b = QuerySpec::builder("sorted");
        let s = b.leaf(&c, "s");
        let _ = s;
        let q = b.build();
        let plan = PlanNode {
            expr: ExprId::rel(RelSet::singleton(0)),
            prop: reopt_expr::PhysProp::Sorted(LeafCol::new(0, 0)),
            op: PhysOp::IndexScan {
                col: LeafCol::new(0, 0),
            },
            children: vec![],
        };
        let mut exec = Executor::from_database(&q, &c, &db);
        let (rows, layout) = exec.run(&plan);
        let pos = layout.pos(LeafCol::new(0, 0));
        assert!(rows.windows(2).all(|w| w[0][pos] <= w[1][pos]));
    }

    #[test]
    fn merge_join_handles_duplicate_blocks() {
        // s has duplicate keys (60 rows over 40 distinct k): the merge
        // join must produce every pairing within equal blocks.
        let (c, db) = fixture();
        let mut b = QuerySpec::builder("dup");
        let r = b.leaf(&c, "r");
        let s = b.leaf(&c, "s");
        b.join(&c, r, "k", s, "k");
        let q = b.build();
        let want = naive(&q, &db, &c);
        // Force a sort-merge plan.
        let plan = PlanNode {
            expr: ExprId::rel(RelSet(0b11)),
            prop: reopt_expr::PhysProp::Any,
            op: PhysOp::SortMergeJoin {
                edge: reopt_expr::EdgeId(0),
            },
            children: vec![
                PlanNode {
                    expr: ExprId::rel(RelSet::singleton(0)),
                    prop: reopt_expr::PhysProp::Sorted(LeafCol::new(0, 0)),
                    op: PhysOp::Sort {
                        col: LeafCol::new(0, 0),
                    },
                    children: vec![PlanNode {
                        expr: ExprId::rel(RelSet::singleton(0)),
                        prop: reopt_expr::PhysProp::Any,
                        op: PhysOp::FullScan,
                        children: vec![],
                    }],
                },
                PlanNode {
                    expr: ExprId::rel(RelSet::singleton(1)),
                    prop: reopt_expr::PhysProp::Sorted(LeafCol::new(1, 0)),
                    op: PhysOp::IndexScan {
                        col: LeafCol::new(1, 0),
                    },
                    children: vec![],
                },
            ],
        };
        let mut exec = Executor::from_database(&q, &c, &db);
        let (rows, _) = exec.run(&plan);
        assert_eq!(rows.len(), want);
    }
}
