//! In-memory stored tables, aligned with the catalog by `TableId`.

use reopt_catalog::{Catalog, ColumnStats, Datum, TableId, TableStats};

/// A row of datums, positionally matching the table schema.
pub type Row = Vec<Datum>;

/// One table's tuples.
#[derive(Clone, Debug, Default)]
pub struct TableData {
    pub rows: Vec<Row>,
}

impl TableData {
    pub fn new(rows: Vec<Row>) -> TableData {
        TableData { rows }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// All stored tables of a database instance.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: Vec<TableData>,
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Registers data for the next table id (call in catalog order).
    pub fn push_table(&mut self, data: TableData) {
        self.tables.push(data);
    }

    pub fn set_table(&mut self, id: TableId, data: TableData) {
        let idx = id.0 as usize;
        if idx >= self.tables.len() {
            self.tables.resize_with(idx + 1, TableData::default);
        }
        self.tables[idx] = data;
    }

    pub fn table(&self, id: TableId) -> &TableData {
        &self.tables[id.0 as usize]
    }

    /// Computes fresh `TableStats` from the stored data (histograms on
    /// integer columns) — how the workloads derive catalog statistics.
    pub fn compute_stats(&self, catalog: &Catalog, id: TableId, buckets: usize) -> TableStats {
        let table = catalog.table(id);
        let data = self.table(id);
        let columns = (0..table.columns.len())
            .map(|ci| {
                let ints: Vec<i64> = data
                    .rows
                    .iter()
                    .filter_map(|r| match &r[ci] {
                        Datum::Int(v) => Some(*v),
                        _ => None,
                    })
                    .collect();
                if ints.is_empty() {
                    // Non-integer column: NDV-only statistics.
                    let mut vals: Vec<&Datum> = data.rows.iter().map(|r| &r[ci]).collect();
                    vals.sort();
                    vals.dedup();
                    ColumnStats {
                        ndv: vals.len() as f64,
                        min: 0,
                        max: 0,
                        histogram: None,
                    }
                } else {
                    ColumnStats::from_values(&ints, buckets)
                }
            })
            .collect();
        TableStats {
            row_count: data.len() as f64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_catalog::TableBuilder;

    #[test]
    fn stats_from_data() {
        let mut c = Catalog::new();
        let id = c.add_table(
            |id| {
                TableBuilder::new("t")
                    .int_col("a")
                    .str_col("s")
                    .build(id)
            },
            TableStats {
                row_count: 0.0,
                columns: vec![ColumnStats::uniform_key(1.0); 2],
            },
        );
        let mut db = Database::new();
        db.set_table(
            id,
            TableData::new(
                (0..100)
                    .map(|i| vec![Datum::Int(i % 10), Datum::str(if i % 2 == 0 { "x" } else { "y" })])
                    .collect(),
            ),
        );
        let stats = db.compute_stats(&c, id, 8);
        assert_eq!(stats.row_count, 100.0);
        assert_eq!(stats.columns[0].ndv, 10.0);
        assert_eq!(stats.columns[1].ndv, 2.0);
        assert!(stats.columns[0].histogram.is_some());
        assert!(stats.columns[1].histogram.is_none());
    }
}
