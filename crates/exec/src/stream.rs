//! Stream execution: sliding-window state and slice-based evaluation.
//!
//! Reproduces the windowed semantics of the Linear Road `SegTollS`
//! query (paper Table 2): `[size N time]`, `[size N tuple]`, and
//! `[size N tuple partition by cols]` windows over a shared input
//! stream, evaluated a slice at a time under the data-partitioned
//! adaptation model of [15] — the optimizer may install a new plan at
//! each slice boundary, and window state carries across (the CAPS-style
//! state migration of [26] amounts to rebuilding operator state from
//! the retained windows when the plan changes).

use std::collections::VecDeque;

use reopt_catalog::Datum;
use reopt_common::FxHashMap;
use reopt_expr::{PlanNode, QuerySpec, WindowSpec};

use crate::database::Row;
use crate::executor::{ExecStats, Executor};

/// A timestamped stream tuple.
#[derive(Clone, Debug)]
pub struct StreamTuple {
    pub ts: f64,
    pub row: Row,
}

/// Window state for one query leaf.
#[derive(Clone, Debug)]
struct WindowState {
    spec: Option<WindowSpec>,
    /// Time / unwindowed contents, in arrival order.
    rows: VecDeque<(f64, Row)>,
    /// Partitioned-tuple contents: per key, the last-update timestamp
    /// and the retained rows.
    partitions: FxHashMap<Vec<Datum>, (f64, VecDeque<Row>)>,
    /// Idle partitions (no arrivals for this long) are dropped — the
    /// Linear Road semantics of a car leaving the expressway. Defaults
    /// to the query's largest time window.
    partition_ttl: Option<f64>,
}

impl WindowState {
    fn new(spec: Option<WindowSpec>, partition_ttl: Option<f64>) -> WindowState {
        WindowState {
            spec,
            rows: VecDeque::new(),
            partitions: FxHashMap::default(),
            partition_ttl,
        }
    }

    fn ingest(&mut self, t: &StreamTuple) {
        match &self.spec {
            Some(WindowSpec::PartitionedTuples { cols, count }) => {
                let key: Vec<Datum> = cols.iter().map(|c| t.row[c.0 as usize].clone()).collect();
                let (last, q) = self.partitions.entry(key).or_insert((t.ts, VecDeque::new()));
                *last = t.ts;
                q.push_back(t.row.clone());
                while q.len() > *count as usize {
                    q.pop_front();
                }
            }
            Some(WindowSpec::Tuples { count }) => {
                self.rows.push_back((t.ts, t.row.clone()));
                while self.rows.len() > *count as usize {
                    self.rows.pop_front();
                }
            }
            _ => self.rows.push_back((t.ts, t.row.clone())),
        }
    }

    fn expire(&mut self, now: f64) {
        if let Some(WindowSpec::Time { seconds }) = &self.spec {
            let horizon = now - seconds;
            while self
                .rows
                .front()
                .is_some_and(|(ts, _)| *ts <= horizon)
            {
                self.rows.pop_front();
            }
        }
        if let (Some(WindowSpec::PartitionedTuples { .. }), Some(ttl)) =
            (&self.spec, self.partition_ttl)
        {
            let horizon = now - ttl;
            self.partitions.retain(|_, (last, _)| *last > horizon);
        }
    }

    fn contents(&self) -> Vec<Row> {
        match &self.spec {
            Some(WindowSpec::PartitionedTuples { .. }) => self
                .partitions
                .values()
                .flat_map(|(_, q)| q.iter().cloned())
                .collect(),
            _ => self.rows.iter().map(|(_, r)| r.clone()).collect(),
        }
    }

    fn len(&self) -> usize {
        match &self.spec {
            Some(WindowSpec::PartitionedTuples { .. }) => {
                self.partitions.values().map(|(_, q)| q.len()).sum()
            }
            _ => self.rows.len(),
        }
    }
}

/// Result of executing one slice.
#[derive(Clone, Debug)]
pub struct SliceResult {
    pub out_rows: usize,
    pub stats: ExecStats,
    pub window_sizes: Vec<usize>,
    /// Rows rebuilt into operator state because the installed plan
    /// differs from the previous slice's (CAPS-style migration volume).
    pub migrated_rows: usize,
}

/// Slice-at-a-time stream executor with persistent window state.
pub struct StreamExecutor {
    q: QuerySpec,
    windows: Vec<WindowState>,
    now: f64,
    last_plan_fingerprint: Option<u64>,
}

impl StreamExecutor {
    pub fn new(q: &QuerySpec) -> StreamExecutor {
        // Partitions idle longer than the query's largest time window
        // are considered departed.
        let ttl = q
            .leaves
            .iter()
            .filter_map(|l| match &l.window {
                Some(WindowSpec::Time { seconds }) => Some(*seconds),
                _ => None,
            })
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });
        StreamExecutor {
            windows: q
                .leaves
                .iter()
                .map(|l| WindowState::new(l.window.clone(), ttl))
                .collect(),
            q: q.clone(),
            now: 0.0,
            last_plan_fingerprint: None,
        }
    }

    /// Ingests a slice of tuples (every leaf over the same stream table
    /// sees every tuple — the `SegTollS` self-join pattern), advancing
    /// stream time to the latest timestamp.
    pub fn ingest(&mut self, tuples: &[StreamTuple]) {
        for t in tuples {
            self.now = self.now.max(t.ts);
            for w in &mut self.windows {
                w.ingest(t);
            }
        }
        for w in &mut self.windows {
            w.expire(self.now);
        }
    }

    /// Current window contents per leaf.
    pub fn window_rows(&self) -> Vec<Vec<Row>> {
        self.windows.iter().map(WindowState::contents).collect()
    }

    pub fn window_sizes(&self) -> Vec<usize> {
        self.windows.iter().map(WindowState::len).collect()
    }

    pub fn now(&self) -> f64 {
        self.now
    }

    /// Executes `plan` over the current windows.
    pub fn execute(&mut self, plan: &PlanNode) -> SliceResult {
        let fp = plan.fingerprint();
        let migrated_rows = match self.last_plan_fingerprint {
            Some(prev) if prev != fp => self.windows.iter().map(WindowState::len).sum(),
            _ => 0,
        };
        self.last_plan_fingerprint = Some(fp);
        let inputs = self.window_rows();
        let mut exec = Executor::with_inputs(&self.q, inputs);
        let (rows, _) = exec.run(plan);
        SliceResult {
            out_rows: rows.len(),
            stats: exec.stats,
            window_sizes: self.window_sizes(),
            migrated_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};
    use reopt_expr::{LeafId, QuerySpec};

    fn stream_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            |id| {
                TableBuilder::new("s")
                    .int_col("carid")
                    .int_col("seg")
                    .build(id)
            },
            TableStats {
                row_count: 10.0, // tuples/sec
                columns: vec![ColumnStats::uniform_key(100.0); 2],
            },
        );
        c
    }

    fn windowed_query(c: &Catalog) -> QuerySpec {
        let mut b = QuerySpec::builder("w");
        let a = b.leaf_aliased(c, "s", "a");
        let d = b.leaf_aliased(c, "s", "d");
        b.window(a, WindowSpec::Time { seconds: 10.0 });
        b.window(
            d,
            WindowSpec::PartitionedTuples {
                cols: vec![reopt_catalog::ColId(0)],
                count: 1,
            },
        );
        b.join(c, a, "carid", d, "carid");
        b.build()
    }

    fn tup(ts: f64, car: i64, seg: i64) -> StreamTuple {
        StreamTuple {
            ts,
            row: vec![Datum::Int(car), Datum::Int(seg)],
        }
    }

    #[test]
    fn time_window_expires_old_tuples() {
        let c = stream_catalog();
        let q = windowed_query(&c);
        let mut se = StreamExecutor::new(&q);
        se.ingest(&[tup(1.0, 1, 10), tup(5.0, 2, 20)]);
        assert_eq!(se.window_sizes()[0], 2);
        se.ingest(&[tup(12.0, 3, 30)]);
        // ts=1 expired (12 - 10 >= 1), ts=5 and 12 retained.
        assert_eq!(se.window_sizes()[0], 2);
    }

    #[test]
    fn partitioned_window_keeps_latest_per_key() {
        let c = stream_catalog();
        let q = windowed_query(&c);
        let mut se = StreamExecutor::new(&q);
        se.ingest(&[tup(1.0, 7, 10), tup(2.0, 7, 11), tup(3.0, 8, 20)]);
        // Partition window (leaf 1): 1 tuple per carid → cars 7, 8.
        assert_eq!(se.window_sizes()[1], 2);
        let rows = se.window_rows()[1].clone();
        // Car 7's retained tuple is the LATEST (seg=11).
        assert!(rows.contains(&vec![Datum::Int(7), Datum::Int(11)]));
        assert!(!rows.contains(&vec![Datum::Int(7), Datum::Int(10)]));
    }

    #[test]
    fn slice_execution_joins_windows() {
        let c = stream_catalog();
        let q = windowed_query(&c);
        let g = reopt_expr::JoinGraph::new(&q);
        let mut ctx = reopt_cost::CostContext::new(&c, &q);
        let plan = reopt_baselines::optimize_system_r(&q, &g, &mut ctx).plan;
        let mut se = StreamExecutor::new(&q);
        se.ingest(&[tup(1.0, 1, 10), tup(2.0, 1, 11), tup(3.0, 2, 20)]);
        let r = se.execute(&plan);
        // Time window has 3 tuples (cars 1,1,2); partition window has
        // latest per car: (1,11), (2,20). Join on carid: car1 matches 2
        // window tuples, car2 matches 1 → 3 results.
        assert_eq!(r.out_rows, 3);
        assert_eq!(r.migrated_rows, 0);
    }

    #[test]
    fn plan_switch_reports_migration() {
        let c = stream_catalog();
        let q = windowed_query(&c);
        let g = reopt_expr::JoinGraph::new(&q);
        let mut ctx = reopt_cost::CostContext::new(&c, &q);
        let plan = reopt_baselines::optimize_system_r(&q, &g, &mut ctx).plan;
        // A same-shape re-execution migrates nothing; a flipped plan
        // (children swapped by hand) triggers migration accounting.
        let mut flipped = plan.clone();
        flipped.children.reverse();
        let mut se = StreamExecutor::new(&q);
        se.ingest(&[tup(1.0, 1, 10), tup(2.0, 2, 20)]);
        let r1 = se.execute(&plan);
        assert_eq!(r1.migrated_rows, 0);
        let r2 = se.execute(&plan);
        assert_eq!(r2.migrated_rows, 0);
        let r3 = se.execute(&flipped);
        assert!(r3.migrated_rows > 0);
    }

    #[test]
    fn leaf_id_used_for_window_indexing() {
        let c = stream_catalog();
        let q = windowed_query(&c);
        assert_eq!(q.leaf(LeafId(0)).alias, "a");
        assert_eq!(q.leaf(LeafId(1)).alias, "d");
    }
}
