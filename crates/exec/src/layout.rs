//! Output column layouts: which `(leaf, column)` each position of an
//! intermediate result row holds. Join order varies per plan, so layouts
//! are computed per node and columns are resolved through them.

use reopt_common::FxHashMap;
use reopt_expr::{LeafCol, LeafId, QuerySpec};

/// Column layout of an intermediate result.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    cols: Vec<LeafCol>,
    index: FxHashMap<LeafCol, usize>,
}

impl Layout {
    /// Layout of a single leaf: all of its table's columns in order.
    pub fn for_leaf(q: &QuerySpec, leaf: LeafId, n_cols: usize) -> Layout {
        let _ = q;
        let cols: Vec<LeafCol> = (0..n_cols as u32)
            .map(|c| LeafCol {
                leaf,
                col: reopt_catalog::ColId(c),
            })
            .collect();
        Layout::from_cols(cols)
    }

    pub fn from_cols(cols: Vec<LeafCol>) -> Layout {
        let index = cols.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        Layout { cols, index }
    }

    /// Concatenation (join output = left columns then right columns).
    pub fn concat(&self, other: &Layout) -> Layout {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().copied());
        Layout::from_cols(cols)
    }

    /// Position of a column; panics if absent (planner bug).
    pub fn pos(&self, col: LeafCol) -> usize {
        *self
            .index
            .get(&col)
            .unwrap_or_else(|| panic!("column {col:?} not in layout {:?}", self.cols))
    }

    pub fn try_pos(&self, col: LeafCol) -> Option<usize> {
        self.index.get(&col).copied()
    }

    pub fn width(&self) -> usize {
        self.cols.len()
    }

    pub fn cols(&self) -> &[LeafCol] {
        &self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_and_lookup() {
        let a = Layout::from_cols(vec![LeafCol::new(0, 0), LeafCol::new(0, 1)]);
        let b = Layout::from_cols(vec![LeafCol::new(1, 0)]);
        let ab = a.concat(&b);
        assert_eq!(ab.width(), 3);
        assert_eq!(ab.pos(LeafCol::new(1, 0)), 2);
        assert_eq!(ab.pos(LeafCol::new(0, 1)), 1);
        assert_eq!(ab.try_pos(LeafCol::new(2, 0)), None);
    }

    #[test]
    #[should_panic(expected = "not in layout")]
    fn missing_column_panics() {
        Layout::default().pos(LeafCol::new(0, 0));
    }
}
