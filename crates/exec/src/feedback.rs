//! Runtime feedback: turning observed cardinalities into cost-parameter
//! deltas for the re-optimizer (the §5.2.2 loop: "we re-optimized given
//! the cumulatively observed statistics").

use reopt_common::FxHashSet;
use reopt_cost::{CostContext, ParamDelta};
use reopt_expr::{EdgeId, ExprId, LeafId, QuerySpec};

use crate::executor::ExecStats;

/// Derives parameter deltas from observed cardinalities.
///
/// Leaf discrepancies become `LeafCardinality` factors. Join
/// discrepancies are attributed to the edges *completed* at the smallest
/// observed expression containing them, splitting the ratio evenly when
/// one node completes several edges (the standard mid-query
/// re-estimation heuristic).
pub fn observed_deltas(
    q: &QuerySpec,
    ctx: &CostContext,
    stats: &ExecStats,
    damping: f64,
) -> Vec<ParamDelta> {
    let mut scratch = ctx.clone();
    let mut out = Vec::new();
    // Leaves first.
    for leaf in 0..q.n_leaves() {
        let l = LeafId(leaf);
        let expr = ExprId::rel(reopt_expr::RelSet::singleton(leaf));
        let Some(obs) = stats.rows_of(expr) else {
            continue;
        };
        let est = scratch.leaf_out_rows(l).max(1e-9);
        let current = scratch.factors().leaf_card(l);
        let raw = (obs.max(1e-3) / est) * current;
        let factor = damped(current, raw, damping);
        if (factor / current - 1.0).abs() > 1e-6 {
            out.push(ParamDelta::LeafCardinality(l, factor));
        }
    }
    scratch.apply(&out);
    // Joins, ascending by expression size.
    let mut observed: Vec<(ExprId, f64)> = stats
        .rows
        .iter()
        .filter(|(e, _)| !e.agg && e.rel.len() >= 2)
        .map(|(e, r)| (*e, *r))
        .collect();
    observed.sort_by_key(|(e, _)| e.rel.len());
    let mut attributed: FxHashSet<EdgeId> = FxHashSet::default();
    for (expr, obs) in observed {
        let new_edges: Vec<EdgeId> = q
            .edges
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                e.rels().is_subset_of(expr.rel) && !attributed.contains(&EdgeId(*i as u32))
            })
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        if new_edges.is_empty() {
            continue;
        }
        let est = scratch.rows(q, expr.rel).max(1e-9);
        let ratio = (obs.max(1e-3) / est).powf(1.0 / new_edges.len() as f64);
        let mut batch = Vec::new();
        for e in new_edges {
            attributed.insert(e);
            let current = scratch.factors().edge_sel(e);
            let factor = damped(current, current * ratio, damping);
            if (factor / current - 1.0).abs() > 1e-6 {
                batch.push(ParamDelta::EdgeSelectivity(e, factor));
            }
        }
        scratch.apply(&batch);
        out.extend(batch);
    }
    out
}

/// Exponential damping between the current and the raw new factor:
/// `damping = 1` jumps straight to the observation (non-cumulative mode),
/// smaller values blend (cumulative mode of Fig 10).
fn damped(current: f64, raw: f64, damping: f64) -> f64 {
    let clamped = raw.clamp(1e-3, 1e3);
    if damping >= 1.0 {
        clamped
    } else {
        current * (clamped / current).powf(damping.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};
    use reopt_expr::RelSet;

    fn fixture() -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        for (name, rows) in [("r", 100.0), ("s", 1000.0)] {
            c.add_table(
                |id| TableBuilder::new(name).int_col("k").int_col("v").build(id),
                TableStats {
                    row_count: rows,
                    columns: vec![ColumnStats::uniform_key(rows); 2],
                },
            );
        }
        let mut b = QuerySpec::builder("q");
        let r = b.leaf(&c, "r");
        let s = b.leaf(&c, "s");
        b.join(&c, r, "k", s, "k");
        (c, b.build())
    }

    #[test]
    fn leaf_discrepancy_becomes_cardinality_factor() {
        let (c, q) = fixture();
        let ctx = CostContext::new(&c, &q);
        let mut stats = ExecStats::default();
        stats.rows.insert(ExprId::rel(RelSet::singleton(0)), 400.0); // 4× estimate
        let deltas = observed_deltas(&q, &ctx, &stats, 1.0);
        assert_eq!(deltas.len(), 1);
        match deltas[0] {
            ParamDelta::LeafCardinality(l, f) => {
                assert_eq!(l, LeafId(0));
                assert!((f - 4.0).abs() < 1e-6, "factor {f}");
            }
            other => panic!("unexpected delta {other:?}"),
        }
    }

    #[test]
    fn join_discrepancy_becomes_edge_factor() {
        let (c, q) = fixture();
        let mut ctx = CostContext::new(&c, &q);
        let est = ctx.rows(&q, RelSet(0b11));
        let mut stats = ExecStats::default();
        stats.rows.insert(ExprId::rel(RelSet(0b11)), est * 8.0);
        let deltas = observed_deltas(&q, &ctx, &stats, 1.0);
        assert!(deltas
            .iter()
            .any(|d| matches!(d, ParamDelta::EdgeSelectivity(EdgeId(0), f) if (f - 8.0).abs() < 0.01)));
    }

    #[test]
    fn accurate_estimates_produce_no_deltas() {
        let (c, q) = fixture();
        let mut ctx = CostContext::new(&c, &q);
        let mut stats = ExecStats::default();
        stats
            .rows
            .insert(ExprId::rel(RelSet::singleton(0)), ctx.leaf_out_rows(LeafId(0)));
        stats
            .rows
            .insert(ExprId::rel(RelSet(0b11)), ctx.rows(&q, RelSet(0b11)));
        let deltas = observed_deltas(&q, &ctx, &stats, 1.0);
        assert!(deltas.is_empty(), "{deltas:?}");
    }

    #[test]
    fn damping_blends_toward_observation() {
        let (c, q) = fixture();
        let ctx = CostContext::new(&c, &q);
        let mut stats = ExecStats::default();
        stats.rows.insert(ExprId::rel(RelSet::singleton(0)), 400.0);
        let full = observed_deltas(&q, &ctx, &stats, 1.0);
        let half = observed_deltas(&q, &ctx, &stats, 0.5);
        let f = |d: &ParamDelta| match d {
            ParamDelta::LeafCardinality(_, f) => *f,
            _ => unreachable!(),
        };
        assert!((f(&full[0]) - 4.0).abs() < 1e-6);
        assert!((f(&half[0]) - 2.0).abs() < 1e-6); // sqrt(4) via pow(0.5)
    }
}
