//! Pipelined execution engine for stored and streaming data — the
//! substrate the paper's adaptive experiments run on ("a basic pipelined
//! query engine for stream and stored data", §1).
//!
//! The engine interprets the physical plan trees produced by the
//! optimizers, collects actual cardinalities as it runs (the runtime
//! feedback that drives re-optimization, §5.2.2), and provides the
//! sliding-window state management needed by the Linear Road workload
//! (§5.4): time windows, tuple windows, and partitioned tuple windows.

pub mod database;
pub mod executor;
pub mod feedback;
pub mod layout;
pub mod stream;

pub use database::{Database, TableData};
pub use executor::{ExecStats, Executor};
pub use feedback::observed_deltas;
pub use layout::Layout;
pub use stream::{SliceResult, StreamExecutor, StreamTuple};
