//! Property tests for the executor: whatever plan the optimizers pick
//! over random data and predicates, execution must agree with a
//! brute-force filtered cartesian product.

use proptest::prelude::*;

use reopt_baselines::{optimize_system_r, optimize_volcano};
use reopt_catalog::{Catalog, CmpOp, ColumnStats, Datum, TableBuilder, TableStats};
use reopt_cost::CostContext;
use reopt_exec::{Database, Executor, TableData};
use reopt_expr::{JoinGraph, QuerySpec};

#[derive(Clone, Debug)]
struct Instance {
    /// Per-table rows: (key, value) pairs with small domains so joins
    /// and filters actually select.
    tables: Vec<Vec<(u8, u8)>>,
    /// Filter literal per table (value < lit), 0 = no filter.
    filters: Vec<u8>,
}

fn instance() -> impl Strategy<Value = Instance> {
    let table = proptest::collection::vec((0u8..8, 0u8..16), 0..24);
    (
        proptest::collection::vec(table, 3),
        proptest::collection::vec(0u8..16, 3),
    )
        .prop_map(|(tables, filters)| Instance { tables, filters })
}

fn build(inst: &Instance) -> (Catalog, Database, QuerySpec) {
    let mut c = Catalog::new();
    let mut db = Database::new();
    for (i, rows) in inst.tables.iter().enumerate() {
        let name = format!("t{i}");
        let id = c.add_table(
            |id| {
                TableBuilder::new(&name)
                    .int_col("k")
                    .int_col("v")
                    .index_on("k")
                    .build(id)
            },
            TableStats {
                row_count: rows.len().max(1) as f64,
                columns: vec![ColumnStats::uniform_key(8.0), ColumnStats::uniform_key(16.0)],
            },
        );
        db.set_table(
            id,
            TableData::new(
                rows.iter()
                    .map(|&(k, v)| vec![Datum::Int(k as i64), Datum::Int(v as i64)])
                    .collect(),
            ),
        );
    }
    let mut b = QuerySpec::builder("prop");
    let l: Vec<_> = (0..3).map(|i| b.leaf(&c, &format!("t{i}"))).collect();
    b.join(&c, l[0], "k", l[1], "k");
    b.join(&c, l[1], "k", l[2], "k");
    for (i, &f) in inst.filters.iter().enumerate() {
        if f > 0 {
            b.filter(&c, l[i], "v", CmpOp::Lt, Datum::Int(f as i64));
        }
    }
    (c, db, b.build())
}

fn brute_force(inst: &Instance) -> usize {
    let pass = |t: usize, v: u8| inst.filters[t] == 0 || v < inst.filters[t];
    let mut n = 0;
    for &(k0, v0) in &inst.tables[0] {
        for &(k1, v1) in &inst.tables[1] {
            for &(k2, v2) in &inst.tables[2] {
                if k0 == k1 && k1 == k2 && pass(0, v0) && pass(1, v1) && pass(2, v2) {
                    n += 1;
                }
            }
        }
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn optimized_plans_execute_correctly(inst in instance()) {
        let (c, db, q) = build(&inst);
        let g = JoinGraph::new(&q);
        let want = brute_force(&inst);
        let mut ctx = CostContext::new(&c, &q);
        for plan in [
            optimize_system_r(&q, &g, &mut ctx).plan,
            optimize_volcano(&q, &g, &mut ctx).plan,
        ] {
            let mut exec = Executor::from_database(&q, &c, &db);
            let (rows, _) = exec.run(&plan);
            prop_assert_eq!(rows.len(), want, "plan:\n{}", plan);
            // Stats record the final cardinality faithfully.
            prop_assert_eq!(exec.stats.rows_of(q.root_expr()), Some(want as f64));
        }
    }
}
