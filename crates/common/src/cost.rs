//! A totally-ordered, non-NaN cost value.
//!
//! Optimizer state (the `PlanCost` priority queues of §4.1, the `Bound`
//! relation of §3.3) is sorted and compared by cost, so we need `Ord`,
//! which `f64` does not provide. [`Cost`] is an `f64` that is guaranteed
//! never to hold NaN; every constructor normalizes NaN to `+inf`
//! ("unknown cost" and "unreachable plan" coincide for an optimizer).

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A plan cost: finite non-negative in practice, `Cost::INFINITY` for
/// "no plan known".
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Cost(f64);

impl Cost {
    pub const ZERO: Cost = Cost(0.0);
    pub const INFINITY: Cost = Cost(f64::INFINITY);

    /// Creates a cost, normalizing NaN to `+inf`.
    #[inline]
    pub fn new(v: f64) -> Cost {
        if v.is_nan() {
            Cost(f64::INFINITY)
        } else {
            Cost(v)
        }
    }

    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    #[inline]
    pub fn min(self, other: Cost) -> Cost {
        if self <= other {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn max(self, other: Cost) -> Cost {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Relative-tolerance equality, used when cross-checking independent
    /// optimizer implementations that accumulate floating point in
    /// different orders.
    pub fn approx_eq(self, other: Cost) -> bool {
        if self.0 == other.0 {
            return true;
        }
        let scale = self.0.abs().max(other.0.abs()).max(1e-12);
        (self.0 - other.0).abs() / scale < 1e-9
    }
}

impl Eq for Cost {}

impl PartialOrd for Cost {
    #[inline]
    fn partial_cmp(&self, other: &Cost) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    #[inline]
    fn cmp(&self, other: &Cost) -> Ordering {
        // Safe: NaN is excluded by construction.
        self.0.partial_cmp(&other.0).expect("Cost is never NaN")
    }
}

impl std::hash::Hash for Cost {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // -0.0 and 0.0 compare equal; normalize so Hash agrees with Eq.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl From<f64> for Cost {
    #[inline]
    fn from(v: f64) -> Cost {
        Cost::new(v)
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost::new(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sub for Cost {
    type Output = Cost;
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        // inf - inf would be NaN; `new` maps it back to inf, which is the
        // right "unknown bound" semantics for the r1/r2 bound rules.
        Cost::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: f64) -> Cost {
        Cost::new(self.0 * rhs)
    }
}

impl Div<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn div(self, rhs: f64) -> Cost {
        Cost::new(self.0 / rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.6}", self.0)
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_is_normalized_to_infinity() {
        assert_eq!(Cost::new(f64::NAN), Cost::INFINITY);
        assert_eq!(Cost::INFINITY - Cost::INFINITY, Cost::INFINITY);
    }

    #[test]
    fn total_order() {
        let mut v = vec![Cost::new(3.0), Cost::INFINITY, Cost::ZERO, Cost::new(1.5)];
        v.sort();
        assert_eq!(
            v,
            vec![Cost::ZERO, Cost::new(1.5), Cost::new(3.0), Cost::INFINITY]
        );
    }

    #[test]
    fn min_max() {
        assert_eq!(Cost::new(1.0).min(Cost::new(2.0)), Cost::new(1.0));
        assert_eq!(Cost::new(1.0).max(Cost::INFINITY), Cost::INFINITY);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Cost::new(1.0) + Cost::new(2.0), Cost::new(3.0));
        assert_eq!(Cost::new(5.0) - Cost::new(2.0), Cost::new(3.0));
        assert_eq!(Cost::new(2.0) * 3.0, Cost::new(6.0));
        let s: Cost = [Cost::new(1.0), Cost::new(2.0)].into_iter().sum();
        assert_eq!(s, Cost::new(3.0));
    }

    #[test]
    fn approx_eq_tolerates_fp_noise() {
        let a = Cost::new(0.1 + 0.2);
        let b = Cost::new(0.3);
        assert!(a.approx_eq(b));
        assert!(!Cost::new(1.0).approx_eq(Cost::new(1.1)));
        assert!(Cost::INFINITY.approx_eq(Cost::INFINITY));
    }

    #[test]
    fn zero_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |c: Cost| {
            let mut s = DefaultHasher::new();
            c.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(Cost::new(0.0)), h(Cost::new(-0.0)));
    }
}
