//! Shared primitives for the incremental re-optimization workspace.
//!
//! This crate intentionally stays tiny: a totally-ordered [`Cost`] type
//! (optimizer state is keyed and sorted by cost, so `f64`'s partial order
//! is not acceptable), and a fast non-cryptographic hasher for the
//! id-keyed maps that dominate the optimizer's inner loops.

pub mod cost;
pub mod hash;

pub use cost::Cost;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
