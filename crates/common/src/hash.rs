//! A fast, deterministic, non-cryptographic hasher (the FxHash algorithm
//! used by rustc), plus `HashMap`/`HashSet` aliases built on it.
//!
//! The optimizer's hot maps are keyed by small integer ids (`GroupId`,
//! `AltId`, `RelSet` bitmasks); SipHash is measurably slower there and
//! HashDoS is not a concern for an in-process optimizer. Implemented
//! locally (~40 lines) rather than adding a dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash algorithm.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_values() {
        let h = |x: u64| {
            let mut s = FxHasher::default();
            s.write_u64(x);
            s.finish()
        };
        assert_ne!(h(1), h(2));
        assert_ne!(h(0), h(u64::MAX));
    }

    #[test]
    fn byte_stream_matches_chunked_input() {
        // write() must consume trailing partial words.
        let mut a = FxHasher::default();
        a.write(b"hello world, this is 29 bytes");
        let mut b = FxHasher::default();
        b.write(b"hello world, this is 29 bytes");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello world, this is 29 bytez");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m[&7], "seven");
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }
}
