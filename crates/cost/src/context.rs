//! The cost estimation context: cardinality summaries and per-operator
//! local costs.
//!
//! This is the Rust rendition of the paper's external functions:
//! `Fn_scansummary` (base-table summaries), `Fn_nonscansummary` (operator
//! output summaries, memoized as §2.3 prescribes), `Fn_scancost`,
//! `Fn_nonscancost`, and `Fn_sum` (children + local cost). Estimates use
//! the textbook independence assumptions: leaf output = raw rows ×
//! filter selectivities; join output = product of child rows × product of
//! the selectivities of every edge *internal* to the result set.

use reopt_catalog::Catalog;
use reopt_common::{Cost, FxHashMap};
use reopt_expr::{
    AltSpec, EdgeId, ExprId, LeafId, PhysOp, PhysProp, PlanNode, QuerySpec, RelSet, WindowSpec,
};

use crate::params::{AffectedSet, Factors, ParamDelta, UnitCosts};

/// Per-leaf base statistics derived from the catalog once at build time.
#[derive(Clone, Debug)]
struct LeafBase {
    /// Rows visible to a scan (window-adjusted for stream leaves).
    raw_rows: f64,
    /// Product of local predicate selectivities.
    filter_sel: f64,
    /// Number of local predicates.
    n_filters: u32,
    /// Selectivity of the predicate on an indexed column, per column
    /// (drives index-scan costing).
    index_filter_sel: FxHashMap<u32, f64>,
}

/// Cost estimation context for one query.
#[derive(Clone, Debug)]
pub struct CostContext {
    unit: UnitCosts,
    factors: Factors,
    leaves: Vec<LeafBase>,
    edge_base_sel: Vec<f64>,
    /// Estimated number of groups produced by the aggregate, if any.
    group_count: f64,
    rows_cache: FxHashMap<RelSet, f64>,
    /// `edge_rels[e]` = the two-leaf set of edge `e`.
    edge_rels: Vec<RelSet>,
    /// Edges internal to a leaf set, indexed lazily.
    edges_within_cache: FxHashMap<RelSet, Vec<EdgeId>>,
}

impl CostContext {
    /// Builds the context from catalog statistics (`Fn_scansummary`).
    pub fn new(catalog: &Catalog, q: &QuerySpec) -> CostContext {
        let leaves = q
            .leaves
            .iter()
            .map(|leaf| {
                let stats = catalog.stats(leaf.table);
                let raw_rows = match &leaf.window {
                    None => stats.row_count,
                    // For stream leaves the catalog row count is the
                    // arrival rate (tuples/sec).
                    Some(WindowSpec::Time { seconds }) => stats.row_count * seconds,
                    Some(WindowSpec::Tuples { count }) => *count as f64,
                    Some(WindowSpec::PartitionedTuples { cols, count }) => {
                        let partitions: f64 = cols
                            .iter()
                            .map(|c| stats.col(c.0).ndv.max(1.0))
                            .product();
                        (*count as f64 * partitions).min(stats.row_count * 60.0)
                    }
                };
                let mut filter_sel = 1.0;
                let mut index_filter_sel = FxHashMap::default();
                for f in &leaf.filters {
                    let sel = stats.col(f.col.0).pred_selectivity(f.op, &f.value);
                    filter_sel *= sel;
                    if leaf.indexed_cols.contains(&f.col) {
                        let e = index_filter_sel.entry(f.col.0).or_insert(1.0);
                        *e *= sel;
                    }
                }
                LeafBase {
                    raw_rows: raw_rows.max(1.0),
                    filter_sel: filter_sel.clamp(0.0, 1.0),
                    n_filters: leaf.filters.len() as u32,
                    index_filter_sel,
                }
            })
            .collect();
        let edge_base_sel = q
            .edges
            .iter()
            .map(|e| {
                let ls = catalog.stats(q.leaf(e.l.leaf).table);
                let rs = catalog.stats(q.leaf(e.r.leaf).table);
                ls.col(e.l.col.0)
                    .join_selectivity(rs.col(e.r.col.0))
                    .clamp(1e-12, 1.0)
            })
            .collect();
        let group_count = match &q.aggregate {
            None => 1.0,
            Some(agg) => agg
                .group_by
                .iter()
                .map(|c| catalog.stats(q.leaf(c.leaf).table).col(c.col.0).ndv.max(1.0))
                .product(),
        };
        let edge_rels = q.edges.iter().map(|e| e.rels()).collect();
        CostContext {
            unit: UnitCosts::default(),
            factors: Factors::default(),
            leaves,
            edge_base_sel,
            group_count,
            rows_cache: FxHashMap::default(),
            edge_rels,
            edges_within_cache: FxHashMap::default(),
        }
    }

    pub fn unit_costs(&self) -> &UnitCosts {
        &self.unit
    }

    pub fn set_unit_costs(&mut self, unit: UnitCosts) {
        self.unit = unit;
        self.rows_cache.clear();
    }

    /// Applies a batch of parameter deltas (§4), returning the affected
    /// parameters so callers can seed their dirty sets.
    pub fn apply(&mut self, deltas: &[ParamDelta]) -> AffectedSet {
        let affected = self.factors.apply(deltas);
        if !affected.leaves_card.is_empty() || !affected.edges.is_empty() {
            self.rows_cache.clear();
        }
        affected
    }

    pub fn factors(&self) -> &Factors {
        &self.factors
    }

    /// The two-leaf set of an edge.
    pub fn edge_rels(&self, e: EdgeId) -> RelSet {
        self.edge_rels[e.0 as usize]
    }

    /// Current selectivity of a join edge (base × runtime factor).
    pub fn edge_selectivity(&self, e: EdgeId) -> f64 {
        (self.edge_base_sel[e.0 as usize] * self.factors.edge_sel(e)).clamp(0.0, 1.0)
    }

    /// Raw (pre-filter) rows of a leaf under the current factors.
    pub fn leaf_raw_rows(&self, l: LeafId) -> f64 {
        self.leaves[l.0 as usize].raw_rows * self.factors.leaf_card(l)
    }

    /// Output rows of a leaf after filters.
    pub fn leaf_out_rows(&self, l: LeafId) -> f64 {
        let base = &self.leaves[l.0 as usize];
        (self.leaf_raw_rows(l) * base.filter_sel).max(1e-9)
    }

    /// Estimated output cardinality of a join expression
    /// (`Fn_nonscansummary`, memoized).
    pub fn rows(&mut self, q: &QuerySpec, rel: RelSet) -> f64 {
        if let Some(&r) = self.rows_cache.get(&rel) {
            return r;
        }
        let mut rows: f64 = rel.iter().map(|l| self.leaf_out_rows(LeafId(l))).product();
        for e in self.edges_within(q, rel) {
            rows *= self.edge_selectivity(e);
        }
        let rows = rows.max(1e-9);
        self.rows_cache.insert(rel, rows);
        rows
    }

    /// Output cardinality of a memo expression (aggregates collapse to
    /// their group count).
    pub fn expr_rows(&mut self, q: &QuerySpec, expr: ExprId) -> f64 {
        let base = self.rows(q, expr.rel);
        if expr.agg {
            self.group_count.min(base).max(1.0)
        } else {
            base
        }
    }

    fn edges_within(&mut self, q: &QuerySpec, rel: RelSet) -> Vec<EdgeId> {
        if let Some(es) = self.edges_within_cache.get(&rel) {
            return es.clone();
        }
        let es: Vec<EdgeId> = q
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.rels().is_subset_of(rel))
            .map(|(i, _)| EdgeId(i as u32))
            .collect();
        self.edges_within_cache.insert(rel, es.clone());
        es
    }

    /// Local (root operator) cost of an alternative — `Fn_scancost` /
    /// `Fn_nonscancost`. `expr`/`prop` identify the group the alternative
    /// belongs to.
    pub fn local_cost(
        &mut self,
        q: &QuerySpec,
        expr: ExprId,
        prop: PhysProp,
        alt: &AltSpec,
    ) -> Cost {
        let u = self.unit.clone();
        let out = self.expr_rows(q, expr);
        let cost = match alt.op {
            PhysOp::FullScan => {
                let l = LeafId(expr.rel.leaf());
                let base = &self.leaves[l.0 as usize];
                let n_filters = base.n_filters as f64;
                self.leaf_raw_rows(l)
                    * (u.seq_scan * self.factors.leaf_scan(l) + u.predicate * n_filters)
                    + out * u.output
            }
            PhysOp::IndexScan { col } => {
                let l = LeafId(expr.rel.leaf());
                if prop == PhysProp::Indexed(col) {
                    // Access-path opening only: per-probe work is costed
                    // at the indexed nested-loop join that consumes it.
                    u.index_base
                } else {
                    let base = &self.leaves[l.0 as usize];
                    let n_filters = base.n_filters as f64;
                    // If the index covers a local predicate, only the
                    // matching fraction is probed; otherwise the index
                    // sweeps every row (in key order).
                    let frac = base.index_filter_sel.get(&col.col.0).copied().unwrap_or(1.0);
                    let probes = self.leaf_raw_rows(l) * frac;
                    let residual = (n_filters - 1.0).max(0.0);
                    u.index_base
                        + probes
                            * (u.index_probe * self.factors.leaf_scan(l) + u.predicate * residual)
                        + out * u.output
                }
            }
            PhysOp::Sort { .. } => {
                let n = self.child_rows(q, alt, 0);
                n * (n + 2.0).log2() * u.sort + out * u.output
            }
            PhysOp::HashJoin => {
                let l = self.child_rows(q, alt, 0);
                let r = self.child_rows(q, alt, 1);
                l * u.hash_build + r * u.hash_probe + out * u.output
            }
            PhysOp::SortMergeJoin { edge } => {
                let l = self.child_rows(q, alt, 0);
                let r = self.child_rows(q, alt, 1);
                // The merge enumerates the cross product of equal-key
                // blocks: on a low-cardinality merge key (e.g. 4
                // expressways) that is far more work than l + r. Any
                // remaining cross edges are residual predicates applied
                // per pair.
                let pairs = l * r * self.edge_selectivity(edge);
                (l + r) * u.merge + pairs * u.merge + out * u.output
            }
            PhysOp::IndexNLJoin { edge } => {
                let inner = alt.left.expect("INLJ has an inner").expr.rel;
                let inner_leaf = LeafId(inner.leaf());
                let outer = self.child_rows(q, alt, 1);
                let inner_rows = self.child_rows(q, alt, 0);
                // Index matches on the probe edge; residual cross edges
                // filter the matched pairs.
                let pairs = outer * inner_rows * self.edge_selectivity(edge);
                outer * u.index_probe * self.factors.leaf_scan(inner_leaf)
                    + pairs * u.predicate
                    + out * u.output
            }
            PhysOp::HashAgg => {
                let n = self.child_rows(q, alt, 0);
                n * u.agg_hash + out * u.output
            }
            PhysOp::SortAgg => {
                let n = self.child_rows(q, alt, 0);
                n * u.agg_sorted + out * u.output
            }
        };
        Cost::new(cost)
    }

    fn child_rows(&mut self, q: &QuerySpec, alt: &AltSpec, idx: usize) -> f64 {
        let child = match idx {
            0 => alt.left,
            _ => alt.right,
        }
        .expect("missing child");
        self.expr_rows(q, child.expr)
    }

    /// `Fn_sum`: a plan's cost is its local cost plus the best costs of
    /// its children (paper rules R6–R8).
    pub fn sum(local: Cost, l: Cost, r: Cost) -> Cost {
        local + l + r
    }

    /// Recursively costs a fully resolved plan tree (used by the
    /// executor-facing layers to compare plan candidates).
    pub fn plan_cost(&mut self, q: &QuerySpec, plan: &PlanNode) -> Cost {
        let alt = AltSpec {
            op: plan.op,
            left: plan
                .children
                .first()
                .map(|c| reopt_expr::ChildRef::new(c.expr, c.prop)),
            right: plan
                .children
                .get(1)
                .map(|c| reopt_expr::ChildRef::new(c.expr, c.prop)),
        };
        let local = self.local_cost(q, plan.expr, plan.prop, &alt);
        plan.children
            .iter()
            .fold(local, |acc, c| acc + self.plan_cost(q, c))
    }

    /// Whether an alternative's local cost may have changed under the
    /// given affected set — the seed predicate for incremental
    /// re-optimization dirty marking.
    pub fn alt_affected(&self, expr: ExprId, alt: &AltSpec, affected: &AffectedSet) -> bool {
        // Any contained cardinality change alters output/child rows.
        if affected
            .leaves_card
            .iter()
            .any(|l| expr.rel.contains(l.0))
        {
            return true;
        }
        // An edge selectivity change matters once both endpoints are in
        // the result set.
        if affected
            .edges
            .iter()
            .any(|&e| self.edge_rels(e).is_subset_of(expr.rel))
        {
            return true;
        }
        // Scan-cost changes hit the leaf's own access paths and INLJ
        // probes into it.
        affected.leaves_scan.iter().any(|l| match alt.op {
            PhysOp::FullScan | PhysOp::IndexScan { .. } => expr.rel == RelSet::singleton(l.0),
            PhysOp::IndexNLJoin { .. } => {
                alt.left.map(|c| c.expr.rel) == Some(RelSet::singleton(l.0))
            }
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_catalog::{CmpOp, ColumnStats, Datum, TableBuilder, TableStats};
    use reopt_expr::{enumerate_alts, ChildRef, JoinGraph};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let stats = |rows: f64, cols: usize| TableStats {
            row_count: rows,
            columns: (0..cols).map(|_| ColumnStats::uniform_key(rows)).collect(),
        };
        // `small` (100 rows), `big` (10k rows, indexed on k).
        c.add_table(
            |id| TableBuilder::new("small").int_col("k").build(id),
            stats(100.0, 1),
        );
        c.add_table(
            |id| {
                TableBuilder::new("big")
                    .int_col("k")
                    .int_col("v")
                    .index_on("k")
                    .build(id)
            },
            stats(10_000.0, 2),
        );
        c
    }

    fn query(c: &Catalog) -> QuerySpec {
        let mut b = QuerySpec::builder("q");
        let s = b.leaf(c, "small");
        let g = b.leaf(c, "big");
        b.join(c, s, "k", g, "k");
        b.filter(c, g, "v", CmpOp::Lt, Datum::Int(5000));
        b.build()
    }

    fn fixture() -> (QuerySpec, CostContext) {
        let c = catalog();
        let q = query(&c);
        let ctx = CostContext::new(&c, &q);
        (q, ctx)
    }

    #[test]
    fn leaf_rows_respect_filters() {
        let (q, mut ctx) = fixture();
        assert_eq!(ctx.leaf_out_rows(LeafId(0)), 100.0);
        // v < 5000 on a uniform 0..10k column: ~50%.
        let big = ctx.rows(&q, RelSet::singleton(1));
        assert!((big - 5000.0).abs() / 5000.0 < 0.05, "got {big}");
    }

    #[test]
    fn join_rows_use_edge_selectivity() {
        let (q, mut ctx) = fixture();
        // Keys both uniform over overlapping domains; small.k over 0..100,
        // big.k over 0..10000 — histogram overlap sel ≈ 1/10000 over the
        // shared range... just check the estimate is sane: out <= l*r and
        // out > 0.
        let l = ctx.rows(&q, RelSet::singleton(0));
        let r = ctx.rows(&q, RelSet::singleton(1));
        let out = ctx.rows(&q, RelSet(0b11));
        assert!(out > 0.0 && out <= l * r);
    }

    #[test]
    fn rows_cache_invalidated_by_deltas() {
        let (q, mut ctx) = fixture();
        let before = ctx.rows(&q, RelSet(0b11));
        let affected = ctx.apply(&[ParamDelta::EdgeSelectivity(EdgeId(0), 4.0)]);
        assert_eq!(affected.edges, vec![EdgeId(0)]);
        let after = ctx.rows(&q, RelSet(0b11));
        assert!((after / before - 4.0).abs() < 1e-6, "{before} -> {after}");
    }

    #[test]
    fn leaf_cardinality_factor_scales_rows() {
        let (q, mut ctx) = fixture();
        let before = ctx.rows(&q, RelSet::singleton(0));
        ctx.apply(&[ParamDelta::LeafCardinality(LeafId(0), 2.5)]);
        let after = ctx.rows(&q, RelSet::singleton(0));
        assert!((after / before - 2.5).abs() < 1e-9);
    }

    #[test]
    fn scan_cost_factor_scales_scan_only() {
        let (q, mut ctx) = fixture();
        let expr = ExprId::rel(RelSet::singleton(1));
        let g = JoinGraph::new(&q);
        let alts = enumerate_alts(&q, &g, expr, PhysProp::Any);
        let full = alts.iter().find(|a| a.op == PhysOp::FullScan).unwrap();
        let before = ctx.local_cost(&q, expr, PhysProp::Any, full);
        ctx.apply(&[ParamDelta::LeafScanCost(LeafId(1), 3.0)]);
        let after = ctx.local_cost(&q, expr, PhysProp::Any, full);
        assert!(after > before);
        // The other leaf's scan is untouched.
        let e0 = ExprId::rel(RelSet::singleton(0));
        let alts0 = enumerate_alts(&q, &g, e0, PhysProp::Any);
        let c0 = ctx.local_cost(&q, e0, PhysProp::Any, &alts0[0]);
        ctx.apply(&[ParamDelta::LeafScanCost(LeafId(1), 1.0)]);
        let c0_back = ctx.local_cost(&q, e0, PhysProp::Any, &alts0[0]);
        assert_eq!(c0, c0_back);
    }

    #[test]
    fn index_scan_with_covering_filter_beats_full_scan_when_selective() {
        let c = catalog();
        let mut b = QuerySpec::builder("sel");
        let g = b.leaf(&c, "big");
        b.filter(&c, g, "k", CmpOp::Lt, Datum::Int(100)); // ~1% match
        let q = b.build();
        let mut ctx = CostContext::new(&c, &q);
        let expr = ExprId::rel(RelSet::singleton(0));
        let graph = JoinGraph::new(&q);
        let alts = enumerate_alts(&q, &graph, expr, PhysProp::Any);
        let full = alts.iter().find(|a| a.op == PhysOp::FullScan).unwrap();
        let idx = alts
            .iter()
            .find(|a| matches!(a.op, PhysOp::IndexScan { .. }))
            .unwrap();
        let cf = ctx.local_cost(&q, expr, PhysProp::Any, full);
        let ci = ctx.local_cost(&q, expr, PhysProp::Any, idx);
        assert!(ci < cf, "index {ci:?} vs full {cf:?}");
    }

    #[test]
    fn indexed_prop_access_path_is_cheap() {
        let (q, mut ctx) = fixture();
        let expr = ExprId::rel(RelSet::singleton(1));
        let col = reopt_expr::LeafCol::new(1, 0);
        let alt = AltSpec {
            op: PhysOp::IndexScan { col },
            left: None,
            right: None,
        };
        let c = ctx.local_cost(&q, expr, PhysProp::Indexed(col), &alt);
        assert_eq!(c, Cost::new(ctx.unit_costs().index_base));
    }

    #[test]
    fn alt_affected_predicates() {
        let (q, ctx) = fixture();
        let join_expr = ExprId::rel(RelSet(0b11));
        let join_alt = AltSpec {
            op: PhysOp::HashJoin,
            left: Some(ChildRef::new(
                ExprId::rel(RelSet::singleton(0)),
                PhysProp::Any,
            )),
            right: Some(ChildRef::new(
                ExprId::rel(RelSet::singleton(1)),
                PhysProp::Any,
            )),
        };
        let scan_expr = ExprId::rel(RelSet::singleton(0));
        let scan_alt = AltSpec {
            op: PhysOp::FullScan,
            left: None,
            right: None,
        };
        let edge_change = AffectedSet {
            edges: vec![EdgeId(0)],
            ..Default::default()
        };
        assert!(ctx.alt_affected(join_expr, &join_alt, &edge_change));
        assert!(!ctx.alt_affected(scan_expr, &scan_alt, &edge_change));
        let scan_change = AffectedSet {
            leaves_scan: vec![LeafId(0)],
            ..Default::default()
        };
        assert!(ctx.alt_affected(scan_expr, &scan_alt, &scan_change));
        assert!(!ctx.alt_affected(join_expr, &join_alt, &scan_change));
        let card_change = AffectedSet {
            leaves_card: vec![LeafId(1)],
            ..Default::default()
        };
        assert!(ctx.alt_affected(join_expr, &join_alt, &card_change));
        assert!(!ctx.alt_affected(scan_expr, &scan_alt, &card_change));
        let _ = q;
    }

    #[test]
    fn plan_cost_sums_tree() {
        let (q, mut ctx) = fixture();
        let leaf = |i: u32| PlanNode {
            expr: ExprId::rel(RelSet::singleton(i)),
            prop: PhysProp::Any,
            op: PhysOp::FullScan,
            children: vec![],
        };
        let plan = PlanNode {
            expr: ExprId::rel(RelSet(0b11)),
            prop: PhysProp::Any,
            op: PhysOp::HashJoin,
            children: vec![leaf(0), leaf(1)],
        };
        let total = ctx.plan_cost(&q, &plan);
        let l0 = ctx.plan_cost(&q, &plan.children[0]);
        let l1 = ctx.plan_cost(&q, &plan.children[1]);
        assert!(total > l0 + l1);
        assert!(total.is_finite());
    }

    #[test]
    fn sum_matches_fn_sum_semantics() {
        assert_eq!(
            CostContext::sum(Cost::new(1.0), Cost::new(2.0), Cost::new(3.0)),
            Cost::new(6.0)
        );
        assert_eq!(
            CostContext::sum(Cost::new(1.0), Cost::INFINITY, Cost::ZERO),
            Cost::INFINITY
        );
    }
}
