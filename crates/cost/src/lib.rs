//! Cost model substrate: the paper's external functions
//! `Fn_scansummary`, `Fn_nonscansummary` (cardinality summaries),
//! `Fn_scancost`, `Fn_nonscancost` (operator costs) and `Fn_sum`
//! (paper §2.2), plus the runtime-updatable cost parameters whose
//! *deltas* drive incremental re-optimization (paper §4).

pub mod context;
pub mod params;

pub use context::CostContext;
pub use params::Factors;
pub use params::{AffectedSet, ParamDelta, UnitCosts};
