//! Runtime-updatable cost parameters.
//!
//! The paper's re-optimization scenarios (§4, §5.2) perturb exactly three
//! kinds of values at runtime: join selectivity estimates (Fig 5),
//! cardinalities observed from execution (Fig 6), and scan costs (Fig 8).
//! [`ParamDelta`] captures those as multiplicative factors relative to
//! the catalog-derived base estimates; a batch of deltas is the input to
//! `reoptimize`.

use reopt_common::FxHashMap;
use reopt_expr::{EdgeId, LeafId, RelSet};

/// Unit costs combining "CPU, I/O, bandwidth and energy into a single
/// cost metric" (paper §2.2). Values are per tuple unless noted.
#[derive(Clone, Debug, PartialEq)]
pub struct UnitCosts {
    /// Sequential read of one tuple (local scan).
    pub seq_scan: f64,
    /// Random index probe of one tuple.
    pub index_probe: f64,
    /// Fixed index lookup overhead per access path use.
    pub index_base: f64,
    /// Evaluating one predicate on one tuple.
    pub predicate: f64,
    /// Inserting one tuple into a hash table (build side).
    pub hash_build: f64,
    /// Probing the hash table with one tuple.
    pub hash_probe: f64,
    /// Advancing one tuple through a merge join.
    pub merge: f64,
    /// Per-tuple-per-comparison sort weight (multiplied by log2 n).
    pub sort: f64,
    /// Aggregating one input tuple (hash aggregation).
    pub agg_hash: f64,
    /// Aggregating one input tuple when the input is pre-sorted.
    pub agg_sorted: f64,
    /// Materializing one output tuple.
    pub output: f64,
}

impl Default for UnitCosts {
    fn default() -> UnitCosts {
        UnitCosts {
            seq_scan: 1.0,
            index_probe: 4.0,
            index_base: 50.0,
            predicate: 0.2,
            hash_build: 2.0,
            hash_probe: 1.0,
            merge: 0.8,
            sort: 0.35,
            agg_hash: 1.5,
            agg_sorted: 0.6,
            output: 0.5,
        }
    }
}

/// One runtime update to a cost parameter. All factors are multiplicative
/// *absolute* settings relative to the base estimate (setting the same
/// factor twice is idempotent, matching how observed statistics replace —
/// not compound — earlier ones).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamDelta {
    /// Scale the estimated selectivity of a join edge (Fig 5: "change to
    /// join selectivity estimate").
    EdgeSelectivity(EdgeId, f64),
    /// Scale the estimated output cardinality of a leaf, after filters
    /// (Fig 6: observed cardinalities from execution).
    LeafCardinality(LeafId, f64),
    /// Scale the per-tuple scan cost of a leaf (Fig 8: "Orders has
    /// updated scan cost").
    LeafScanCost(LeafId, f64),
}

/// Which parts of the query a batch of deltas touched; the optimizer uses
/// this to seed its dirty sets.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AffectedSet {
    pub leaves_card: Vec<LeafId>,
    pub edges: Vec<EdgeId>,
    pub leaves_scan: Vec<LeafId>,
}

impl AffectedSet {
    pub fn is_empty(&self) -> bool {
        self.leaves_card.is_empty() && self.edges.is_empty() && self.leaves_scan.is_empty()
    }
}

/// The mutable factor store.
#[derive(Clone, Debug, Default)]
pub struct Factors {
    pub edge_sel: FxHashMap<EdgeId, f64>,
    pub leaf_card: FxHashMap<LeafId, f64>,
    pub leaf_scan: FxHashMap<LeafId, f64>,
}

impl Factors {
    pub fn edge_sel(&self, e: EdgeId) -> f64 {
        self.edge_sel.get(&e).copied().unwrap_or(1.0)
    }

    pub fn leaf_card(&self, l: LeafId) -> f64 {
        self.leaf_card.get(&l).copied().unwrap_or(1.0)
    }

    pub fn leaf_scan(&self, l: LeafId) -> f64 {
        self.leaf_scan.get(&l).copied().unwrap_or(1.0)
    }

    /// Applies a batch, returning the parameters whose value actually
    /// changed (unchanged settings produce no dirty work, mirroring the
    /// delta semantics of §4).
    pub fn apply(&mut self, deltas: &[ParamDelta]) -> AffectedSet {
        let mut out = AffectedSet::default();
        for d in deltas {
            match *d {
                ParamDelta::EdgeSelectivity(e, f) => {
                    if self.edge_sel(e) != f {
                        self.edge_sel.insert(e, f);
                        out.edges.push(e);
                    }
                }
                ParamDelta::LeafCardinality(l, f) => {
                    if self.leaf_card(l) != f {
                        self.leaf_card.insert(l, f);
                        out.leaves_card.push(l);
                    }
                }
                ParamDelta::LeafScanCost(l, f) => {
                    if self.leaf_scan(l) != f {
                        self.leaf_scan.insert(l, f);
                        out.leaves_scan.push(l);
                    }
                }
            }
        }
        out
    }
}

impl AffectedSet {
    /// Leaf-set whose row estimates changed (cardinality factors and edge
    /// selectivities change `rows(rel)` for any rel containing them).
    pub fn rows_dirty_rels(&self, edge_rels: impl Fn(EdgeId) -> RelSet) -> Vec<RelSet> {
        let mut out: Vec<RelSet> = self
            .leaves_card
            .iter()
            .map(|l| RelSet::singleton(l.0))
            .collect();
        out.extend(self.edges.iter().map(|&e| edge_rels(e)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_one() {
        let f = Factors::default();
        assert_eq!(f.edge_sel(EdgeId(3)), 1.0);
        assert_eq!(f.leaf_card(LeafId(1)), 1.0);
        assert_eq!(f.leaf_scan(LeafId(0)), 1.0);
    }

    #[test]
    fn apply_reports_only_real_changes() {
        let mut f = Factors::default();
        let a = f.apply(&[
            ParamDelta::EdgeSelectivity(EdgeId(0), 2.0),
            ParamDelta::LeafScanCost(LeafId(1), 1.0), // no-op: already 1.0
        ]);
        assert_eq!(a.edges, vec![EdgeId(0)]);
        assert!(a.leaves_scan.is_empty());
        // Re-applying the same factor is a no-op.
        let b = f.apply(&[ParamDelta::EdgeSelectivity(EdgeId(0), 2.0)]);
        assert!(b.is_empty());
        // Changing it back is a change.
        let c = f.apply(&[ParamDelta::EdgeSelectivity(EdgeId(0), 1.0)]);
        assert_eq!(c.edges, vec![EdgeId(0)]);
    }

    #[test]
    fn factors_are_absolute_not_compounding() {
        let mut f = Factors::default();
        f.apply(&[ParamDelta::LeafCardinality(LeafId(2), 4.0)]);
        f.apply(&[ParamDelta::LeafCardinality(LeafId(2), 0.5)]);
        assert_eq!(f.leaf_card(LeafId(2)), 0.5);
    }
}
