//! Property tests for the delta engine: random delta sequences through
//! incremental operators must match naive recomputation from the final
//! multiset state — whatever the interleaving and multiplicities.

use proptest::prelude::*;

use reopt_datalog::value::{ints, Tuple};
use reopt_datalog::{
    AggKind, Dataflow, Distinct, GroupAgg, HashJoin, Map, NodeId, SchedulerMode, SinkId, Union,
};

/// A raw event: (side, key, payload, insert?).
type Event = (bool, u8, u8, bool);

fn events(max: usize) -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((any::<bool>(), 0u8..4, 0u8..6, any::<bool>()), 1..max)
}

/// Maintains the naive multiset view of one side.
fn apply_naive(state: &mut Vec<(i64, i64)>, key: u8, val: u8, insert: bool) {
    let row = (key as i64, val as i64);
    if insert {
        state.push(row);
    } else if let Some(pos) = state.iter().position(|r| *r == row) {
        state.swap_remove(pos);
    }
}

/// Builds the transitive-closure network under the given scheduler.
fn tc_network(mode: SchedulerMode) -> (Dataflow, NodeId, SinkId) {
    let mut df = Dataflow::with_mode(mode);
    let edge = df.add_input("edge");
    let union = df.add_op_unwired(Union::new(2));
    df.connect(edge, union, 0);
    let path = df.add_op(Distinct::new(), &[union]);
    let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
    df.connect(path, join, 0);
    df.connect(edge, join, 1);
    let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
    df.connect(proj, union, 1);
    let sink = df.add_sink(path);
    (df, edge, sink)
}

/// Builds the min-view network under the given scheduler.
fn min_network(mode: SchedulerMode) -> (Dataflow, NodeId, SinkId) {
    let mut df = Dataflow::with_mode(mode);
    let costs = df.add_input("costs");
    let agg = df.add_op(GroupAgg::new(vec![0], 1, AggKind::Min), &[costs]);
    let sink = df.add_sink(agg);
    (df, costs, sink)
}

/// Sink contents with multiplicities, sorted — the observational state
/// two schedulers must agree on.
fn sink_counted(df: &Dataflow, sink: SinkId) -> Vec<(Tuple, i64)> {
    let mut v: Vec<(Tuple, i64)> = df
        .sink(sink)
        .iter()
        .map(|(t, c)| (t.clone(), c))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Incremental join == naive join of the final states.
    #[test]
    fn incremental_join_matches_naive(evts in events(40)) {
        let mut df = Dataflow::new();
        let l = df.add_input("l");
        let r = df.add_input("r");
        let j = df.add_op(HashJoin::new(vec![0], vec![0]), &[l, r]);
        let sink = df.add_sink(j);
        type Tuples = Vec<(i64, i64)>;
        let (mut nl, mut nr): (Tuples, Tuples) = (vec![], vec![]);
        for (side, key, val, insert) in evts {
            // Skip deletions of absent tuples on the naive side, and
            // mirror exactly what we skipped (the engine tolerates
            // negative counts, but matching the oracle needs the same
            // event stream).
            let present = if side { &nl } else { &nr }.contains(&(key as i64, val as i64));
            if !insert && !present {
                continue;
            }
            let target = if side { l } else { r };
            let tup = ints(&[key as i64, val as i64]);
            if insert {
                df.insert(target, tup);
            } else {
                df.delete(target, tup);
            }
            apply_naive(if side { &mut nl } else { &mut nr }, key, val, insert);
        }
        df.run().unwrap();
        // Naive join with multiplicities.
        let mut expected: Vec<Tuple> = Vec::new();
        for &(lk, lv) in &nl {
            for &(rk, rv) in &nr {
                if lk == rk {
                    expected.push(ints(&[lk, lv, rk, rv]));
                }
            }
        }
        expected.sort();
        // The sink is a multiset; expand counts.
        let mut got: Vec<Tuple> = Vec::new();
        for (t, c) in df.sink(sink).iter() {
            prop_assert!(c > 0, "negative count at fixpoint");
            for _ in 0..c {
                got.push(t.clone());
            }
        }
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Incremental grouped MIN == recomputed MIN over final state.
    #[test]
    fn incremental_min_matches_naive(evts in events(40)) {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let agg = df.add_op(GroupAgg::new(vec![0], 1, AggKind::Min), &[input]);
        let sink = df.add_sink(agg);
        let mut naive: Vec<(i64, i64)> = vec![];
        for (_, key, val, insert) in evts {
            let present = naive.contains(&(key as i64, val as i64));
            if !insert && !present {
                continue;
            }
            let tup = ints(&[key as i64, val as i64]);
            if insert {
                df.insert(input, tup);
            } else {
                df.delete(input, tup);
            }
            apply_naive(&mut naive, key, val, insert);
        }
        df.run().unwrap();
        let mut expected: Vec<Tuple> = Vec::new();
        for key in 0..4i64 {
            if let Some(min) = naive.iter().filter(|t| t.0 == key).map(|t| t.1).min() {
                expected.push(ints(&[key, min]));
            }
        }
        expected.sort();
        prop_assert_eq!(df.sink(sink).sorted(), expected);
    }

    /// Batched + coalesced execution is observationally identical to the
    /// per-delta FIFO scheduler (the seed's semantics) on the recursive
    /// transitive-closure network: same sink contents *with counts* and
    /// no residual negative counts, over random insert/delete sequences.
    /// (Deletions of absent edges and duplicate edge insertions are
    /// filtered here — recursion over them need not converge; the
    /// min-view test below covers that regime on an acyclic network.)
    #[test]
    fn batched_scheduler_equivalent_on_tc(evts in events(30), step_runs in any::<bool>()) {
        let (mut batched, b_edge, b_sink) = tc_network(SchedulerMode::Batched);
        let (mut per_delta, p_edge, p_sink) = tc_network(SchedulerMode::PerDelta);
        let mut live: Vec<(i64, i64)> = vec![];
        for (_, a, b, insert) in evts {
            let (a, b) = (a.min(b), a.max(b));
            if a == b {
                continue; // keep the graph acyclic so counting terminates
            }
            // Only delete present edges (a deletion with no matching
            // insertion never converges on a recursive rule).
            let present = live.contains(&(a as i64, b as i64));
            if insert == present {
                continue;
            }
            apply_naive(&mut live, a, b, insert);
            let tup = ints(&[a as i64, b as i64]);
            for (df, input) in [(&mut batched, b_edge), (&mut per_delta, p_edge)] {
                if insert {
                    df.insert(input, tup.clone());
                } else {
                    df.delete(input, tup.clone());
                }
            }
            // Exercise both per-event fixpoints and one big final run.
            if step_runs {
                batched.run().unwrap();
                per_delta.run().unwrap();
            }
        }
        batched.run().unwrap();
        per_delta.run().unwrap();
        prop_assert!(!batched.sink(b_sink).has_negative_counts());
        prop_assert!(!per_delta.sink(p_sink).has_negative_counts());
        prop_assert_eq!(
            sink_counted(&batched, b_sink),
            sink_counted(&per_delta, p_sink)
        );
    }

    /// Same equivalence on the min-view network, where deltas carry
    /// aggregate updates (delete-old/insert-new pairs) — here deletions
    /// of absent tuples are fair game (negative counts just sit in the
    /// aggregate state).
    #[test]
    fn batched_scheduler_equivalent_on_min_view(evts in events(40), step_runs in any::<bool>()) {
        let (mut batched, b_in, b_sink) = min_network(SchedulerMode::Batched);
        let (mut per_delta, p_in, p_sink) = min_network(SchedulerMode::PerDelta);
        for (_, key, val, insert) in evts {
            let tup = ints(&[key as i64, val as i64]);
            for (df, input) in [(&mut batched, b_in), (&mut per_delta, p_in)] {
                if insert {
                    df.insert(input, tup.clone());
                } else {
                    df.delete(input, tup.clone());
                }
            }
            if step_runs {
                batched.run().unwrap();
                per_delta.run().unwrap();
            }
        }
        batched.run().unwrap();
        per_delta.run().unwrap();
        prop_assert!(!batched.sink(b_sink).has_negative_counts());
        prop_assert!(!per_delta.sink(p_sink).has_negative_counts());
        prop_assert_eq!(
            sink_counted(&batched, b_sink),
            sink_counted(&per_delta, p_sink)
        );
    }

    /// Incremental transitive closure == recomputed closure of the final
    /// edge set (acyclic edges: a < b keeps derivation counts finite for
    /// the counting algorithm, as in [14]).
    #[test]
    fn incremental_tc_matches_naive(evts in events(25)) {
        let mut df = Dataflow::new();
        let edge = df.add_input("edge");
        let union = df.add_op_unwired(Union::new(2));
        df.connect(edge, union, 0);
        let path = df.add_op(Distinct::new(), &[union]);
        let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
        df.connect(path, join, 0);
        df.connect(edge, join, 1);
        let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
        df.connect(proj, union, 1);
        let sink = df.add_sink(path);
        let mut naive: Vec<(i64, i64)> = vec![];
        for (_, a, b, insert) in evts {
            let (a, b) = (a.min(b), a.max(b));
            if a == b {
                continue; // no self loops (keeps the graph acyclic)
            }
            let present = naive.contains(&(a as i64, b as i64));
            if insert == present {
                continue; // keep edge multiset a set
            }
            let tup = ints(&[a as i64, b as i64]);
            if insert {
                df.insert(edge, tup);
            } else {
                df.delete(edge, tup);
            }
            apply_naive(&mut naive, a, b, insert);
            df.run().unwrap();
            // Floyd-Warshall style closure over the final edges.
            let mut reach = [[false; 8]; 8];
            for &(x, y) in &naive {
                reach[x as usize][y as usize] = true;
            }
            for k in 0..8 {
                for i in 0..8 {
                    for j in 0..8 {
                        if reach[i][k] && reach[k][j] {
                            reach[i][j] = true;
                        }
                    }
                }
            }
            let mut expected: Vec<Tuple> = Vec::new();
            for (i, row) in reach.iter().enumerate() {
                for (j, &r) in row.iter().enumerate() {
                    if r {
                        expected.push(ints(&[i as i64, j as i64]));
                    }
                }
            }
            expected.sort();
            prop_assert_eq!(df.sink(sink).sorted(), expected, "edges: {:?}", naive);
        }
    }
}
