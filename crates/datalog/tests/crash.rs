//! Crash-point differential harness for durable checkpoints: a network
//! is killed at a random point in its event stream, its last checkpoint
//! restored into a freshly built process image, and the remaining
//! events replayed — the survivor must be observationally identical to
//! an uninterrupted oracle, across the whole scheduler/fusion matrix.
//!
//! Also pins the corruption taxonomy: every single-bit flip and every
//! truncation of a checkpoint file must surface as
//! [`DataflowError::StateCorruption`] — never a panic, never a silent
//! restore of drifted state — and the cross-process tests prove that
//! interned symbols survive a restart whose interner assigned different
//! ids.

use proptest::prelude::*;

use reopt_datalog::checkpoint::write_atomic;
use reopt_datalog::value::{ints, tup, Tuple, Val};
use reopt_datalog::{
    AggKind, Dataflow, DataflowError, Distinct, GroupAgg, NodeId, SchedulerMode, SinkId,
};

mod common;
use common::{build, events, net_gen, sink_counted, Event};

const MATRIX: [(SchedulerMode, bool); 3] = [
    (SchedulerMode::Batched, false),
    (SchedulerMode::Batched, true),
    (SchedulerMode::PerDelta, false),
];

/// Resolves the raw event stream against set-like semantics once, so
/// the oracle and the victim apply byte-identical operation sequences.
fn effective_ops(evts: &[Event]) -> Vec<(usize, Tuple, bool)> {
    let mut live: [Vec<(i64, i64)>; 2] = [Vec::new(), Vec::new()];
    let mut ops = Vec::new();
    for (which, key, val, insert) in evts {
        let side = *which as usize;
        let row = (*key as i64, *val as i64);
        let present = live[side].contains(&row);
        if *insert == present {
            continue;
        }
        if *insert {
            live[side].push(row);
        } else {
            let at = live[side].iter().position(|r| *r == row).unwrap();
            live[side].swap_remove(at);
        }
        ops.push((side, ints(&[row.0, row.1]), *insert));
    }
    ops
}

fn apply(df: &mut Dataflow, inputs: &[NodeId; 2], op: &(usize, Tuple, bool)) {
    if op.2 {
        df.insert(inputs[op.0], op.1.clone());
    } else {
        df.delete(inputs[op.0], op.1.clone());
    }
}

/// Drives `ops[range]` with a fixpoint every `run_every` steps (step
/// indices are global, so oracle and survivor share one run schedule).
fn drive(
    df: &mut Dataflow,
    inputs: &[NodeId; 2],
    ops: &[(usize, Tuple, bool)],
    range: std::ops::Range<usize>,
    run_every: usize,
) {
    for step in range {
        apply(df, inputs, &ops[step]);
        if step % run_every == 0 {
            df.run().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The tentpole differential: kill the process at event `split`,
    /// restore the checkpoint into a freshly built network, replay the
    /// rest — sinks, epoch counters, and negative-count hygiene must
    /// match the uninterrupted oracle in every scheduler/fusion mode.
    /// The checkpoint is taken *between* runs, so whenever `split` does
    /// not land on a fixpoint step the file also carries queue residue
    /// (externals pushed but not yet run) that must survive the crash.
    #[test]
    fn restored_networks_match_the_uninterrupted_oracle(
        gen in net_gen(5),
        evts in events(24),
        run_every in 1usize..6,
        split_sel in any::<u16>(),
        sharing in any::<bool>(),
    ) {
        let ops = effective_ops(&evts);
        let split = split_sel as usize % (ops.len() + 1);
        for (mode, fusion) in MATRIX {
            // Uninterrupted oracle.
            let (mut oracle, o_in, o_sinks) = build(&gen, mode, fusion, sharing);
            drive(&mut oracle, &o_in, &ops, 0..ops.len(), run_every);
            oracle.run().unwrap();

            // Victim: runs to `split`, checkpoints, dies.
            let (mut victim, v_in, _) = build(&gen, mode, fusion, sharing);
            drive(&mut victim, &v_in, &ops, 0..split, run_every);
            let bytes = victim.checkpoint();
            let epoch_at_crash = victim.epoch();
            drop(victim);

            // Survivor: fresh graph, restore, replay the tail.
            let (mut survivor, s_in, s_sinks) = build(&gen, mode, fusion, sharing);
            let restored_epoch = survivor.restore(&bytes).unwrap();
            prop_assert_eq!(restored_epoch, epoch_at_crash);
            drive(&mut survivor, &s_in, &ops, split..ops.len(), run_every);
            survivor.run().unwrap();

            prop_assert_eq!(
                survivor.epoch(), oracle.epoch(),
                "epoch drift after restore under {:?}/fusion={}", mode, fusion
            );
            for (o, s) in o_sinks.iter().zip(&s_sinks) {
                prop_assert!(
                    !survivor.sink(*s).has_negative_counts(),
                    "negative counts after restore under {:?}/fusion={}", mode, fusion
                );
                prop_assert_eq!(
                    sink_counted(&oracle, *o),
                    sink_counted(&survivor, *s),
                    "sink mismatch after restore under {:?}/fusion={}", mode, fusion
                );
            }
        }
    }

    /// Seeded corruption: a random byte of a random network's checkpoint
    /// is bit-flipped; restore must refuse with `StateCorruption` (the
    /// CRC catches payload damage, the parser everything structural) and
    /// must never panic.
    #[test]
    fn seeded_bit_flips_are_always_detected(
        gen in net_gen(4),
        evts in events(16),
        byte_sel in any::<u32>(),
        bit in 0u8..8,
        sharing in any::<bool>(),
    ) {
        let ops = effective_ops(&evts);
        let (mut df, inputs, _) = build(&gen, SchedulerMode::Batched, true, sharing);
        drive(&mut df, &inputs, &ops, 0..ops.len(), 1);
        let mut bytes = df.checkpoint();
        let at = byte_sel as usize % bytes.len();
        bytes[at] ^= 1 << bit;
        let (mut fresh, _, _) = build(&gen, SchedulerMode::Batched, true, sharing);
        prop_assert!(
            matches!(fresh.restore(&bytes), Err(DataflowError::StateCorruption(_))),
            "flip of bit {} at byte {}/{} slipped through", bit, at, bytes.len()
        );
    }
}

/// A small fixed network with every stateful operator kind, warmed with
/// string-bearing tuples — the corruption and cross-process fixtures.
fn sym_net(mode: SchedulerMode) -> (Dataflow, NodeId, SinkId, SinkId) {
    let mut df = Dataflow::with_mode(mode);
    let input = df.add_input("r");
    let distinct = df.add_op(Distinct::new(), &[input]);
    let agg = df.add_op(GroupAgg::new(vec![0], 1, AggKind::Min), &[distinct]);
    let d_sink = df.add_sink(distinct);
    let a_sink = df.add_sink(agg);
    (df, input, d_sink, a_sink)
}

fn warm_sym_net(df: &mut Dataflow, input: NodeId) {
    for (k, v) in [
        ("alpha", "omega"),
        ("alpha", "beta"),
        ("gamma", "delta"),
        ("gamma", "epsilon"),
    ] {
        df.insert(input, tup([Val::str(k), Val::str(v)]));
    }
    df.run().unwrap();
    df.delete(input, tup([Val::str("alpha"), Val::str("beta")]));
    df.run().unwrap();
}

/// Exhaustive single-bit-flip sweep over a whole checkpoint file: every
/// one of the 8·len corrupted images must be rejected as
/// `StateCorruption` without panicking.
#[test]
fn every_bit_flip_in_a_checkpoint_is_detected() {
    let (mut df, input, _, _) = sym_net(SchedulerMode::Batched);
    warm_sym_net(&mut df, input);
    let bytes = df.checkpoint();
    for at in 0..bytes.len() {
        for bit in 0..8 {
            let mut evil = bytes.clone();
            evil[at] ^= 1 << bit;
            let (mut fresh, _, _, _) = sym_net(SchedulerMode::Batched);
            assert!(
                matches!(fresh.restore(&evil), Err(DataflowError::StateCorruption(_))),
                "flip of bit {bit} at byte {at} slipped through"
            );
        }
    }
}

/// Exhaustive truncation sweep: every torn prefix of a checkpoint —
/// the on-disk image a crash mid-write would leave without the atomic
/// rename protocol — is rejected, never partially restored into a
/// network that then reports success.
#[test]
fn every_truncation_of_a_checkpoint_is_detected() {
    let (mut df, input, _, _) = sym_net(SchedulerMode::Batched);
    warm_sym_net(&mut df, input);
    let bytes = df.checkpoint();
    for cut in 0..bytes.len() {
        let (mut fresh, _, _, _) = sym_net(SchedulerMode::Batched);
        assert!(
            matches!(
                fresh.restore(&bytes[..cut]),
                Err(DataflowError::StateCorruption(_))
            ),
            "truncation at {cut}/{} restored successfully",
            bytes.len()
        );
    }
}

/// A checkpoint of one topology must refuse to restore into another.
#[test]
fn topology_mismatch_is_corruption_not_misrestore() {
    let (mut df, input, _, _) = sym_net(SchedulerMode::Batched);
    warm_sym_net(&mut df, input);
    let bytes = df.checkpoint();
    let mut other = Dataflow::new();
    let oi = other.add_input("r");
    other.add_sink(oi);
    assert!(matches!(
        other.restore(&bytes),
        Err(DataflowError::StateCorruption(_))
    ));
}

/// Cross-process symbol remap: a child process — whose interner is
/// seeded with decoy strings so every shared string lands on a
/// *different* id — writes a checkpoint of the warmed fixture; the
/// parent restores it and must observe the same sinks as its own
/// uninterrupted oracle. Without the remap-on-restore pass the child's
/// symbol ids would resolve to the parent's decoys (or nothing at all).
#[test]
fn checkpoint_symbols_survive_a_process_boundary() {
    if let Ok(path) = std::env::var("REOPT_CRASH_CHILD_OUT") {
        // Child role: shift the interner's id space, warm, checkpoint.
        for i in 0..23 {
            reopt_datalog::Sym::intern(&format!("child-decoy-{i}"));
        }
        let (mut df, input, _, _) = sym_net(SchedulerMode::Batched);
        warm_sym_net(&mut df, input);
        write_atomic(std::path::Path::new(&path), &df.checkpoint()).unwrap();
        return;
    }

    let dir = std::env::temp_dir().join(format!("reopt-crash-xproc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("child.ckpt");
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["checkpoint_symbols_survive_a_process_boundary", "--exact"])
        .env("REOPT_CRASH_CHILD_OUT", &path)
        .status()
        .expect("re-exec the test binary as the child process");
    assert!(status.success(), "child process failed");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // Parent oracle: same fixture, uninterrupted, in *this* process.
    let (mut oracle, o_in, o_d, o_a) = sym_net(SchedulerMode::Batched);
    warm_sym_net(&mut oracle, o_in);

    let (mut restored, _, r_d, r_a) = sym_net(SchedulerMode::Batched);
    restored.restore(&bytes).unwrap();
    assert_eq!(sink_counted(&oracle, o_d), sink_counted(&restored, r_d));
    assert_eq!(sink_counted(&oracle, o_a), sink_counted(&restored, r_a));
    // Resolve one value all the way to its string to make the remap
    // visible: the MIN aggregate for key "alpha" is "omega" after the
    // deletion of "beta" (next-best recovery), whatever the ids were.
    let alpha = Val::str("alpha");
    let min_for_alpha = restored
        .sink(r_a)
        .iter()
        .find(|(t, _)| t.get(0) == alpha)
        .map(|(t, _)| t.get(1).as_sym().resolve())
        .expect("alpha group present");
    assert_eq!(&*min_for_alpha, "omega");
}

/// Restoring with checkpointed queue residue: deltas pushed but not yet
/// run at crash time survive the restart and reach the same fixpoint.
#[test]
fn queue_residue_survives_restore() {
    for (mode, fusion) in MATRIX {
        let (mut victim, input, _, _) = sym_net(mode);
        victim.set_fusion(fusion);
        warm_sym_net(&mut victim, input);
        // Pushed but never run: lives only in the queue.
        victim.insert(input, tup([Val::str("alpha"), Val::str("aardvark")]));
        let bytes = victim.checkpoint();
        drop(victim);

        let (mut survivor, _, s_d, s_a) = sym_net(mode);
        survivor.set_fusion(fusion);
        survivor.restore(&bytes).unwrap();
        survivor.run().unwrap();

        let (mut oracle, o_in, o_d, o_a) = sym_net(mode);
        oracle.set_fusion(fusion);
        warm_sym_net(&mut oracle, o_in);
        oracle.insert(o_in, tup([Val::str("alpha"), Val::str("aardvark")]));
        oracle.run().unwrap();

        assert_eq!(sink_counted(&oracle, o_d), sink_counted(&survivor, s_d));
        assert_eq!(sink_counted(&oracle, o_a), sink_counted(&survivor, s_a));
    }
}
