//! Chaos differential harness: random operator networks under random
//! insert/delete streams, with a fault injected at a random step of a
//! random run — either a deterministic injected fault or a starved step
//! budget. A failed epoch must roll back to the last committed
//! fixpoint, and a disarmed re-run must land on exactly the fixpoint a
//! fault-free twin reaches, across the full scheduler/fusion matrix,
//! with zero residual negative counts.

use proptest::prelude::*;

use reopt_datalog::value::ints;
use reopt_datalog::{Dataflow, DataflowError, FaultPlan, SchedulerMode};

mod common;
use common::{build, events, net_gen, sink_counted, Event};

/// Which failure the chaos run arms on the victim.
#[derive(Clone, Copy, Debug)]
enum Arm {
    /// `FaultPlan` fires once at the first run reaching the fault step.
    Injected,
    /// Step budget lowered to the fault step; restored after the overrun.
    Starved,
}

/// Runs the victim once; on failure, checks the error matches what was
/// armed, disarms, and re-runs — the rollback + replay that the bridge
/// ladder automates. Returns how many faults were absorbed (0 or 1).
fn run_victim(victim: &mut Dataflow, arm: Arm, budget: u64) -> u64 {
    match victim.run() {
        Ok(_) => 0,
        Err(e) => {
            match (arm, &e) {
                (Arm::Injected, DataflowError::InjectedFault { .. }) => {
                    victim.set_fault_plan(None)
                }
                (Arm::Starved, DataflowError::FixpointOverrun { .. }) => {
                    victim.set_max_steps(budget)
                }
                other => panic!("fault does not match what was armed: {other:?}"),
            }
            victim
                .run()
                .expect("the disarmed replay of a rolled-back epoch converges");
            1
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The chaos matrix: {Batched, Batched+fusion, PerDelta}, each mode
    /// running a fault-free oracle and a victim with one armed fault.
    /// After recovery the victim's every materialized sink must equal
    /// the oracle's, counts included.
    #[test]
    fn faulted_runs_recover_to_the_fault_free_fixpoint(
        gen in net_gen(5),
        evts in events(24),
        run_every in 1usize..6,
        fault_step in 1u64..40,
        starve in any::<bool>(),
        sharing in any::<bool>(),
    ) {
        let matrix = [
            (SchedulerMode::Batched, false),
            (SchedulerMode::Batched, true),
            (SchedulerMode::PerDelta, false),
        ];
        for &(mode, fusion) in &matrix {
            let (mut oracle, o_in, o_sinks) = build(&gen, mode, fusion, sharing);
            let (mut victim, v_in, v_sinks) = build(&gen, mode, fusion, sharing);
            let budget = victim.max_steps();
            let arm = if starve {
                victim.set_max_steps(fault_step);
                Arm::Starved
            } else {
                victim.set_fault_plan(Some(FaultPlan::one_shot(fault_step)));
                Arm::Injected
            };
            let mut faults = 0u64;
            // Set-like inputs (delete only present tuples) keep every
            // fixpoint's state non-negative.
            let mut live: [Vec<(i64, i64)>; 2] = [Vec::new(), Vec::new()];
            for (step, ev) in evts.iter().enumerate() {
                let (which, key, val, insert): Event = *ev;
                let side = which as usize;
                let row = (key as i64, val as i64);
                let present = live[side].contains(&row);
                if insert == present {
                    continue;
                }
                if insert {
                    live[side].push(row);
                } else {
                    let at = live[side].iter().position(|r| *r == row).unwrap();
                    live[side].swap_remove(at);
                }
                let tup = ints(&[row.0, row.1]);
                if insert {
                    oracle.insert(o_in[side], tup.clone());
                    victim.insert(v_in[side], tup);
                } else {
                    oracle.delete(o_in[side], tup.clone());
                    victim.delete(v_in[side], tup);
                }
                if step % run_every == 0 {
                    oracle.run().unwrap();
                    faults += run_victim(&mut victim, arm, budget);
                }
            }
            oracle.run().unwrap();
            faults += run_victim(&mut victim, arm, budget);
            prop_assert!(faults <= 1, "the single armed fault fired {faults} times");
            prop_assert_eq!(victim.rollbacks(), faults, "rollbacks != absorbed faults");
            for (o_sink, v_sink) in o_sinks.iter().zip(&v_sinks) {
                prop_assert!(
                    !victim.sink(*v_sink).has_negative_counts(),
                    "residual negative counts after recovery ({mode:?}, fusion={fusion})"
                );
                prop_assert_eq!(
                    sink_counted(&oracle, *o_sink),
                    sink_counted(&victim, *v_sink),
                    "recovered sink diverged from the fault-free oracle \
                     ({:?}, fusion={})", mode, fusion
                );
            }
        }
    }
}
