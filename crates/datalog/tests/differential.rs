//! Differential harness for the scheduler-mode matrix: random operator
//! networks (joins, maps, unions, distinct, grouped aggregation) are
//! executed under all of {`Batched`, `Batched`+fusion, `PerDelta`} and
//! must produce identical sink multisets — counts included — with zero
//! residual negative counts at every fixpoint.
//!
//! This pins the tentpole invariant of the batched/fused substrate: the
//! scheduler's service order, batch grouping, probe sharing, chain
//! fusion and coalescing are *performance* choices; the per-delta FIFO
//! execution remains the semantic reference.

use proptest::prelude::*;

use reopt_datalog::value::{ints, Tuple, Val};
use reopt_datalog::{
    AggKind, Dataflow, Distinct, GroupAgg, HashJoin, Map, NodeId, SchedulerMode, SinkId, Union,
};

/// One randomly generated operator stage. Input indices select from the
/// pool `[input0, input1, stage0, stage1, ...]` (mod pool size), so
/// every generated graph is a well-formed DAG over binary tuples.
#[derive(Clone, Debug)]
enum StageGen {
    /// Column swap — a pure projection.
    Swap(u8),
    /// Parity filter on column 0.
    Filter(u8, bool),
    /// Arithmetic map: `(c0, c1 + k)`.
    Shift(u8, i8),
    /// Equi-join on column 0 with a fused output projection back to a
    /// binary tuple.
    Join(u8, u8),
    Union(u8, u8),
    Distinct(u8),
    Agg(u8, u8),
}

/// A full network description: stages plus which stage outputs get
/// materialized (the last stage always does).
#[derive(Clone, Debug)]
struct NetGen {
    stages: Vec<StageGen>,
    sink_flags: Vec<bool>,
}

fn stage_gen() -> impl Strategy<Value = StageGen> {
    (0u8..7, any::<u8>(), any::<u8>(), any::<bool>(), any::<i8>()).prop_map(
        |(kind, a, b, flag, k)| match kind {
            0 => StageGen::Swap(a),
            1 => StageGen::Filter(a, flag),
            2 => StageGen::Shift(a, k),
            3 => StageGen::Join(a, b),
            4 => StageGen::Union(a, b),
            5 => StageGen::Distinct(a),
            _ => StageGen::Agg(a, b),
        },
    )
}

fn net_gen(max_stages: usize) -> impl Strategy<Value = NetGen> {
    (1..=max_stages).prop_flat_map(move |n| {
        (
            proptest::collection::vec(stage_gen(), n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(stages, sink_flags)| NetGen { stages, sink_flags })
    })
}

/// Instantiates the described network under one scheduler/fusion mode.
fn build(gen: &NetGen, mode: SchedulerMode, fusion: bool) -> (Dataflow, [NodeId; 2], Vec<SinkId>) {
    let mut df = Dataflow::with_mode(mode);
    df.set_fusion(fusion);
    let inputs = [df.add_input("r"), df.add_input("s")];
    let mut pool: Vec<NodeId> = inputs.to_vec();
    let mut sinks = Vec::new();
    let last = gen.stages.len() - 1;
    for (i, stage) in gen.stages.iter().enumerate() {
        let pick = |sel: u8| pool[sel as usize % pool.len()];
        let node = match stage {
            StageGen::Swap(a) => df.add_op(Map::project(vec![1, 0]), &[pick(*a)]),
            StageGen::Filter(a, parity) => {
                let want = i64::from(*parity);
                df.add_op(
                    Map::filter(move |t| t.get(0).as_int().rem_euclid(2) == want),
                    &[pick(*a)],
                )
            }
            StageGen::Shift(a, k) => {
                let k = *k as i64;
                df.add_op(
                    Map::new(move |t| {
                        Some(Tuple::new(vec![t.get(0), Val::Int(t.get(1).as_int() + k)]))
                    }),
                    &[pick(*a)],
                )
            }
            StageGen::Join(a, b) => df.add_op(
                // Key on column 0; project the virtual concat back to a
                // binary tuple (left payload, right payload).
                HashJoin::with_projection(vec![0], vec![0], vec![1, 3]),
                &[pick(*a), pick(*b)],
            ),
            StageGen::Union(a, b) => df.add_op(Union::new(2), &[pick(*a), pick(*b)]),
            StageGen::Distinct(a) => df.add_op(Distinct::new(), &[pick(*a)]),
            StageGen::Agg(a, kind) => {
                let kind = match kind % 4 {
                    0 => AggKind::Min,
                    1 => AggKind::Max,
                    2 => AggKind::Sum,
                    _ => AggKind::Count,
                };
                df.add_op(GroupAgg::new(vec![0], 1, kind), &[pick(*a)])
            }
        };
        if gen.sink_flags[i] || i == last {
            sinks.push(df.add_sink(node));
        }
        pool.push(node);
    }
    (df, inputs, sinks)
}

/// Sink contents with multiplicities, sorted — the observational state
/// all modes must agree on.
fn sink_counted(df: &Dataflow, sink: SinkId) -> Vec<(Tuple, i64)> {
    let mut v: Vec<(Tuple, i64)> = df.sink(sink).iter().map(|(t, c)| (t.clone(), c)).collect();
    v.sort();
    v
}

/// A raw event: (input selector, key, payload, insert?).
type Event = (bool, u8, u8, bool);

fn events(max: usize) -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((any::<bool>(), 0u8..4, 0u8..6, any::<bool>()), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The full matrix: {Batched, Batched+fusion, PerDelta} on random
    /// DAGs of all operator kinds agree on every materialized sink and
    /// leave no residual negative counts, under random set-like
    /// insert/delete streams with interleaved fixpoints.
    #[test]
    fn scheduler_modes_agree_on_random_networks(
        gen in net_gen(5),
        evts in events(24),
        run_every in 1usize..6,
    ) {
        let matrix = [
            (SchedulerMode::Batched, false),
            (SchedulerMode::Batched, true),
            (SchedulerMode::PerDelta, false),
        ];
        let mut nets: Vec<(Dataflow, [NodeId; 2], Vec<SinkId>)> =
            matrix.iter().map(|&(m, f)| build(&gen, m, f)).collect();
        // Set-like inputs (delete only present tuples) keep every
        // operator's fixpoint state non-negative.
        let mut live: [Vec<(i64, i64)>; 2] = [Vec::new(), Vec::new()];
        for (step, (which, key, val, insert)) in evts.iter().enumerate() {
            let side = *which as usize;
            let row = (*key as i64, *val as i64);
            let present = live[side].contains(&row);
            if *insert == present {
                continue;
            }
            if *insert {
                live[side].push(row);
            } else {
                let at = live[side].iter().position(|r| *r == row).unwrap();
                live[side].swap_remove(at);
            }
            let tup = ints(&[row.0, row.1]);
            for (df, inputs, _) in nets.iter_mut() {
                if *insert {
                    df.insert(inputs[side], tup.clone());
                } else {
                    df.delete(inputs[side], tup.clone());
                }
            }
            if step % run_every == 0 {
                for (df, _, _) in nets.iter_mut() {
                    df.run().unwrap();
                }
            }
        }
        for (df, _, _) in nets.iter_mut() {
            df.run().unwrap();
        }
        let (reference, rest) = nets.split_first().unwrap();
        for (i, (df, _, sinks)) in rest.iter().enumerate() {
            for (s_ref, s) in reference.2.iter().zip(sinks) {
                prop_assert!(
                    !df.sink(*s).has_negative_counts(),
                    "negative counts in {:?}", matrix[i + 1]
                );
                prop_assert_eq!(
                    sink_counted(&reference.0, *s_ref),
                    sink_counted(df, *s),
                    "sink mismatch: {:?} vs {:?}", matrix[0], matrix[i + 1]
                );
            }
        }
    }

    /// Fusion-focused slice of the matrix: single-consumer stateless
    /// chains (the shape fusion rewrites) produce identical sinks, the
    /// rewrite provably fires, and the run reports the dispatches it
    /// absorbed.
    #[test]
    fn fused_chains_match_unfused_and_collapse_dispatch(
        shifts in proptest::collection::vec(any::<i8>(), 2..6),
        keys in proptest::collection::vec((0u8..8, 0u8..8), 1..12),
    ) {
        let build_chain = |fusion: bool| {
            let mut df = Dataflow::new();
            df.set_fusion(fusion);
            let input = df.add_input("r");
            let mut node = input;
            for k in &shifts {
                let k = *k as i64;
                node = df.add_op(
                    Map::new(move |t| {
                        Some(Tuple::new(vec![t.get(0), Val::Int(t.get(1).as_int() + k)]))
                    }),
                    &[node],
                );
            }
            let sink = df.add_sink(node);
            (df, input, sink)
        };
        let (mut fused, f_in, f_sink) = build_chain(true);
        let (mut plain, p_in, p_sink) = build_chain(false);
        for (k, v) in &keys {
            fused.insert(f_in, ints(&[*k as i64, *v as i64]));
            plain.insert(p_in, ints(&[*k as i64, *v as i64]));
        }
        let f_stats = fused.run().unwrap();
        let p_stats = plain.run().unwrap();
        prop_assert_eq!(sink_counted(&fused, f_sink), sink_counted(&plain, p_sink));
        // The whole chain collapsed into one operator…
        prop_assert_eq!(fused.fused_node_count(), shifts.len() - 1);
        prop_assert_eq!(plain.fused_node_count(), 0);
        // …and the run visibly skipped the per-stage dispatches.
        prop_assert!(
            f_stats.fused_stages_saved >= (shifts.len() - 1) as u64,
            "no dispatch savings reported: {f_stats:?}"
        );
        prop_assert!(f_stats.batches_processed < p_stats.batches_processed
            || f_stats.deltas_processed < p_stats.deltas_processed,
            "fusion did not shrink scheduling: {f_stats:?} vs {p_stats:?}");
    }
}

/// The recursive transitive-closure network — cyclic, so it exercises
/// fusion + rank scheduling + counting deletions together — run under
/// the full mode matrix on a fixed churn script.
#[test]
fn scheduler_modes_agree_on_recursive_closure() {
    let tc = |mode: SchedulerMode, fusion: bool| {
        let mut df = Dataflow::with_mode(mode);
        df.set_fusion(fusion);
        let edge = df.add_input("edge");
        let union = df.add_op_unwired(Union::new(2));
        df.connect(edge, union, 0);
        let path = df.add_op(Distinct::new(), &[union]);
        let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
        df.connect(path, join, 0);
        df.connect(edge, join, 1);
        let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
        df.connect(proj, union, 1);
        let sink = df.add_sink(path);
        (df, edge, sink)
    };
    let script: &[(i64, i64, bool)] = &[
        (1, 2, true),
        (2, 3, true),
        (3, 4, true),
        (1, 3, true),
        (2, 3, false),
        (2, 4, true),
        (1, 3, false),
    ];
    let mut nets = [
        tc(SchedulerMode::Batched, false),
        tc(SchedulerMode::Batched, true),
        tc(SchedulerMode::PerDelta, false),
    ];
    for &(a, b, insert) in script {
        for (df, edge, _) in nets.iter_mut() {
            if insert {
                df.insert(*edge, ints(&[a, b]));
            } else {
                df.delete(*edge, ints(&[a, b]));
            }
            df.run().unwrap();
        }
    }
    let reference = sink_counted(&nets[0].0, nets[0].2);
    for (df, _, sink) in &nets[1..] {
        assert!(!df.sink(*sink).has_negative_counts());
        assert_eq!(reference, sink_counted(df, *sink));
    }
}
