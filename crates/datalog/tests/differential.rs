//! Differential harness for the scheduler-mode matrix: random operator
//! networks (joins, maps, unions, distinct, grouped aggregation) are
//! executed under all of {`Batched`, `Batched`+fusion, `PerDelta`},
//! each with and without shared arrangements, and must produce
//! identical sink multisets — counts included — with zero residual
//! negative counts at every fixpoint.
//!
//! This pins the tentpole invariant of the batched/fused substrate: the
//! scheduler's service order, batch grouping, probe sharing, shared
//! arrangements, chain fusion and coalescing are *performance* choices;
//! the per-delta FIFO execution with owned per-join indexes remains the
//! semantic reference.

use proptest::prelude::*;

use reopt_datalog::value::{ints, Tuple, Val};
use reopt_datalog::{Dataflow, Distinct, HashJoin, Map, NodeId, SchedulerMode, SinkId, Union};

mod common;
use common::{build, events, net_gen, sink_counted};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The full matrix: {Batched, Batched+fusion, PerDelta} on random
    /// DAGs of all operator kinds agree on every materialized sink and
    /// leave no residual negative counts, under random set-like
    /// insert/delete streams with interleaved fixpoints.
    #[test]
    fn scheduler_modes_agree_on_random_networks(
        gen in net_gen(5),
        evts in events(24),
        run_every in 1usize..6,
    ) {
        let matrix = [
            (SchedulerMode::Batched, false, false),
            (SchedulerMode::Batched, true, false),
            (SchedulerMode::PerDelta, false, false),
            // Arrangement-sharing variants: every join probes shared
            // indexes maintained once per source; must be
            // observationally identical to per-join owned indexes.
            (SchedulerMode::Batched, false, true),
            (SchedulerMode::Batched, true, true),
            (SchedulerMode::PerDelta, false, true),
        ];
        let mut nets: Vec<(Dataflow, [NodeId; 2], Vec<SinkId>)> =
            matrix.iter().map(|&(m, f, s)| build(&gen, m, f, s)).collect();
        // Set-like inputs (delete only present tuples) keep every
        // operator's fixpoint state non-negative.
        let mut live: [Vec<(i64, i64)>; 2] = [Vec::new(), Vec::new()];
        for (step, (which, key, val, insert)) in evts.iter().enumerate() {
            let side = *which as usize;
            let row = (*key as i64, *val as i64);
            let present = live[side].contains(&row);
            if *insert == present {
                continue;
            }
            if *insert {
                live[side].push(row);
            } else {
                let at = live[side].iter().position(|r| *r == row).unwrap();
                live[side].swap_remove(at);
            }
            let tup = ints(&[row.0, row.1]);
            for (df, inputs, _) in nets.iter_mut() {
                if *insert {
                    df.insert(inputs[side], tup.clone());
                } else {
                    df.delete(inputs[side], tup.clone());
                }
            }
            if step % run_every == 0 {
                for (df, _, _) in nets.iter_mut() {
                    df.run().unwrap();
                }
            }
        }
        for (df, _, _) in nets.iter_mut() {
            df.run().unwrap();
        }
        let (reference, rest) = nets.split_first().unwrap();
        for (i, (df, _, sinks)) in rest.iter().enumerate() {
            for (s_ref, s) in reference.2.iter().zip(sinks) {
                prop_assert!(
                    !df.sink(*s).has_negative_counts(),
                    "negative counts in {:?}", matrix[i + 1]
                );
                prop_assert_eq!(
                    sink_counted(&reference.0, *s_ref),
                    sink_counted(df, *s),
                    "sink mismatch: {:?} vs {:?}", matrix[0], matrix[i + 1]
                );
            }
        }
    }

    /// Fusion-focused slice of the matrix: single-consumer stateless
    /// chains (the shape fusion rewrites) produce identical sinks, the
    /// rewrite provably fires, and the run reports the dispatches it
    /// absorbed.
    #[test]
    fn fused_chains_match_unfused_and_collapse_dispatch(
        shifts in proptest::collection::vec(any::<i8>(), 2..6),
        keys in proptest::collection::vec((0u8..8, 0u8..8), 1..12),
    ) {
        let build_chain = |fusion: bool| {
            let mut df = Dataflow::new();
            df.set_fusion(fusion);
            let input = df.add_input("r");
            let mut node = input;
            for k in &shifts {
                let k = *k as i64;
                node = df.add_op(
                    Map::new(move |t| {
                        Some(Tuple::new(vec![t.get(0), Val::Int(t.get(1).as_int() + k)]))
                    }),
                    &[node],
                );
            }
            let sink = df.add_sink(node);
            (df, input, sink)
        };
        let (mut fused, f_in, f_sink) = build_chain(true);
        let (mut plain, p_in, p_sink) = build_chain(false);
        for (k, v) in &keys {
            fused.insert(f_in, ints(&[*k as i64, *v as i64]));
            plain.insert(p_in, ints(&[*k as i64, *v as i64]));
        }
        let f_stats = fused.run().unwrap();
        let p_stats = plain.run().unwrap();
        prop_assert_eq!(sink_counted(&fused, f_sink), sink_counted(&plain, p_sink));
        // The whole chain collapsed into one operator…
        prop_assert_eq!(fused.fused_node_count(), shifts.len() - 1);
        prop_assert_eq!(plain.fused_node_count(), 0);
        // …and the run visibly skipped the per-stage dispatches.
        prop_assert!(
            f_stats.fused_stages_saved >= (shifts.len() - 1) as u64,
            "no dispatch savings reported: {f_stats:?}"
        );
        prop_assert!(f_stats.batches_processed < p_stats.batches_processed
            || f_stats.deltas_processed < p_stats.deltas_processed,
            "fusion did not shrink scheduling: {f_stats:?} vs {p_stats:?}");
    }
}

/// The recursive transitive-closure network — cyclic, so it exercises
/// fusion + rank scheduling + counting deletions together — run under
/// the full mode matrix on a fixed churn script.
#[test]
fn scheduler_modes_agree_on_recursive_closure() {
    let tc = |mode: SchedulerMode, fusion: bool| {
        let mut df = Dataflow::with_mode(mode);
        df.set_fusion(fusion);
        let edge = df.add_input("edge");
        let union = df.add_op_unwired(Union::new(2));
        df.connect(edge, union, 0);
        let path = df.add_op(Distinct::new(), &[union]);
        let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
        df.connect(path, join, 0);
        df.connect(edge, join, 1);
        let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
        df.connect(proj, union, 1);
        let sink = df.add_sink(path);
        (df, edge, sink)
    };
    let script: &[(i64, i64, bool)] = &[
        (1, 2, true),
        (2, 3, true),
        (3, 4, true),
        (1, 3, true),
        (2, 3, false),
        (2, 4, true),
        (1, 3, false),
    ];
    let mut nets = [
        tc(SchedulerMode::Batched, false),
        tc(SchedulerMode::Batched, true),
        tc(SchedulerMode::PerDelta, false),
    ];
    for &(a, b, insert) in script {
        for (df, edge, _) in nets.iter_mut() {
            if insert {
                df.insert(*edge, ints(&[a, b]));
            } else {
                df.delete(*edge, ints(&[a, b]));
            }
            df.run().unwrap();
        }
    }
    let reference = sink_counted(&nets[0].0, nets[0].2);
    for (df, _, sink) in &nets[1..] {
        assert!(!df.sink(*sink).has_negative_counts());
        assert_eq!(reference, sink_counted(df, *sink));
    }
}
