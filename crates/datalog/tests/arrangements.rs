//! Shared-arrangement fixtures: one `Arrange` node maintains a keyed
//! index once per epoch and several `HashJoin`s probe it, replacing the
//! per-join owned copies. These hand-built nets pin the observational
//! contract — identical sinks to owned-index twins in every scheduler
//! mode — plus rollback of shared state on a failed epoch, shared state
//! surviving checkpoint/restore, and the wiring bans (same arrangement
//! on both ports, key-signature mismatch).

use reopt_datalog::value::ints;
use reopt_datalog::{
    Arrange, Dataflow, DataflowError, FaultPlan, HashJoin, NodeId, SchedulerMode, SinkId,
};

const MODES: [SchedulerMode; 2] = [SchedulerMode::Batched, SchedulerMode::PerDelta];

/// Three inputs; one arrangement over `a` (keyed on column 0) probed by
/// three joins — twice on the left port, once on the right — or, with
/// `sharing` off, the identical graph with owned per-join indexes.
fn fixture(mode: SchedulerMode, sharing: bool) -> (Dataflow, [NodeId; 3], [SinkId; 3]) {
    let mut df = Dataflow::with_mode(mode);
    let a = df.add_input("a");
    let b = df.add_input("b");
    let c = df.add_input("c");
    let join = || HashJoin::with_projection(vec![0], vec![0], vec![1, 3]);
    let (j1, j2, j3) = if sharing {
        let arr = Arrange::new(vec![0]);
        let h = arr.handle();
        let arr_n = df.add_op(arr, &[a]);
        (
            df.add_op(join().share_left(h.clone()), &[arr_n, b]),
            df.add_op(join().share_left(h.clone()), &[arr_n, c]),
            df.add_op(join().share_right(h), &[b, arr_n]),
        )
    } else {
        (
            df.add_op(join(), &[a, b]),
            df.add_op(join(), &[a, c]),
            df.add_op(join(), &[b, a]),
        )
    };
    let sinks = [df.add_sink(j1), df.add_sink(j2), df.add_sink(j3)];
    (df, [a, b, c], sinks)
}

/// (input index, key, payload, insert?) — exercises inserts, updates
/// landing in the same batch, and deletions of previously joined rows.
const SCRIPT: [(usize, i64, i64, bool); 12] = [
    (0, 1, 10, true),
    (1, 1, 20, true),
    (2, 1, 30, true),
    (0, 2, 11, true),
    (1, 2, 21, true),
    (0, 1, 12, true),
    (1, 1, 20, false),
    (2, 2, 31, true),
    (0, 1, 10, false),
    (1, 1, 22, true),
    (0, 3, 13, true),
    (2, 1, 30, false),
];

fn drive(df: &mut Dataflow, inputs: &[NodeId; 3], upto: usize, run_every: usize) {
    for (step, &(side, k, v, insert)) in SCRIPT[..upto].iter().enumerate() {
        let t = ints(&[k, v]);
        if insert {
            df.insert(inputs[side], t);
        } else {
            df.delete(inputs[side], t);
        }
        if step % run_every == 0 {
            df.run().unwrap();
        }
    }
    df.run().unwrap();
}

fn sink_counted(df: &Dataflow, sink: SinkId) -> Vec<(reopt_datalog::Tuple, i64)> {
    let mut v: Vec<_> = df.sink(sink).iter().map(|(t, c)| (t.clone(), c)).collect();
    v.sort();
    v
}

#[test]
fn shared_joins_match_owned_joins() {
    for mode in MODES {
        for run_every in [1, 3, SCRIPT.len()] {
            let (mut shared, s_in, s_sinks) = fixture(mode, true);
            let (mut owned, o_in, o_sinks) = fixture(mode, false);
            drive(&mut shared, &s_in, SCRIPT.len(), run_every);
            drive(&mut owned, &o_in, SCRIPT.len(), run_every);
            for (s, o) in s_sinks.iter().zip(&o_sinks) {
                assert!(!shared.sink(*s).has_negative_counts());
                assert_eq!(
                    sink_counted(&shared, *s),
                    sink_counted(&owned, *o),
                    "shared/owned divergence under {mode:?}, run_every={run_every}"
                );
            }
        }
    }
}

/// A failed epoch must roll the shared index back with everything else:
/// after the injected fault the disarmed replay and all later probes of
/// the arrangement land on the fault-free twin's fixpoint exactly.
#[test]
fn shared_state_rolls_back_with_the_epoch() {
    for mode in MODES {
        for fault_step in [1u64, 2, 4, 7] {
            let (mut victim, v_in, v_sinks) = fixture(mode, true);
            let (mut oracle, o_in, o_sinks) = fixture(mode, true);
            victim.set_fault_plan(Some(FaultPlan::one_shot(fault_step)));
            let mut faults = 0;
            for (step, &(side, k, v, insert)) in SCRIPT.iter().enumerate() {
                let t = ints(&[k, v]);
                if insert {
                    victim.insert(v_in[side], t.clone());
                    oracle.insert(o_in[side], t);
                } else {
                    victim.delete(v_in[side], t.clone());
                    oracle.delete(o_in[side], t);
                }
                if step % 2 == 0 {
                    oracle.run().unwrap();
                    match victim.run() {
                        Ok(_) => {}
                        Err(DataflowError::InjectedFault { .. }) => {
                            faults += 1;
                            victim.set_fault_plan(None);
                            victim.run().unwrap();
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
            oracle.run().unwrap();
            victim.run().unwrap();
            assert_eq!(faults, 1, "fault never fired under {mode:?}@{fault_step}");
            assert_eq!(victim.rollbacks(), 1);
            for (v, o) in v_sinks.iter().zip(&o_sinks) {
                assert_eq!(
                    sink_counted(&victim, *v),
                    sink_counted(&oracle, *o),
                    "rolled-back shared state diverged under {mode:?}@{fault_step}"
                );
            }
        }
    }
}

/// The arrangement's index is checkpointed once (by its `Arrange` node)
/// and restored into a freshly built graph whose joins re-attach to the
/// new handle; replaying the scripted tail must land on the oracle.
#[test]
fn shared_state_survives_checkpoint_restore() {
    for mode in MODES {
        for split in [0, 5, SCRIPT.len()] {
            let (mut oracle, o_in, o_sinks) = fixture(mode, true);
            drive(&mut oracle, &o_in, SCRIPT.len(), 2);

            let (mut victim, v_in, _) = fixture(mode, true);
            drive(&mut victim, &v_in, split, 2);
            let bytes = victim.checkpoint();
            drop(victim);

            let (mut survivor, s_in, s_sinks) = fixture(mode, true);
            survivor.restore(&bytes).unwrap();
            for &(side, k, v, insert) in &SCRIPT[split..] {
                let t = ints(&[k, v]);
                if insert {
                    survivor.insert(s_in[side], t);
                } else {
                    survivor.delete(s_in[side], t);
                }
                survivor.run().unwrap();
            }
            // The oracle drove every step through fixpoints too; only
            // the run grouping differs, which sinks are insensitive to.
            for (s, o) in s_sinks.iter().zip(&o_sinks) {
                assert_eq!(
                    sink_counted(&survivor, *s),
                    sink_counted(&oracle, *o),
                    "restored shared state diverged under {mode:?}, split={split}"
                );
            }
        }
    }
}

/// The same arrangement on both ports of one join would count the
/// current batch's delta×delta contribution twice — banned at wiring.
#[test]
#[should_panic(expected = "both ports")]
fn same_arrangement_on_both_ports_is_rejected() {
    let arr = Arrange::new(vec![0]);
    let h = arr.handle();
    let _ = HashJoin::new(vec![0], vec![0])
        .share_left(h.clone())
        .share_right(h);
}

/// An arrangement keyed differently from the join port it feeds would
/// probe the wrong buckets — banned at wiring.
#[test]
#[should_panic(expected = "key")]
fn key_signature_mismatch_is_rejected() {
    let arr = Arrange::new(vec![1]);
    let _ = HashJoin::new(vec![0], vec![0]).share_left(arr.handle());
}
