//! Dedicated edge-case coverage for the process-wide string interner
//! (`reopt_datalog::intern`): symbol reuse across independent
//! dataflows and threads, guard behaviour at the `u32` id boundary, and
//! the interned-string tuple-packing round trip.

use reopt_datalog::value::{ints, tup, Val};
use reopt_datalog::{Dataflow, Distinct, HashJoin, Sym};

/// Symbols are process-wide: two independently built dataflows intern
/// the same strings to the same ids, so tuples flow between them (and
/// join against each other) by value.
#[test]
fn symbols_are_shared_across_dataflows() {
    let scan = Val::str("intern-test-scan");
    let build = || {
        let mut df = Dataflow::new();
        let input = df.add_input("ops");
        let distinct = df.add_op(Distinct::new(), &[input]);
        let sink = df.add_sink(distinct);
        (df, input, sink)
    };
    let (mut a, a_in, a_sink) = build();
    let (mut b, b_in, b_sink) = build();
    a.insert(a_in, tup([scan, Val::Int(1)]));
    // The second dataflow re-interns the same text independently.
    b.insert(b_in, tup([Val::str("intern-test-scan"), Val::Int(1)]));
    a.run().unwrap();
    b.run().unwrap();
    assert_eq!(a.sink(a_sink).sorted(), b.sink(b_sink).sorted());
    // And the sink tuples carry the *same* symbol id.
    let from_a = a.sink(a_sink).sorted()[0].get(0).as_sym();
    let from_b = b.sink(b_sink).sorted()[0].get(0).as_sym();
    assert_eq!(from_a.id(), from_b.id());
}

/// Interning the same string from several threads yields one id — the
/// table is a single process-wide map behind a lock.
#[test]
fn concurrent_interning_is_idempotent() {
    let ids: Vec<u32> = std::thread::scope(|s| {
        (0..4)
            .map(|_| s.spawn(|| Sym::intern("intern-test-threaded").id()))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert!(ids.windows(2).all(|w| w[0] == w[1]), "ids diverged: {ids:?}");
}

/// Round trip near the top of the id space: a symbol fabricated at
/// `u32::MAX` packs into a tuple word and unpacks to the same id (the
/// `u32 → i64 → u32` cast chain loses nothing), without ever resolving
/// the (nonexistent) table entry.
#[test]
fn id_boundary_packs_round_trip() {
    for id in [u32::MAX, u32::MAX - 1, 1 << 31] {
        let sym = Sym::from_id(id);
        assert_eq!(sym.id(), id);
        let t = tup([Val::Str(sym), Val::Int(7)]);
        assert_eq!(t.get(0), Val::Str(sym));
        assert_eq!(t.get(0).as_sym().id(), id);
        // Equality and hashing work on the packed id alone.
        assert_eq!(t, tup([Val::Str(Sym::from_id(id)), Val::Int(7)]));
        assert_ne!(t, tup([Val::Str(Sym::from_id(id ^ 1)), Val::Int(7)]));
    }
}

/// Resolving a fabricated id that was never interned panics (the guard
/// against aliasing a real symbol) instead of returning garbage.
#[test]
fn fabricated_id_resolution_panics() {
    let result = std::panic::catch_unwind(|| Sym::from_id(u32::MAX).resolve());
    assert!(result.is_err(), "resolve of a fabricated id must panic");
}

/// Interned strings pack inline and survive the projection/concat
/// round trip taken by join outputs, across the inline/spilled
/// representation boundary.
#[test]
fn interned_tuple_packing_round_trip() {
    let op = Val::str("intern-test-hash-join");
    let wide = tup([op, Val::Int(1), Val::Int(2), Val::Int(3)])
        .concat(&tup([Val::str("intern-test-tail")]));
    assert_eq!(wide.len(), 5); // spilled
    let narrow = wide.project(&[0, 4]); // re-packed inline
    assert_eq!(narrow.get(0), op);
    assert_eq!(narrow.get(1), Val::str("intern-test-tail"));
    assert_eq!(&*narrow.get(0).as_sym().resolve(), "intern-test-hash-join");
    // Key hashing agrees across representations, so a string-keyed
    // join matches spilled build tuples against inline probes.
    assert_eq!(wide.hash_cols(&[0]), narrow.hash_cols(&[0]));
    let mut df = Dataflow::new();
    let l = df.add_input("l");
    let r = df.add_input("r");
    let join = df.add_op(HashJoin::new(vec![0], vec![0]), &[l, r]);
    let sink = df.add_sink(join);
    df.insert(l, wide.clone());
    df.insert(r, narrow.clone());
    df.run().unwrap();
    assert_eq!(df.sink(sink).sorted(), vec![wide.concat(&narrow)]);
}

/// Symbol ordering stays lexicographic through tuple comparisons even
/// when interning order disagrees with it (ids ascend, strings do not).
#[test]
fn tuple_ordering_follows_strings_not_ids() {
    let late = Val::str("intern-test-0b-late");
    let early = Val::str("intern-test-0z-early");
    assert!(late.as_sym().id() < early.as_sym().id() || late < early);
    assert!(tup([late]) < tup([early]));
    assert!(ints(&[5]) < tup([late])); // Int < Str in the Val order
}
