//! Shared generators for the differential and chaos harnesses: random
//! operator networks over all operator kinds, instantiated under any
//! scheduler/fusion mode, plus set-like input event streams.
#![allow(dead_code)]

use std::collections::HashMap;

use proptest::prelude::*;

use reopt_datalog::value::{Tuple, Val};
use reopt_datalog::{
    AggKind, Arrange, ArrangementHandle, Dataflow, Distinct, GroupAgg, HashJoin, Map, NodeId,
    SchedulerMode, SinkId, Union,
};

/// One randomly generated operator stage. Input indices select from the
/// pool `[input0, input1, stage0, stage1, ...]` (mod pool size), so
/// every generated graph is a well-formed DAG over binary tuples.
#[derive(Clone, Debug)]
pub enum StageGen {
    /// Column swap — a pure projection.
    Swap(u8),
    /// Parity filter on column 0.
    Filter(u8, bool),
    /// Arithmetic map: `(c0, c1 + k)`.
    Shift(u8, i8),
    /// Equi-join on column 0 with a fused output projection back to a
    /// binary tuple.
    Join(u8, u8),
    Union(u8, u8),
    Distinct(u8),
    Agg(u8, u8),
}

/// A full network description: stages plus which stage outputs get
/// materialized (the last stage always does).
#[derive(Clone, Debug)]
pub struct NetGen {
    pub stages: Vec<StageGen>,
    pub sink_flags: Vec<bool>,
}

pub fn stage_gen() -> impl Strategy<Value = StageGen> {
    (0u8..7, any::<u8>(), any::<u8>(), any::<bool>(), any::<i8>()).prop_map(
        |(kind, a, b, flag, k)| match kind {
            0 => StageGen::Swap(a),
            1 => StageGen::Filter(a, flag),
            2 => StageGen::Shift(a, k),
            3 => StageGen::Join(a, b),
            4 => StageGen::Union(a, b),
            5 => StageGen::Distinct(a),
            _ => StageGen::Agg(a, b),
        },
    )
}

pub fn net_gen(max_stages: usize) -> impl Strategy<Value = NetGen> {
    (1..=max_stages).prop_flat_map(move |n| {
        (
            proptest::collection::vec(stage_gen(), n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(|(stages, sink_flags)| NetGen { stages, sink_flags })
    })
}

/// Instantiates the described network under one scheduler/fusion/
/// arrangement-sharing mode. With `sharing` on, every join input gets
/// an [`Arrange`] node (keyed on column 0, deduplicated per source
/// node) and the join attaches the shared index instead of building an
/// owned copy — except a self-join's right side, which stays owned (the
/// same arrangement must never feed both ports of one join).
pub fn build(
    gen: &NetGen,
    mode: SchedulerMode,
    fusion: bool,
    sharing: bool,
) -> (Dataflow, [NodeId; 2], Vec<SinkId>) {
    let mut df = Dataflow::with_mode(mode);
    df.set_fusion(fusion);
    let inputs = [df.add_input("r"), df.add_input("s")];
    let mut pool: Vec<NodeId> = inputs.to_vec();
    let mut sinks = Vec::new();
    let mut arrangements: HashMap<NodeId, (NodeId, ArrangementHandle)> = HashMap::new();
    let last = gen.stages.len() - 1;
    for (i, stage) in gen.stages.iter().enumerate() {
        let pick = |sel: u8| pool[sel as usize % pool.len()];
        let node = match stage {
            StageGen::Swap(a) => df.add_op(Map::project(vec![1, 0]), &[pick(*a)]),
            StageGen::Filter(a, parity) => {
                let want = i64::from(*parity);
                df.add_op(
                    Map::filter(move |t| t.get(0).as_int().rem_euclid(2) == want),
                    &[pick(*a)],
                )
            }
            StageGen::Shift(a, k) => {
                let k = *k as i64;
                df.add_op(
                    Map::new(move |t| {
                        Some(Tuple::new(vec![t.get(0), Val::Int(t.get(1).as_int() + k)]))
                    }),
                    &[pick(*a)],
                )
            }
            StageGen::Join(a, b) => {
                let (l, r) = (pick(*a), pick(*b));
                // Key on column 0; project the virtual concat back to a
                // binary tuple (left payload, right payload).
                let join = HashJoin::with_projection(vec![0], vec![0], vec![1, 3]);
                if sharing {
                    let (l_node, l_handle) = arrangements
                        .entry(l)
                        .or_insert_with(|| {
                            let op = Arrange::new(vec![0]);
                            let h = op.handle();
                            (df.add_op(op, &[l]), h)
                        })
                        .clone();
                    let join = join.share_left(l_handle);
                    let (join, r_node) = if r == l {
                        (join, r)
                    } else {
                        let (r_node, r_handle) = arrangements
                            .entry(r)
                            .or_insert_with(|| {
                                let op = Arrange::new(vec![0]);
                                let h = op.handle();
                                (df.add_op(op, &[r]), h)
                            })
                            .clone();
                        (join.share_right(r_handle), r_node)
                    };
                    df.add_op(join, &[l_node, r_node])
                } else {
                    df.add_op(join, &[l, r])
                }
            }
            StageGen::Union(a, b) => df.add_op(Union::new(2), &[pick(*a), pick(*b)]),
            StageGen::Distinct(a) => df.add_op(Distinct::new(), &[pick(*a)]),
            StageGen::Agg(a, kind) => {
                let kind = match kind % 4 {
                    0 => AggKind::Min,
                    1 => AggKind::Max,
                    2 => AggKind::Sum,
                    _ => AggKind::Count,
                };
                df.add_op(GroupAgg::new(vec![0], 1, kind), &[pick(*a)])
            }
        };
        if gen.sink_flags[i] || i == last {
            sinks.push(df.add_sink(node));
        }
        pool.push(node);
    }
    (df, inputs, sinks)
}

/// Sink contents with multiplicities, sorted — the observational state
/// all modes must agree on.
pub fn sink_counted(df: &Dataflow, sink: SinkId) -> Vec<(Tuple, i64)> {
    let mut v: Vec<(Tuple, i64)> = df.sink(sink).iter().map(|(t, c)| (t.clone(), c)).collect();
    v.sort();
    v
}

/// A raw event: (input selector, key, payload, insert?).
pub type Event = (bool, u8, u8, bool);

pub fn events(max: usize) -> impl Strategy<Value = Vec<Event>> {
    proptest::collection::vec((any::<bool>(), 0u8..4, 0u8..6, any::<bool>()), 1..max)
}
