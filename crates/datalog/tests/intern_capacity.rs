//! Interner exhaustion lives in its own test binary: the capacity
//! override is process-global, and starving the id space would make
//! unrelated tests sharing the interner abort. Keep this the only test
//! here.

use reopt_datalog::{set_intern_capacity, DataflowError, Sym};

/// Id exhaustion surfaces as `StateCorruption` — routable through the
/// rollback/degradation ladder — never a process abort, and already
/// interned symbols keep resolving.
#[test]
fn interner_exhaustion_is_corruption_not_abort() {
    let seed = Sym::intern("cap-test-seed");
    // Leave room for exactly one more fresh symbol.
    let cap = seed.id() + 2;
    let prev = set_intern_capacity(cap);
    let fits = Sym::try_intern("cap-test-fits").expect("one id left");
    assert_eq!(fits.id() + 1, cap);
    // Known strings stay internable at full capacity (no new id needed).
    assert_eq!(Sym::try_intern("cap-test-seed").unwrap(), seed);
    assert_eq!(&*fits.resolve(), "cap-test-fits");
    let err = Sym::try_intern("cap-test-overflows").unwrap_err();
    assert!(
        matches!(err, DataflowError::StateCorruption(_)),
        "expected StateCorruption, got: {err}"
    );
    set_intern_capacity(prev);
    // Nothing was poisoned: with the ceiling lifted the same string
    // interns normally.
    let late = Sym::try_intern("cap-test-overflows").unwrap();
    assert_eq!(&*late.resolve(), "cap-test-overflows");
}
