//! Dataflow operators. Each consumes delta tuples on its input ports and
//! emits delta tuples, "largely as if they were standard tuples" (§4):
//! (1) update internal state, (2) evaluate internal computations,
//! (3) construct output deltas.

use reopt_common::FxHashMap;

use crate::agg::{AggKind, OrderedMultiset};
use crate::delta::Delta;
use crate::relation::{IndexedMultiset, Multiset, Visibility};
use crate::value::Tuple;

/// A dataflow operator.
pub trait Operator {
    /// Processes one input delta arriving on `port`, appending output
    /// deltas to `out`.
    fn on_delta(&mut self, port: usize, delta: &Delta, out: &mut Vec<Delta>);

    /// Number of input ports.
    fn arity(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str;
}

/// The transformation a [`Map`] applies per tuple.
pub type MapFn = Box<dyn FnMut(&Tuple) -> Option<Tuple>>;

/// Stateless map/filter: applies a function to each tuple; `None` drops
/// it. Counts pass through unchanged (linear operator).
pub struct Map {
    f: MapFn,
}

impl Map {
    pub fn new(f: impl FnMut(&Tuple) -> Option<Tuple> + 'static) -> Map {
        Map { f: Box::new(f) }
    }

    /// Pure projection of the given columns.
    pub fn project(cols: Vec<usize>) -> Map {
        Map::new(move |t| Some(t.project(&cols)))
    }

    /// Pure filter.
    pub fn filter(mut pred: impl FnMut(&Tuple) -> bool + 'static) -> Map {
        Map::new(move |t| pred(t).then(|| t.clone()))
    }
}

impl Operator for Map {
    fn on_delta(&mut self, _port: usize, delta: &Delta, out: &mut Vec<Delta>) {
        if let Some(t) = (self.f)(&delta.tuple) {
            out.push(Delta::with_count(t, delta.count));
        }
    }

    fn name(&self) -> &'static str {
        "map"
    }
}

/// Incremental equi-join following the delta rules of [14]: a delta on
/// one side joins the *current* state of the other side
/// (`ΔL ⋈ R  ∪  L' ⋈ ΔR`), with multiplicities multiplied (bilinear).
/// Output tuples are `left ++ right`.
pub struct HashJoin {
    left: IndexedMultiset,
    right: IndexedMultiset,
}

impl HashJoin {
    pub fn new(left_key: Vec<usize>, right_key: Vec<usize>) -> HashJoin {
        assert_eq!(
            left_key.len(),
            right_key.len(),
            "join key arity must match"
        );
        HashJoin {
            left: IndexedMultiset::new(left_key),
            right: IndexedMultiset::new(right_key),
        }
    }

    pub fn state_size(&self) -> usize {
        self.left.total_tuples() + self.right.total_tuples()
    }
}

impl Operator for HashJoin {
    fn on_delta(&mut self, port: usize, delta: &Delta, out: &mut Vec<Delta>) {
        match port {
            0 => {
                self.left.apply(delta);
                let key = self.left.key_of(&delta.tuple);
                for (rt, rc) in self.right.matches(&key) {
                    out.push(Delta::with_count(
                        delta.tuple.concat(rt),
                        delta.count * rc,
                    ));
                }
            }
            1 => {
                self.right.apply(delta);
                let key = self.right.key_of(&delta.tuple);
                for (lt, lc) in self.left.matches(&key) {
                    out.push(Delta::with_count(
                        lt.concat(&delta.tuple),
                        delta.count * lc,
                    ));
                }
            }
            p => panic!("join has 2 ports, got {p}"),
        }
    }

    fn arity(&self) -> usize {
        2
    }

    fn name(&self) -> &'static str {
        "join"
    }
}

/// Grouped aggregation with internal ordered-multiset state per group
/// (the §4.1 "priority queue"). Emits set-semantics deltas: on an
/// aggregate change, `-old_result` then `+new_result`, i.e. the paper's
/// update delta `R[x→x']`.
pub struct GroupAgg {
    key_cols: Vec<usize>,
    value_col: usize,
    kind: AggKind,
    groups: FxHashMap<Tuple, OrderedMultiset>,
}

impl GroupAgg {
    pub fn new(key_cols: Vec<usize>, value_col: usize, kind: AggKind) -> GroupAgg {
        GroupAgg {
            key_cols,
            value_col,
            kind,
            groups: FxHashMap::default(),
        }
    }

    /// Read access to a group's ordered state (used by tests asserting
    /// next-best retention).
    pub fn group_state(&self, key: &Tuple) -> Option<&OrderedMultiset> {
        self.groups.get(key)
    }
}

impl Operator for GroupAgg {
    fn on_delta(&mut self, _port: usize, delta: &Delta, out: &mut Vec<Delta>) {
        let key = delta.tuple.project(&self.key_cols);
        let value = delta.tuple.get(self.value_col).clone();
        let group = self.groups.entry(key.clone()).or_default();
        let old = group.aggregate(self.kind);
        group.update(value, delta.count);
        let new = group.aggregate(self.kind);
        if old == new {
            return;
        }
        if let Some(old) = old {
            let mut vals: Vec<_> = key.0.to_vec();
            vals.push(old);
            out.push(Delta::delete(Tuple::new(vals)));
        }
        if let Some(new) = new {
            let mut vals: Vec<_> = key.0.to_vec();
            vals.push(new);
            out.push(Delta::insert(Tuple::new(vals)));
        }
    }

    fn name(&self) -> &'static str {
        "group-agg"
    }
}

/// Set-semantics gate: emits +1 when a tuple's derivation count becomes
/// positive and −1 when it returns to zero. This is what makes recursive
/// rules terminate and what implements [14]'s counting algorithm for
/// deletions.
#[derive(Default)]
pub struct Distinct {
    state: Multiset,
}

impl Distinct {
    pub fn new() -> Distinct {
        Distinct::default()
    }

    pub fn state(&self) -> &Multiset {
        &self.state
    }
}

impl Operator for Distinct {
    fn on_delta(&mut self, _port: usize, delta: &Delta, out: &mut Vec<Delta>) {
        match self.state.apply(delta) {
            Visibility::Appeared => out.push(Delta::insert(delta.tuple.clone())),
            Visibility::Disappeared => out.push(Delta::delete(delta.tuple.clone())),
            Visibility::Unchanged => {}
        }
    }

    fn name(&self) -> &'static str {
        "distinct"
    }
}

/// N-ary union: forwards deltas from any port unchanged.
pub struct Union {
    arity: usize,
}

impl Union {
    pub fn new(arity: usize) -> Union {
        Union { arity }
    }
}

impl Operator for Union {
    fn on_delta(&mut self, port: usize, delta: &Delta, out: &mut Vec<Delta>) {
        assert!(port < self.arity, "union port {port} out of range");
        out.push(delta.clone());
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn name(&self) -> &'static str {
        "union"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ints, Val};

    fn run(op: &mut dyn Operator, port: usize, d: Delta) -> Vec<Delta> {
        let mut out = Vec::new();
        op.on_delta(port, &d, &mut out);
        out
    }

    #[test]
    fn map_projects_and_preserves_counts() {
        let mut m = Map::project(vec![1]);
        let out = run(&mut m, 0, Delta::with_count(ints(&[1, 2]), -3));
        assert_eq!(out, vec![Delta::with_count(ints(&[2]), -3)]);
    }

    #[test]
    fn filter_drops_non_matching() {
        let mut m = Map::filter(|t| t.get(0).as_int() > 5);
        assert!(run(&mut m, 0, Delta::insert(ints(&[3]))).is_empty());
        assert_eq!(run(&mut m, 0, Delta::insert(ints(&[7]))).len(), 1);
    }

    #[test]
    fn join_emits_matches_both_directions() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        assert!(run(&mut j, 0, Delta::insert(ints(&[1, 10]))).is_empty());
        let out = run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 10, 1, 20]))]);
        // Another left tuple joins the existing right tuple.
        let out = run(&mut j, 0, Delta::insert(ints(&[1, 11])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 11, 1, 20]))]);
        // Deleting the right tuple retracts both join results.
        let out = run(&mut j, 1, Delta::delete(ints(&[1, 20])));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.count == -1));
    }

    #[test]
    fn join_multiplicities_multiply() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 0, Delta::with_count(ints(&[1, 10]), 2));
        let out = run(&mut j, 1, Delta::with_count(ints(&[1, 20]), 3));
        assert_eq!(out[0].count, 6);
    }

    #[test]
    fn min_agg_emits_update_on_new_minimum() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 10]))]);
        // Higher value: no output change.
        assert!(run(&mut a, 0, Delta::insert(ints(&[1, 30]))).is_empty());
        // Lower value: update (delete old, insert new).
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 5])));
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 10])), Delta::insert(ints(&[1, 5]))]
        );
        // Deleting the minimum recovers the next-best (10, not 30).
        let out = run(&mut a, 0, Delta::delete(ints(&[1, 5])));
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 5])), Delta::insert(ints(&[1, 10]))]
        );
    }

    #[test]
    fn min_agg_groups_are_independent() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        let out = run(&mut a, 0, Delta::insert(ints(&[2, 3])));
        assert_eq!(out, vec![Delta::insert(ints(&[2, 3]))]);
        assert_eq!(
            a.group_state(&ints(&[1])).unwrap().min(),
            Some(&Val::Int(10))
        );
    }

    #[test]
    fn count_agg_tracks_group_size() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Count);
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 99])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 1]));
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 98])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 2]));
        let out = run(&mut a, 0, Delta::delete(ints(&[1, 99])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 1]));
    }

    #[test]
    fn distinct_gates_duplicates() {
        let mut d = Distinct::new();
        assert_eq!(run(&mut d, 0, Delta::insert(ints(&[1]))).len(), 1);
        assert!(run(&mut d, 0, Delta::insert(ints(&[1]))).is_empty());
        assert!(run(&mut d, 0, Delta::delete(ints(&[1]))).is_empty());
        let out = run(&mut d, 0, Delta::delete(ints(&[1])));
        assert_eq!(out, vec![Delta::delete(ints(&[1]))]);
    }

    #[test]
    fn union_passes_through() {
        let mut u = Union::new(2);
        assert_eq!(run(&mut u, 1, Delta::insert(ints(&[4]))).len(), 1);
    }
}
