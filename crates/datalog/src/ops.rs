//! Dataflow operators. Each consumes a *batch* of delta tuples arriving
//! on one input port and emits delta tuples, "largely as if they were
//! standard tuples" (§4): (1) update internal state, (2) evaluate
//! internal computations, (3) construct output deltas.
//!
//! Batches are the unit of scheduling (one queue entry, one dynamic
//! dispatch, one state borrow per batch rather than per delta); within a
//! batch the deltas are processed in order, so every operator remains
//! observationally identical to per-delta execution.

use reopt_common::FxHashMap;

use crate::agg::{AggKind, OrderedMultiset};
use crate::delta::Delta;
use crate::relation::{IndexedMultiset, Multiset, Visibility};
use crate::value::Tuple;

/// A dataflow operator.
pub trait Operator {
    /// Processes a batch of input deltas arriving on `port`, appending
    /// output deltas to `out`. The batch is coalesced by the scheduler
    /// (no two deltas share a tuple, no zero counts), but operators must
    /// not rely on that for correctness.
    fn on_batch(&mut self, port: usize, deltas: &[Delta], out: &mut Vec<Delta>);

    /// Number of input ports.
    fn arity(&self) -> usize {
        1
    }

    /// True if the operator forwards every input delta unchanged
    /// (`Union`): the scheduler then moves batches through the node
    /// without calling [`Operator::on_batch`] or cloning deltas. An
    /// operator returning `true` must be stateless and must behave as
    /// the identity on every port.
    fn is_passthrough(&self) -> bool {
        false
    }

    /// True if the scheduler should coalesce batches before they reach
    /// this operator. Stateful operators (join, distinct, aggregation)
    /// benefit: merged counts mean fewer state updates and smaller
    /// bilinear fan-outs. Linear stateless operators (`Map`, `Union`)
    /// return `false` — their outputs re-merge at the next stateful
    /// input anyway, so hashing their inputs would be pure overhead.
    fn coalesces_input(&self) -> bool {
        true
    }

    fn name(&self) -> &str;
}

/// The transformation a [`Map`] applies per tuple.
pub type MapFn = Box<dyn FnMut(&Tuple) -> Option<Tuple>>;

/// Stateless map/filter: applies a function to each tuple; `None` drops
/// it. Counts pass through unchanged (linear operator).
pub struct Map {
    f: MapFn,
}

impl Map {
    pub fn new(f: impl FnMut(&Tuple) -> Option<Tuple> + 'static) -> Map {
        Map { f: Box::new(f) }
    }

    /// Pure projection of the given columns.
    pub fn project(cols: Vec<usize>) -> Map {
        Map::new(move |t| Some(t.project(&cols)))
    }

    /// Pure filter.
    pub fn filter(mut pred: impl FnMut(&Tuple) -> bool + 'static) -> Map {
        Map::new(move |t| pred(t).then(|| t.clone()))
    }
}

impl Operator for Map {
    fn on_batch(&mut self, _port: usize, deltas: &[Delta], out: &mut Vec<Delta>) {
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            if let Some(t) = (self.f)(&delta.tuple) {
                out.push(Delta::with_count(t, delta.count));
            }
        }
    }

    fn coalesces_input(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "map"
    }
}

/// The callback behind an [`ExternalFn`] node: receives one input tuple
/// and pushes zero or more output tuples into the sink.
pub type ExternalFnBody = Box<dyn FnMut(&Tuple, &mut dyn FnMut(Tuple))>;

/// Stateless external-function operator — the paper's `Fn_*` predicates
/// (`Fn_split`, `Fn_scancost`, `Fn_sum`, …) lifted into the dataflow: for
/// each input tuple the callback computes zero or more output tuples
/// (typically the input bindings extended with the function's results).
/// Linear: every output delta carries the input delta's count, so
/// retractions flow through external functions exactly like insertions —
/// the §4 requirement that operators "process delta tuples encoding
/// changes" applies to the external predicates too.
///
/// The callback must be **deterministic** (same input tuple ⇒ same
/// outputs): a retraction re-invokes it to reconstruct what to retract.
pub struct ExternalFn {
    name: String,
    f: ExternalFnBody,
}

impl ExternalFn {
    pub fn new(
        name: impl Into<String>,
        f: impl FnMut(&Tuple, &mut dyn FnMut(Tuple)) + 'static,
    ) -> ExternalFn {
        ExternalFn {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for ExternalFn {
    fn on_batch(&mut self, _port: usize, deltas: &[Delta], out: &mut Vec<Delta>) {
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            let count = delta.count;
            (self.f)(&delta.tuple, &mut |t| {
                out.push(Delta::with_count(t, count));
            });
        }
    }

    fn coalesces_input(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Incremental equi-join following the delta rules of [14]: a delta on
/// one side joins the *current* state of the other side
/// (`ΔL ⋈ R  ∪  L' ⋈ ΔR`), with multiplicities multiplied (bilinear).
/// Output tuples are `left ++ right`.
///
/// A whole batch arrives on one port, so the opposite side's state is
/// constant across the batch and `ΔL ⋈ R` distributes over the batch's
/// deltas — applying and probing per delta is exact.
pub struct HashJoin {
    left: IndexedMultiset,
    right: IndexedMultiset,
}

impl HashJoin {
    pub fn new(left_key: Vec<usize>, right_key: Vec<usize>) -> HashJoin {
        assert_eq!(
            left_key.len(),
            right_key.len(),
            "join key arity must match"
        );
        HashJoin {
            left: IndexedMultiset::new(left_key),
            right: IndexedMultiset::new(right_key),
        }
    }

    pub fn state_size(&self) -> usize {
        self.left.total_tuples() + self.right.total_tuples()
    }
}

impl Operator for HashJoin {
    fn on_batch(&mut self, port: usize, deltas: &[Delta], out: &mut Vec<Delta>) {
        match port {
            0 => {
                for delta in deltas {
                    if delta.count == 0 {
                        continue;
                    }
                    self.left.apply(delta);
                    for (rt, rc) in self.right.matches(&delta.tuple, self.left.key_cols()) {
                        let count = delta.count * rc;
                        if count != 0 {
                            out.push(Delta::with_count(delta.tuple.concat(rt), count));
                        }
                    }
                }
            }
            1 => {
                for delta in deltas {
                    if delta.count == 0 {
                        continue;
                    }
                    self.right.apply(delta);
                    for (lt, lc) in self.left.matches(&delta.tuple, self.right.key_cols()) {
                        let count = delta.count * lc;
                        if count != 0 {
                            out.push(Delta::with_count(lt.concat(&delta.tuple), count));
                        }
                    }
                }
            }
            p => panic!("join has 2 ports, got {p}"),
        }
    }

    fn arity(&self) -> usize {
        2
    }

    fn name(&self) -> &str {
        "join"
    }
}

/// Grouped aggregation with internal ordered-multiset state per group
/// (the §4.1 "priority queue"). Emits set-semantics deltas: on an
/// aggregate change, `-old_result` then `+new_result`, i.e. the paper's
/// update delta `R[x→x']`.
///
/// Within a batch, each group's aggregate is compared once against its
/// value *before the batch*: intermediate transitions (e.g. a new
/// minimum inserted and deleted by the same batch) emit nothing instead
/// of an update pair that downstream operators would only cancel.
pub struct GroupAgg {
    key_cols: Vec<usize>,
    value_col: usize,
    kind: AggKind,
    groups: FxHashMap<Tuple, OrderedMultiset>,
    /// Scratch: keys touched by the current batch, in first-touch order.
    touched: Vec<Tuple>,
    /// Scratch: pre-batch aggregate per touched key.
    old_aggs: FxHashMap<Tuple, Option<crate::value::Val>>,
}

impl GroupAgg {
    pub fn new(key_cols: Vec<usize>, value_col: usize, kind: AggKind) -> GroupAgg {
        GroupAgg {
            key_cols,
            value_col,
            kind,
            groups: FxHashMap::default(),
            touched: Vec::new(),
            old_aggs: FxHashMap::default(),
        }
    }

    /// Read access to a group's ordered state (used by tests asserting
    /// next-best retention).
    pub fn group_state(&self, key: &Tuple) -> Option<&OrderedMultiset> {
        self.groups.get(key)
    }
}

impl Operator for GroupAgg {
    fn on_batch(&mut self, _port: usize, deltas: &[Delta], out: &mut Vec<Delta>) {
        self.touched.clear();
        self.old_aggs.clear();
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            let key = delta.tuple.project(&self.key_cols);
            let value = delta.tuple.get(self.value_col);
            let group = self.groups.entry(key.clone()).or_default();
            if !self.old_aggs.contains_key(&key) {
                self.old_aggs.insert(key.clone(), group.aggregate(self.kind));
                self.touched.push(key);
            }
            group.update(value, delta.count);
        }
        for key in self.touched.drain(..) {
            let old = self.old_aggs.remove(&key).unwrap_or(None);
            let new = self.groups.get(&key).and_then(|g| g.aggregate(self.kind));
            if old == new {
                continue;
            }
            if let Some(old) = old {
                out.push(Delta::delete(key.with_appended(old)));
            }
            if let Some(new) = new {
                out.push(Delta::insert(key.with_appended(new)));
            }
        }
    }

    fn name(&self) -> &str {
        "group-agg"
    }
}

/// Set-semantics gate: emits +1 when a tuple's derivation count becomes
/// positive and −1 when it returns to zero. This is what makes recursive
/// rules terminate and what implements [14]'s counting algorithm for
/// deletions.
#[derive(Default)]
pub struct Distinct {
    state: Multiset,
}

impl Distinct {
    pub fn new() -> Distinct {
        Distinct::default()
    }

    pub fn state(&self) -> &Multiset {
        &self.state
    }
}

impl Operator for Distinct {
    fn on_batch(&mut self, _port: usize, deltas: &[Delta], out: &mut Vec<Delta>) {
        for delta in deltas {
            match self.state.apply(delta) {
                Visibility::Appeared => out.push(Delta::insert(delta.tuple.clone())),
                Visibility::Disappeared => out.push(Delta::delete(delta.tuple.clone())),
                Visibility::Unchanged => {}
            }
        }
    }

    fn name(&self) -> &str {
        "distinct"
    }
}

/// N-ary union: forwards deltas from any port unchanged.
pub struct Union {
    arity: usize,
}

impl Union {
    pub fn new(arity: usize) -> Union {
        Union { arity }
    }
}

impl Operator for Union {
    fn on_batch(&mut self, port: usize, deltas: &[Delta], out: &mut Vec<Delta>) {
        assert!(port < self.arity, "union port {port} out of range");
        out.extend(deltas.iter().filter(|d| d.count != 0).cloned());
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn is_passthrough(&self) -> bool {
        true
    }

    fn coalesces_input(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "union"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ints, Val};

    fn run(op: &mut dyn Operator, port: usize, d: Delta) -> Vec<Delta> {
        let mut out = Vec::new();
        op.on_batch(port, std::slice::from_ref(&d), &mut out);
        out
    }

    fn run_batch(op: &mut dyn Operator, port: usize, ds: &[Delta]) -> Vec<Delta> {
        let mut out = Vec::new();
        op.on_batch(port, ds, &mut out);
        out
    }

    #[test]
    fn map_projects_and_preserves_counts() {
        let mut m = Map::project(vec![1]);
        let out = run(&mut m, 0, Delta::with_count(ints(&[1, 2]), -3));
        assert_eq!(out, vec![Delta::with_count(ints(&[2]), -3)]);
    }

    #[test]
    fn filter_drops_non_matching() {
        let mut m = Map::filter(|t| t.get(0).as_int() > 5);
        assert!(run(&mut m, 0, Delta::insert(ints(&[3]))).is_empty());
        assert_eq!(run(&mut m, 0, Delta::insert(ints(&[7]))).len(), 1);
    }

    #[test]
    fn join_emits_matches_both_directions() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        assert!(run(&mut j, 0, Delta::insert(ints(&[1, 10]))).is_empty());
        let out = run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 10, 1, 20]))]);
        // Another left tuple joins the existing right tuple.
        let out = run(&mut j, 0, Delta::insert(ints(&[1, 11])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 11, 1, 20]))]);
        // Deleting the right tuple retracts both join results.
        let out = run(&mut j, 1, Delta::delete(ints(&[1, 20])));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.count == -1));
    }

    #[test]
    fn join_multiplicities_multiply() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 0, Delta::with_count(ints(&[1, 10]), 2));
        let out = run(&mut j, 1, Delta::with_count(ints(&[1, 20]), 3));
        assert_eq!(out[0].count, 6);
    }

    #[test]
    fn join_batch_probes_constant_other_side() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        // Two left deltas in one batch each join the same right state.
        let out = run_batch(
            &mut j,
            0,
            &[Delta::insert(ints(&[1, 10])), Delta::insert(ints(&[1, 11]))],
        );
        assert_eq!(
            out,
            vec![
                Delta::insert(ints(&[1, 10, 1, 20])),
                Delta::insert(ints(&[1, 11, 1, 20])),
            ]
        );
    }

    #[test]
    fn join_skips_zero_count_deltas() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        let out = run(&mut j, 0, Delta::with_count(ints(&[1, 10]), 0));
        assert!(out.is_empty());
        assert_eq!(j.state_size(), 1); // the zero delta was not applied
    }

    #[test]
    fn min_agg_emits_update_on_new_minimum() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 10]))]);
        // Higher value: no output change.
        assert!(run(&mut a, 0, Delta::insert(ints(&[1, 30]))).is_empty());
        // Lower value: update (delete old, insert new).
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 5])));
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 10])), Delta::insert(ints(&[1, 5]))]
        );
        // Deleting the minimum recovers the next-best (10, not 30).
        let out = run(&mut a, 0, Delta::delete(ints(&[1, 5])));
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 5])), Delta::insert(ints(&[1, 10]))]
        );
    }

    #[test]
    fn min_agg_groups_are_independent() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        let out = run(&mut a, 0, Delta::insert(ints(&[2, 3])));
        assert_eq!(out, vec![Delta::insert(ints(&[2, 3]))]);
        assert_eq!(
            a.group_state(&ints(&[1])).unwrap().min(),
            Some(&Val::Int(10))
        );
    }

    #[test]
    fn min_agg_batch_emits_one_update_per_group() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        // A transient lower minimum inserted and deleted within one
        // batch leaves the aggregate unchanged: no output at all.
        let out = run_batch(
            &mut a,
            0,
            &[Delta::insert(ints(&[1, 5])), Delta::delete(ints(&[1, 5]))],
        );
        assert!(out.is_empty(), "intermediate update leaked: {out:?}");
        // A batch that lands on a new minimum emits exactly one update.
        let out = run_batch(
            &mut a,
            0,
            &[Delta::insert(ints(&[1, 7])), Delta::insert(ints(&[1, 3]))],
        );
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 10])), Delta::insert(ints(&[1, 3]))]
        );
    }

    #[test]
    fn count_agg_tracks_group_size() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Count);
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 99])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 1]));
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 98])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 2]));
        let out = run(&mut a, 0, Delta::delete(ints(&[1, 99])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 1]));
    }

    #[test]
    fn distinct_gates_duplicates() {
        let mut d = Distinct::new();
        assert_eq!(run(&mut d, 0, Delta::insert(ints(&[1]))).len(), 1);
        assert!(run(&mut d, 0, Delta::insert(ints(&[1]))).is_empty());
        assert!(run(&mut d, 0, Delta::delete(ints(&[1]))).is_empty());
        let out = run(&mut d, 0, Delta::delete(ints(&[1])));
        assert_eq!(out, vec![Delta::delete(ints(&[1]))]);
    }

    #[test]
    fn external_fn_expands_and_preserves_counts() {
        // A toy Fn_split: (x) -> (x, x+1), (x, x+2).
        let mut f = ExternalFn::new("Fn_split", |t, emit| {
            let x = t.get(0).as_int();
            emit(ints(&[x, x + 1]));
            emit(ints(&[x, x + 2]));
        });
        let out = run(&mut f, 0, Delta::insert(ints(&[5])));
        assert_eq!(
            out,
            vec![Delta::insert(ints(&[5, 6])), Delta::insert(ints(&[5, 7]))]
        );
        // Retractions re-derive the same outputs with negated counts.
        let out = run(&mut f, 0, Delta::with_count(ints(&[5]), -2));
        assert!(out.iter().all(|d| d.count == -2));
        assert_eq!(out.len(), 2);
        assert_eq!(f.name(), "Fn_split");
    }

    #[test]
    fn external_fn_can_filter() {
        // A boolean guard: emits the input only when col 0 is even.
        let mut f = ExternalFn::new("Fn_even", |t, emit| {
            if t.get(0).as_int() % 2 == 0 {
                emit(t.clone());
            }
        });
        assert!(run(&mut f, 0, Delta::insert(ints(&[3]))).is_empty());
        assert_eq!(run(&mut f, 0, Delta::insert(ints(&[4]))).len(), 1);
    }

    #[test]
    fn union_passes_through() {
        let mut u = Union::new(2);
        assert_eq!(run(&mut u, 1, Delta::insert(ints(&[4]))).len(), 1);
    }
}
