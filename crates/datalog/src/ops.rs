//! Dataflow operators. Each consumes a *batch* of delta tuples arriving
//! on one input port and emits delta tuples, "largely as if they were
//! standard tuples" (§4): (1) update internal state, (2) evaluate
//! internal computations, (3) construct output deltas.
//!
//! Batches are the unit of scheduling (one queue entry, one dynamic
//! dispatch, one state borrow per batch rather than per delta). State
//! updates apply every delta of the batch; emission order within a
//! batch may be grouped (the join probes per distinct key) rather than
//! delta order — invisible at the fixpoint, where sinks and downstream
//! state are multisets. Every operator remains observationally
//! identical to per-delta execution, pinned by the differential suite
//! in `tests/differential.rs`.

use reopt_common::FxHashMap;

use crate::agg::{AggKind, OrderedMultiset};
use crate::delta::Delta;
use crate::error::DataflowError;
use crate::relation::{ArrangementHandle, IndexedMultiset, Multiset, Visibility};
use crate::value::{Tuple, Val};

/// Per-operator work counters, drained by the scheduler into
/// [`crate::dataflow::RunStats`] at the end of each fixpoint run.
/// Operators accumulate into their own instance during `on_batch`;
/// [`Operator::take_counters`] hands the accumulated values over and
/// resets them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// Deltas that required consulting a join index (join inputs with a
    /// non-zero count).
    pub join_probe_deltas: u64,
    /// Index probes actually performed. Batch-aware probing shares one
    /// probe across same-key deltas, so this is ≤ `join_probe_deltas` —
    /// strictly less whenever a batch repeats a key.
    pub join_probes: u64,
    /// Operator hops eliminated by fused chains: for each batch a
    /// [`Fused`] operator processes, the number of constituent stages
    /// beyond the first (each would have been its own dispatch).
    pub fused_stages_saved: u64,
}

impl OpCounters {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: OpCounters) {
        self.join_probe_deltas += other.join_probe_deltas;
        self.join_probes += other.join_probes;
        self.fused_stages_saved += other.fused_stages_saved;
    }
}

/// A dataflow operator.
pub trait Operator {
    /// Processes a batch of input deltas arriving on `port`, appending
    /// output deltas to `out`. The batch is coalesced by the scheduler
    /// (no two deltas share a tuple, no zero counts), but operators must
    /// not rely on that for correctness.
    ///
    /// An `Err` aborts the epoch: the scheduler rolls every stateful
    /// operator (including this one — state mutated before the error is
    /// journaled) back to the last committed fixpoint. Output deltas
    /// pushed before the error are discarded by the scheduler.
    fn on_batch(
        &mut self,
        port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError>;

    /// Opens an epoch: stateful operators start journaling state
    /// mutations so [`Operator::rollback_epoch`] can undo them.
    /// Stateless operators keep the no-op default.
    fn begin_epoch(&mut self) {}

    /// Commits the open epoch, discarding the undo journal.
    fn commit_epoch(&mut self) {}

    /// Rolls the open epoch back, restoring the operator's state to
    /// what it was at [`Operator::begin_epoch`].
    fn rollback_epoch(&mut self) {}

    /// Number of input ports.
    fn arity(&self) -> usize {
        1
    }

    /// True if the operator forwards every input delta unchanged
    /// (`Union`): the scheduler then moves batches through the node
    /// without calling [`Operator::on_batch`] or cloning deltas. An
    /// operator returning `true` must be stateless and must behave as
    /// the identity on every port.
    fn is_passthrough(&self) -> bool {
        false
    }

    /// True if the scheduler should coalesce batches before they reach
    /// this operator. Stateful operators (join, distinct, aggregation)
    /// benefit: merged counts mean fewer state updates and smaller
    /// bilinear fan-outs. Linear stateless operators (`Map`, `Union`)
    /// return `false` — their outputs re-merge at the next stateful
    /// input anyway, so hashing their inputs would be pure overhead.
    fn coalesces_input(&self) -> bool {
        true
    }

    /// True if the operator is a linear stateless single-input stage
    /// that can be folded into a [`Fused`] chain. An operator returning
    /// `true` must also yield its stages from
    /// [`Operator::take_fuse_stages`].
    fn fusable(&self) -> bool {
        false
    }

    /// True if the scheduler must deliver this operator's emitted batch
    /// to every downstream consumer *synchronously, within the producing
    /// dispatch* — before any other queued batch is serviced — instead
    /// of enqueueing per-edge copies. [`Arrange`] requires this: its
    /// `on_batch` has already applied the batch to the shared index, and
    /// attached joins skip their own apply, so the index update and
    /// every attached probe must be atomic with respect to all other
    /// scheduling (an interleaved batch on a join's opposite port would
    /// otherwise double-count `ΔL ⋈ ΔR`).
    fn sync_fanout(&self) -> bool {
        false
    }

    /// Surrenders the operator's stages for chain fusion, leaving it
    /// inert. Only called on operators whose [`Operator::fusable`] is
    /// `true`, and only by the dataflow's fusion pass (the node is
    /// replaced or tombstoned immediately afterwards).
    fn take_fuse_stages(&mut self) -> Option<Vec<FuseStage>> {
        None
    }

    /// Drains the operator's accumulated work counters (see
    /// [`OpCounters`]). Called by the scheduler when it assembles a
    /// run's statistics; the default for counter-less operators reports
    /// nothing.
    fn take_counters(&mut self) -> OpCounters {
        OpCounters::default()
    }

    /// Serializes the operator's committed state into a checkpoint
    /// payload. Only called between runs, at a committed-epoch boundary
    /// (no epoch is open, so journals are empty and need no encoding).
    /// Stateless operators keep the no-op default — an empty payload —
    /// which the restore side treats as "nothing to restore".
    fn checkpoint_state(&self, _out: &mut crate::checkpoint::Enc) {}

    /// Restores state previously written by
    /// [`Operator::checkpoint_state`] into this (freshly built)
    /// operator. The payload's symbols have already been remapped into
    /// the current process by the decoder; implementations re-apply
    /// entries through their normal update paths so every derived hash
    /// and counter is rebuilt rather than trusted from disk.
    fn restore_state(
        &mut self,
        _input: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), DataflowError> {
        Ok(())
    }

    fn name(&self) -> &str;
}

/// The transformation a [`Map`] applies per tuple.
pub type MapFn = Box<dyn FnMut(&Tuple) -> Option<Tuple>>;

/// Stateless map/filter: applies a function to each tuple; `None` drops
/// it. Counts pass through unchanged (linear operator).
pub struct Map {
    f: MapFn,
}

impl Map {
    pub fn new(f: impl FnMut(&Tuple) -> Option<Tuple> + 'static) -> Map {
        Map { f: Box::new(f) }
    }

    /// Pure projection of the given columns.
    pub fn project(cols: Vec<usize>) -> Map {
        Map::new(move |t| Some(t.project(&cols)))
    }

    /// Pure filter.
    pub fn filter(mut pred: impl FnMut(&Tuple) -> bool + 'static) -> Map {
        Map::new(move |t| pred(t).then(|| t.clone()))
    }
}

impl Operator for Map {
    fn on_batch(
        &mut self,
        _port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            if let Some(t) = (self.f)(&delta.tuple) {
                out.push(Delta::with_count(t, delta.count));
            }
        }
        Ok(())
    }

    fn coalesces_input(&self) -> bool {
        false
    }

    fn fusable(&self) -> bool {
        true
    }

    fn take_fuse_stages(&mut self) -> Option<Vec<FuseStage>> {
        let f = std::mem::replace(&mut self.f, Box::new(|_| None));
        Some(vec![FuseStage::Map(f)])
    }

    fn name(&self) -> &str {
        "map"
    }
}

/// The callback behind an [`ExternalFn`] node: receives one input tuple
/// and pushes zero or more output tuples into the sink. Returning `Err`
/// aborts the epoch (the error string becomes
/// [`DataflowError::ExternalFn`]).
pub type ExternalFnBody = Box<dyn FnMut(&Tuple, &mut dyn FnMut(Tuple)) -> Result<(), String>>;

/// Stateless external-function operator — the paper's `Fn_*` predicates
/// (`Fn_split`, `Fn_scancost`, `Fn_sum`, …) lifted into the dataflow: for
/// each input tuple the callback computes zero or more output tuples
/// (typically the input bindings extended with the function's results).
/// Linear: every output delta carries the input delta's count, so
/// retractions flow through external functions exactly like insertions —
/// the §4 requirement that operators "process delta tuples encoding
/// changes" applies to the external predicates too.
///
/// The callback must be **deterministic** (same input tuple ⇒ same
/// outputs): a retraction re-invokes it to reconstruct what to retract.
pub struct ExternalFn {
    name: String,
    f: ExternalFnBody,
}

impl ExternalFn {
    pub fn new(
        name: impl Into<String>,
        mut f: impl FnMut(&Tuple, &mut dyn FnMut(Tuple)) + 'static,
    ) -> ExternalFn {
        ExternalFn::try_new(name, move |t, emit| {
            f(t, emit);
            Ok(())
        })
    }

    /// An external function whose callback can fail; an `Err` aborts
    /// the epoch as [`DataflowError::ExternalFn`].
    pub fn try_new(
        name: impl Into<String>,
        f: impl FnMut(&Tuple, &mut dyn FnMut(Tuple)) -> Result<(), String> + 'static,
    ) -> ExternalFn {
        ExternalFn {
            name: name.into(),
            f: Box::new(f),
        }
    }
}

impl Operator for ExternalFn {
    fn on_batch(
        &mut self,
        _port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            let count = delta.count;
            (self.f)(&delta.tuple, &mut |t| {
                out.push(Delta::with_count(t, count));
            })
            .map_err(|detail| DataflowError::ExternalFn {
                name: self.name.clone(),
                detail,
            })?;
        }
        Ok(())
    }

    fn coalesces_input(&self) -> bool {
        false
    }

    fn fusable(&self) -> bool {
        true
    }

    fn take_fuse_stages(&mut self) -> Option<Vec<FuseStage>> {
        let f = std::mem::replace(&mut self.f, Box::new(|_, _| Ok(())));
        Some(vec![FuseStage::External {
            name: std::mem::take(&mut self.name),
            f,
        }])
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// One constituent stage of a [`Fused`] chain: a linear stateless
/// transformation extracted from a [`Map`] or [`ExternalFn`] node.
pub enum FuseStage {
    /// One-to-at-most-one: the payload of a [`Map`].
    Map(MapFn),
    /// One-to-many: the payload of an [`ExternalFn`].
    External { name: String, f: ExternalFnBody },
}

impl FuseStage {
    fn label(&self) -> &str {
        match self {
            FuseStage::Map(_) => "map",
            FuseStage::External { name, .. } => name,
        }
    }
}

/// A chain of linear stateless stages composed into one operator: each
/// input delta flows through every stage in a single `on_batch` call,
/// with no intermediate delta buffers and no per-stage scheduler
/// dispatch. Built by the dataflow's fusion pass
/// ([`crate::dataflow::Dataflow::fuse`]) from single-consumer chains of
/// `Map`/`ExternalFn` nodes; behaviourally identical to running the
/// stages as separate nodes (each stage is linear, so composition
/// commutes with delta propagation).
pub struct Fused {
    stages: Vec<FuseStage>,
    label: String,
    counters: OpCounters,
}

impl Fused {
    pub fn new(stages: Vec<FuseStage>) -> Fused {
        assert!(stages.len() >= 2, "a fused chain needs at least 2 stages");
        let label = format!(
            "fused({})",
            stages.iter().map(FuseStage::label).collect::<Vec<_>>().join("∘")
        );
        Fused {
            stages,
            label,
            counters: OpCounters::default(),
        }
    }

    /// Number of composed stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Runs `tuple` (with multiplicity `count`) through the remaining
    /// stages, pushing fully transformed deltas into `out`. The first
    /// stage error (from a constituent external function) aborts the
    /// traversal.
    fn run_stages(
        stages: &mut [FuseStage],
        tuple: Tuple,
        count: i64,
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        match stages.split_first_mut() {
            None => {
                out.push(Delta::with_count(tuple, count));
                Ok(())
            }
            Some((FuseStage::Map(f), rest)) => match f(&tuple) {
                Some(t) => Self::run_stages(rest, t, count, out),
                None => Ok(()),
            },
            Some((FuseStage::External { name, f }, rest)) => {
                // The emit callback can't return a Result, so a nested
                // stage error is parked and re-raised after the call.
                let mut nested = Ok(());
                f(&tuple, &mut |t| {
                    if nested.is_ok() {
                        nested = Self::run_stages(rest, t, count, out);
                    }
                })
                .map_err(|detail| DataflowError::ExternalFn {
                    name: name.clone(),
                    detail,
                })?;
                nested
            }
        }
    }
}

impl Operator for Fused {
    fn on_batch(
        &mut self,
        _port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        // A drained chain (`take_fuse_stages`) must not masquerade as
        // an identity operator.
        assert!(!self.stages.is_empty(), "fused chain `{}` was drained", self.label);
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            Self::run_stages(&mut self.stages, delta.tuple.clone(), delta.count, out)?;
        }
        // Every batch through the chain is (stages − 1) dispatches that
        // no longer happen.
        self.counters.fused_stages_saved += self.stages.len() as u64 - 1;
        Ok(())
    }

    fn coalesces_input(&self) -> bool {
        false
    }

    fn fusable(&self) -> bool {
        true
    }

    fn take_fuse_stages(&mut self) -> Option<Vec<FuseStage>> {
        Some(std::mem::take(&mut self.stages))
    }

    fn take_counters(&mut self) -> OpCounters {
        std::mem::take(&mut self.counters)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Incremental equi-join following the delta rules of [14]: a delta on
/// one side joins the *current* state of the other side
/// (`ΔL ⋈ R  ∪  L' ⋈ ΔR`), with multiplicities multiplied (bilinear).
/// Output tuples are `left ++ right`.
///
/// A whole batch arrives on one port, so the opposite side's state is
/// constant across the batch and `ΔL ⋈ R` distributes over the batch's
/// deltas — the batch can be applied up front and probed in any order.
/// The batch path exploits that: each delta's key columns are hashed
/// exactly once (shared between the index update and the probe), the
/// batch is grouped by key hash so repeated keys consult the index once
/// and share one output-buffer reservation, and update pairs (`-old`
/// `+new` on the same key, the dominant shape in view maintenance) pay
/// for a single probe. Output order within a batch is grouped by key
/// rather than delta order — invisible at the fixpoint, where sinks and
/// downstream state are multisets.
pub struct HashJoin {
    left: Side,
    right: Side,
    /// Fused output projection: columns of the virtual `left ++ right`
    /// concatenation. `None` emits the full concatenation.
    proj: Option<Vec<usize>>,
    /// Batch scratch: `(key hash, delta index)`, sorted to group
    /// repeated keys.
    by_key: Vec<(u64, u32)>,
    /// Batch scratch: the current group's matches on the other side.
    hits: Vec<(Tuple, i64)>,
    counters: OpCounters,
}

/// One port's state: a private index, or an attachment to a shared
/// [`ArrangementHandle`] maintained by an upstream [`Arrange`] node.
/// A shared port's deltas arrive *already applied* to the index (the
/// `Arrange` applies, then fans out synchronously), so the join only
/// probes; its epoch and checkpoint lifecycles likewise belong to the
/// owning `Arrange`, never to the attached joins.
enum Side {
    Owned(IndexedMultiset),
    Shared {
        handle: ArrangementHandle,
        /// Copy of the arrangement's key columns, so hashing a delta's
        /// key needs no `RefCell` borrow.
        key_cols: Vec<usize>,
    },
}

impl Side {
    fn key_cols(&self) -> &[usize] {
        match self {
            Side::Owned(m) => m.key_cols(),
            Side::Shared { key_cols, .. } => key_cols,
        }
    }

    fn total_tuples(&self) -> usize {
        match self {
            Side::Owned(m) => m.total_tuples(),
            Side::Shared { handle, .. } => handle.read().total_tuples(),
        }
    }
}

impl HashJoin {
    pub fn new(left_key: Vec<usize>, right_key: Vec<usize>) -> HashJoin {
        assert_eq!(
            left_key.len(),
            right_key.len(),
            "join key arity must match"
        );
        HashJoin {
            left: Side::Owned(IndexedMultiset::new(left_key)),
            right: Side::Owned(IndexedMultiset::new(right_key)),
            proj: None,
            by_key: Vec::new(),
            hits: Vec::new(),
            counters: OpCounters::default(),
        }
    }

    /// A join that projects its output in place: emits
    /// `(left ++ right)[proj]`, built directly from the two sides —
    /// the ubiquitous join-then-project pair fused into one operator
    /// and one tuple construction.
    pub fn with_projection(
        left_key: Vec<usize>,
        right_key: Vec<usize>,
        proj: Vec<usize>,
    ) -> HashJoin {
        let mut j = HashJoin::new(left_key, right_key);
        j.proj = Some(proj);
        j
    }

    /// Attaches the left port to a shared arrangement instead of a
    /// private index. Port 0 must then be wired to the owning
    /// [`Arrange`] node (the port's deltas must be exactly the
    /// arrangement's maintenance stream). The arrangement's key must
    /// equal the join's left key, and it must not also feed the right
    /// port.
    pub fn share_left(mut self, handle: ArrangementHandle) -> HashJoin {
        self.left = Self::attach(handle, &self.left, &self.right);
        self
    }

    /// [`HashJoin::share_left`], for the right port.
    pub fn share_right(mut self, handle: ArrangementHandle) -> HashJoin {
        self.right = Self::attach(handle, &self.right, &self.left);
        self
    }

    fn attach(handle: ArrangementHandle, this: &Side, opposite: &Side) -> Side {
        let key_cols = this.key_cols().to_vec();
        assert_eq!(
            handle.key_cols(),
            key_cols,
            "arrangement key must match the join port's key columns"
        );
        if let Side::Shared { handle: other, .. } = opposite {
            assert!(
                !handle.same_index(other),
                "one arrangement must not feed both ports of a join \
                 (the bilinear form would double-count Δ²)"
            );
        }
        Side::Shared { handle, key_cols }
    }

    pub fn state_size(&self) -> usize {
        self.left.total_tuples() + self.right.total_tuples()
    }
}

/// `(left ++ right)[proj]` with the delta side chosen by
/// `delta_is_left`.
#[inline]
fn join_output(
    delta: &Tuple,
    matched: &Tuple,
    delta_is_left: bool,
    proj: &Option<Vec<usize>>,
) -> Tuple {
    let (l, r) = if delta_is_left {
        (delta, matched)
    } else {
        (matched, delta)
    };
    match proj {
        Some(cols) => l.project_concat(r, cols),
        None => l.concat(r),
    }
}

/// The batch-aware probe for one port: applies all deltas to `own`
/// (hashing each key once), then probes `other` once per distinct key.
#[allow(clippy::too_many_arguments)]
fn probe_batch(
    own: &mut IndexedMultiset,
    other: &IndexedMultiset,
    deltas: &[Delta],
    out: &mut Vec<Delta>,
    by_key: &mut Vec<(u64, u32)>,
    hits: &mut Vec<(Tuple, i64)>,
    counters: &mut OpCounters,
    delta_is_left: bool,
    proj: &Option<Vec<usize>>,
) {
    // Single-delta batches (all of per-delta mode, and most incremental
    // trickles) skip the grouping machinery but still hash only once.
    if let [delta] = deltas {
        if delta.count == 0 {
            return;
        }
        let h = own.key_hash(&delta.tuple);
        own.apply_hashed(delta, h);
        counters.join_probe_deltas += 1;
        counters.join_probes += 1;
        for (t, c) in other.matches_hashed(h, &delta.tuple, own.key_cols()) {
            let count = delta.count * c;
            if count != 0 {
                out.push(Delta::with_count(join_output(&delta.tuple, t, delta_is_left, proj), count));
            }
        }
        return;
    }
    by_key.clear();
    for (i, delta) in deltas.iter().enumerate() {
        if delta.count == 0 {
            continue;
        }
        by_key.push((own.key_hash(&delta.tuple), i as u32));
    }
    counters.join_probe_deltas += by_key.len() as u64;
    // Sort by (hash, arrival): repeated keys become contiguous runs and
    // the iteration order stays deterministic.
    by_key.sort_unstable();
    let mut g = 0;
    while g < by_key.len() {
        let (h, first) = by_key[g];
        let mut end = g + 1;
        while end < by_key.len() && by_key[end].0 == h {
            end += 1;
        }
        // One state-bucket update and one probe for the whole run.
        // (Own-side application order across runs is immaterial: probes
        // only consult the other side.)
        own.apply_run_hashed(h, by_key[g..end].iter().map(|&(_, i)| &deltas[i as usize]));
        let rep = &deltas[first as usize].tuple;
        counters.join_probes += 1;
        if end - g == 1 {
            // Unrepeated key (the common case on ingest-heavy
            // workloads): emit straight off the probe iterator, no
            // match buffering.
            let delta = &deltas[first as usize];
            for (t, c) in other.matches_hashed(h, rep, own.key_cols()) {
                let count = delta.count * c;
                if count != 0 {
                    out.push(Delta::with_count(
                        join_output(&delta.tuple, t, delta_is_left, proj),
                        count,
                    ));
                }
            }
            g = end;
            continue;
        }
        hits.clear();
        hits.extend(
            other
                .matches_hashed(h, rep, own.key_cols())
                .map(|(t, c)| (t.clone(), c)),
        );
        if !hits.is_empty() {
            out.reserve(hits.len() * (end - g));
        }
        for &(_, di) in &by_key[g..end] {
            let delta = &deltas[di as usize];
            // A same-hash delta with a *different* key (hash collision)
            // cannot reuse the run's matches; probe it individually.
            if di != first && !delta.tuple.cols_eq(own.key_cols(), rep, own.key_cols()) {
                counters.join_probes += 1;
                for (t, c) in other.matches_hashed(h, &delta.tuple, own.key_cols()) {
                    let count = delta.count * c;
                    if count != 0 {
                        out.push(Delta::with_count(
                            join_output(&delta.tuple, t, delta_is_left, proj),
                            count,
                        ));
                    }
                }
                continue;
            }
            for (t, c) in hits.iter() {
                let count = delta.count * c;
                if count != 0 {
                    out.push(Delta::with_count(
                        join_output(&delta.tuple, t, delta_is_left, proj),
                        count,
                    ));
                }
            }
        }
        g = end;
    }
}

/// The probe-only path for a *shared* port: the upstream [`Arrange`]
/// has already applied the batch to the shared index, so only the
/// probes against the other side remain. Same key-grouping as
/// [`probe_batch`]; `own_key` is the shared side's key columns.
#[allow(clippy::too_many_arguments)]
fn probe_shared(
    own_key: &[usize],
    other: &IndexedMultiset,
    deltas: &[Delta],
    out: &mut Vec<Delta>,
    by_key: &mut Vec<(u64, u32)>,
    hits: &mut Vec<(Tuple, i64)>,
    counters: &mut OpCounters,
    delta_is_left: bool,
    proj: &Option<Vec<usize>>,
) {
    if let [delta] = deltas {
        if delta.count == 0 {
            return;
        }
        let h = delta.tuple.hash_cols(own_key);
        counters.join_probe_deltas += 1;
        counters.join_probes += 1;
        for (t, c) in other.matches_hashed(h, &delta.tuple, own_key) {
            let count = delta.count * c;
            if count != 0 {
                out.push(Delta::with_count(join_output(&delta.tuple, t, delta_is_left, proj), count));
            }
        }
        return;
    }
    by_key.clear();
    for (i, delta) in deltas.iter().enumerate() {
        if delta.count == 0 {
            continue;
        }
        by_key.push((delta.tuple.hash_cols(own_key), i as u32));
    }
    counters.join_probe_deltas += by_key.len() as u64;
    by_key.sort_unstable();
    let mut g = 0;
    while g < by_key.len() {
        let (h, first) = by_key[g];
        let mut end = g + 1;
        while end < by_key.len() && by_key[end].0 == h {
            end += 1;
        }
        let rep = &deltas[first as usize].tuple;
        counters.join_probes += 1;
        if end - g == 1 {
            let delta = &deltas[first as usize];
            for (t, c) in other.matches_hashed(h, rep, own_key) {
                let count = delta.count * c;
                if count != 0 {
                    out.push(Delta::with_count(
                        join_output(&delta.tuple, t, delta_is_left, proj),
                        count,
                    ));
                }
            }
            g = end;
            continue;
        }
        hits.clear();
        hits.extend(
            other
                .matches_hashed(h, rep, own_key)
                .map(|(t, c)| (t.clone(), c)),
        );
        if !hits.is_empty() {
            out.reserve(hits.len() * (end - g));
        }
        for &(_, di) in &by_key[g..end] {
            let delta = &deltas[di as usize];
            if di != first && !delta.tuple.cols_eq(own_key, rep, own_key) {
                counters.join_probes += 1;
                for (t, c) in other.matches_hashed(h, &delta.tuple, own_key) {
                    let count = delta.count * c;
                    if count != 0 {
                        out.push(Delta::with_count(
                            join_output(&delta.tuple, t, delta_is_left, proj),
                            count,
                        ));
                    }
                }
                continue;
            }
            for (t, c) in hits.iter() {
                let count = delta.count * c;
                if count != 0 {
                    out.push(Delta::with_count(
                        join_output(&delta.tuple, t, delta_is_left, proj),
                        count,
                    ));
                }
            }
        }
        g = end;
    }
}

impl Operator for HashJoin {
    fn on_batch(
        &mut self,
        port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        let HashJoin {
            left,
            right,
            proj,
            by_key,
            hits,
            counters,
        } = self;
        let (own, other, delta_is_left) = match port {
            0 => (left, &*right, true),
            1 => (right, &*left, false),
            p => panic!("join has 2 ports, got {p}"),
        };
        // A shared other side is borrowed for the whole batch — the
        // owning Arrange's mutable borrow ended before its output
        // fanned out here, so the read borrow cannot conflict.
        let guard;
        let other_index: &IndexedMultiset = match other {
            Side::Owned(m) => m,
            Side::Shared { handle, .. } => {
                guard = handle.read();
                &guard
            }
        };
        match own {
            Side::Owned(m) => probe_batch(
                m,
                other_index,
                deltas,
                out,
                by_key,
                hits,
                counters,
                delta_is_left,
                proj,
            ),
            Side::Shared { key_cols, .. } => probe_shared(
                key_cols,
                other_index,
                deltas,
                out,
                by_key,
                hits,
                counters,
                delta_is_left,
                proj,
            ),
        }
        Ok(())
    }

    fn arity(&self) -> usize {
        2
    }

    // Epoch hooks touch only the owned sides: a shared index is
    // journaled, committed and rolled back exactly once, by its owning
    // `Arrange` node.
    fn begin_epoch(&mut self) {
        if let Side::Owned(m) = &mut self.left {
            m.begin_epoch();
        }
        if let Side::Owned(m) = &mut self.right {
            m.begin_epoch();
        }
    }

    fn commit_epoch(&mut self) {
        if let Side::Owned(m) = &mut self.left {
            m.commit_epoch();
        }
        if let Side::Owned(m) = &mut self.right {
            m.commit_epoch();
        }
    }

    fn rollback_epoch(&mut self) {
        if let Side::Owned(m) = &mut self.left {
            m.rollback_epoch();
        }
        if let Side::Owned(m) = &mut self.right {
            m.rollback_epoch();
        }
    }

    fn take_counters(&mut self) -> OpCounters {
        std::mem::take(&mut self.counters)
    }

    // Checkpoints carry only the owned sides (in port order); a shared
    // index is serialized once, by its owning `Arrange`. Sharing is
    // structural — the restore target was built with the same `Side`
    // layout — so the payloads line up without tagging.
    fn checkpoint_state(&self, out: &mut crate::checkpoint::Enc) {
        if let Side::Owned(m) = &self.left {
            crate::checkpoint::encode_indexed(out, m);
        }
        if let Side::Owned(m) = &self.right {
            crate::checkpoint::encode_indexed(out, m);
        }
    }

    fn restore_state(
        &mut self,
        input: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), DataflowError> {
        if let Side::Owned(m) = &mut self.left {
            crate::checkpoint::decode_indexed(input, m)?;
        }
        if let Side::Owned(m) = &mut self.right {
            crate::checkpoint::decode_indexed(input, m)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "join"
    }
}

/// Maintains a shared [`ArrangementHandle`] — differential dataflow's
/// *arrange* operator. Applies each batch to the shared index exactly
/// once, then forwards the deltas verbatim; downstream [`HashJoin`]s
/// attached via `share_left`/`share_right` probe the index without
/// re-applying. Requires [`Operator::sync_fanout`] scheduling: the
/// apply above and every attached probe happen atomically within one
/// dispatch, so no other batch can interleave between the index update
/// and the probes it pairs with.
pub struct Arrange {
    handle: ArrangementHandle,
}

impl Arrange {
    pub fn new(key_cols: Vec<usize>) -> Arrange {
        Arrange {
            handle: ArrangementHandle::new(key_cols),
        }
    }

    /// The shared handle, for attaching joins.
    pub fn handle(&self) -> ArrangementHandle {
        self.handle.clone()
    }
}

impl Operator for Arrange {
    fn on_batch(
        &mut self,
        _port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        let mut index = self.handle.write();
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            index.apply(delta);
            out.push(delta.clone());
        }
        Ok(())
    }

    fn sync_fanout(&self) -> bool {
        true
    }

    fn begin_epoch(&mut self) {
        self.handle.write().begin_epoch();
    }

    fn commit_epoch(&mut self) {
        self.handle.write().commit_epoch();
    }

    fn rollback_epoch(&mut self) {
        self.handle.write().rollback_epoch();
    }

    fn checkpoint_state(&self, out: &mut crate::checkpoint::Enc) {
        crate::checkpoint::encode_indexed(out, &self.handle.read());
    }

    fn restore_state(
        &mut self,
        input: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), DataflowError> {
        crate::checkpoint::decode_indexed(input, &mut self.handle.write())
    }

    fn name(&self) -> &str {
        "arrange"
    }
}

/// Grouped aggregation with internal ordered-multiset state per group
/// (the §4.1 "priority queue"). Emits set-semantics deltas: on an
/// aggregate change, `-old_result` then `+new_result`, i.e. the paper's
/// update delta `R[x→x']`.
///
/// Within a batch, each group's aggregate is compared once against its
/// value *before the batch*: intermediate transitions (e.g. a new
/// minimum inserted and deleted by the same batch) emit nothing instead
/// of an update pair that downstream operators would only cancel.
pub struct GroupAgg {
    key_cols: Vec<usize>,
    value_col: usize,
    kind: AggKind,
    groups: FxHashMap<Tuple, Group>,
    /// Scratch: keys touched by the current batch, in first-touch order.
    touched: Vec<Tuple>,
    /// Batch generation, stamped into each touched group — the
    /// first-touch test is a field compare instead of a second map.
    generation: u64,
    /// Undo log for the open epoch: `(group key, value, count)` per
    /// state update. Only populated while `recording`.
    journal: Vec<(Tuple, Val, i64)>,
    recording: bool,
    /// Nothing pre-existed at `begin_epoch`: rollback is truncation,
    /// per-delta journaling is skipped.
    was_empty: bool,
    /// Batch scratch: `(key, value, count)` rows, sorted by (key,
    /// value) so each group is touched once and same-value deltas merge
    /// into one BTree update.
    batch_rows: Vec<(Tuple, Val, i64)>,
}

/// One group's state plus its per-batch bookkeeping (the aggregate
/// value before the current batch, valid while `stamp` matches the
/// operator's generation).
struct Group {
    state: OrderedMultiset,
    stamp: u64,
    before: Option<crate::value::Val>,
}

impl GroupAgg {
    pub fn new(key_cols: Vec<usize>, value_col: usize, kind: AggKind) -> GroupAgg {
        GroupAgg {
            key_cols,
            value_col,
            kind,
            groups: FxHashMap::default(),
            touched: Vec::new(),
            generation: 0,
            journal: Vec::new(),
            recording: false,
            was_empty: false,
            batch_rows: Vec::new(),
        }
    }

    /// Read access to a group's ordered state (used by tests asserting
    /// next-best retention).
    pub fn group_state(&self, key: &Tuple) -> Option<&OrderedMultiset> {
        self.groups.get(key).map(|g| &g.state)
    }
}

impl Operator for GroupAgg {
    fn on_batch(
        &mut self,
        _port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        self.touched.clear();
        self.generation += 1;
        if deltas.len() == 1 {
            // Per-delta trickle (all of per-delta mode): skip the sort.
            for delta in deltas {
                if delta.count == 0 {
                    continue;
                }
                let key = delta.tuple.project(&self.key_cols);
                let value = delta.tuple.get(self.value_col);
                if self.recording {
                    self.journal.push((key.clone(), value, delta.count));
                }
                let group = self.groups.entry(key.clone()).or_insert_with(|| Group {
                    state: OrderedMultiset::new(),
                    stamp: 0,
                    before: None,
                });
                if group.stamp != self.generation {
                    group.stamp = self.generation;
                    group.before = group.state.aggregate(self.kind);
                    self.touched.push(key);
                }
                group.state.update(value, delta.count);
            }
        } else {
            // Batch path: sort the batch by (key, value) so each group
            // costs one map lookup and one `before` capture, and each
            // distinct value one BTree update with the run's summed
            // count (instead of per-delta map + tree traffic).
            self.batch_rows.clear();
            self.batch_rows.extend(deltas.iter().filter(|d| d.count != 0).map(|d| {
                (
                    d.tuple.project(&self.key_cols),
                    d.tuple.get(self.value_col),
                    d.count,
                )
            }));
            self.batch_rows
                .sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            let rows = &self.batch_rows;
            let mut i = 0;
            while i < rows.len() {
                let key = &rows[i].0;
                let group = self.groups.entry(key.clone()).or_insert_with(|| Group {
                    state: OrderedMultiset::new(),
                    stamp: 0,
                    before: None,
                });
                if group.stamp != self.generation {
                    group.stamp = self.generation;
                    group.before = group.state.aggregate(self.kind);
                    self.touched.push(key.clone());
                }
                while i < rows.len() && rows[i].0 == *key {
                    let value = rows[i].1;
                    let mut count = 0;
                    while i < rows.len() && rows[i].0 == *key && rows[i].1 == value {
                        count += rows[i].2;
                        i += 1;
                    }
                    if count == 0 {
                        continue;
                    }
                    if self.recording {
                        self.journal.push((key.clone(), value, count));
                    }
                    group.state.update(value, count);
                }
            }
        }
        for key in self.touched.drain(..) {
            let group = &self.groups[&key];
            let old = group.before;
            let new = group.state.aggregate(self.kind);
            if old == new {
                continue;
            }
            if let Some(old) = old {
                out.push(Delta::delete(key.with_appended(old)));
            }
            if let Some(new) = new {
                out.push(Delta::insert(key.with_appended(new)));
            }
        }
        Ok(())
    }

    fn begin_epoch(&mut self) {
        self.journal.clear();
        self.was_empty = self.groups.is_empty();
        self.recording = !self.was_empty;
    }

    fn commit_epoch(&mut self) {
        self.journal.clear();
        self.recording = false;
        self.was_empty = false;
    }

    fn rollback_epoch(&mut self) {
        self.recording = false;
        if self.was_empty {
            self.was_empty = false;
            self.groups.clear();
            self.journal.clear();
            return;
        }
        let journal = std::mem::take(&mut self.journal);
        for (key, value, count) in journal.into_iter().rev() {
            // Groups created this epoch roll back to empty state; the
            // entry itself is left behind (an empty OrderedMultiset
            // aggregates to None, so it is observationally absent).
            self.groups
                .get_mut(&key)
                .expect("journaled group exists")
                .state
                .update(value, -count);
        }
    }

    fn checkpoint_state(&self, out: &mut crate::checkpoint::Enc) {
        // Groups whose state drained to empty aggregate to `None` and
        // are observationally absent — skip them so identical logical
        // state yields identical bytes.
        let mut groups: Vec<(&Tuple, &Group)> = self
            .groups
            .iter()
            .filter(|(_, g)| g.state.entries().next().is_some())
            .collect();
        groups.sort_by(|a, b| a.0.cmp(b.0));
        out.u64(groups.len() as u64);
        for (key, g) in groups {
            out.tuple(key);
            // BTreeMap order: already canonical (Val ordering resolves
            // symbols lexicographically, stable across processes).
            let entries: Vec<_> = g.state.entries().collect();
            out.u64(entries.len() as u64);
            for (v, c) in entries {
                out.val(*v);
                out.i64(c);
            }
        }
    }

    fn restore_state(
        &mut self,
        input: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), DataflowError> {
        self.groups.clear();
        self.generation = 0;
        // A group costs at least its 4-byte key prefix + 8-byte entry
        // count; a value entry costs tag + payload + count = 17 bytes.
        let n = input.count(12)?;
        for _ in 0..n {
            let key = input.tuple()?;
            let m = input.count(17)?;
            let mut state = OrderedMultiset::new();
            for _ in 0..m {
                let v = input.val()?;
                let c = input.i64()?;
                state.update(v, c);
            }
            // stamp 0 is always stale (generations start at 1), so the
            // first post-restore batch recomputes `before` correctly.
            self.groups.insert(
                key,
                Group {
                    state,
                    stamp: 0,
                    before: None,
                },
            );
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "group-agg"
    }
}

/// Set-semantics gate: emits +1 when a tuple's derivation count becomes
/// positive and −1 when it returns to zero. This is what makes recursive
/// rules terminate and what implements [14]'s counting algorithm for
/// deletions.
#[derive(Default)]
pub struct Distinct {
    state: Multiset,
}

impl Distinct {
    pub fn new() -> Distinct {
        Distinct::default()
    }

    pub fn state(&self) -> &Multiset {
        &self.state
    }
}

impl Operator for Distinct {
    fn on_batch(
        &mut self,
        _port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        for delta in deltas {
            match self.state.apply(delta) {
                Visibility::Appeared => out.push(Delta::insert(delta.tuple.clone())),
                Visibility::Disappeared => out.push(Delta::delete(delta.tuple.clone())),
                Visibility::Unchanged => {}
            }
        }
        Ok(())
    }

    fn begin_epoch(&mut self) {
        self.state.begin_epoch();
    }

    fn commit_epoch(&mut self) {
        self.state.commit_epoch();
    }

    fn rollback_epoch(&mut self) {
        self.state.rollback_epoch();
    }

    fn checkpoint_state(&self, out: &mut crate::checkpoint::Enc) {
        crate::checkpoint::encode_multiset(out, &self.state);
    }

    fn restore_state(
        &mut self,
        input: &mut crate::checkpoint::Dec<'_>,
    ) -> Result<(), DataflowError> {
        crate::checkpoint::decode_multiset(input, &mut self.state)
    }

    fn name(&self) -> &str {
        "distinct"
    }
}

/// N-ary union: forwards deltas from any port unchanged.
pub struct Union {
    arity: usize,
}

impl Union {
    pub fn new(arity: usize) -> Union {
        Union { arity }
    }
}

impl Operator for Union {
    fn on_batch(
        &mut self,
        port: usize,
        deltas: &[Delta],
        out: &mut Vec<Delta>,
    ) -> Result<(), DataflowError> {
        assert!(port < self.arity, "union port {port} out of range");
        out.extend(deltas.iter().filter(|d| d.count != 0).cloned());
        Ok(())
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn is_passthrough(&self) -> bool {
        true
    }

    fn coalesces_input(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "union"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ints, Val};

    fn run(op: &mut dyn Operator, port: usize, d: Delta) -> Vec<Delta> {
        let mut out = Vec::new();
        op.on_batch(port, std::slice::from_ref(&d), &mut out).unwrap();
        out
    }

    fn run_batch(op: &mut dyn Operator, port: usize, ds: &[Delta]) -> Vec<Delta> {
        let mut out = Vec::new();
        op.on_batch(port, ds, &mut out).unwrap();
        out
    }

    #[test]
    fn map_projects_and_preserves_counts() {
        let mut m = Map::project(vec![1]);
        let out = run(&mut m, 0, Delta::with_count(ints(&[1, 2]), -3));
        assert_eq!(out, vec![Delta::with_count(ints(&[2]), -3)]);
    }

    #[test]
    fn filter_drops_non_matching() {
        let mut m = Map::filter(|t| t.get(0).as_int() > 5);
        assert!(run(&mut m, 0, Delta::insert(ints(&[3]))).is_empty());
        assert_eq!(run(&mut m, 0, Delta::insert(ints(&[7]))).len(), 1);
    }

    #[test]
    fn join_emits_matches_both_directions() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        assert!(run(&mut j, 0, Delta::insert(ints(&[1, 10]))).is_empty());
        let out = run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 10, 1, 20]))]);
        // Another left tuple joins the existing right tuple.
        let out = run(&mut j, 0, Delta::insert(ints(&[1, 11])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 11, 1, 20]))]);
        // Deleting the right tuple retracts both join results.
        let out = run(&mut j, 1, Delta::delete(ints(&[1, 20])));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.count == -1));
    }

    #[test]
    fn join_multiplicities_multiply() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 0, Delta::with_count(ints(&[1, 10]), 2));
        let out = run(&mut j, 1, Delta::with_count(ints(&[1, 20]), 3));
        assert_eq!(out[0].count, 6);
    }

    #[test]
    fn join_batch_probes_constant_other_side() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        // Two left deltas in one batch each join the same right state.
        let out = run_batch(
            &mut j,
            0,
            &[Delta::insert(ints(&[1, 10])), Delta::insert(ints(&[1, 11]))],
        );
        assert_eq!(
            out,
            vec![
                Delta::insert(ints(&[1, 10, 1, 20])),
                Delta::insert(ints(&[1, 11, 1, 20])),
            ]
        );
    }

    #[test]
    fn join_skips_zero_count_deltas() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        let out = run(&mut j, 0, Delta::with_count(ints(&[1, 10]), 0));
        assert!(out.is_empty());
        assert_eq!(j.state_size(), 1); // the zero delta was not applied
    }

    #[test]
    fn min_agg_emits_update_on_new_minimum() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 10]))]);
        // Higher value: no output change.
        assert!(run(&mut a, 0, Delta::insert(ints(&[1, 30]))).is_empty());
        // Lower value: update (delete old, insert new).
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 5])));
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 10])), Delta::insert(ints(&[1, 5]))]
        );
        // Deleting the minimum recovers the next-best (10, not 30).
        let out = run(&mut a, 0, Delta::delete(ints(&[1, 5])));
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 5])), Delta::insert(ints(&[1, 10]))]
        );
    }

    #[test]
    fn min_agg_groups_are_independent() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        let out = run(&mut a, 0, Delta::insert(ints(&[2, 3])));
        assert_eq!(out, vec![Delta::insert(ints(&[2, 3]))]);
        assert_eq!(
            a.group_state(&ints(&[1])).unwrap().min(),
            Some(&Val::Int(10))
        );
    }

    #[test]
    fn min_agg_batch_emits_one_update_per_group() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        // A transient lower minimum inserted and deleted within one
        // batch leaves the aggregate unchanged: no output at all.
        let out = run_batch(
            &mut a,
            0,
            &[Delta::insert(ints(&[1, 5])), Delta::delete(ints(&[1, 5]))],
        );
        assert!(out.is_empty(), "intermediate update leaked: {out:?}");
        // A batch that lands on a new minimum emits exactly one update.
        let out = run_batch(
            &mut a,
            0,
            &[Delta::insert(ints(&[1, 7])), Delta::insert(ints(&[1, 3]))],
        );
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 10])), Delta::insert(ints(&[1, 3]))]
        );
    }

    #[test]
    fn count_agg_tracks_group_size() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Count);
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 99])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 1]));
        let out = run(&mut a, 0, Delta::insert(ints(&[1, 98])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 2]));
        let out = run(&mut a, 0, Delta::delete(ints(&[1, 99])));
        assert_eq!(out.last().unwrap().tuple, ints(&[1, 1]));
    }

    #[test]
    fn distinct_gates_duplicates() {
        let mut d = Distinct::new();
        assert_eq!(run(&mut d, 0, Delta::insert(ints(&[1]))).len(), 1);
        assert!(run(&mut d, 0, Delta::insert(ints(&[1]))).is_empty());
        assert!(run(&mut d, 0, Delta::delete(ints(&[1]))).is_empty());
        let out = run(&mut d, 0, Delta::delete(ints(&[1])));
        assert_eq!(out, vec![Delta::delete(ints(&[1]))]);
    }

    #[test]
    fn external_fn_expands_and_preserves_counts() {
        // A toy Fn_split: (x) -> (x, x+1), (x, x+2).
        let mut f = ExternalFn::new("Fn_split", |t, emit| {
            let x = t.get(0).as_int();
            emit(ints(&[x, x + 1]));
            emit(ints(&[x, x + 2]));
        });
        let out = run(&mut f, 0, Delta::insert(ints(&[5])));
        assert_eq!(
            out,
            vec![Delta::insert(ints(&[5, 6])), Delta::insert(ints(&[5, 7]))]
        );
        // Retractions re-derive the same outputs with negated counts.
        let out = run(&mut f, 0, Delta::with_count(ints(&[5]), -2));
        assert!(out.iter().all(|d| d.count == -2));
        assert_eq!(out.len(), 2);
        assert_eq!(f.name(), "Fn_split");
    }

    #[test]
    fn external_fn_can_filter() {
        // A boolean guard: emits the input only when col 0 is even.
        let mut f = ExternalFn::new("Fn_even", |t, emit| {
            if t.get(0).as_int() % 2 == 0 {
                emit(t.clone());
            }
        });
        assert!(run(&mut f, 0, Delta::insert(ints(&[3]))).is_empty());
        assert_eq!(run(&mut f, 0, Delta::insert(ints(&[4]))).len(), 1);
    }

    #[test]
    fn union_passes_through() {
        let mut u = Union::new(2);
        assert_eq!(run(&mut u, 1, Delta::insert(ints(&[4]))).len(), 1);
    }

    #[test]
    fn join_with_projection_builds_outputs_directly() {
        // Project (l.payload, r.payload) out of the virtual concat.
        let mut j = HashJoin::with_projection(vec![0], vec![0], vec![1, 3]);
        run(&mut j, 0, Delta::insert(ints(&[1, 10])));
        let out = run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        assert_eq!(out, vec![Delta::insert(ints(&[10, 20]))]);
        // Port 0 deltas produce the same orientation (left ++ right).
        let out = run(&mut j, 0, Delta::insert(ints(&[1, 11])));
        assert_eq!(out, vec![Delta::insert(ints(&[11, 20]))]);
        // Retraction projects identically.
        let out = run(&mut j, 1, Delta::delete(ints(&[1, 20])));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.count == -1));
    }

    #[test]
    fn join_counters_report_shared_probes() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        // Five same-key deltas in one batch: one shared probe.
        let batch: Vec<Delta> = (0..5).map(|v| Delta::insert(ints(&[1, v]))).collect();
        let out = run_batch(&mut j, 0, &batch);
        assert_eq!(out.len(), 5);
        let c = j.take_counters();
        assert_eq!(c.join_probe_deltas, 6); // priming delta + batch
        assert_eq!(c.join_probes, 2); // one per port-batch
        // Counters drained: a second take reports nothing.
        assert_eq!(j.take_counters(), OpCounters::default());
    }

    #[test]
    fn grouped_probe_handles_mixed_keys_and_update_pairs() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run_batch(
            &mut j,
            1,
            &[Delta::insert(ints(&[1, 100])), Delta::insert(ints(&[2, 200]))],
        );
        // A batch mixing an update pair on key 1 with an insert on key
        // 2 — grouped probing must emit exactly the per-delta outputs.
        let out = run_batch(
            &mut j,
            0,
            &[
                Delta::delete(ints(&[1, 10])),
                Delta::insert(ints(&[1, 11])),
                Delta::insert(ints(&[2, 20])),
            ],
        );
        let mut got = out.clone();
        got.sort_by(|a, b| a.tuple.cmp(&b.tuple).then(a.count.cmp(&b.count)));
        assert_eq!(
            got,
            vec![
                Delta::delete(ints(&[1, 10, 1, 100])),
                Delta::insert(ints(&[1, 11, 1, 100])),
                Delta::insert(ints(&[2, 20, 2, 200])),
            ]
        );
    }

    #[test]
    fn fused_chain_composes_maps_and_externals() {
        // filter(even) ∘ Fn_split(x → x+1, x+2) ∘ project[0]
        let mut filter = Map::filter(|t| t.get(0).as_int() % 2 == 0);
        let mut split = ExternalFn::new("Fn_split", |t, emit| {
            let x = t.get(0).as_int();
            emit(ints(&[x, x + 1]));
            emit(ints(&[x, x + 2]));
        });
        let mut proj = Map::project(vec![1]);
        let mut stages = Vec::new();
        stages.extend(filter.take_fuse_stages().unwrap());
        stages.extend(split.take_fuse_stages().unwrap());
        stages.extend(proj.take_fuse_stages().unwrap());
        let mut fused = Fused::new(stages);
        assert_eq!(fused.stage_count(), 3);
        assert!(fused.fusable());
        // Odd input: dropped by the first stage.
        assert!(run(&mut fused, 0, Delta::insert(ints(&[3]))).is_empty());
        // Even input with multiplicity: fans out through the external,
        // projected, counts preserved.
        let out = run(&mut fused, 0, Delta::with_count(ints(&[4]), -2));
        assert_eq!(
            out,
            vec![
                Delta::with_count(ints(&[5]), -2),
                Delta::with_count(ints(&[6]), -2),
            ]
        );
        let c = fused.take_counters();
        assert_eq!(c.fused_stages_saved, 4); // 2 batches × 2 saved hops
    }

    #[test]
    fn external_fn_failure_surfaces_as_typed_error() {
        let mut f = ExternalFn::try_new("Fn_flaky", |t, emit| {
            if t.get(0).as_int() < 0 {
                return Err("negative input".into());
            }
            emit(t.clone());
            Ok(())
        });
        assert_eq!(run(&mut f, 0, Delta::insert(ints(&[1]))).len(), 1);
        let mut out = Vec::new();
        let err = f
            .on_batch(0, &[Delta::insert(ints(&[-1]))], &mut out)
            .unwrap_err();
        assert_eq!(
            err,
            DataflowError::ExternalFn {
                name: "Fn_flaky".into(),
                detail: "negative input".into()
            }
        );
    }

    #[test]
    fn fused_chain_propagates_stage_errors() {
        let mut pre = Map::project(vec![0]);
        let mut flaky = ExternalFn::try_new("Fn_flaky", |t, emit| {
            if t.get(0).as_int() < 0 {
                return Err("negative input".into());
            }
            emit(t.clone());
            Ok(())
        });
        let mut stages = Vec::new();
        stages.extend(pre.take_fuse_stages().unwrap());
        stages.extend(flaky.take_fuse_stages().unwrap());
        let mut fused = Fused::new(stages);
        assert_eq!(run(&mut fused, 0, Delta::insert(ints(&[2, 9]))).len(), 1);
        let mut out = Vec::new();
        let err = fused
            .on_batch(0, &[Delta::insert(ints(&[-2, 9]))], &mut out)
            .unwrap_err();
        assert!(matches!(err, DataflowError::ExternalFn { .. }));
    }

    #[test]
    fn join_rollback_restores_both_sides() {
        let mut j = HashJoin::new(vec![0], vec![0]);
        run(&mut j, 0, Delta::insert(ints(&[1, 10])));
        run(&mut j, 1, Delta::insert(ints(&[1, 20])));
        j.begin_epoch();
        run(&mut j, 0, Delta::delete(ints(&[1, 10])));
        run(&mut j, 1, Delta::insert(ints(&[2, 30])));
        j.rollback_epoch();
        assert_eq!(j.state_size(), 2);
        // The state behaves exactly as before the aborted epoch.
        let out = run(&mut j, 0, Delta::insert(ints(&[1, 11])));
        assert_eq!(out, vec![Delta::insert(ints(&[1, 11, 1, 20]))]);
    }

    #[test]
    fn distinct_rollback_restores_gate_state() {
        let mut d = Distinct::new();
        run(&mut d, 0, Delta::insert(ints(&[1])));
        d.begin_epoch();
        run(&mut d, 0, Delta::delete(ints(&[1])));
        run(&mut d, 0, Delta::insert(ints(&[2])));
        d.rollback_epoch();
        // Tuple 1 is still present (a re-insert emits nothing), tuple 2
        // is gone (an insert re-emits).
        assert!(run(&mut d, 0, Delta::insert(ints(&[1]))).is_empty());
        assert_eq!(run(&mut d, 0, Delta::insert(ints(&[2]))).len(), 1);
    }

    #[test]
    fn group_agg_rollback_restores_next_best_state() {
        let mut a = GroupAgg::new(vec![0], 1, AggKind::Min);
        run(&mut a, 0, Delta::insert(ints(&[1, 10])));
        run(&mut a, 0, Delta::insert(ints(&[1, 30])));
        a.begin_epoch();
        run(&mut a, 0, Delta::insert(ints(&[1, 5])));
        run(&mut a, 0, Delta::delete(ints(&[1, 30])));
        run(&mut a, 0, Delta::insert(ints(&[2, 7]))); // fresh group
        a.rollback_epoch();
        // Group 1's priority queue is back to {10, 30}: deleting the
        // minimum recovers 30 via next-best.
        let out = run(&mut a, 0, Delta::delete(ints(&[1, 10])));
        assert_eq!(
            out,
            vec![Delta::delete(ints(&[1, 10])), Delta::insert(ints(&[1, 30]))]
        );
        // Group 2 rolled back to empty: a fresh insert emits anew.
        let out = run(&mut a, 0, Delta::insert(ints(&[2, 9])));
        assert_eq!(out, vec![Delta::insert(ints(&[2, 9]))]);
    }

    #[test]
    fn commit_discards_undo_log() {
        let mut d = Distinct::new();
        d.begin_epoch();
        run(&mut d, 0, Delta::insert(ints(&[1])));
        d.commit_epoch();
        d.rollback_epoch(); // nothing to undo
        assert!(d.state().contains(&ints(&[1])));
    }

    #[test]
    fn fused_chains_refuse_single_stages_and_renest() {
        let mut m = Map::project(vec![0]);
        let stages = m.take_fuse_stages().unwrap();
        assert_eq!(stages.len(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Fused::new(Vec::new());
        }));
        assert!(result.is_err(), "an empty chain must be rejected");
        // A Fused can itself be refused into a longer chain.
        let mut m2 = Map::project(vec![0]);
        let mut all = stages;
        all.extend(m2.take_fuse_stages().unwrap());
        let mut fused = Fused::new(all);
        let mut renested = Fused::new(fused.take_fuse_stages().unwrap());
        assert_eq!(renested.stage_count(), 2);
        assert_eq!(
            run(&mut renested, 0, Delta::insert(ints(&[9, 1]))),
            vec![Delta::insert(ints(&[9]))]
        );
    }
}
