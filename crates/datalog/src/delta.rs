//! Delta tuples: changes flowing between operators.
//!
//! Following §4 of the paper, "a delta tuple of a relation R may be an
//! insertion (R[+x]), deletion (R[-x]), or update (R[x→x'])". We encode
//! insertion/deletion as signed multiplicities (an update is a deletion
//! plus an insertion, which is how the engine's stateful operators emit
//! it) — the standard counting encoding of Gupta–Mumick–Subrahmanian.

use crate::value::Tuple;

/// A signed change to a relation's multiset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    pub tuple: Tuple,
    /// Positive = insertions, negative = deletions. Usually ±1, but
    /// bilinear operators (joins) multiply multiplicities.
    pub count: i64,
}

impl Delta {
    pub fn insert(tuple: Tuple) -> Delta {
        Delta { tuple, count: 1 }
    }

    pub fn delete(tuple: Tuple) -> Delta {
        Delta { tuple, count: -1 }
    }

    pub fn with_count(tuple: Tuple, count: i64) -> Delta {
        Delta { tuple, count }
    }

    pub fn is_insert(&self) -> bool {
        self.count > 0
    }

    /// The same change with multiplicity scaled (bilinear operators).
    pub fn scaled(&self, by: i64) -> Delta {
        Delta {
            tuple: self.tuple.clone(),
            count: self.count * by,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ints;

    #[test]
    fn constructors() {
        assert_eq!(Delta::insert(ints(&[1])).count, 1);
        assert_eq!(Delta::delete(ints(&[1])).count, -1);
        assert!(Delta::insert(ints(&[1])).is_insert());
        assert!(!Delta::delete(ints(&[1])).is_insert());
    }

    #[test]
    fn scaling_multiplies_counts() {
        let d = Delta::with_count(ints(&[7]), -2);
        assert_eq!(d.scaled(3).count, -6);
        assert_eq!(d.scaled(3).tuple, ints(&[7]));
    }
}
