//! Delta tuples: changes flowing between operators.
//!
//! Following §4 of the paper, "a delta tuple of a relation R may be an
//! insertion (R[+x]), deletion (R[-x]), or update (R[x→x'])". We encode
//! insertion/deletion as signed multiplicities (an update is a deletion
//! plus an insertion, which is how the engine's stateful operators emit
//! it) — the standard counting encoding of Gupta–Mumick–Subrahmanian.

use reopt_common::FxHashMap;

use crate::value::Tuple;

/// A signed change to a relation's multiset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delta {
    pub tuple: Tuple,
    /// Positive = insertions, negative = deletions. Usually ±1, but
    /// bilinear operators (joins) multiply multiplicities.
    pub count: i64,
}

impl Delta {
    pub fn insert(tuple: Tuple) -> Delta {
        Delta { tuple, count: 1 }
    }

    pub fn delete(tuple: Tuple) -> Delta {
        Delta { tuple, count: -1 }
    }

    pub fn with_count(tuple: Tuple, count: i64) -> Delta {
        Delta { tuple, count }
    }

    pub fn is_insert(&self) -> bool {
        self.count > 0
    }

    /// The same change with multiplicity scaled (bilinear operators).
    pub fn scaled(&self, by: i64) -> Delta {
        Delta {
            tuple: self.tuple.clone(),
            count: self.count * by,
        }
    }
}

/// Reusable state for [`coalesce`]: a hash-indexed view of the batch
/// being coalesced, invalidated between calls by a generation stamp
/// instead of an O(capacity) clear.
#[derive(Debug, Default)]
pub struct CoalesceScratch {
    /// tuple-hash → (generation, index of first occurrence in batch).
    map: FxHashMap<u64, (u32, u32)>,
    generation: u32,
}

/// Coalesces a batch in place: deltas on the same tuple are merged into
/// the first occurrence (summing signed counts), and tuples whose counts
/// cancel to zero are dropped entirely. First-occurrence order is
/// preserved, so coalescing is deterministic.
///
/// All operators are linear or bilinear in their input deltas (and the
/// stateful ones converge to the same fixpoint either way), so merging
/// `+t`/`-t` pairs before they fan out through a join shrinks cascades
/// without changing observable results.
///
/// The scratch index keys on tuple *hashes*, never cloning a tuple; on
/// the (rare) collision of two distinct tuples the later one is simply
/// left unmerged — coalescing is an optimization, not a correctness
/// requirement, so skipping a merge is always safe.
pub fn coalesce(batch: &mut Vec<Delta>, scratch: &mut CoalesceScratch) {
    if batch.len() <= 1 {
        batch.retain(|d| d.count != 0);
        return;
    }
    scratch.generation = scratch.generation.wrapping_add(1);
    if scratch.generation == 0 {
        // Wrapped: stale entries could alias the new generation.
        scratch.map.clear();
        scratch.generation = 1;
    }
    let generation = scratch.generation;
    let mut keep = 0usize;
    for i in 0..batch.len() {
        let h = batch[i].tuple.fx_hash();
        let mut merged = false;
        match scratch.map.entry(h) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let (gen, at) = *e.get();
                if gen == generation {
                    let at = at as usize;
                    if batch[at].tuple == batch[i].tuple {
                        let c = batch[i].count;
                        batch[at].count += c;
                        merged = true;
                    }
                    // else: hash collision between distinct tuples —
                    // keep both deltas, leave the mapping in place.
                } else {
                    e.insert((generation, keep as u32));
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((generation, keep as u32));
            }
        }
        if !merged {
            batch.swap(keep, i);
            keep += 1;
        }
    }
    batch.truncate(keep);
    batch.retain(|d| d.count != 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ints;

    #[test]
    fn constructors() {
        assert_eq!(Delta::insert(ints(&[1])).count, 1);
        assert_eq!(Delta::delete(ints(&[1])).count, -1);
        assert!(Delta::insert(ints(&[1])).is_insert());
        assert!(!Delta::delete(ints(&[1])).is_insert());
    }

    #[test]
    fn scaling_multiplies_counts() {
        let d = Delta::with_count(ints(&[7]), -2);
        assert_eq!(d.scaled(3).count, -6);
        assert_eq!(d.scaled(3).tuple, ints(&[7]));
    }

    #[test]
    fn coalesce_merges_and_cancels() {
        let mut batch = vec![
            Delta::insert(ints(&[1])),
            Delta::insert(ints(&[2])),
            Delta::delete(ints(&[1])),
            Delta::with_count(ints(&[2]), 2),
            Delta::with_count(ints(&[3]), 0),
        ];
        let mut scratch = CoalesceScratch::default();
        coalesce(&mut batch, &mut scratch);
        // (1): +1-1 cancels; (2): 1+2 merges; (3): zero dropped.
        assert_eq!(batch, vec![Delta::with_count(ints(&[2]), 3)]);
    }

    #[test]
    fn coalesce_preserves_first_occurrence_order() {
        let mut batch = vec![
            Delta::insert(ints(&[3])),
            Delta::insert(ints(&[1])),
            Delta::insert(ints(&[3])),
            Delta::insert(ints(&[2])),
        ];
        let mut scratch = CoalesceScratch::default();
        coalesce(&mut batch, &mut scratch);
        assert_eq!(
            batch,
            vec![
                Delta::with_count(ints(&[3]), 2),
                Delta::insert(ints(&[1])),
                Delta::insert(ints(&[2])),
            ]
        );
    }

    #[test]
    fn coalesce_singleton_drops_only_zeros() {
        let mut scratch = CoalesceScratch::default();
        let mut one = vec![Delta::insert(ints(&[1]))];
        coalesce(&mut one, &mut scratch);
        assert_eq!(one.len(), 1);
        let mut zero = vec![Delta::with_count(ints(&[1]), 0)];
        coalesce(&mut zero, &mut scratch);
        assert!(zero.is_empty());
    }
}
