//! Typed failure taxonomy for the dataflow substrate, plus the seeded
//! fault injector used by the chaos differential suite.
//!
//! Every way a [`Dataflow::run`](crate::dataflow::Dataflow::run) epoch
//! can fail is a [`DataflowError`] variant; an errored epoch is rolled
//! back before the error is returned, so callers always observe the
//! last committed fixpoint (see the epoch machinery in `dataflow.rs`).

use std::fmt;

/// A failed dataflow epoch. The substrate guarantees that by the time a
/// caller sees one of these, all stateful operators and sinks have been
/// rolled back to the last committed fixpoint and the input queue has
/// been restored, so the same externals can simply be re-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataflowError {
    /// The fixpoint did not converge within the step budget — either
    /// genuine non-termination (a cyclic network amplifying counts) or
    /// a budget set too low for the delta volume.
    FixpointOverrun {
        /// The step budget that was exhausted.
        steps: u64,
    },
    /// A user-registered external function reported failure.
    ExternalFn {
        /// The function's registered name.
        name: String,
        /// The error it reported.
        detail: String,
    },
    /// A fault injected by an armed [`FaultPlan`] (chaos testing only).
    InjectedFault {
        /// The delta-processing step at which the fault fired.
        step: u64,
    },
    /// A cross-check (audit mode, negative-count scan) found the state
    /// inconsistent. Carries a human-readable description.
    InvariantViolation(String),
    /// A structural misuse of the graph API: wiring through a fused
    /// node, pushing to a non-input node, and the like.
    InvalidWiring(String),
    /// A durable checkpoint or WAL failed validation on restore: bad
    /// magic/version, a per-record CRC mismatch (bit flip), a torn or
    /// truncated file, or a topology mismatch against the live network.
    /// Carries a human-readable description of what failed; callers are
    /// expected to degrade to a from-scratch rebuild, never to panic.
    StateCorruption(String),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::FixpointOverrun { steps } => {
                write!(f, "fixpoint did not converge within {steps} steps")
            }
            DataflowError::ExternalFn { name, detail } => {
                write!(f, "external function {name:?} failed: {detail}")
            }
            DataflowError::InjectedFault { step } => {
                write!(f, "injected fault fired at step {step}")
            }
            DataflowError::InvariantViolation(msg) => {
                write!(f, "invariant violation: {msg}")
            }
            DataflowError::InvalidWiring(msg) => write!(f, "invalid wiring: {msg}"),
            DataflowError::StateCorruption(msg) => {
                write!(f, "durable state corrupted: {msg}")
            }
        }
    }
}

impl std::error::Error for DataflowError {}

/// A deterministic fault injector: fails the epoch once the scheduler
/// has processed `at_step` deltas, `shots` times in total. Armed via
/// [`Dataflow::set_fault_plan`](crate::dataflow::Dataflow::set_fault_plan);
/// a runtime value rather than a cargo feature so the chaos suite runs
/// under a plain `cargo test`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    at_step: u64,
    shots: u32,
}

impl FaultPlan {
    /// Fail the next epoch that reaches `at_step` processed deltas,
    /// then disarm.
    pub fn one_shot(at_step: u64) -> FaultPlan {
        FaultPlan::with_shots(at_step, 1)
    }

    /// Fail `shots` consecutive epochs that reach `at_step` processed
    /// deltas (e.g. 2 shots also kills the raised-budget retry, forcing
    /// a bridge-level rebuild).
    pub fn with_shots(at_step: u64, shots: u32) -> FaultPlan {
        FaultPlan { at_step, shots }
    }

    /// True while the plan can still fire.
    pub fn armed(&self) -> bool {
        self.shots > 0
    }

    /// Checks the trigger at `step` processed deltas; consumes a shot
    /// when it fires.
    pub(crate) fn fire(&mut self, step: u64) -> bool {
        if self.shots > 0 && step >= self.at_step {
            self.shots -= 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_fires_once_per_shot() {
        let mut fp = FaultPlan::with_shots(3, 2);
        assert!(fp.armed());
        assert!(!fp.fire(1));
        assert!(!fp.fire(2));
        assert!(fp.fire(3));
        assert!(fp.armed());
        assert!(fp.fire(5)); // second shot, past the trigger
        assert!(!fp.armed());
        assert!(!fp.fire(100));
    }

    #[test]
    fn errors_render_usefully() {
        let e = DataflowError::ExternalFn {
            name: "Fn_split".into(),
            detail: "bad arity".into(),
        };
        assert!(e.to_string().contains("Fn_split"));
        assert!(DataflowError::FixpointOverrun { steps: 7 }
            .to_string()
            .contains('7'));
    }
}
