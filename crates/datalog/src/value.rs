//! Tuples and values flowing through the dataflow engine.
//!
//! The tuple representation is the innermost allocation site of the
//! whole system: every delta, every projection, every join key and every
//! join output constructs one. Short tuples of *scalar* values (up to
//! [`INLINE_CAP`] `Int`/`Cost` values — which covers every relation the
//! optimizer encoding and the test networks emit) are therefore stored
//! inline as packed 64-bit words: 48 bytes, `memcpy`-clonable, no heap
//! traffic and no drop glue. Tuples that are longer or contain strings
//! spill to a shared `Arc<[Val]>`.
//!
//! The representation is **canonical**: a given logical value sequence
//! always packs the same way (scalar-and-short ⟺ inline), so equality
//! and hashing can specialize per representation without cross-checks.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use reopt_common::{Cost, FxHasher};

/// A single value. Totally ordered and hashable (required by join keys
/// and min/max aggregation).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    Int(i64),
    Str(Arc<str>),
    /// Totally-ordered float (plan costs in the optimizer-as-datalog
    /// encoding).
    Cost(Cost),
}

impl Val {
    pub fn str(s: &str) -> Val {
        Val::Str(Arc::from(s))
    }

    pub fn cost(v: f64) -> Val {
        Val::Cost(Cost::new(v))
    }

    pub fn as_int(&self) -> i64 {
        match self {
            Val::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    pub fn as_cost(&self) -> Cost {
        match self {
            Val::Cost(c) => *c,
            Val::Int(v) => Cost::new(*v as f64),
            other => panic!("expected Cost, got {other:?}"),
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Val {
        Val::Int(v)
    }
}

impl From<Cost> for Val {
    fn from(c: Cost) -> Val {
        Val::Cost(c)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(v) => write!(f, "{v}"),
            Val::Str(s) => write!(f, "{s}"),
            Val::Cost(c) => write!(f, "{c}"),
        }
    }
}

/// Tuples up to this many scalar (`Int`/`Cost`) values are stored inline
/// with no heap allocation.
pub const INLINE_CAP: usize = 4;

/// Inline storage: up to [`INLINE_CAP`] scalar values packed as raw
/// 64-bit words plus a type-tag bitmask. `Copy` — cloning a scalar tuple
/// is a plain memcpy with no refcounts and no drop glue.
#[derive(Clone, Copy, Debug)]
struct Scalars {
    len: u8,
    /// Bit `i` set ⇒ `words[i]` is the bit pattern of a [`Cost`];
    /// clear ⇒ an `Int`. Bits at or above `len` are always clear.
    cost_mask: u8,
    words: [i64; INLINE_CAP],
}

impl Scalars {
    const EMPTY: Scalars = Scalars {
        len: 0,
        cost_mask: 0,
        words: [0; INLINE_CAP],
    };

    #[inline]
    fn is_cost(&self, i: usize) -> bool {
        self.cost_mask >> i & 1 == 1
    }

    #[inline]
    fn val(&self, i: usize) -> Val {
        assert!(
            i < self.len as usize,
            "index {i} out of bounds for tuple of {}",
            self.len
        );
        if self.is_cost(i) {
            Val::Cost(Cost::new(f64::from_bits(self.words[i] as u64)))
        } else {
            Val::Int(self.words[i])
        }
    }

    #[inline]
    fn push(&mut self, word: i64, is_cost: bool) {
        let i = self.len as usize;
        debug_assert!(i < INLINE_CAP);
        self.words[i] = word;
        self.cost_mask |= (is_cost as u8) << i;
        self.len += 1;
    }
}

/// Packs a scalar value into its canonical word: `Int` verbatim, `Cost`
/// as its bit pattern with `-0.0` normalized to `0.0` (so word equality
/// coincides with `Cost` equality; NaN is excluded by `Cost` itself).
/// `None` for strings, which cannot pack.
#[inline]
fn pack(v: &Val) -> Option<(i64, bool)> {
    match v {
        Val::Int(i) => Some((*i, false)),
        Val::Cost(c) => {
            let x = c.value();
            let x = if x == 0.0 { 0.0 } else { x };
            Some((x.to_bits() as i64, true))
        }
        Val::Str(_) => None,
    }
}

#[derive(Clone)]
enum Repr {
    Inline(Scalars),
    Spilled(Arc<[Val]>),
}

/// A tuple: an immutable, cheaply clonable value sequence. All
/// comparisons, hashing and ordering are over the logical value
/// sequence.
#[derive(Clone)]
pub struct Tuple(Repr);

impl Tuple {
    pub fn new(vals: Vec<Val>) -> Tuple {
        Tuple::from_slice(&vals)
    }

    pub fn from_slice(vals: &[Val]) -> Tuple {
        if vals.len() <= INLINE_CAP {
            let mut s = Scalars::EMPTY;
            let all_scalar = vals.iter().all(|v| match pack(v) {
                Some((w, is_c)) => {
                    s.push(w, is_c);
                    true
                }
                None => false,
            });
            if all_scalar {
                return Tuple(Repr::Inline(s));
            }
        }
        Tuple(Repr::Spilled(vals.iter().cloned().collect()))
    }

    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline(s) => s.len as usize,
            Repr::Spilled(vals) => vals.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at position `i` (owned; inline scalars are
    /// reconstructed from their packed words).
    #[inline]
    pub fn get(&self, i: usize) -> Val {
        match &self.0 {
            Repr::Inline(s) => s.val(i),
            Repr::Spilled(vals) => vals[i].clone(),
        }
    }

    /// Iterates the tuple's values (owned).
    pub fn values(&self) -> impl Iterator<Item = Val> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Projects the given column indexes into a new tuple, building the
    /// target representation directly (no intermediate `Vec` and, for
    /// scalar sources, no allocation at all).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        match &self.0 {
            Repr::Inline(s) if cols.len() <= INLINE_CAP => {
                let mut out = Scalars::EMPTY;
                for &c in cols {
                    assert!(
                        c < s.len as usize,
                        "column {c} out of bounds for tuple of {}",
                        s.len
                    );
                    out.push(s.words[c], s.is_cost(c));
                }
                Tuple(Repr::Inline(out))
            }
            Repr::Spilled(vals) if cols.len() <= INLINE_CAP => {
                let mut out = Scalars::EMPTY;
                let all_scalar = cols.iter().all(|&c| match pack(&vals[c]) {
                    Some((w, is_c)) => {
                        out.push(w, is_c);
                        true
                    }
                    None => false,
                });
                if all_scalar {
                    Tuple(Repr::Inline(out))
                } else {
                    // `slice::Iter` is `TrustedLen`: one allocation,
                    // straight into the `Arc`.
                    Tuple(Repr::Spilled(
                        cols.iter().map(|&c| vals[c].clone()).collect(),
                    ))
                }
            }
            _ => Tuple(Repr::Spilled(
                cols.iter().map(|&c| self.get(c)).collect(),
            )),
        }
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.0, &other.0) {
            if a.len as usize + b.len as usize <= INLINE_CAP {
                let mut out = *a;
                for i in 0..b.len as usize {
                    out.push(b.words[i], b.is_cost(i));
                }
                return Tuple(Repr::Inline(out));
            }
        }
        let mut vals = Vec::with_capacity(self.len() + other.len());
        vals.extend(self.values());
        vals.extend(other.values());
        Tuple::new(vals)
    }

    /// This tuple extended by one trailing value (aggregate outputs:
    /// `key ++ [agg]`).
    pub fn with_appended(&self, v: Val) -> Tuple {
        if let Repr::Inline(s) = &self.0 {
            if (s.len as usize) < INLINE_CAP {
                if let Some((w, is_c)) = pack(&v) {
                    let mut out = *s;
                    out.push(w, is_c);
                    return Tuple(Repr::Inline(out));
                }
            }
        }
        let mut vals = Vec::with_capacity(self.len() + 1);
        vals.extend(self.values());
        vals.push(v);
        Tuple::new(vals)
    }

    /// The tuple's FxHash — the batch coalescer's index key.
    /// Deterministic across runs.
    pub fn fx_hash(&self) -> u64 {
        let mut h = FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }

    /// Hashes the given columns directly — what a join index keys on —
    /// without materializing a key tuple. The per-value encoding is
    /// canonical across representations, so a probe tuple and a stored
    /// tuple with equal key *values* always hash alike. Deterministic
    /// (FxHash).
    pub fn hash_cols(&self, cols: &[usize]) -> u64 {
        let mut h = FxHasher::default();
        match &self.0 {
            Repr::Inline(s) => {
                for &c in cols {
                    hash_scalar_word(&mut h, s.is_cost(c), s.words[c]);
                }
            }
            Repr::Spilled(vals) => {
                for &c in cols {
                    hash_val_canonical(&mut h, &vals[c]);
                }
            }
        }
        h.finish()
    }

    /// Column-wise equality of `self[self_cols]` and `other[other_cols]`.
    pub fn cols_eq(&self, self_cols: &[usize], other: &Tuple, other_cols: &[usize]) -> bool {
        debug_assert_eq!(self_cols.len(), other_cols.len());
        self_cols
            .iter()
            .zip(other_cols)
            .all(|(&i, &j)| val_eq(self, i, other, j))
    }
}

/// Canonical per-value hashing for packed scalars: a type tag byte, then
/// the packed word.
#[inline]
fn hash_scalar_word<H: Hasher>(h: &mut H, is_cost: bool, word: i64) {
    h.write_u8(is_cost as u8);
    h.write_u64(word as u64);
}

/// Canonical per-value hashing for unpacked values, matching
/// [`hash_scalar_word`] for scalars.
fn hash_val_canonical<H: Hasher>(h: &mut H, v: &Val) {
    match pack(v) {
        Some((w, is_c)) => hash_scalar_word(h, is_c, w),
        None => {
            h.write_u8(2);
            if let Val::Str(s) = v {
                s.hash(h);
            }
        }
    }
}

/// Value equality across arbitrary representations, without
/// materializing `Val`s.
#[inline]
fn val_eq(a: &Tuple, i: usize, b: &Tuple, j: usize) -> bool {
    match (&a.0, &b.0) {
        (Repr::Inline(x), Repr::Inline(y)) => {
            x.is_cost(i) == y.is_cost(j) && x.words[i] == y.words[j]
        }
        (Repr::Spilled(x), Repr::Spilled(y)) => x[i] == y[j],
        (Repr::Inline(x), Repr::Spilled(y)) => packed_eq_val(x, i, &y[j]),
        (Repr::Spilled(x), Repr::Inline(y)) => packed_eq_val(y, j, &x[i]),
    }
}

#[inline]
fn packed_eq_val(s: &Scalars, i: usize, v: &Val) -> bool {
    match pack(v) {
        Some((w, is_c)) => s.is_cost(i) == is_c && s.words[i] == w,
        None => false,
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        match (&self.0, &other.0) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                a.len == b.len
                    && a.cost_mask == b.cost_mask
                    && a.words[..a.len as usize] == b.words[..b.len as usize]
            }
            (Repr::Spilled(a), Repr::Spilled(b)) => a == b,
            // Canonical representation: a scalar-short tuple is always
            // inline, so differing representations differ in content.
            _ => false,
        }
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal tuples share a representation (canonical packing), so
        // each arm only needs internal consistency.
        match &self.0 {
            Repr::Inline(s) => {
                state.write_u8(s.len);
                state.write_u8(s.cost_mask);
                for &w in &s.words[..s.len as usize] {
                    state.write_u64(w as u64);
                }
            }
            Repr::Spilled(vals) => {
                state.write_usize(vals.len());
                for v in vals.iter() {
                    hash_val_canonical(state, v);
                }
            }
        }
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> Ordering {
        // Fast path: two all-int inline tuples order as their raw words.
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.0, &other.0) {
            if a.cost_mask == 0 && b.cost_mask == 0 {
                return a.words[..a.len as usize].cmp(&b.words[..b.len as usize]);
            }
        }
        let (la, lb) = (self.len(), other.len());
        for i in 0..la.min(lb) {
            match self.get(i).cmp(&other.get(i)) {
                Ordering::Equal => {}
                non_eq => return non_eq,
            }
        }
        la.cmp(&lb)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience constructor: `tup![1, "x", 3]`-style building is verbose
/// without a macro; this free function keeps call sites short.
pub fn tup<const N: usize>(vals: [Val; N]) -> Tuple {
    Tuple::from_slice(&vals)
}

/// Integer tuple shorthand for tests and examples.
pub fn ints(vals: &[i64]) -> Tuple {
    if vals.len() <= INLINE_CAP {
        let mut s = Scalars::EMPTY;
        for &v in vals {
            s.push(v, false);
        }
        Tuple(Repr::Inline(s))
    } else {
        Tuple(Repr::Spilled(vals.iter().map(|&v| Val::Int(v)).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_projection_and_concat() {
        let t = ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), ints(&[30, 10]));
        assert_eq!(t.concat(&ints(&[40])), ints(&[10, 20, 30, 40]));
    }

    #[test]
    fn val_ordering() {
        assert!(Val::Int(1) < Val::Int(2));
        assert!(Val::cost(1.0) < Val::cost(2.0));
        assert!(Val::str("a") < Val::str("b"));
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::Int(3).as_int(), 3);
        assert_eq!(Val::cost(2.5).as_cost().value(), 2.5);
        assert_eq!(Val::Int(2).as_cost().value(), 2.0);
    }

    #[test]
    fn tuples_hash_and_compare_structurally() {
        use reopt_common::FxHashSet;
        let mut s = FxHashSet::default();
        s.insert(ints(&[1, 2]));
        assert!(s.contains(&ints(&[1, 2])));
        assert!(!s.contains(&ints(&[2, 1])));
    }

    #[test]
    fn inline_and_spilled_agree() {
        // 5 values spill; 4 stay inline. Equality/ord are over the
        // logical sequence either way.
        let spilled = ints(&[1, 2, 3, 4, 5]);
        assert_eq!(spilled.len(), 5);
        assert_eq!(spilled.project(&[0, 1, 2, 3]), ints(&[1, 2, 3, 4]));
        let long = ints(&[1, 2, 3]).concat(&ints(&[4, 5]));
        assert_eq!(long, spilled);
        assert_eq!(long.get(4), Val::Int(5));
        // Ordering is lexicographic across representations.
        assert!(ints(&[1, 2, 3, 4]) < spilled);
        assert!(ints(&[9]) > spilled);
    }

    #[test]
    fn costs_pack_inline() {
        let t = tup([Val::Int(1), Val::cost(2.5)]);
        assert_eq!(t.get(0), Val::Int(1));
        assert_eq!(t.get(1), Val::cost(2.5));
        assert_eq!(t, tup([Val::Int(1), Val::cost(2.5)]));
        // Int and Cost of the same numeric value are distinct values.
        assert_ne!(tup([Val::Int(1)]), tup([Val::cost(1.0)]));
        // Negative zero packs canonically.
        assert_eq!(tup([Val::cost(-0.0)]), tup([Val::cost(0.0)]));
        assert_eq!(
            tup([Val::cost(-0.0)]).fx_hash(),
            tup([Val::cost(0.0)]).fx_hash()
        );
    }

    #[test]
    fn strings_spill_and_compare_across_reprs() {
        let s = tup([Val::str("a"), Val::Int(1)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Val::str("a"));
        // A scalar tuple never equals a string-bearing one.
        assert_ne!(s, ints(&[0, 1]));
        // Mixed-repr ordering follows Val order (Int < Str < Cost).
        assert!(ints(&[0, 1]) < s);
        assert!(s < tup([Val::cost(0.0)]).concat(&ints(&[1])));
        // Projecting the scalar column of a spilled tuple re-packs it.
        assert_eq!(s.project(&[1]), ints(&[1]));
    }

    #[test]
    fn with_appended_matches_concat() {
        let t = ints(&[7, 8]);
        assert_eq!(t.with_appended(Val::Int(9)), ints(&[7, 8, 9]));
        let long = ints(&[1, 2, 3, 4]);
        assert_eq!(long.with_appended(Val::Int(5)), ints(&[1, 2, 3, 4, 5]));
        assert_eq!(
            t.with_appended(Val::str("x")),
            tup([Val::Int(7), Val::Int(8), Val::str("x")])
        );
    }

    #[test]
    fn hash_cols_matches_projected_key_equality() {
        let a = ints(&[1, 10, 3]);
        let b = ints(&[5, 1, 3]);
        // a[0,2] == b[1,2] as key columns.
        assert!(a.cols_eq(&[0, 2], &b, &[1, 2]));
        assert_eq!(a.hash_cols(&[0, 2]), b.hash_cols(&[1, 2]));
        assert!(!a.cols_eq(&[1, 2], &b, &[1, 2]));
        // Key hashing is representation-independent: the same column
        // values hash alike from an inline and a spilled tuple.
        let spilled = tup([Val::str("pad"), Val::Int(1), Val::Int(3)]);
        assert!(spilled.cols_eq(&[1, 2], &a, &[0, 2]));
        assert_eq!(spilled.hash_cols(&[1, 2]), a.hash_cols(&[0, 2]));
    }

    #[test]
    fn project_beyond_inline_cap() {
        let t = ints(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(t.project(&[5, 4, 3, 2, 1]), ints(&[5, 4, 3, 2, 1]));
    }
}
