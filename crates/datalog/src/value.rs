//! Tuples and values flowing through the dataflow engine.

use std::fmt;
use std::sync::Arc;

use reopt_common::Cost;

/// A single value. Totally ordered and hashable (required by join keys
/// and min/max aggregation).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    Int(i64),
    Str(Arc<str>),
    /// Totally-ordered float (plan costs in the optimizer-as-datalog
    /// encoding).
    Cost(Cost),
}

impl Val {
    pub fn str(s: &str) -> Val {
        Val::Str(Arc::from(s))
    }

    pub fn cost(v: f64) -> Val {
        Val::Cost(Cost::new(v))
    }

    pub fn as_int(&self) -> i64 {
        match self {
            Val::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    pub fn as_cost(&self) -> Cost {
        match self {
            Val::Cost(c) => *c,
            Val::Int(v) => Cost::new(*v as f64),
            other => panic!("expected Cost, got {other:?}"),
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Val {
        Val::Int(v)
    }
}

impl From<Cost> for Val {
    fn from(c: Cost) -> Val {
        Val::Cost(c)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(v) => write!(f, "{v}"),
            Val::Str(s) => write!(f, "{s}"),
            Val::Cost(c) => write!(f, "{c}"),
        }
    }
}

/// A tuple: an immutable, cheaply clonable value sequence.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(pub Arc<[Val]>);

impl Tuple {
    pub fn new(vals: Vec<Val>) -> Tuple {
        Tuple(vals.into())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, i: usize) -> &Val {
        &self.0[i]
    }

    /// Projects the given column indexes into a new tuple.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut vals = Vec::with_capacity(self.len() + other.len());
        vals.extend_from_slice(&self.0);
        vals.extend_from_slice(&other.0);
        Tuple::new(vals)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience constructor: `tup![1, "x", 3]`-style building is verbose
/// without a macro; this free function keeps call sites short.
pub fn tup<const N: usize>(vals: [Val; N]) -> Tuple {
    Tuple::new(vals.to_vec())
}

/// Integer tuple shorthand for tests and examples.
pub fn ints(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|&v| Val::Int(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_projection_and_concat() {
        let t = ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), ints(&[30, 10]));
        assert_eq!(t.concat(&ints(&[40])), ints(&[10, 20, 30, 40]));
    }

    #[test]
    fn val_ordering() {
        assert!(Val::Int(1) < Val::Int(2));
        assert!(Val::cost(1.0) < Val::cost(2.0));
        assert!(Val::str("a") < Val::str("b"));
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::Int(3).as_int(), 3);
        assert_eq!(Val::cost(2.5).as_cost().value(), 2.5);
        assert_eq!(Val::Int(2).as_cost().value(), 2.0);
    }

    #[test]
    fn tuples_hash_and_compare_structurally() {
        use reopt_common::FxHashSet;
        let mut s = FxHashSet::default();
        s.insert(ints(&[1, 2]));
        assert!(s.contains(&ints(&[1, 2])));
        assert!(!s.contains(&ints(&[2, 1])));
    }
}
