//! Tuples and values flowing through the dataflow engine.
//!
//! The tuple representation is the innermost allocation site of the
//! whole system: every delta, every projection, every join key and every
//! join output constructs one. Values are 16 bytes (`Int`/`Cost` carry
//! their 8-byte payload, `Str` carries an interned [`Sym`] — see
//! [`crate::intern`]), so short tuples of up to [`INLINE_CAP`] values of
//! *any* kind are stored inline as packed 64-bit words: 48 bytes,
//! `memcpy`-clonable, no heap traffic and no drop glue. Only tuples
//! longer than [`INLINE_CAP`] spill to a shared `Arc<[Val]>`.
//!
//! The representation is **canonical**: a given logical value sequence
//! always packs the same way (short ⟺ inline), so equality and hashing
//! can specialize per representation without cross-checks.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use reopt_common::{Cost, FxHasher};

use crate::intern::Sym;

/// A single value. Totally ordered and hashable (required by join keys
/// and min/max aggregation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Val {
    Int(i64),
    /// An interned string (equality by symbol, ordering lexicographic).
    Str(Sym),
    /// Totally-ordered float (plan costs in the optimizer-as-datalog
    /// encoding).
    Cost(Cost),
}

impl Val {
    pub fn str(s: &str) -> Val {
        Val::Str(Sym::intern(s))
    }

    pub fn cost(v: f64) -> Val {
        Val::Cost(Cost::new(v))
    }

    pub fn as_int(&self) -> i64 {
        match self {
            Val::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    pub fn as_cost(&self) -> Cost {
        match self {
            Val::Cost(c) => *c,
            Val::Int(v) => Cost::new(*v as f64),
            other => panic!("expected Cost, got {other:?}"),
        }
    }

    pub fn as_sym(&self) -> Sym {
        match self {
            Val::Str(s) => *s,
            other => panic!("expected Str, got {other:?}"),
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Val {
        Val::Int(v)
    }
}

impl From<Cost> for Val {
    fn from(c: Cost) -> Val {
        Val::Cost(c)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(v) => write!(f, "{v}"),
            Val::Str(s) => write!(f, "{s}"),
            Val::Cost(c) => write!(f, "{c}"),
        }
    }
}

/// Tuples up to this many values are stored inline with no heap
/// allocation.
pub const INLINE_CAP: usize = 4;

/// Inline storage: up to [`INLINE_CAP`] values packed as raw 64-bit
/// words plus per-kind tag bitmasks. `Copy` — cloning a short tuple is a
/// plain memcpy with no refcounts and no drop glue.
#[derive(Clone, Copy, Debug)]
struct Scalars {
    len: u8,
    /// Bit `i` set ⇒ `words[i]` is the bit pattern of a [`Cost`].
    cost_mask: u8,
    /// Bit `i` set ⇒ `words[i]` is a [`Sym`] id. Disjoint from
    /// `cost_mask`; both clear ⇒ an `Int`. Bits at or above `len` are
    /// always clear.
    sym_mask: u8,
    words: [i64; INLINE_CAP],
}

impl Scalars {
    const EMPTY: Scalars = Scalars {
        len: 0,
        cost_mask: 0,
        sym_mask: 0,
        words: [0; INLINE_CAP],
    };

    #[inline]
    fn tag(&self, i: usize) -> u8 {
        (self.cost_mask >> i & 1) | (self.sym_mask >> i & 1) << 1
    }

    #[inline]
    fn val(&self, i: usize) -> Val {
        assert!(
            i < self.len as usize,
            "index {i} out of bounds for tuple of {}",
            self.len
        );
        unpack(self.words[i], self.tag(i))
    }

    #[inline]
    fn push(&mut self, word: i64, tag: u8) {
        let i = self.len as usize;
        debug_assert!(i < INLINE_CAP);
        self.words[i] = word;
        self.cost_mask |= (tag & 1) << i;
        self.sym_mask |= (tag >> 1 & 1) << i;
        self.len += 1;
    }
}

/// Per-value type tags of the packed encoding.
const TAG_INT: u8 = 0;
const TAG_COST: u8 = 1;
const TAG_SYM: u8 = 2;

/// Packs a value into its canonical `(word, tag)`: `Int` verbatim,
/// `Cost` as its bit pattern with `-0.0` normalized to `0.0` (so word
/// equality coincides with `Cost` equality; NaN is excluded by `Cost`
/// itself), `Str` as its symbol id. Total — every value packs.
#[inline]
fn pack(v: &Val) -> (i64, u8) {
    match v {
        Val::Int(i) => (*i, TAG_INT),
        Val::Cost(c) => {
            let x = c.value();
            let x = if x == 0.0 { 0.0 } else { x };
            (x.to_bits() as i64, TAG_COST)
        }
        Val::Str(s) => (s.id() as i64, TAG_SYM),
    }
}

#[inline]
fn unpack(word: i64, tag: u8) -> Val {
    match tag {
        TAG_COST => Val::Cost(Cost::new(f64::from_bits(word as u64))),
        TAG_SYM => Val::Str(Sym::from_id(word as u32)),
        _ => Val::Int(word),
    }
}

#[derive(Clone)]
enum Repr {
    Inline(Scalars),
    /// Long tuples: shared values plus their canonical hash, computed
    /// once at construction. Wide tuples are hashed at *every* stateful
    /// hop (batch coalescing, join indexes, multiset state, sinks), so
    /// caching the digest turns each of those into a single `u64` write.
    Spilled(Arc<[Val]>, u64),
}

/// Builds the spilled representation, computing the canonical hash
/// (length, then each value's packed `(tag, word)`) exactly once.
fn spill(vals: Arc<[Val]>) -> Repr {
    let mut h = FxHasher::default();
    h.write_usize(vals.len());
    for v in vals.iter() {
        let (w, tag) = pack(v);
        hash_packed_word(&mut h, tag, w);
    }
    let digest = h.finish();
    Repr::Spilled(vals, digest)
}

/// A tuple: an immutable, cheaply clonable value sequence. All
/// comparisons, hashing and ordering are over the logical value
/// sequence.
#[derive(Clone)]
pub struct Tuple(Repr);

impl Tuple {
    pub fn new(vals: Vec<Val>) -> Tuple {
        Tuple::from_slice(&vals)
    }

    pub fn from_slice(vals: &[Val]) -> Tuple {
        if vals.len() <= INLINE_CAP {
            let mut s = Scalars::EMPTY;
            for v in vals {
                let (w, tag) = pack(v);
                s.push(w, tag);
            }
            Tuple(Repr::Inline(s))
        } else {
            Tuple(spill(vals.iter().cloned().collect()))
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline(s) => s.len as usize,
            Repr::Spilled(vals, _) => vals.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at position `i` (owned; inline values are reconstructed
    /// from their packed words).
    #[inline]
    pub fn get(&self, i: usize) -> Val {
        match &self.0 {
            Repr::Inline(s) => s.val(i),
            Repr::Spilled(vals, _) => vals[i],
        }
    }

    /// Iterates the tuple's values (owned).
    pub fn values(&self) -> impl Iterator<Item = Val> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Projects the given column indexes into a new tuple, building the
    /// target representation directly (no intermediate `Vec` and, for
    /// short outputs, no allocation at all).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        match &self.0 {
            Repr::Inline(s) if cols.len() <= INLINE_CAP => {
                let mut out = Scalars::EMPTY;
                for &c in cols {
                    assert!(
                        c < s.len as usize,
                        "column {c} out of bounds for tuple of {}",
                        s.len
                    );
                    out.push(s.words[c], s.tag(c));
                }
                Tuple(Repr::Inline(out))
            }
            Repr::Spilled(vals, _) if cols.len() <= INLINE_CAP => {
                let mut out = Scalars::EMPTY;
                for &c in cols {
                    let (w, tag) = pack(&vals[c]);
                    out.push(w, tag);
                }
                Tuple(Repr::Inline(out))
            }
            _ => Tuple(spill(cols.iter().map(|&c| self.get(c)).collect())),
        }
    }

    /// Projects columns out of the *virtual concatenation*
    /// `self ++ other` without materializing it — the fused
    /// join-then-project output path: one tuple construction instead of
    /// a wide concat followed by a projection.
    pub fn project_concat(&self, other: &Tuple, cols: &[usize]) -> Tuple {
        let split = self.len();
        let pick = |c: usize| -> Val {
            if c < split {
                self.get(c)
            } else {
                other.get(c - split)
            }
        };
        if cols.len() <= INLINE_CAP {
            let mut out = Scalars::EMPTY;
            for &c in cols {
                let (w, tag) = pack(&pick(c));
                out.push(w, tag);
            }
            Tuple(Repr::Inline(out))
        } else {
            Tuple(spill(cols.iter().map(|&c| pick(c)).collect()))
        }
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.0, &other.0) {
            if a.len as usize + b.len as usize <= INLINE_CAP {
                let mut out = *a;
                for i in 0..b.len as usize {
                    out.push(b.words[i], b.tag(i));
                }
                return Tuple(Repr::Inline(out));
            }
        }
        let mut vals = Vec::with_capacity(self.len() + other.len());
        vals.extend(self.values());
        vals.extend(other.values());
        Tuple::new(vals)
    }

    /// This tuple extended by one trailing value (aggregate outputs:
    /// `key ++ [agg]`).
    pub fn with_appended(&self, v: Val) -> Tuple {
        if let Repr::Inline(s) = &self.0 {
            if (s.len as usize) < INLINE_CAP {
                let (w, tag) = pack(&v);
                let mut out = *s;
                out.push(w, tag);
                return Tuple(Repr::Inline(out));
            }
        }
        let mut vals = Vec::with_capacity(self.len() + 1);
        vals.extend(self.values());
        vals.push(v);
        Tuple::new(vals)
    }

    /// The tuple's FxHash — the batch coalescer's index key.
    /// Deterministic across runs (symbol ids are allocation-ordered, so
    /// only within one process). Spilled tuples return their cached
    /// construction-time digest.
    pub fn fx_hash(&self) -> u64 {
        match &self.0 {
            Repr::Inline(_) => {
                let mut h = FxHasher::default();
                self.hash(&mut h);
                h.finish()
            }
            Repr::Spilled(_, digest) => *digest,
        }
    }

    /// Hashes the given columns directly — what a join index keys on —
    /// without materializing a key tuple. The per-value encoding is
    /// canonical across representations, so a probe tuple and a stored
    /// tuple with equal key *values* always hash alike. Deterministic
    /// (FxHash).
    pub fn hash_cols(&self, cols: &[usize]) -> u64 {
        let mut h = FxHasher::default();
        match &self.0 {
            Repr::Inline(s) => {
                for &c in cols {
                    hash_packed_word(&mut h, s.tag(c), s.words[c]);
                }
            }
            Repr::Spilled(vals, _) => {
                for &c in cols {
                    let (w, tag) = pack(&vals[c]);
                    hash_packed_word(&mut h, tag, w);
                }
            }
        }
        h.finish()
    }

    /// Column-wise equality of `self[self_cols]` and `other[other_cols]`.
    pub fn cols_eq(&self, self_cols: &[usize], other: &Tuple, other_cols: &[usize]) -> bool {
        debug_assert_eq!(self_cols.len(), other_cols.len());
        self_cols
            .iter()
            .zip(other_cols)
            .all(|(&i, &j)| val_eq(self, i, other, j))
    }
}

/// Canonical per-value hashing: a type tag byte, then the packed word.
/// The same function serves inline words and (re-packed) spilled values,
/// so key hashes agree across representations.
#[inline]
fn hash_packed_word<H: Hasher>(h: &mut H, tag: u8, word: i64) {
    h.write_u8(tag);
    h.write_u64(word as u64);
}

/// Value equality across arbitrary representations, without
/// materializing `Val`s.
#[inline]
fn val_eq(a: &Tuple, i: usize, b: &Tuple, j: usize) -> bool {
    match (&a.0, &b.0) {
        (Repr::Inline(x), Repr::Inline(y)) => {
            x.tag(i) == y.tag(j) && x.words[i] == y.words[j]
        }
        (Repr::Spilled(x, _), Repr::Spilled(y, _)) => x[i] == y[j],
        (Repr::Inline(x), Repr::Spilled(y, _)) => packed_eq_val(x, i, &y[j]),
        (Repr::Spilled(x, _), Repr::Inline(y)) => packed_eq_val(y, j, &x[i]),
    }
}

#[inline]
fn packed_eq_val(s: &Scalars, i: usize, v: &Val) -> bool {
    let (w, tag) = pack(v);
    s.tag(i) == tag && s.words[i] == w
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Tuple) -> bool {
        match (&self.0, &other.0) {
            (Repr::Inline(a), Repr::Inline(b)) => {
                a.len == b.len
                    && a.cost_mask == b.cost_mask
                    && a.sym_mask == b.sym_mask
                    && a.words[..a.len as usize] == b.words[..b.len as usize]
            }
            // Canonical hashing: unequal digests prove inequality
            // without touching the values.
            (Repr::Spilled(a, ha), Repr::Spilled(b, hb)) => ha == hb && a == b,
            // Canonical representation: a short tuple is always inline,
            // so differing representations differ in length.
            _ => false,
        }
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal tuples share a representation (canonical packing), so
        // each arm only needs internal consistency.
        match &self.0 {
            Repr::Inline(s) => {
                // Length and both tag masks fold into one header word —
                // one hasher round instead of three.
                let header =
                    s.len as u64 | (s.cost_mask as u64) << 8 | (s.sym_mask as u64) << 16;
                state.write_u64(header);
                for &w in &s.words[..s.len as usize] {
                    state.write_u64(w as u64);
                }
            }
            // The canonical digest was computed at construction.
            Repr::Spilled(_, digest) => state.write_u64(*digest),
        }
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Tuple) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    fn cmp(&self, other: &Tuple) -> Ordering {
        // Fast path: two all-int inline tuples order as their raw words
        // (symbol ids are *not* lexicographic, so they take the slow
        // path).
        if let (Repr::Inline(a), Repr::Inline(b)) = (&self.0, &other.0) {
            if a.cost_mask | a.sym_mask == 0 && b.cost_mask | b.sym_mask == 0 {
                return a.words[..a.len as usize].cmp(&b.words[..b.len as usize]);
            }
        }
        let (la, lb) = (self.len(), other.len());
        for i in 0..la.min(lb) {
            match self.get(i).cmp(&other.get(i)) {
                Ordering::Equal => {}
                non_eq => return non_eq,
            }
        }
        la.cmp(&lb)
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience constructor: `tup![1, "x", 3]`-style building is verbose
/// without a macro; this free function keeps call sites short.
pub fn tup<const N: usize>(vals: [Val; N]) -> Tuple {
    Tuple::from_slice(&vals)
}

/// Integer tuple shorthand for tests and examples.
pub fn ints(vals: &[i64]) -> Tuple {
    if vals.len() <= INLINE_CAP {
        let mut s = Scalars::EMPTY;
        for &v in vals {
            s.push(v, TAG_INT);
        }
        Tuple(Repr::Inline(s))
    } else {
        Tuple(spill(vals.iter().map(|&v| Val::Int(v)).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn val_is_sixteen_bytes() {
        // The interning payoff the ROADMAP targets: `Str` carries a u32
        // symbol, so the enum needs only one word of payload.
        assert_eq!(std::mem::size_of::<Val>(), 16);
        assert_eq!(std::mem::size_of::<Tuple>(), 48);
    }

    #[test]
    fn tuple_projection_and_concat() {
        let t = ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), ints(&[30, 10]));
        assert_eq!(t.concat(&ints(&[40])), ints(&[10, 20, 30, 40]));
    }

    #[test]
    fn val_ordering() {
        assert!(Val::Int(1) < Val::Int(2));
        assert!(Val::cost(1.0) < Val::cost(2.0));
        assert!(Val::str("a") < Val::str("b"));
        // Symbol ordering is lexicographic even when interning order
        // disagrees with it.
        let late_a = Val::str("0a-late");
        let early_z = Val::str("0z-early");
        assert!(late_a < early_z);
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::Int(3).as_int(), 3);
        assert_eq!(Val::cost(2.5).as_cost().value(), 2.5);
        assert_eq!(Val::Int(2).as_cost().value(), 2.0);
        assert_eq!(Val::str("x").as_sym(), crate::intern::Sym::intern("x"));
    }

    #[test]
    fn tuples_hash_and_compare_structurally() {
        use reopt_common::FxHashSet;
        let mut s = FxHashSet::default();
        s.insert(ints(&[1, 2]));
        assert!(s.contains(&ints(&[1, 2])));
        assert!(!s.contains(&ints(&[2, 1])));
    }

    #[test]
    fn inline_and_spilled_agree() {
        // 5 values spill; 4 stay inline. Equality/ord are over the
        // logical sequence either way.
        let spilled = ints(&[1, 2, 3, 4, 5]);
        assert_eq!(spilled.len(), 5);
        assert_eq!(spilled.project(&[0, 1, 2, 3]), ints(&[1, 2, 3, 4]));
        let long = ints(&[1, 2, 3]).concat(&ints(&[4, 5]));
        assert_eq!(long, spilled);
        assert_eq!(long.get(4), Val::Int(5));
        // Ordering is lexicographic across representations.
        assert!(ints(&[1, 2, 3, 4]) < spilled);
        assert!(ints(&[9]) > spilled);
    }

    #[test]
    fn costs_pack_inline() {
        let t = tup([Val::Int(1), Val::cost(2.5)]);
        assert_eq!(t.get(0), Val::Int(1));
        assert_eq!(t.get(1), Val::cost(2.5));
        assert_eq!(t, tup([Val::Int(1), Val::cost(2.5)]));
        // Int and Cost of the same numeric value are distinct values.
        assert_ne!(tup([Val::Int(1)]), tup([Val::cost(1.0)]));
        // Negative zero packs canonically.
        assert_eq!(tup([Val::cost(-0.0)]), tup([Val::cost(0.0)]));
        assert_eq!(
            tup([Val::cost(-0.0)]).fx_hash(),
            tup([Val::cost(0.0)]).fx_hash()
        );
    }

    #[test]
    fn strings_pack_inline_and_compare() {
        // Interned strings pack like any scalar: no heap allocation for
        // short string-bearing tuples.
        let s = tup([Val::str("a"), Val::Int(1)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Val::str("a"));
        assert_eq!(s, tup([Val::str("a"), Val::Int(1)]));
        // A same-shape tuple with a different value kind never equals it.
        assert_ne!(s, ints(&[0, 1]));
        // Mixed ordering follows Val order (Int < Str < Cost).
        assert!(ints(&[0, 1]) < s);
        assert!(s < tup([Val::cost(0.0), Val::Int(1)]));
        // Projection keeps the packed encoding.
        assert_eq!(s.project(&[1]), ints(&[1]));
        assert_eq!(s.project(&[0]), tup([Val::str("a")]));
    }

    #[test]
    fn string_bearing_tuples_spill_past_inline_cap() {
        let wide = tup([
            Val::str("w"),
            Val::Int(1),
            Val::Int(2),
            Val::Int(3),
        ])
        .with_appended(Val::str("x"));
        assert_eq!(wide.len(), 5);
        assert_eq!(wide.get(0), Val::str("w"));
        assert_eq!(wide.get(4), Val::str("x"));
        // Projecting back under the cap re-packs, and key hashing agrees
        // across representations.
        let narrow = wide.project(&[0, 4]);
        assert_eq!(narrow, tup([Val::str("w"), Val::str("x")]));
        assert!(wide.cols_eq(&[0, 4], &narrow, &[0, 1]));
        assert_eq!(wide.hash_cols(&[0, 4]), narrow.hash_cols(&[0, 1]));
    }

    #[test]
    fn with_appended_matches_concat() {
        let t = ints(&[7, 8]);
        assert_eq!(t.with_appended(Val::Int(9)), ints(&[7, 8, 9]));
        let long = ints(&[1, 2, 3, 4]);
        assert_eq!(long.with_appended(Val::Int(5)), ints(&[1, 2, 3, 4, 5]));
        assert_eq!(
            t.with_appended(Val::str("x")),
            tup([Val::Int(7), Val::Int(8), Val::str("x")])
        );
    }

    #[test]
    fn hash_cols_matches_projected_key_equality() {
        let a = ints(&[1, 10, 3]);
        let b = ints(&[5, 1, 3]);
        // a[0,2] == b[1,2] as key columns.
        assert!(a.cols_eq(&[0, 2], &b, &[1, 2]));
        assert_eq!(a.hash_cols(&[0, 2]), b.hash_cols(&[1, 2]));
        assert!(!a.cols_eq(&[1, 2], &b, &[1, 2]));
        // Key hashing is representation-independent: the same column
        // values hash alike from an inline and a spilled tuple.
        let spilled = tup([
            Val::str("pad"),
            Val::str("pad2"),
            Val::Int(1),
            Val::Int(3),
            Val::Int(9),
        ]);
        assert!(spilled.cols_eq(&[2, 3], &a, &[0, 2]));
        assert_eq!(spilled.hash_cols(&[2, 3]), a.hash_cols(&[0, 2]));
    }

    #[test]
    fn project_beyond_inline_cap() {
        let t = ints(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(t.project(&[5, 4, 3, 2, 1]), ints(&[5, 4, 3, 2, 1]));
    }
}
