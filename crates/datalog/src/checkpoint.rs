//! Durable checkpoint codec: a hand-rolled, versioned, checksummed
//! binary format for dataflow state, plus the atomic-commit file
//! protocol.
//!
//! The build container is offline, so there is no serde — every encoder
//! and decoder here is written by hand against a fixed record layout:
//!
//! ```text
//! file   := magic[4] version(u32 LE) record*
//! record := len(u32 LE) crc32(u32 LE, over payload) payload[len]
//! ```
//!
//! Records carry section payloads (symbol table, per-node operator
//! state, sink contents, queue residue at the [`Dataflow`] layer; the
//! bridge reuses the same framing for its snapshot bundle and WAL).
//! Every record is independently CRC-protected, so a single flipped bit
//! anywhere in a file is detected as [`DataflowError::StateCorruption`]
//! rather than silently restoring drifted state; a truncated file fails
//! the length check of its torn record the same way.
//!
//! **Symbols are process-local.** `Val::Str` packs an interner id
//! ([`Sym::id`]) that a fresh process would resolve to the wrong string
//! (or none at all). Checkpoints therefore open with a snapshot of the
//! writer's symbol table, and [`SymRemap`] re-interns each string on
//! decode, translating every serialized symbol id through the table —
//! tuples round-trip *by string*, not by id.
//!
//! [`Dataflow`]: crate::dataflow::Dataflow

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use crate::error::DataflowError;
use crate::intern::Sym;
use crate::relation::{IndexedMultiset, Multiset};
use crate::value::{Tuple, Val};

/// File magic for dataflow checkpoints.
pub const MAGIC: [u8; 4] = *b"RCKP";
/// Current on-disk format version. Bumped on any layout change; readers
/// reject versions they do not understand instead of misparsing them.
pub const VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `bytes`.
/// Hand-rolled because the container has no crates.io access; the
/// table is built once at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Slicing-by-8: eight derived tables let the loop fold one 64-bit
    // word per iteration instead of one byte — every restore checksums
    // the full image twice (outer framing + embedded network records),
    // so byte-at-a-time CRC would eat a measurable slice of the restore
    // budget.
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            t[0][i as usize] = c;
        }
        for i in 0..256 {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(ch[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

fn corrupt(msg: impl Into<String>) -> DataflowError {
    DataflowError::StateCorruption(msg.into())
}

/// Value tags inside serialized tuples. Mirrors the in-memory packing
/// scheme (`value::pack`) but is an independent on-disk contract: the
/// in-memory tags may change freely, these may not (version-gated).
const TAG_INT: u8 = 0;
const TAG_COST: u8 = 1;
const TAG_SYM: u8 = 2;

/// Section payload encoder: little-endian scalars, length-prefixed
/// strings and tuples, appended to a growable buffer.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends pre-encoded bytes verbatim — for embedding a nested
    /// record stream (e.g. a whole dataflow checkpoint) as one record.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// One value: tag byte + 8-byte payload. Symbols serialize as their
    /// writer-local id — meaningful only next to the file's symbol
    /// table.
    pub fn val(&mut self, v: Val) {
        match v {
            Val::Int(i) => {
                self.u8(TAG_INT);
                self.i64(i);
            }
            Val::Cost(c) => {
                self.u8(TAG_COST);
                self.f64(c.value());
            }
            Val::Str(s) => {
                self.u8(TAG_SYM);
                self.u64(s.id() as u64);
            }
        }
    }

    /// Length-prefixed value sequence.
    pub fn tuple(&mut self, t: &Tuple) {
        self.u32(t.len() as u32);
        for v in t.values() {
            self.val(v);
        }
    }
}

/// Old-id → live-symbol translation built from a checkpoint's symbol
/// table: entry `i` is the *current process's* symbol for the string
/// the writer had interned at id `i`.
pub struct SymRemap {
    map: Vec<Sym>,
}

impl SymRemap {
    /// The identity map over the current table (encode-side testing).
    pub fn identity() -> SymRemap {
        SymRemap {
            map: Sym::table_snapshot()
                .iter()
                .map(|s| Sym::intern(s))
                .collect(),
        }
    }

    /// Re-interns a decoded symbol table. Interner exhaustion while
    /// adopting a foreign table surfaces as
    /// [`DataflowError::StateCorruption`] (the restore degrades; the
    /// process does not abort).
    pub fn from_strings(strings: &[Arc<str>]) -> Result<SymRemap, DataflowError> {
        let mut map = Vec::with_capacity(strings.len());
        for s in strings {
            map.push(Sym::try_intern(s)?);
        }
        Ok(SymRemap { map })
    }

    fn translate(&self, old_id: u64) -> Result<Sym, DataflowError> {
        self.map
            .get(usize::try_from(old_id).map_err(|_| corrupt("symbol id overflows usize"))?)
            .copied()
            .ok_or_else(|| {
                corrupt(format!(
                    "symbol id {old_id} not covered by the checkpoint's table of {}",
                    self.map.len()
                ))
            })
    }
}

/// Section payload decoder. Every read bounds-checks against the
/// remaining buffer and surfaces [`DataflowError::StateCorruption`] on
/// truncation, so a torn payload can never panic or over-allocate.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    remap: &'a SymRemap,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8], remap: &'a SymRemap) -> Dec<'a> {
        Dec { buf, pos: 0, remap }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DataflowError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("payload truncated"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, DataflowError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, DataflowError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, DataflowError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, DataflowError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, DataflowError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<&'a str, DataflowError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| corrupt("string is not UTF-8"))
    }

    /// Decodes one value, translating symbols through the remap.
    pub fn val(&mut self) -> Result<Val, DataflowError> {
        match self.u8()? {
            TAG_INT => Ok(Val::Int(self.i64()?)),
            TAG_COST => Ok(Val::cost(self.f64()?)),
            TAG_SYM => Ok(Val::Str(self.remap.translate(self.u64()?)?)),
            t => Err(corrupt(format!("unknown value tag {t}"))),
        }
    }

    pub fn tuple(&mut self) -> Result<Tuple, DataflowError> {
        let mut scratch = Vec::new();
        self.tuple_into(&mut scratch)
    }

    /// [`Dec::tuple`] decoding through a caller-owned scratch buffer,
    /// so bulk decoders (checkpoint restore's hot loop) pay one
    /// allocation per *relation* instead of one per tuple. Values are a
    /// fixed 9 encoded bytes (tag + 64-bit word), so the whole tuple is
    /// bounds-checked once and parsed from exact chunks.
    pub fn tuple_into(&mut self, scratch: &mut Vec<Val>) -> Result<Tuple, DataflowError> {
        let len = self.u32()? as usize;
        if len > (self.buf.len() - self.pos) / 9 {
            return Err(corrupt("tuple length exceeds payload"));
        }
        let need = len * 9;
        let bytes = &self.buf[self.pos..self.pos + need];
        scratch.clear();
        scratch.reserve(len);
        for ch in bytes.chunks_exact(9) {
            let word = u64::from_le_bytes(ch[1..9].try_into().unwrap());
            scratch.push(match ch[0] {
                TAG_INT => Val::Int(word as i64),
                TAG_COST => Val::cost(f64::from_bits(word)),
                TAG_SYM => Val::Str(self.remap.translate(word)?),
                t => return Err(corrupt(format!("unknown value tag {t}"))),
            });
        }
        self.pos += need;
        Ok(Tuple::from_slice(scratch))
    }

    /// Consumes and returns every remaining byte — the inverse of
    /// [`Enc::raw`], for extracting an embedded nested stream.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Decodes a `u64` count that prefixes a repeated section, capped
    /// by the bytes that could possibly back it (`min_item_bytes` per
    /// item) so a corrupted count cannot drive a huge allocation.
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, DataflowError> {
        let n = self.u64()?;
        let cap = (self.buf.len() - self.pos) / min_item_bytes.max(1);
        let n = usize::try_from(n).map_err(|_| corrupt("count overflows usize"))?;
        if n > cap {
            return Err(corrupt(format!("count {n} exceeds payload capacity {cap}")));
        }
        Ok(n)
    }
}

/// Frames CRC-protected records into a checkpoint byte stream.
pub struct RecordWriter {
    out: Vec<u8>,
}

impl RecordWriter {
    /// Starts a stream with the given magic (checkpoints and WALs share
    /// the framing but not the magic).
    pub fn new(magic: [u8; 4]) -> RecordWriter {
        let mut out = Vec::new();
        out.extend_from_slice(&magic);
        out.extend_from_slice(&VERSION.to_le_bytes());
        RecordWriter { out }
    }

    /// Appends one record: length, CRC over the payload, payload.
    pub fn record(&mut self, payload: Enc) {
        let payload = payload.into_bytes();
        self.out
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.out.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.out.extend_from_slice(&payload);
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.out
    }
}

/// Frames one standalone record (WAL appends, which cannot buffer the
/// whole stream).
pub fn frame_record(payload: Enc) -> Vec<u8> {
    let payload = payload.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The stream header alone (for initializing an empty WAL file).
pub fn stream_header(magic: [u8; 4]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out
}

/// Walks the records of a checkpoint byte stream, validating the header
/// once and each record's CRC as it is yielded.
pub struct RecordReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecordReader<'a> {
    pub fn new(bytes: &'a [u8], magic: [u8; 4]) -> Result<RecordReader<'a>, DataflowError> {
        if bytes.len() < 8 {
            return Err(corrupt("file shorter than its header"));
        }
        if bytes[..4] != magic {
            return Err(corrupt(format!(
                "bad magic {:?} (want {:?})",
                &bytes[..4],
                magic
            )));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(corrupt(format!(
                "unsupported format version {version} (reader speaks {VERSION})"
            )));
        }
        Ok(RecordReader { buf: bytes, pos: 8 })
    }

    /// The next record's payload, or `None` at a clean end of stream.
    /// A record whose framed length runs past the file is reported as
    /// truncation; a CRC mismatch as a bit flip — both
    /// [`DataflowError::StateCorruption`].
    pub fn next_record(&mut self) -> Result<Option<&'a [u8]>, DataflowError> {
        if self.pos == self.buf.len() {
            return Ok(None);
        }
        if self.buf.len() - self.pos < 8 {
            return Err(corrupt("torn record header at end of file"));
        }
        let len =
            u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(self.buf[self.pos + 4..self.pos + 8].try_into().unwrap());
        let start = self.pos + 8;
        let end = start
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("record payload truncated"))?;
        let payload = &self.buf[start..end];
        let got_crc = crc32(payload);
        if got_crc != want_crc {
            return Err(corrupt(format!(
                "record CRC mismatch (stored {want_crc:#010x}, computed {got_crc:#010x})"
            )));
        }
        self.pos = end;
        Ok(Some(payload))
    }
}

/// Encodes the current process's symbol table as a checkpoint's opening
/// record: count, then each string length-prefixed in id order.
pub fn encode_symbol_table() -> Enc {
    let table = Sym::table_snapshot();
    let mut e = Enc::new();
    e.u64(table.len() as u64);
    for s in &table {
        e.str(s);
    }
    e
}

/// Decodes a symbol-table record into a [`SymRemap`] by re-interning
/// every string in the *current* process.
pub fn decode_symbol_table(payload: &[u8]) -> Result<SymRemap, DataflowError> {
    // The table record contains no symbols itself, so decoding it needs
    // no remap; an empty one satisfies the borrow.
    let empty = SymRemap { map: Vec::new() };
    let mut d = Dec::new(payload, &empty);
    // Even an empty string costs its 4-byte length prefix, which bounds
    // how many entries the payload could possibly hold.
    let n = d.count(4)?;
    let mut map = Vec::with_capacity(n);
    for _ in 0..n {
        map.push(Sym::try_intern(d.str()?)?);
    }
    if !d.is_done() {
        return Err(corrupt("trailing bytes after symbol table"));
    }
    Ok(SymRemap { map })
}

/// Minimum encoded bytes per `(tuple, i64)` entry: a 4-byte tuple
/// length prefix plus the 8-byte count (the bound [`Dec::count`] uses
/// to reject fabricated entry counts).
const MIN_ENTRY_BYTES: usize = 12;

/// Serializes a [`Multiset`]'s raw entries — counts of any sign — in
/// sorted tuple order, so identical state produces identical bytes
/// regardless of hash-map iteration order or interner ids.
pub fn encode_multiset(out: &mut Enc, m: &Multiset) {
    let mut entries: Vec<(&Tuple, i64)> = m.entries().collect();
    entries.sort();
    out.u64(entries.len() as u64);
    for (t, c) in entries {
        out.tuple(t);
        out.i64(c);
    }
}

/// Restores a [`Multiset`] from [`encode_multiset`] bytes by clearing
/// it and bulk-loading each entry — visible/negative counters and
/// hashes are rebuilt, never trusted from disk, but the per-tuple
/// allocation and read-modify-write of the generic delta path are
/// skipped (restore latency is the durability feature's budget).
pub fn decode_multiset(d: &mut Dec<'_>, m: &mut Multiset) -> Result<(), DataflowError> {
    m.clear();
    let n = d.count(MIN_ENTRY_BYTES)?;
    m.reserve(n);
    let mut scratch = Vec::new();
    for _ in 0..n {
        let t = d.tuple_into(&mut scratch)?;
        let c = d.i64()?;
        if c != 0 && !m.load_entry(t, c) {
            return Err(corrupt("duplicate tuple in multiset image"));
        }
    }
    Ok(())
}

/// Serializes an [`IndexedMultiset`]'s raw entries in sorted tuple
/// order. Key columns are *not* serialized: they are structural (baked
/// into the rebuilt graph), and the restore target already carries
/// them.
pub fn encode_indexed(out: &mut Enc, m: &IndexedMultiset) {
    let mut entries: Vec<(&Tuple, i64)> = m.entries().collect();
    entries.sort();
    out.u64(entries.len() as u64);
    for (t, c) in entries {
        out.tuple(t);
        out.i64(c);
    }
}

/// Restores an [`IndexedMultiset`] from [`encode_indexed`] bytes,
/// re-hashing every key under the current process's interner. Entries
/// are bulk-loaded straight into their buckets (see
/// [`IndexedMultiset::load_entry`]) — the hot path of a join-heavy
/// network restore.
pub fn decode_indexed(d: &mut Dec<'_>, m: &mut IndexedMultiset) -> Result<(), DataflowError> {
    m.clear();
    let n = d.count(MIN_ENTRY_BYTES)?;
    m.reserve(n);
    let mut scratch = Vec::new();
    for _ in 0..n {
        let t = d.tuple_into(&mut scratch)?;
        let c = d.i64()?;
        if c != 0 && !m.load_entry(t, c) {
            return Err(corrupt("duplicate tuple in indexed-multiset image"));
        }
    }
    Ok(())
}

/// Atomically commits `bytes` to `path`: write to `<path>.tmp`, fsync,
/// rename over the final name, then fsync the parent directory (best
/// effort — some filesystems do not support directory fsync). A crash
/// at any point leaves either the complete old file or the complete new
/// one; a torn `.tmp` is never the live checkpoint.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ints, tup};

    #[test]
    fn crc32_matches_known_vectors() {
        // The catalogue value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(f64::INFINITY);
        e.str("hello");
        let bytes = e.into_bytes();
        let remap = SymRemap::identity();
        let mut d = Dec::new(&bytes, &remap);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), f64::INFINITY);
        assert_eq!(d.str().unwrap(), "hello");
        assert!(d.is_done());
    }

    #[test]
    fn tuples_round_trip_including_symbols() {
        let t = tup([Val::Int(-3), Val::str("ckpt-roundtrip"), Val::cost(2.5)]);
        let mut e = Enc::new();
        e.tuple(&t);
        let bytes = e.into_bytes();
        let remap = SymRemap::identity();
        let mut d = Dec::new(&bytes, &remap);
        assert_eq!(d.tuple().unwrap(), t);
    }

    #[test]
    fn symbols_remap_through_a_shifted_table() {
        // Simulate a foreign process whose table held our strings at
        // different ids: build a remap from an explicit string list and
        // decode a symbol that referenced it by position.
        let foreign: Vec<Arc<str>> = vec![Arc::from("ckpt-b"), Arc::from("ckpt-a")];
        let remap = SymRemap::from_strings(&foreign).unwrap();
        let mut e = Enc::new();
        e.u8(TAG_SYM);
        e.u64(0); // the foreign process's id 0 = "ckpt-b"
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, &remap);
        assert_eq!(d.val().unwrap(), Val::str("ckpt-b"));
    }

    #[test]
    fn out_of_range_symbol_is_corruption_not_panic() {
        let remap = SymRemap::from_strings(&[]).unwrap();
        let mut e = Enc::new();
        e.u8(TAG_SYM);
        e.u64(99);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, &remap);
        assert!(matches!(
            d.val(),
            Err(DataflowError::StateCorruption(_))
        ));
    }

    #[test]
    fn truncated_payload_is_corruption_not_panic() {
        let mut e = Enc::new();
        e.tuple(&ints(&[1, 2, 3]));
        let bytes = e.into_bytes();
        let remap = SymRemap::identity();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut], &remap);
            assert!(d.tuple().is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn record_stream_round_trips() {
        let mut w = RecordWriter::new(MAGIC);
        let mut a = Enc::new();
        a.str("first");
        w.record(a);
        let mut b = Enc::new();
        b.u64(42);
        w.record(b);
        let bytes = w.into_bytes();
        let mut r = RecordReader::new(&bytes, MAGIC).unwrap();
        let p1 = r.next_record().unwrap().unwrap();
        let remap = SymRemap::identity();
        assert_eq!(Dec::new(p1, &remap).str().unwrap(), "first");
        let p2 = r.next_record().unwrap().unwrap();
        assert_eq!(Dec::new(p2, &remap).u64().unwrap(), 42);
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut w = RecordWriter::new(MAGIC);
        let mut e = Enc::new();
        e.str("payload under test");
        e.u64(7);
        w.record(e);
        let bytes = w.into_bytes();
        for byte in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[byte] ^= 0x10;
            let mut failed = false;
            match RecordReader::new(&evil, MAGIC) {
                Err(_) => failed = true,
                Ok(mut r) => loop {
                    match r.next_record() {
                        Err(_) => {
                            failed = true;
                            break;
                        }
                        Ok(None) => break,
                        Ok(Some(_)) => {}
                    }
                },
            }
            assert!(failed, "flip at byte {byte} slipped through");
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let mut w = RecordWriter::new(MAGIC);
        let mut e = Enc::new();
        e.str("truncate me");
        w.record(e);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let r = RecordReader::new(&bytes[..cut], MAGIC)
                .and_then(|mut r| r.next_record().map(|p| p.is_some()));
            assert!(
                r.is_err() || r == Ok(false),
                "truncation at {cut} produced a record"
            );
        }
    }

    #[test]
    fn symbol_table_round_trips() {
        Sym::intern("ckpt-table-a");
        Sym::intern("ckpt-table-b");
        let payload = encode_symbol_table().into_bytes();
        let remap = decode_symbol_table(&payload).unwrap();
        // In-process the remap is the identity on every live symbol.
        let a = Sym::intern("ckpt-table-a");
        assert_eq!(remap.translate(a.id() as u64).unwrap(), a);
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("reopt-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
