//! The dataflow graph and its fixpoint scheduler.
//!
//! A [`Dataflow`] is a directed graph of operators which may contain
//! cycles (recursive rules). Execution is queue-driven and pipelined:
//! deltas are processed one at a time in FIFO order, with no
//! synchronization barriers between "strata" — matching the paper's
//! execution strategy (§2.3: "we leverage a pipelined push-based query
//! processor to execute the rules in an incremental fashion ... without
//! synchronization or blocking").

use std::collections::VecDeque;
use std::fmt;

use crate::delta::Delta;
use crate::ops::Operator;
use crate::relation::Multiset;
use crate::value::Tuple;

/// Node handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Sink handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SinkId(usize);

enum NodeKind {
    /// External input: forwards pushed deltas downstream.
    Input,
    Op(Box<dyn Operator>),
    /// Materialization point; contents readable via [`Dataflow::sink`].
    Sink(usize),
}

struct Node {
    kind: NodeKind,
    /// Downstream edges: `(target node, target port)`.
    downstream: Vec<(usize, usize)>,
    label: String,
}

/// Execution statistics for one fixpoint run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Deltas dequeued and processed.
    pub deltas_processed: u64,
    /// Deltas emitted by operators.
    pub deltas_emitted: u64,
}

/// Error: the fixpoint did not converge within the step budget (a
/// non-terminating recursion, e.g. counting-based deletion over cyclic
/// derivations).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixpointOverrun {
    pub steps: u64,
}

impl fmt::Display for FixpointOverrun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fixpoint did not converge within {} steps", self.steps)
    }
}

impl std::error::Error for FixpointOverrun {}

/// A (possibly cyclic) dataflow of delta-processing operators.
pub struct Dataflow {
    nodes: Vec<Node>,
    sinks: Vec<Multiset>,
    queue: VecDeque<(usize, usize, Delta)>,
    max_steps: u64,
}

impl Default for Dataflow {
    fn default() -> Dataflow {
        Dataflow::new()
    }
}

impl Dataflow {
    pub fn new() -> Dataflow {
        Dataflow {
            nodes: Vec::new(),
            sinks: Vec::new(),
            queue: VecDeque::new(),
            max_steps: 50_000_000,
        }
    }

    /// Overrides the non-termination guard.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    /// Declares an external input relation.
    pub fn add_input(&mut self, label: &str) -> NodeId {
        self.push_node(NodeKind::Input, label)
    }

    /// Adds an operator wired so that `inputs[i]` feeds port `i`.
    pub fn add_op(&mut self, op: impl Operator + 'static, inputs: &[NodeId]) -> NodeId {
        assert_eq!(
            op.arity(),
            inputs.len(),
            "operator `{}` expects {} inputs",
            op.name(),
            op.arity()
        );
        let label = op.name().to_string();
        let id = self.push_node(NodeKind::Op(Box::new(op)), &label);
        for (port, input) in inputs.iter().enumerate() {
            self.connect(*input, id, port);
        }
        id
    }

    /// Adds an operator with *no* inputs wired yet — used to build cycles
    /// (connect the back-edge afterwards with [`Dataflow::connect`]).
    pub fn add_op_unwired(&mut self, op: impl Operator + 'static) -> NodeId {
        let label = op.name().to_string();
        self.push_node(NodeKind::Op(Box::new(op)), &label)
    }

    /// Wires `from`'s output into `to`'s input `port`. Cycles are
    /// allowed.
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) {
        self.nodes[from.0].downstream.push((to.0, port));
    }

    /// Adds a materialization sink reading `from`.
    pub fn add_sink(&mut self, from: NodeId) -> SinkId {
        let sink_idx = self.sinks.len();
        self.sinks.push(Multiset::new());
        let id = self.push_node(NodeKind::Sink(sink_idx), "sink");
        self.connect(from, id, 0);
        SinkId(sink_idx)
    }

    fn push_node(&mut self, kind: NodeKind, label: &str) -> NodeId {
        self.nodes.push(Node {
            kind,
            downstream: Vec::new(),
            label: label.to_string(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Queues a delta on an input relation (processed by the next
    /// [`Dataflow::run`]).
    pub fn push(&mut self, input: NodeId, delta: Delta) {
        assert!(
            matches!(self.nodes[input.0].kind, NodeKind::Input),
            "push target `{}` is not an input",
            self.nodes[input.0].label
        );
        self.queue.push_back((input.0, 0, delta));
    }

    pub fn insert(&mut self, input: NodeId, tuple: Tuple) {
        self.push(input, Delta::insert(tuple));
    }

    pub fn delete(&mut self, input: NodeId, tuple: Tuple) {
        self.push(input, Delta::delete(tuple));
    }

    /// Runs to fixpoint (empty queue).
    pub fn run(&mut self) -> Result<RunStats, FixpointOverrun> {
        let mut stats = RunStats::default();
        let mut out = Vec::new();
        while let Some((node, port, delta)) = self.queue.pop_front() {
            stats.deltas_processed += 1;
            if stats.deltas_processed > self.max_steps {
                return Err(FixpointOverrun {
                    steps: self.max_steps,
                });
            }
            out.clear();
            match &mut self.nodes[node].kind {
                NodeKind::Input => out.push(delta),
                NodeKind::Op(op) => op.on_delta(port, &delta, &mut out),
                NodeKind::Sink(idx) => {
                    self.sinks[*idx].apply(&delta);
                    continue;
                }
            }
            stats.deltas_emitted += out.len() as u64;
            for d in out.drain(..) {
                for &(target, tport) in &self.nodes[node].downstream {
                    self.queue.push_back((target, tport, d.clone()));
                }
            }
        }
        Ok(stats)
    }

    /// Reads a sink's current contents.
    pub fn sink(&self, id: SinkId) -> &Multiset {
        &self.sinks[id.0]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;
    use crate::ops::{Distinct, GroupAgg, HashJoin, Map, Union};
    use crate::value::ints;

    #[test]
    fn linear_pipeline_filter_project() {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let filtered = df.add_op(Map::filter(|t| t.get(0).as_int() % 2 == 0), &[input]);
        let projected = df.add_op(Map::project(vec![1]), &[filtered]);
        let sink = df.add_sink(projected);
        for i in 0..6 {
            df.insert(input, ints(&[i, i * 10]));
        }
        df.run().unwrap();
        assert_eq!(
            df.sink(sink).sorted(),
            vec![ints(&[0]), ints(&[20]), ints(&[40])]
        );
    }

    #[test]
    fn incremental_join_matches_naive_semantics() {
        let mut df = Dataflow::new();
        let r = df.add_input("r");
        let s = df.add_input("s");
        let j = df.add_op(HashJoin::new(vec![0], vec![0]), &[r, s]);
        let sink = df.add_sink(j);
        df.insert(r, ints(&[1, 10]));
        df.insert(s, ints(&[1, 100]));
        df.insert(s, ints(&[2, 200]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 10, 1, 100])]);
        // Add a matching left tuple for key 2; retract the key-1 right.
        df.insert(r, ints(&[2, 20]));
        df.delete(s, ints(&[1, 100]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[2, 20, 2, 200])]);
    }

    /// Builds the classic transitive-closure program:
    /// `path(x,y) :- edge(x,y)`,
    /// `path(x,z) :- path(x,y), edge(y,z)`.
    fn tc() -> (Dataflow, NodeId, SinkId) {
        let mut df = Dataflow::new();
        let edge = df.add_input("edge");
        let union = df.add_op_unwired(Union::new(2));
        df.connect(edge, union, 0);
        let path = df.add_op(Distinct::new(), &[union]);
        // join path(x,y) [port 0, key col 1=y] with edge(y,z) [port 1,
        // key col 0=y] -> (x,y,y,z), project (x,z), feed back.
        let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
        df.connect(path, join, 0);
        df.connect(edge, join, 1);
        let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
        df.connect(proj, union, 1);
        let sink = df.add_sink(path);
        (df, edge, sink)
    }

    #[test]
    fn transitive_closure_chain() {
        let (mut df, edge, sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.insert(edge, ints(&[2, 3]));
        df.insert(edge, ints(&[3, 4]));
        df.run().unwrap();
        let got = df.sink(sink).sorted();
        assert_eq!(got.len(), 6); // 12,13,14,23,24,34
        assert!(got.contains(&ints(&[1, 4])));
    }

    #[test]
    fn transitive_closure_incremental_insert() {
        let (mut df, edge, sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.insert(edge, ints(&[3, 4]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).len(), 2);
        // Bridging edge triggers recursive derivations.
        df.insert(edge, ints(&[2, 3]));
        let stats = df.run().unwrap();
        assert!(stats.deltas_processed > 0);
        assert_eq!(df.sink(sink).len(), 6);
    }

    #[test]
    fn transitive_closure_incremental_delete_on_dag() {
        let (mut df, edge, sink) = tc();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
            df.insert(edge, ints(&[a, b]));
        }
        df.run().unwrap();
        assert_eq!(df.sink(sink).len(), 6);
        // Deleting 2->3 removes path(2,3), path(2,4); but 1->3, 1->4
        // survive through the 1->3 edge (counting handles the multiple
        // derivations).
        df.delete(edge, ints(&[2, 3]));
        df.run().unwrap();
        let got = df.sink(sink).sorted();
        assert_eq!(
            got,
            vec![
                ints(&[1, 2]),
                ints(&[1, 3]),
                ints(&[1, 4]),
                ints(&[3, 4]),
            ]
        );
    }

    #[test]
    fn cyclic_data_insertions_terminate_via_distinct() {
        let (mut df, edge, sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.insert(edge, ints(&[2, 1]));
        df.run().unwrap();
        let got = df.sink(sink).sorted();
        assert_eq!(
            got,
            vec![ints(&[1, 1]), ints(&[1, 2]), ints(&[2, 1]), ints(&[2, 2])]
        );
    }

    #[test]
    fn min_view_maintenance_end_to_end() {
        // min-cost per key, maintained under insert/delete.
        let mut df = Dataflow::new();
        let costs = df.add_input("costs");
        let agg = df.add_op(GroupAgg::new(vec![0], 1, AggKind::Min), &[costs]);
        let sink = df.add_sink(agg);
        df.insert(costs, ints(&[1, 30]));
        df.insert(costs, ints(&[1, 10]));
        df.insert(costs, ints(&[1, 20]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 10])]);
        df.delete(costs, ints(&[1, 10]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 20])]);
    }

    #[test]
    fn overrun_guard_reports_nontermination() {
        // A pathological self-amplifying loop: map feeding itself.
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let echo = df.add_op_unwired(Map::new(|t| Some(t.clone())));
        df.connect(input, echo, 0);
        df.connect(echo, echo, 0); // no distinct gate: never terminates
        df.set_max_steps(10_000);
        df.insert(input, ints(&[1]));
        assert!(df.run().is_err());
    }

    #[test]
    fn push_to_non_input_panics() {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let m = df.add_op(Map::project(vec![0]), &[input]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            df.push(m, Delta::insert(ints(&[1])));
        }));
        assert!(result.is_err());
    }
}
