//! The dataflow graph and its fixpoint scheduler.
//!
//! A [`Dataflow`] is a directed graph of operators which may contain
//! cycles (recursive rules). Execution is queue-driven and pipelined,
//! with no synchronization barriers between "strata" — matching the
//! paper's execution strategy (§2.3: "we leverage a pipelined push-based
//! query processor to execute the rules in an incremental fashion ...
//! without synchronization or blocking").
//!
//! The scheduler is *batched*: the work queue carries
//! `(node, port, Vec<Delta>)` entries. All deltas bound for the same
//! destination port that accumulate before that port is serviced are
//! merged into one batch, and each batch is coalesced (same-tuple deltas
//! summed, cancelled pairs dropped) immediately before processing — so a
//! `+t`/`-t` pair produced by a cascade dies in the queue instead of
//! amplifying through a join. Dirty destinations are serviced in
//! topological-rank order (SCCs share a rank), draining each layer
//! before its consumers so stateful operators see whole waves at once,
//! and single-consumer stateless chains are fused into one operator
//! before the first run ([`Dataflow::fuse`]). Per-delta FIFO execution
//! (the original semantics) remains available via
//! [`SchedulerMode::PerDelta`] and is property-tested observationally
//! identical across the whole mode matrix (`tests/differential.rs`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use reopt_common::FxHashMap;

use crate::delta::{coalesce, CoalesceScratch, Delta};
use crate::error::{DataflowError, FaultPlan};
use crate::ops::{Fused, Operator};
use crate::relation::Multiset;
use crate::value::Tuple;

/// Node handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Sink handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SinkId(usize);

enum NodeKind {
    /// External input: forwards pushed deltas downstream.
    Input,
    Op(Box<dyn Operator>),
    /// Materialization point; contents readable via [`Dataflow::sink`].
    Sink(usize),
    /// An operator absorbed into a fused chain. Unreachable: its only
    /// incoming edge was rewired through the chain's head.
    Fused,
}

struct Node {
    kind: NodeKind,
    /// Downstream edges: `(target node, target port)`.
    downstream: Vec<(usize, usize)>,
    /// Whether incoming batches are coalesced before processing
    /// ([`Operator::coalesces_input`]; inputs always coalesce so
    /// cancelling external deltas die before entering the graph).
    coalesce_input: bool,
    /// Whether this node's output must reach every consumer within the
    /// producing dispatch ([`Operator::sync_fanout`]; `Arrange` nodes —
    /// the shared-index update and the attached joins' probes must be
    /// atomic with respect to all other scheduling).
    sync_fanout: bool,
    label: String,
    /// Lifetime batch/delta counters for [`Dataflow::node_stats`] —
    /// two adds per serviced batch, cheap enough to keep always-on.
    stat_batches: u64,
    stat_deltas: u64,
}

/// How the fixpoint loop schedules work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Destination-merged batches, coalesced before processing (the
    /// default).
    #[default]
    Batched,
    /// One delta per queue entry in strict FIFO order — the original
    /// execution model, kept as the semantic reference.
    PerDelta,
}

/// How many spent batch buffers the scheduler retains for reuse.
const BATCH_POOL_CAP: usize = 32;

/// The work queue: batched destination-merged entries serviced in
/// topological-rank order, or strict per-delta FIFO.
enum Queue {
    Batched {
        /// Dirty `(rank, node, port)` destinations. Servicing the
        /// lowest rank first drains each dataflow layer before its
        /// consumers run, so downstream stateful operators (grouped
        /// aggregates especially) see one big batch per wave instead of
        /// several partial ones — fewer update pairs, less re-cascade.
        /// Any service order reaches the same fixpoint; rank order just
        /// reaches it with the least churn.
        order: BinaryHeap<Reverse<(u32, usize, usize)>>,
        /// Accumulated deltas per dirty destination.
        pending: FxHashMap<(usize, usize), Vec<Delta>>,
        /// Spent batch buffers, recycled to avoid per-batch allocation.
        pool: Vec<Vec<Delta>>,
    },
    PerDelta(VecDeque<(usize, usize, Delta)>),
}

impl Queue {
    fn new(mode: SchedulerMode) -> Queue {
        match mode {
            SchedulerMode::Batched => Queue::Batched {
                order: BinaryHeap::new(),
                pending: FxHashMap::default(),
                pool: Vec::new(),
            },
            SchedulerMode::PerDelta => Queue::PerDelta(VecDeque::new()),
        }
    }

    fn push(
        &mut self,
        rank: u32,
        node: usize,
        port: usize,
        deltas: impl Iterator<Item = Delta>,
    ) {
        match self {
            Queue::Batched {
                order,
                pending,
                pool,
            } => {
                let batch = pending.entry((node, port)).or_insert_with(|| {
                    order.push(Reverse((rank, node, port)));
                    pool.pop().unwrap_or_default()
                });
                batch.extend(deltas);
            }
            Queue::PerDelta(q) => {
                for d in deltas {
                    q.push_back((node, port, d));
                }
            }
        }
    }

    /// Pops the next batch.
    fn pop(&mut self) -> Option<(usize, usize, Vec<Delta>)> {
        match self {
            Queue::Batched { order, pending, .. } => {
                let Reverse((_, node, port)) = order.pop()?;
                let batch = pending
                    .remove(&(node, port))
                    .expect("dirty destination without pending deltas");
                Some((node, port, batch))
            }
            Queue::PerDelta(q) => {
                let (node, port, d) = q.pop_front()?;
                Some((node, port, vec![d]))
            }
        }
    }

    fn is_batched(&self) -> bool {
        matches!(self, Queue::Batched { .. })
    }

    /// Snapshots the queued-but-unprocessed work at epoch open — exactly
    /// the external deltas pushed since the last run. Restoring it after
    /// a rollback makes a retry replay the same externals against the
    /// last committed state.
    fn checkpoint(&self) -> QueueCheckpoint {
        match self {
            Queue::Batched { order, pending, .. } => QueueCheckpoint::Batched {
                order: order.clone(),
                pending: pending.clone(),
            },
            Queue::PerDelta(q) => QueueCheckpoint::PerDelta(q.clone()),
        }
    }

    /// Replaces the queue contents with a checkpoint (the batch pool is
    /// kept — it holds no live deltas).
    fn restore(&mut self, cp: QueueCheckpoint) {
        match (self, cp) {
            (
                Queue::Batched { order, pending, .. },
                QueueCheckpoint::Batched {
                    order: o,
                    pending: p,
                },
            ) => {
                *order = o;
                *pending = p;
            }
            (Queue::PerDelta(q), QueueCheckpoint::PerDelta(cq)) => *q = cq,
            _ => unreachable!("checkpoint mode matches queue mode"),
        }
    }

    /// The queued-but-unprocessed deltas as flat `(node, port, delta)`
    /// triples in a canonical order (sorted by destination in batched
    /// mode, FIFO order in per-delta mode). Durable checkpoints persist
    /// this instead of the queue structure itself: ranks are derived
    /// state, so a restore re-pushes each triple through the normal
    /// path and lets the scheduler rebuild its ordering.
    fn residue(&self) -> Vec<(usize, usize, Delta)> {
        match self {
            Queue::Batched { pending, .. } => {
                let mut keys: Vec<(usize, usize)> = pending.keys().copied().collect();
                keys.sort_unstable();
                let mut out = Vec::new();
                for (node, port) in keys {
                    for d in &pending[&(node, port)] {
                        out.push((node, port, d.clone()));
                    }
                }
                out
            }
            Queue::PerDelta(q) => q.iter().cloned().collect(),
        }
    }

    /// Returns a spent batch buffer to the pool.
    fn recycle(&mut self, mut batch: Vec<Delta>) {
        if let Queue::Batched { pool, .. } = self {
            if pool.len() < BATCH_POOL_CAP {
                batch.clear();
                pool.push(batch);
            }
        }
    }
}

/// The queue state captured at epoch open (see [`Queue::checkpoint`]).
enum QueueCheckpoint {
    Batched {
        order: BinaryHeap<Reverse<(u32, usize, usize)>>,
        pending: FxHashMap<(usize, usize), Vec<Delta>>,
    },
    PerDelta(VecDeque<(usize, usize, Delta)>),
}

/// Execution statistics for one fixpoint run.
///
/// Lifecycle: every successful [`Dataflow::run`] reports exactly the
/// work performed by that call — the scheduler tallies are locals and
/// the per-operator counters ([`crate::ops::OpCounters`]) are drained
/// into the result at the end of the run. If a run fails (any
/// [`DataflowError`]), the rollback discards the counters operators
/// accumulated during the aborted epoch, so an errored run can never
/// inflate a later run's statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Individual deltas dequeued and processed (post-coalescing).
    pub deltas_processed: u64,
    /// Batches dequeued (equals `deltas_processed` in per-delta mode).
    pub batches_processed: u64,
    /// Deltas emitted by operators.
    pub deltas_emitted: u64,
    /// Join-input deltas that needed the opposite index consulted.
    pub join_probe_deltas: u64,
    /// Index probes actually performed: ≤ `join_probe_deltas`, strictly
    /// less whenever batch-aware probing shared a probe across
    /// repeated keys.
    pub join_probes: u64,
    /// Operator hops that fused chains absorbed (per batch, the number
    /// of constituent stages beyond the first).
    pub fused_stages_saved: u64,
    /// The committed-epoch number this run produced (1-based, counting
    /// only successful runs over the dataflow's lifetime).
    pub epoch: u64,
    /// Total epochs rolled back over the dataflow's lifetime (failed
    /// runs preceding this successful one).
    pub rollbacks: u64,
}

/// A (possibly cyclic) dataflow of delta-processing operators.
pub struct Dataflow {
    nodes: Vec<Node>,
    sinks: Vec<Multiset>,
    queue: Queue,
    /// Reused by batch coalescing across the whole run.
    scratch: CoalesceScratch,
    max_steps: u64,
    /// Whether [`Dataflow::run`] auto-fuses stateless chains first
    /// (batched mode only; per-delta mode keeps the reference schedule).
    fusion: bool,
    /// Set by graph mutations; cleared by the fusion pass.
    graph_dirty: bool,
    /// Topological service rank per node (lower = closer to the
    /// sources; members of one strongly connected component share a
    /// rank). Drives the batched queue's service order.
    ranks: Vec<u32>,
    /// Set by graph mutations; cleared by [`Dataflow::ensure_ranks`].
    ranks_dirty: bool,
    /// Committed epochs (successful runs) so far.
    epoch: u64,
    /// Epochs rolled back (failed runs) so far.
    rollbacks: u64,
    /// Armed chaos-testing fault injector (see [`FaultPlan`]).
    fault_plan: Option<FaultPlan>,
}

impl Default for Dataflow {
    fn default() -> Dataflow {
        Dataflow::new()
    }
}

impl Dataflow {
    pub fn new() -> Dataflow {
        Dataflow::with_mode(SchedulerMode::Batched)
    }

    /// Builds a dataflow with an explicit scheduler mode. Operator-chain
    /// fusion defaults to on in batched mode and is never applied in
    /// per-delta mode.
    pub fn with_mode(mode: SchedulerMode) -> Dataflow {
        Dataflow {
            nodes: Vec::new(),
            sinks: Vec::new(),
            queue: Queue::new(mode),
            scratch: CoalesceScratch::default(),
            max_steps: 50_000_000,
            fusion: mode == SchedulerMode::Batched,
            graph_dirty: false,
            ranks: Vec::new(),
            ranks_dirty: false,
            epoch: 0,
            rollbacks: 0,
            fault_plan: None,
        }
    }

    /// Enables or disables automatic operator-chain fusion (effective in
    /// batched mode only). Call before the first [`Dataflow::run`]; an
    /// already-fused graph is not unfused.
    pub fn set_fusion(&mut self, on: bool) {
        self.fusion = on;
    }

    /// Overrides the non-termination guard.
    pub fn set_max_steps(&mut self, max: u64) {
        self.max_steps = max;
    }

    /// The current non-termination guard.
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// Arms (or with `None` disarms) a deterministic fault injector:
    /// the next run(s) fail with [`DataflowError::InjectedFault`] when
    /// the plan's trigger step is reached. The failed epoch rolls back
    /// exactly like any other error.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Committed epochs (successful runs) so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Epochs rolled back (failed runs) so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Declares an external input relation.
    pub fn add_input(&mut self, label: &str) -> NodeId {
        self.push_node(NodeKind::Input, true, false, label)
    }

    /// Adds an operator wired so that `inputs[i]` feeds port `i`.
    pub fn add_op(&mut self, op: impl Operator + 'static, inputs: &[NodeId]) -> NodeId {
        assert_eq!(
            op.arity(),
            inputs.len(),
            "operator `{}` expects {} inputs",
            op.name(),
            op.arity()
        );
        let label = op.name().to_string();
        let coalesce = op.coalesces_input();
        let fanout = op.sync_fanout();
        let id = self.push_node(NodeKind::Op(Box::new(op)), coalesce, fanout, &label);
        for (port, input) in inputs.iter().enumerate() {
            self.connect(*input, id, port);
        }
        id
    }

    /// Adds an operator with *no* inputs wired yet — used to build cycles
    /// (connect the back-edge afterwards with [`Dataflow::connect`]).
    pub fn add_op_unwired(&mut self, op: impl Operator + 'static) -> NodeId {
        let label = op.name().to_string();
        let coalesce = op.coalesces_input();
        let fanout = op.sync_fanout();
        self.push_node(NodeKind::Op(Box::new(op)), coalesce, fanout, &label)
    }

    /// Wires `from`'s output into `to`'s input `port`. Cycles are
    /// allowed. Fails with [`DataflowError::InvalidWiring`] if either
    /// endpoint was absorbed into a fused chain.
    pub fn try_connect(
        &mut self,
        from: NodeId,
        to: NodeId,
        port: usize,
    ) -> Result<(), DataflowError> {
        for id in [from, to] {
            if matches!(self.nodes[id.0].kind, NodeKind::Fused) {
                return Err(DataflowError::InvalidWiring(format!(
                    "node `{}` was absorbed into a fused chain; wire the graph before \
                     running, or disable fusion with `set_fusion(false)`",
                    self.nodes[id.0].label
                )));
            }
        }
        self.graph_dirty = true;
        self.ranks_dirty = true;
        self.nodes[from.0].downstream.push((to.0, port));
        Ok(())
    }

    /// Panicking convenience over [`Dataflow::try_connect`] (tests,
    /// hand-built graphs).
    pub fn connect(&mut self, from: NodeId, to: NodeId, port: usize) {
        self.try_connect(from, to, port)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Adds a materialization sink reading `from`.
    pub fn add_sink(&mut self, from: NodeId) -> SinkId {
        let sink_idx = self.sinks.len();
        self.sinks.push(Multiset::new());
        let id = self.push_node(NodeKind::Sink(sink_idx), false, false, "sink");
        self.connect(from, id, 0);
        SinkId(sink_idx)
    }

    fn push_node(
        &mut self,
        kind: NodeKind,
        coalesce_input: bool,
        sync_fanout: bool,
        label: &str,
    ) -> NodeId {
        self.graph_dirty = true;
        self.ranks_dirty = true;
        self.nodes.push(Node {
            kind,
            downstream: Vec::new(),
            coalesce_input,
            sync_fanout,
            label: label.to_string(),
            stat_batches: 0,
            stat_deltas: 0,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Queues a delta on an input relation (processed by the next
    /// [`Dataflow::run`]). Fails with [`DataflowError::InvalidWiring`]
    /// if the target is not an input node.
    pub fn try_push(&mut self, input: NodeId, delta: Delta) -> Result<(), DataflowError> {
        if !matches!(self.nodes[input.0].kind, NodeKind::Input) {
            return Err(DataflowError::InvalidWiring(format!(
                "push target `{}` is not an input",
                self.nodes[input.0].label
            )));
        }
        self.ensure_ranks();
        let rank = self.ranks[input.0];
        self.queue.push(rank, input.0, 0, std::iter::once(delta));
        Ok(())
    }

    /// Panicking convenience over [`Dataflow::try_push`].
    pub fn push(&mut self, input: NodeId, delta: Delta) {
        self.try_push(input, delta).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Recomputes topological service ranks if the graph changed:
    /// Tarjan's algorithm (iterative) finds strongly connected
    /// components in reverse topological order of the condensation;
    /// every node of one component shares its rank.
    fn ensure_ranks(&mut self) {
        if !self.ranks_dirty && self.ranks.len() == self.nodes.len() {
            return;
        }
        self.ranks_dirty = false;
        let n = self.nodes.len();
        const UNDISCOVERED: u32 = u32::MAX;
        let mut index = vec![UNDISCOVERED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut scc_of = vec![0u32; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut call: Vec<(usize, usize)> = Vec::new();
        let mut next_index = 0u32;
        let mut scc_count = 0u32;
        for start in 0..n {
            if index[start] != UNDISCOVERED {
                continue;
            }
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            call.push((start, 0));
            while let Some((v, ei)) = call.last_mut() {
                let v = *v;
                if *ei < self.nodes[v].downstream.len() {
                    let (w, _) = self.nodes[v].downstream[*ei];
                    *ei += 1;
                    if index[w] == UNDISCOVERED {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call.pop();
                    if let Some(&(u, _)) = call.last() {
                        low[u] = low[u].min(low[v]);
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("SCC stack underflow");
                            on_stack[w] = false;
                            scc_of[w] = scc_count;
                            if w == v {
                                break;
                            }
                        }
                        scc_count += 1;
                    }
                }
            }
        }
        // Components were emitted consumers-first; invert so sources
        // get the lowest rank.
        self.ranks = scc_of.iter().map(|&s| scc_count - 1 - s).collect();
    }

    pub fn insert(&mut self, input: NodeId, tuple: Tuple) {
        self.push(input, Delta::insert(tuple));
    }

    pub fn delete(&mut self, input: NodeId, tuple: Tuple) {
        self.push(input, Delta::delete(tuple));
    }

    /// Fuses single-consumer chains of stateless linear operators
    /// (`Map`, `ExternalFn`, prior `Fused` nodes) into one [`Fused`]
    /// node each, eliminating the per-hop dispatch between them.
    /// Returns the number of operator nodes absorbed. Idempotent;
    /// called automatically by [`Dataflow::run`] in batched mode unless
    /// disabled via [`Dataflow::set_fusion`].
    ///
    /// A node is chain *interior* if it is fusable, single-input, and
    /// has exactly one incoming edge (on port 0); a chain extends while
    /// each member's sole downstream edge leads to another interior
    /// node. Absorbed nodes become [`NodeKind::Fused`] tombstones —
    /// their ids stay allocated but they can no longer be wired.
    pub fn fuse(&mut self) -> usize {
        self.graph_dirty = false;
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut port_ok = vec![true; n];
        for node in &self.nodes {
            for &(t, p) in &node.downstream {
                indeg[t] += 1;
                if p != 0 {
                    port_ok[t] = false;
                }
            }
        }
        let interior = |nodes: &[Node], i: usize| -> bool {
            indeg[i] == 1
                && port_ok[i]
                && matches!(&nodes[i].kind, NodeKind::Op(op) if op.fusable() && op.arity() == 1)
        };
        // succ[i]: the interior node i's sole consumer, when that
        // consumer is itself interior (a chain edge).
        let mut succ = vec![usize::MAX; n];
        let mut has_chain_pred = vec![false; n];
        #[allow(clippy::needless_range_loop)] // indexes four arrays
        for i in 0..n {
            if !interior(&self.nodes, i) {
                continue;
            }
            if let [(t, _)] = self.nodes[i].downstream[..] {
                if t != i && interior(&self.nodes, t) {
                    succ[i] = t;
                    has_chain_pred[t] = true;
                }
            }
        }
        let mut absorbed = 0;
        #[allow(clippy::needless_range_loop)] // indexes disjoint arrays
        for head in 0..n {
            if !interior(&self.nodes, head) || has_chain_pred[head] {
                continue;
            }
            let mut chain = vec![head];
            let mut cur = head;
            while succ[cur] != usize::MAX && !chain.contains(&succ[cur]) {
                cur = succ[cur];
                chain.push(cur);
            }
            if chain.len() < 2 {
                continue;
            }
            let mut stages = Vec::new();
            for &i in &chain {
                match &mut self.nodes[i].kind {
                    NodeKind::Op(op) => stages.extend(
                        op.take_fuse_stages().expect("interior nodes are fusable"),
                    ),
                    _ => unreachable!("interior nodes are operators"),
                }
            }
            let last = *chain.last().unwrap();
            let fused = Fused::new(stages);
            self.nodes[head].label = fused.name().to_string();
            self.nodes[head].kind = NodeKind::Op(Box::new(fused));
            self.nodes[head].downstream = std::mem::take(&mut self.nodes[last].downstream);
            for &i in &chain[1..] {
                self.nodes[i].kind = NodeKind::Fused;
                self.nodes[i].downstream.clear();
                absorbed += 1;
            }
        }
        absorbed
    }

    /// Per-node lifetime service counters `(label, batches, deltas)` in
    /// node order — the profiling view behind "where do epochs spend
    /// their deltas". Counters survive rollbacks (they measure work
    /// attempted, not work committed).
    pub fn node_stats(&self) -> Vec<(String, u64, u64)> {
        self.nodes
            .iter()
            .map(|n| (n.label.clone(), n.stat_batches, n.stat_deltas))
            .collect()
    }

    /// Number of operator nodes absorbed into fused chains so far.
    pub fn fused_node_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Fused))
            .count()
    }

    /// Runs to fixpoint (empty queue) as one **epoch**: on success the
    /// state changes commit; on any [`DataflowError`] every stateful
    /// operator and sink rolls back to the last committed fixpoint and
    /// the input queue is restored to its pre-run contents, so the
    /// caller can simply re-run (optionally with a raised budget or the
    /// fault cause removed) and lose nothing.
    pub fn run(&mut self) -> Result<RunStats, DataflowError> {
        let batched = self.queue.is_batched();
        if batched && self.fusion && self.graph_dirty {
            self.fuse();
        }
        self.ensure_ranks();
        let checkpoint = self.queue.checkpoint();
        self.begin_epoch();
        let mut stats = RunStats::default();
        match self.fixpoint(batched, &mut stats) {
            Ok(()) => {
                self.commit_epoch();
                self.epoch += 1;
                stats.epoch = self.epoch;
                stats.rollbacks = self.rollbacks;
                for node in &mut self.nodes {
                    if let NodeKind::Op(op) = &mut node.kind {
                        let c = op.take_counters();
                        stats.join_probe_deltas += c.join_probe_deltas;
                        stats.join_probes += c.join_probes;
                        stats.fused_stages_saved += c.fused_stages_saved;
                    }
                }
                Ok(stats)
            }
            Err(e) => {
                self.rollback_epoch(checkpoint);
                Err(e)
            }
        }
    }

    /// Opens an epoch on every stateful operator and sink.
    fn begin_epoch(&mut self) {
        for node in &mut self.nodes {
            if let NodeKind::Op(op) = &mut node.kind {
                op.begin_epoch();
            }
        }
        for sink in &mut self.sinks {
            sink.begin_epoch();
        }
    }

    /// Commits the open epoch everywhere (undo logs discarded).
    fn commit_epoch(&mut self) {
        for node in &mut self.nodes {
            if let NodeKind::Op(op) = &mut node.kind {
                op.commit_epoch();
            }
        }
        for sink in &mut self.sinks {
            sink.commit_epoch();
        }
    }

    /// Rolls the open epoch back everywhere: operator and sink state
    /// returns to the last committed fixpoint, counters accumulated
    /// during the aborted epoch are discarded, and the queue is
    /// restored to the pre-run checkpoint.
    fn rollback_epoch(&mut self, checkpoint: QueueCheckpoint) {
        for node in &mut self.nodes {
            if let NodeKind::Op(op) = &mut node.kind {
                op.rollback_epoch();
                op.take_counters();
            }
        }
        for sink in &mut self.sinks {
            sink.rollback_epoch();
        }
        self.queue.restore(checkpoint);
        self.rollbacks += 1;
    }

    /// Checks the armed fault plan at `step` processed deltas.
    fn check_fault(&mut self, step: u64) -> Result<(), DataflowError> {
        if let Some(plan) = self.fault_plan.as_mut() {
            if plan.fire(step) {
                return Err(DataflowError::InjectedFault { step });
            }
        }
        Ok(())
    }

    /// The fixpoint loop proper. Any error leaves partially-applied
    /// operator state behind — the caller ([`Dataflow::run`]) rolls the
    /// epoch back before surfacing it.
    fn fixpoint(&mut self, batched: bool, stats: &mut RunStats) -> Result<(), DataflowError> {
        let mut out: Vec<Delta> = Vec::new();
        let mut chain: Vec<Delta> = Vec::new();
        // Armed-ness cannot change mid-run; a local flag keeps the
        // disarmed hot path to one predictable branch per batch.
        let armed = self.fault_plan.is_some();
        while let Some((node, port, mut batch)) = self.queue.pop() {
            if batched && self.nodes[node].coalesce_input {
                coalesce(&mut batch, &mut self.scratch);
                if batch.is_empty() {
                    self.queue.recycle(batch);
                    continue;
                }
            }
            stats.batches_processed += 1;
            stats.deltas_processed += batch.len() as u64;
            self.nodes[node].stat_batches += 1;
            self.nodes[node].stat_deltas += batch.len() as u64;
            if stats.deltas_processed > self.max_steps {
                return Err(DataflowError::FixpointOverrun {
                    steps: self.max_steps,
                });
            }
            if armed {
                self.check_fault(stats.deltas_processed)?;
            }
            out.clear();
            match &mut self.nodes[node].kind {
                // Inputs and pass-through operators forward the batch by
                // move — no per-delta clone.
                NodeKind::Input => out.append(&mut batch),
                NodeKind::Op(op) if op.is_passthrough() => {
                    assert!(port < op.arity(), "port {port} out of range");
                    out.append(&mut batch);
                }
                NodeKind::Op(op) => op.on_batch(port, &batch, &mut out)?,
                NodeKind::Sink(idx) => {
                    let sink = &mut self.sinks[*idx];
                    for d in &batch {
                        sink.apply(d);
                    }
                    self.queue.recycle(batch);
                    continue;
                }
                // Tombstones are unreachable (their sole incoming edge
                // was rewired through the chain head); tolerate anyway.
                NodeKind::Fused => {
                    self.queue.recycle(batch);
                    continue;
                }
            }
            self.queue.recycle(batch);
            self.dispatch(node, &mut out, &mut chain, stats, armed)?;
        }
        Ok(())
    }

    /// Routes an output batch downstream. Sinks absorb it in place (they
    /// emit nothing, so a queue round trip would only copy). A sole
    /// non-sink consumer that is a stateless non-coalescing operator
    /// (`Map`, `Union`) is *chained*: processed immediately in this
    /// scheduling step, with no queue round trip — the loop then
    /// continues from that operator's output. Everything else is
    /// enqueued; the last non-sink edge takes the deltas by move.
    fn dispatch(
        &mut self,
        from: usize,
        out: &mut Vec<Delta>,
        chain: &mut Vec<Delta>,
        stats: &mut RunStats,
        armed: bool,
    ) -> Result<(), DataflowError> {
        let mut node = from;
        loop {
            if out.is_empty() {
                return Ok(());
            }
            stats.deltas_emitted += out.len() as u64;
            let downstream = std::mem::take(&mut self.nodes[node].downstream);
            for &(target, _) in &downstream {
                if let NodeKind::Sink(idx) = self.nodes[target].kind {
                    let sink = &mut self.sinks[idx];
                    for d in out.iter() {
                        sink.apply(d);
                    }
                }
            }
            // Sync fanout: the producer (an `Arrange`) requires its batch
            // to reach every consumer within this same dispatch, so the
            // shared-index update it just applied and the attached joins'
            // probes form one atomic step — under any scheduler mode.
            // Each consumer's own output is routed recursively; recursion
            // depth is bounded by the number of arrange nodes on an
            // acyclic path (consumers themselves enqueue normally).
            if self.nodes[node].sync_fanout {
                let mut result = Ok(());
                for &(target, tport) in &downstream {
                    if matches!(
                        self.nodes[target].kind,
                        NodeKind::Sink(_) | NodeKind::Fused
                    ) {
                        continue; // sinks absorbed above
                    }
                    stats.batches_processed += 1;
                    stats.deltas_processed += out.len() as u64;
                    if stats.deltas_processed > self.max_steps {
                        result = Err(DataflowError::FixpointOverrun {
                            steps: self.max_steps,
                        });
                        break;
                    }
                    if armed {
                        let step = stats.deltas_processed;
                        if let Some(plan) = self.fault_plan.as_mut() {
                            if plan.fire(step) {
                                result = Err(DataflowError::InjectedFault { step });
                                break;
                            }
                        }
                    }
                    let mut fan_out: Vec<Delta> = Vec::new();
                    let status = match &mut self.nodes[target].kind {
                        NodeKind::Op(op) if op.is_passthrough() => {
                            assert!(tport < op.arity(), "port {tport} out of range");
                            fan_out.extend(out.iter().cloned());
                            Ok(())
                        }
                        NodeKind::Op(op) => op.on_batch(tport, out, &mut fan_out),
                        NodeKind::Input => {
                            fan_out.extend(out.iter().cloned());
                            Ok(())
                        }
                        NodeKind::Sink(_) | NodeKind::Fused => unreachable!(),
                    };
                    if let Err(e) = status {
                        result = Err(e);
                        break;
                    }
                    let mut sub_chain: Vec<Delta> = Vec::new();
                    if let Err(e) =
                        self.dispatch(target, &mut fan_out, &mut sub_chain, stats, armed)
                    {
                        result = Err(e);
                        break;
                    }
                }
                self.nodes[node].downstream = downstream;
                out.clear();
                return result;
            }
            let mut non_sink = downstream
                .iter()
                .filter(|&&(t, _)| !matches!(self.nodes[t].kind, NodeKind::Sink(_)));
            let (first, second) = (non_sink.next().copied(), non_sink.next());
            // Chain through a sole stateless consumer (batched mode
            // only — per-delta mode keeps the reference FIFO schedule).
            if let (true, Some((target, tport)), None) =
                (self.queue.is_batched(), first, second)
            {
                if let NodeKind::Op(op) = &mut self.nodes[target].kind {
                    if !op.coalesces_input() {
                        stats.batches_processed += 1;
                        stats.deltas_processed += out.len() as u64;
                        if stats.deltas_processed > self.max_steps {
                            // Restore the taken edge list before
                            // aborting — rollback rewinds state, not
                            // graph structure.
                            self.nodes[node].downstream = downstream;
                            return Err(DataflowError::FixpointOverrun {
                                steps: self.max_steps,
                            });
                        }
                        if armed {
                            let step = stats.deltas_processed;
                            if let Some(plan) = self.fault_plan.as_mut() {
                                if plan.fire(step) {
                                    self.nodes[node].downstream = downstream;
                                    return Err(DataflowError::InjectedFault { step });
                                }
                            }
                        }
                        if op.is_passthrough() {
                            assert!(tport < op.arity(), "port {tport} out of range");
                        } else {
                            chain.clear();
                            if let Err(e) = op.on_batch(tport, out, chain) {
                                self.nodes[node].downstream = downstream;
                                return Err(e);
                            }
                            std::mem::swap(out, chain);
                        }
                        self.nodes[node].downstream = downstream;
                        node = target;
                        continue;
                    }
                }
            }
            let last_queued = downstream
                .iter()
                .rposition(|&(t, _)| !matches!(self.nodes[t].kind, NodeKind::Sink(_)));
            for (i, &(target, tport)) in downstream.iter().enumerate() {
                if matches!(self.nodes[target].kind, NodeKind::Sink(_)) {
                    continue;
                }
                let rank = self.ranks.get(target).copied().unwrap_or(0);
                if Some(i) == last_queued {
                    self.queue.push(rank, target, tport, out.drain(..));
                } else {
                    self.queue.push(rank, target, tport, out.iter().cloned());
                }
            }
            self.nodes[node].downstream = downstream;
            return Ok(());
        }
    }

    /// Reads a sink's current contents.
    pub fn sink(&self, id: SinkId) -> &Multiset {
        &self.sinks[id.0]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Appends `suffix` to the display label of every node from index
    /// `first` on (e.g. the compiler tags each rule's operators with
    /// the rule label, so profiling output reads `join[D8]` instead of
    /// a bare `join`).
    pub fn label_suffix_from(&mut self, first: usize, suffix: &str) {
        for n in &mut self.nodes[first..] {
            n.label.push('[');
            n.label.push_str(suffix);
            n.label.push(']');
        }
    }

    /// Serializes the dataflow's durable state — every stateful
    /// operator, every sink, the unprocessed queue residue, and the
    /// committed-epoch counters — as a versioned, per-record-CRC'd
    /// byte stream (see [`crate::checkpoint`] for the format). The
    /// graph itself is *not* serialized: a restore target is built by
    /// re-running the same construction code, and only state flows
    /// through the checkpoint.
    ///
    /// Must be called between runs, at a committed-epoch boundary: no
    /// epoch is open, so undo journals are empty by construction and
    /// the snapshot is crash-consistent as of [`Dataflow::epoch`].
    pub fn checkpoint(&self) -> Vec<u8> {
        use crate::checkpoint as ckpt;
        let mut w = ckpt::RecordWriter::new(ckpt::MAGIC);
        // Record 0: the writer's symbol table, so every symbol id in
        // later records can be remapped into the reader's interner.
        w.record(ckpt::encode_symbol_table());
        // Record 1: counters + topology fingerprint.
        let mut meta = ckpt::Enc::new();
        meta.u64(self.epoch);
        meta.u64(self.rollbacks);
        meta.u64(self.nodes.len() as u64);
        meta.u64(self.sinks.len() as u64);
        w.record(meta);
        // One record per node: label, then the operator's state payload
        // (empty for Input/Sink/Fused/stateless nodes).
        for node in &self.nodes {
            let mut e = ckpt::Enc::new();
            e.str(&node.label);
            if let NodeKind::Op(op) = &node.kind {
                op.checkpoint_state(&mut e);
            }
            w.record(e);
        }
        // One record per sink.
        for sink in &self.sinks {
            let mut e = ckpt::Enc::new();
            ckpt::encode_multiset(&mut e, sink);
            w.record(e);
        }
        // Final record: queue residue (externals pushed but not yet
        // run), so deltas in flight at the checkpoint survive a crash.
        let mut e = ckpt::Enc::new();
        let residue = self.queue.residue();
        e.u64(residue.len() as u64);
        for (node, port, d) in &residue {
            e.u64(*node as u64);
            e.u32(*port as u32);
            e.tuple(&d.tuple);
            e.i64(d.count);
        }
        w.record(e);
        w.into_bytes()
    }

    /// Restores state serialized by [`Dataflow::checkpoint`] into this
    /// dataflow, which must have been built by the same construction
    /// code (same nodes in the same order). Symbols are remapped
    /// through the checkpoint's embedded table, every multiset is
    /// rebuilt by re-applying its entries, and the queue residue is
    /// re-pushed. Returns the restored committed-epoch counter.
    ///
    /// Any validation failure — bad magic or version, CRC mismatch,
    /// truncation, topology mismatch — surfaces as
    /// [`DataflowError::StateCorruption`]. Restoration is **not**
    /// transactional: on error the dataflow may hold partial state and
    /// must be discarded (callers degrade to a from-scratch rebuild).
    pub fn restore(&mut self, bytes: &[u8]) -> Result<u64, DataflowError> {
        use crate::checkpoint as ckpt;
        fn need(rec: Option<&[u8]>) -> Result<&[u8], DataflowError> {
            rec.ok_or_else(|| {
                DataflowError::StateCorruption("checkpoint ended before all sections".into())
            })
        }
        let mut r = ckpt::RecordReader::new(bytes, ckpt::MAGIC)?;
        let remap = ckpt::decode_symbol_table(need(r.next_record()?)?)?;
        let mut d = ckpt::Dec::new(need(r.next_record()?)?, &remap);
        let epoch = d.u64()?;
        let rollbacks = d.u64()?;
        let node_count = d.u64()? as usize;
        let sink_count = d.u64()? as usize;
        if !d.is_done() {
            return Err(DataflowError::StateCorruption(
                "trailing bytes after checkpoint meta".into(),
            ));
        }
        if node_count != self.nodes.len() || sink_count != self.sinks.len() {
            return Err(DataflowError::StateCorruption(format!(
                "topology mismatch: checkpoint has {node_count} nodes/{sink_count} sinks, \
                 live graph has {}/{}",
                self.nodes.len(),
                self.sinks.len()
            )));
        }
        for node in &mut self.nodes {
            let mut d = ckpt::Dec::new(need(r.next_record()?)?, &remap);
            let label = d.str()?;
            if d.is_done() {
                // Stateless on the writer's side: nothing to restore.
                // Labels are NOT compared here — fusion renames chain
                // heads and tombstones absorbed nodes, and the restore
                // target may not have fused yet.
                continue;
            }
            // A non-empty payload is stateful operator state; stateful
            // operators never fuse, so the labels must agree exactly.
            if label != node.label {
                return Err(DataflowError::StateCorruption(format!(
                    "node mismatch: checkpoint has `{label}`, live graph has `{}`",
                    node.label
                )));
            }
            match &mut node.kind {
                NodeKind::Op(op) => op.restore_state(&mut d)?,
                _ => {
                    return Err(DataflowError::StateCorruption(format!(
                        "checkpoint carries state for non-operator node `{label}`"
                    )))
                }
            }
            if !d.is_done() {
                return Err(DataflowError::StateCorruption(format!(
                    "trailing bytes after `{label}` state"
                )));
            }
        }
        for sink in &mut self.sinks {
            let mut d = ckpt::Dec::new(need(r.next_record()?)?, &remap);
            ckpt::decode_multiset(&mut d, sink)?;
            if !d.is_done() {
                return Err(DataflowError::StateCorruption(
                    "trailing bytes after sink state".into(),
                ));
            }
        }
        // Queue residue: drop anything queued on the live side and
        // re-push the checkpointed triples through the normal path so
        // ranks are recomputed for this graph.
        let mut d = ckpt::Dec::new(need(r.next_record()?)?, &remap);
        let mode = if self.queue.is_batched() {
            SchedulerMode::Batched
        } else {
            SchedulerMode::PerDelta
        };
        self.queue = Queue::new(mode);
        self.ensure_ranks();
        // Minimum 24 bytes per residue item: node u64 + port u32 +
        // empty-tuple prefix u32 + count i64.
        let n = d.count(24)?;
        for _ in 0..n {
            let node = d.u64()? as usize;
            let port = d.u32()? as usize;
            let tuple = d.tuple()?;
            let count = d.i64()?;
            if node >= self.nodes.len() {
                return Err(DataflowError::StateCorruption(format!(
                    "queue residue targets node {node} of {}",
                    self.nodes.len()
                )));
            }
            let rank = self.ranks.get(node).copied().unwrap_or(0);
            self.queue
                .push(rank, node, port, std::iter::once(Delta::with_count(tuple, count)));
        }
        if !d.is_done() {
            return Err(DataflowError::StateCorruption(
                "trailing bytes after queue residue".into(),
            ));
        }
        if r.next_record()?.is_some() {
            return Err(DataflowError::StateCorruption(
                "unexpected records after queue residue".into(),
            ));
        }
        self.epoch = epoch;
        self.rollbacks = rollbacks;
        Ok(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggKind;
    use crate::ops::{Distinct, GroupAgg, HashJoin, Map, Union};
    use crate::value::ints;

    #[test]
    fn linear_pipeline_filter_project() {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let filtered = df.add_op(Map::filter(|t| t.get(0).as_int() % 2 == 0), &[input]);
        let projected = df.add_op(Map::project(vec![1]), &[filtered]);
        let sink = df.add_sink(projected);
        for i in 0..6 {
            df.insert(input, ints(&[i, i * 10]));
        }
        df.run().unwrap();
        assert_eq!(
            df.sink(sink).sorted(),
            vec![ints(&[0]), ints(&[20]), ints(&[40])]
        );
    }

    #[test]
    fn incremental_join_matches_naive_semantics() {
        let mut df = Dataflow::new();
        let r = df.add_input("r");
        let s = df.add_input("s");
        let j = df.add_op(HashJoin::new(vec![0], vec![0]), &[r, s]);
        let sink = df.add_sink(j);
        df.insert(r, ints(&[1, 10]));
        df.insert(s, ints(&[1, 100]));
        df.insert(s, ints(&[2, 200]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 10, 1, 100])]);
        // Add a matching left tuple for key 2; retract the key-1 right.
        df.insert(r, ints(&[2, 20]));
        df.delete(s, ints(&[1, 100]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[2, 20, 2, 200])]);
    }

    /// Builds the classic transitive-closure program:
    /// `path(x,y) :- edge(x,y)`,
    /// `path(x,z) :- path(x,y), edge(y,z)`.
    fn tc_mode(mode: SchedulerMode) -> (Dataflow, NodeId, SinkId) {
        let mut df = Dataflow::with_mode(mode);
        let edge = df.add_input("edge");
        let union = df.add_op_unwired(Union::new(2));
        df.connect(edge, union, 0);
        let path = df.add_op(Distinct::new(), &[union]);
        // join path(x,y) [port 0, key col 1=y] with edge(y,z) [port 1,
        // key col 0=y] -> (x,y,y,z), project (x,z), feed back.
        let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
        df.connect(path, join, 0);
        df.connect(edge, join, 1);
        let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
        df.connect(proj, union, 1);
        let sink = df.add_sink(path);
        (df, edge, sink)
    }

    fn tc() -> (Dataflow, NodeId, SinkId) {
        tc_mode(SchedulerMode::Batched)
    }

    #[test]
    fn transitive_closure_chain() {
        let (mut df, edge, sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.insert(edge, ints(&[2, 3]));
        df.insert(edge, ints(&[3, 4]));
        df.run().unwrap();
        let got = df.sink(sink).sorted();
        assert_eq!(got.len(), 6); // 12,13,14,23,24,34
        assert!(got.contains(&ints(&[1, 4])));
    }

    #[test]
    fn transitive_closure_incremental_insert() {
        let (mut df, edge, sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.insert(edge, ints(&[3, 4]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).len(), 2);
        // Bridging edge triggers recursive derivations.
        df.insert(edge, ints(&[2, 3]));
        let stats = df.run().unwrap();
        assert!(stats.deltas_processed > 0);
        assert_eq!(df.sink(sink).len(), 6);
    }

    #[test]
    fn transitive_closure_incremental_delete_on_dag() {
        let (mut df, edge, sink) = tc();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
            df.insert(edge, ints(&[a, b]));
        }
        df.run().unwrap();
        assert_eq!(df.sink(sink).len(), 6);
        // Deleting 2->3 removes path(2,3), path(2,4); but 1->3, 1->4
        // survive through the 1->3 edge (counting handles the multiple
        // derivations).
        df.delete(edge, ints(&[2, 3]));
        df.run().unwrap();
        let got = df.sink(sink).sorted();
        assert_eq!(
            got,
            vec![
                ints(&[1, 2]),
                ints(&[1, 3]),
                ints(&[1, 4]),
                ints(&[3, 4]),
            ]
        );
    }

    #[test]
    fn cyclic_data_insertions_terminate_via_distinct() {
        let (mut df, edge, sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.insert(edge, ints(&[2, 1]));
        df.run().unwrap();
        let got = df.sink(sink).sorted();
        assert_eq!(
            got,
            vec![ints(&[1, 1]), ints(&[1, 2]), ints(&[2, 1]), ints(&[2, 2])]
        );
    }

    #[test]
    fn per_delta_mode_reaches_same_closure() {
        for mode in [SchedulerMode::Batched, SchedulerMode::PerDelta] {
            let (mut df, edge, sink) = tc_mode(mode);
            for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
                df.insert(edge, ints(&[a, b]));
            }
            df.run().unwrap();
            df.delete(edge, ints(&[2, 3]));
            df.run().unwrap();
            assert_eq!(df.sink(sink).len(), 4, "{mode:?}");
            assert!(!df.sink(sink).has_negative_counts(), "{mode:?}");
        }
    }

    #[test]
    fn batching_coalesces_cancelling_external_deltas() {
        // An insert+delete of the same tuple queued before one `run`
        // cancels in the queue: the batched scheduler does no work.
        let (mut df, edge, _sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.delete(edge, ints(&[1, 2]));
        let stats = df.run().unwrap();
        assert_eq!(stats.deltas_processed, 0);
        assert_eq!(stats.batches_processed, 0);
    }

    #[test]
    fn batching_merges_same_destination_deltas() {
        // 64 edge inserts become ONE input batch (and far fewer queue
        // pops than the per-delta scheduler's one-entry-per-delta).
        let (mut df, edge, sink) = tc();
        let (mut pd, pd_edge, pd_sink) = tc_mode(SchedulerMode::PerDelta);
        for i in 0..16 {
            df.insert(edge, ints(&[i, i + 1]));
            pd.insert(pd_edge, ints(&[i, i + 1]));
        }
        let b = df.run().unwrap();
        let p = pd.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), pd.sink(pd_sink).sorted());
        assert!(
            b.batches_processed * 4 < p.batches_processed,
            "batching didn't shrink scheduling: {} vs {}",
            b.batches_processed,
            p.batches_processed
        );
    }

    #[test]
    fn min_view_maintenance_end_to_end() {
        // min-cost per key, maintained under insert/delete.
        let mut df = Dataflow::new();
        let costs = df.add_input("costs");
        let agg = df.add_op(GroupAgg::new(vec![0], 1, AggKind::Min), &[costs]);
        let sink = df.add_sink(agg);
        df.insert(costs, ints(&[1, 30]));
        df.insert(costs, ints(&[1, 10]));
        df.insert(costs, ints(&[1, 20]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 10])]);
        df.delete(costs, ints(&[1, 10]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 20])]);
    }

    #[test]
    fn overrun_guard_reports_nontermination() {
        // A pathological self-amplifying loop: map feeding itself.
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let echo = df.add_op_unwired(Map::new(|t| Some(t.clone())));
        df.connect(input, echo, 0);
        df.connect(echo, echo, 0); // no distinct gate: never terminates
        df.set_max_steps(10_000);
        df.insert(input, ints(&[1]));
        assert!(df.run().is_err());
    }

    /// A join+distinct network for the stats-lifecycle tests.
    fn join_net() -> (Dataflow, NodeId, NodeId, SinkId) {
        let mut df = Dataflow::new();
        let l = df.add_input("l");
        let r = df.add_input("r");
        let j = df.add_op(HashJoin::new(vec![0], vec![0]), &[l, r]);
        let d = df.add_op(Distinct::new(), &[j]);
        let sink = df.add_sink(d);
        (df, l, r, sink)
    }

    #[test]
    fn run_stats_cover_exactly_one_successful_run() {
        let (mut df, l, r, _sink) = join_net();
        df.insert(r, ints(&[1, 20]));
        df.insert(l, ints(&[1, 10]));
        let stats = df.run().unwrap();
        assert!(stats.join_probe_deltas >= 2);
        assert!(stats.join_probes >= 1);
        // An empty follow-up run reports no counters: nothing leaked
        // out of the operators from the previous run.
        let expected = RunStats {
            epoch: 2,
            ..RunStats::default()
        };
        assert_eq!(df.run().unwrap(), expected);
    }

    #[test]
    fn errored_run_rolls_back_and_counters_do_not_leak() {
        let (mut df, l, r, sink) = join_net();
        df.insert(r, ints(&[1, 20]));
        df.run().unwrap();
        // Budget admits the input and the join (which probes, emits and
        // mutates its index), but errors before the distinct services
        // its batch: without rollback the join would hold torn state
        // and counters for a failed run.
        df.set_max_steps(2);
        df.insert(l, ints(&[1, 10]));
        let err = df.run().unwrap_err();
        assert!(matches!(err, DataflowError::FixpointOverrun { steps: 2 }));
        // The epoch rolled back: nothing reached the sink, and the
        // failed run's externals are back in the queue.
        assert!(df.sink(sink).sorted().is_empty());
        assert_eq!(df.rollbacks(), 1);
        // Recover with a raised budget; the checkpointed delta replays
        // together with the new one against the committed state.
        df.set_max_steps(1_000_000);
        df.insert(l, ints(&[2, 30]));
        let stats = df.run().unwrap();
        assert_eq!(
            stats.join_probe_deltas, 2,
            "retry must replay the rolled-back delta exactly once: {stats:?}"
        );
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 10, 1, 20])]);
    }

    /// The satellite regression: overrun → raise budget → re-run
    /// converges to the same sinks as a never-overrun oracle, on the
    /// recursive closure network, with fusion both off and on.
    #[test]
    fn overrun_retry_matches_never_overrun_oracle() {
        for fusion in [false, true] {
            let mk = || {
                let (mut df, edge, sink) = tc();
                df.set_fusion(fusion);
                (df, edge, sink)
            };
            let (mut oracle, o_edge, o_sink) = mk();
            let (mut victim, v_edge, v_sink) = mk();
            for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
                oracle.insert(o_edge, ints(&[a, b]));
                victim.insert(v_edge, ints(&[a, b]));
            }
            oracle.run().unwrap();
            // The victim overruns mid-derivation, possibly repeatedly.
            victim.set_max_steps(3);
            let err = victim.run().unwrap_err();
            assert!(
                matches!(err, DataflowError::FixpointOverrun { .. }),
                "fusion={fusion}: {err:?}"
            );
            victim.set_max_steps(1_000_000);
            victim.run().unwrap();
            // A follow-up delta behaves identically on both engines.
            oracle.delete(o_edge, ints(&[2, 3]));
            victim.delete(v_edge, ints(&[2, 3]));
            oracle.run().unwrap();
            victim.run().unwrap();
            assert!(!victim.sink(v_sink).has_negative_counts());
            assert_eq!(
                oracle.sink(o_sink).sorted(),
                victim.sink(v_sink).sorted(),
                "fusion={fusion}"
            );
        }
    }

    #[test]
    fn injected_fault_rolls_back_and_rerun_recovers() {
        let (mut df, edge, sink) = tc();
        df.insert(edge, ints(&[1, 2]));
        df.insert(edge, ints(&[2, 3]));
        df.run().unwrap();
        let committed = df.sink(sink).sorted();
        df.insert(edge, ints(&[3, 4]));
        df.set_fault_plan(Some(FaultPlan::one_shot(2)));
        let err = df.run().unwrap_err();
        assert!(matches!(err, DataflowError::InjectedFault { .. }));
        assert_eq!(df.sink(sink).sorted(), committed, "rollback left torn state");
        // The plan is spent: an immediate re-run succeeds and converges.
        let stats = df.run().unwrap();
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(df.sink(sink).len(), 6);
    }

    #[test]
    fn epoch_counters_track_commits_and_rollbacks() {
        let (mut df, edge, _sink) = tc();
        assert_eq!(df.epoch(), 0);
        df.insert(edge, ints(&[1, 2]));
        let stats = df.run().unwrap();
        assert_eq!((stats.epoch, stats.rollbacks), (1, 0));
        df.insert(edge, ints(&[2, 3]));
        df.set_fault_plan(Some(FaultPlan::one_shot(1)));
        assert!(df.run().is_err());
        assert_eq!((df.epoch(), df.rollbacks()), (1, 1));
        let stats = df.run().unwrap();
        assert_eq!((stats.epoch, stats.rollbacks), (2, 1));
    }

    #[test]
    fn per_delta_mode_rolls_back_too() {
        let (mut df, edge, sink) = tc_mode(SchedulerMode::PerDelta);
        df.insert(edge, ints(&[1, 2]));
        df.run().unwrap();
        df.insert(edge, ints(&[2, 3]));
        df.set_fault_plan(Some(FaultPlan::one_shot(2)));
        assert!(df.run().is_err());
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[1, 2])]);
        df.run().unwrap();
        assert_eq!(df.sink(sink).len(), 3);
    }

    #[test]
    fn batch_probing_shares_index_lookups_across_repeated_keys() {
        let (mut df, l, r, _sink) = join_net();
        df.insert(r, ints(&[1, 20]));
        df.run().unwrap();
        // Eight left deltas, one key: queued as one batch, one probe.
        for v in 0..8 {
            df.insert(l, ints(&[1, v]));
        }
        let stats = df.run().unwrap();
        assert_eq!(stats.join_probe_deltas, 8);
        assert_eq!(stats.join_probes, 1, "{stats:?}");
    }

    #[test]
    fn fusion_collapses_stateless_chains() {
        let build = |fusion: bool| {
            let mut df = Dataflow::new();
            df.set_fusion(fusion);
            let input = df.add_input("r");
            let a = df.add_op(Map::new(|t| Some(t.with_appended(crate::value::Val::Int(1)))), &[input]);
            let b = df.add_op(Map::filter(|t| t.get(0).as_int() > 0), &[a]);
            let c = df.add_op(Map::project(vec![0]), &[b]);
            let sink = df.add_sink(c);
            (df, input, sink)
        };
        let (mut fused, f_in, f_sink) = build(true);
        let (mut plain, p_in, p_sink) = build(false);
        for df in [&mut fused, &mut plain] {
            df.run().unwrap(); // triggers the (auto) fusion pass
        }
        assert_eq!(fused.fused_node_count(), 2);
        assert_eq!(plain.fused_node_count(), 0);
        for (df, input) in [(&mut fused, f_in), (&mut plain, p_in)] {
            for v in [-3i64, 2, 5] {
                df.insert(input, ints(&[v]));
            }
        }
        let f_stats = fused.run().unwrap();
        plain.run().unwrap();
        assert_eq!(fused.sink(f_sink).sorted(), plain.sink(p_sink).sorted());
        assert!(f_stats.fused_stages_saved >= 2, "{f_stats:?}");
    }

    #[test]
    fn per_delta_mode_never_fuses() {
        let mut df = Dataflow::with_mode(SchedulerMode::PerDelta);
        let input = df.add_input("r");
        let a = df.add_op(Map::project(vec![0]), &[input]);
        let b = df.add_op(Map::project(vec![0]), &[a]);
        let sink = df.add_sink(b);
        df.insert(input, ints(&[7]));
        let stats = df.run().unwrap();
        assert_eq!(df.fused_node_count(), 0);
        assert_eq!(stats.fused_stages_saved, 0);
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[7])]);
    }

    #[test]
    fn wiring_through_a_fused_node_panics() {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let a = df.add_op(Map::project(vec![0]), &[input]);
        let b = df.add_op(Map::project(vec![0]), &[a]);
        df.add_sink(b);
        assert_eq!(df.fuse(), 1); // `b` absorbed into `a`
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let c = df.add_op_unwired(Map::project(vec![0]));
            df.connect(b, c, 0);
        }));
        assert!(result.is_err(), "connecting a fused-away node must panic");
    }

    #[test]
    fn explicit_fuse_is_idempotent() {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let a = df.add_op(Map::project(vec![0]), &[input]);
        let b = df.add_op(Map::project(vec![0]), &[a]);
        let sink = df.add_sink(b);
        assert_eq!(df.fuse(), 1);
        assert_eq!(df.fuse(), 0);
        df.insert(input, ints(&[3]));
        df.run().unwrap();
        assert_eq!(df.sink(sink).sorted(), vec![ints(&[3])]);
    }

    #[test]
    fn push_to_non_input_panics() {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let m = df.add_op(Map::project(vec![0]), &[input]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            df.push(m, Delta::insert(ints(&[1])));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn try_variants_return_invalid_wiring_instead_of_panicking() {
        let mut df = Dataflow::new();
        let input = df.add_input("r");
        let a = df.add_op(Map::project(vec![0]), &[input]);
        let b = df.add_op(Map::project(vec![0]), &[a]);
        df.add_sink(b);
        // Pushing to a non-input is a typed error.
        let err = df.try_push(b, Delta::insert(ints(&[1]))).unwrap_err();
        assert!(matches!(err, DataflowError::InvalidWiring(_)));
        // Wiring through a fused-away node is a typed error.
        assert_eq!(df.fuse(), 1);
        let c = df.add_op_unwired(Map::project(vec![0]));
        let err = df.try_connect(b, c, 0).unwrap_err();
        assert!(matches!(err, DataflowError::InvalidWiring(_)));
        assert!(err.to_string().contains("fused"));
        // A well-formed wiring still succeeds through the try API.
        df.try_connect(input, c, 0).unwrap();
    }
}
