//! A pipelined, delta-processing dataflow engine for recursive datalog —
//! the substrate the paper runs its declarative optimizer on (the ASPEN
//! engine of [18], extended per §4: "instead of processing standard
//! tuples, each operator in the query processor must be extended to
//! process delta tuples encoding changes").
//!
//! Key reproduced mechanics:
//! - **Delta tuples** with signed multiplicities; insertions increment a
//!   per-tuple count, deletions decrement it, and "counts may temporarily
//!   become negative if a deletion is processed out of order with its
//!   corresponding insertion" (§4) — a tuple affects downstream state
//!   only while its count is positive.
//! - **Incremental joins** following the delta rules of Gupta et al.
//!   [14]: a delta on one input joins the other input's current state.
//! - **Min/max aggregation with next-best recovery** (§4.1): the
//!   aggregate retains *all* input values in an ordered multiset so that
//!   deleting the current minimum emits an update to the
//!   second-from-minimum.
//! - **Fixpoint execution over cyclic dataflows** (recursion) driven by a
//!   work queue, with no constraint on delta arrival order.
//! - **Batched, coalescing delta propagation**: the scheduler services
//!   one destination port per step with every delta queued for it,
//!   merging opposite-sign changes to the same tuple before they fan out
//!   — per-delta FIFO execution survives as [`SchedulerMode::PerDelta`]
//!   and is property-tested equivalent.
//! - **Allocation-lean tuples**: value sequences up to
//!   [`value::INLINE_CAP`] long live inline in the [`Tuple`] (no heap
//!   traffic on the projection/join/key hot path); longer ones spill to
//!   a shared `Arc<[Val]>`. Strings are interned ([`intern::Sym`]) so
//!   string-bearing tuples pack inline too and `Val` is 16 bytes.
//! - **External functions as operators** ([`ops::ExternalFn`]): the
//!   paper's `Fn_*` predicates run inside the dataflow, processing delta
//!   tuples like every other operator.

pub mod agg;
pub mod checkpoint;
pub mod dataflow;
pub mod delta;
pub mod error;
pub mod intern;
pub mod ops;
pub mod relation;
pub mod value;

pub use agg::{AggKind, OrderedMultiset};
pub use dataflow::{Dataflow, NodeId, RunStats, SchedulerMode, SinkId};
pub use error::{DataflowError, FaultPlan};
pub use delta::{coalesce, CoalesceScratch, Delta};
pub use intern::{set_intern_capacity, Sym};
pub use ops::{
    Arrange, Distinct, ExternalFn, FuseStage, Fused, GroupAgg, HashJoin, Map, OpCounters, Operator,
    Union,
};
pub use relation::{ArrangementHandle, IndexedMultiset, Multiset};
pub use value::{Tuple, Val};
