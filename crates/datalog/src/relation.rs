//! Materialized relation state: multisets with (possibly transiently
//! negative) counts, and key-indexed variants for joins.
//!
//! Paper §4: "for stateful operators, we maintain for each encountered
//! tuple value a (possibly temporarily negative) count ... A tuple only
//! affects the output of a stateful operator if its count is positive."

use std::cell::{Ref, RefCell, RefMut};
use std::rc::Rc;

use reopt_common::FxHashMap;

use crate::delta::Delta;
use crate::value::Tuple;

/// A counted multiset of tuples. Visible (positive-count) and
/// negative-count entry totals are maintained incrementally, so
/// [`Multiset::len`], [`Multiset::is_empty`] and
/// [`Multiset::has_negative_counts`] are O(1).
#[derive(Clone, Debug, Default)]
pub struct Multiset {
    counts: FxHashMap<Tuple, Slot>,
    /// Entries with count > 0.
    visible: usize,
    /// Entries with count < 0 (out-of-order deletions in flight).
    negative: usize,
    /// First-touch undo log for the open epoch: `(tuple, pre-epoch
    /// count)` snapshots, recorded the first time the epoch touches
    /// each tuple (so a hot tuple updated thousands of times per
    /// fixpoint journals once). Only populated while `recording`.
    journal: Vec<(Tuple, i64)>,
    recording: bool,
    /// Epoch stamp compared against [`Slot::stamp`] to detect first
    /// touches. Strictly positive once an epoch has opened, so fresh
    /// slots (stamp 0) always count as untouched.
    epoch: u32,
    /// True when the relation held nothing at epoch open: rollback is
    /// then plain truncation and per-apply journaling is skipped
    /// entirely (the common case for from-scratch evaluation).
    was_empty: bool,
}

/// One tuple's count plus the journal stamp of the epoch that last
/// snapshotted it.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    count: i64,
    stamp: u32,
}

/// How applying a delta changed a tuple's *visibility* (positivity of its
/// count) — the unit of downstream propagation for set-semantics
/// operators such as `Distinct`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// Count went from ≤ 0 to > 0.
    Appeared,
    /// Count went from > 0 to ≤ 0.
    Disappeared,
    /// No change in positivity.
    Unchanged,
}

impl Multiset {
    pub fn new() -> Multiset {
        Multiset::default()
    }

    /// Applies a delta, returning the visibility transition.
    pub fn apply(&mut self, delta: &Delta) -> Visibility {
        if delta.count == 0 {
            return Visibility::Unchanged;
        }
        let entry = self.counts.entry(delta.tuple.clone()).or_default();
        if self.recording && entry.stamp != self.epoch {
            entry.stamp = self.epoch;
            self.journal.push((delta.tuple.clone(), entry.count));
        }
        let before = entry.count;
        entry.count += delta.count;
        let after = entry.count;
        if after == 0 {
            self.counts.remove(&delta.tuple);
        }
        if (before > 0) != (after > 0) {
            if after > 0 {
                self.visible += 1;
            } else {
                self.visible -= 1;
            }
        }
        if (before < 0) != (after < 0) {
            if after < 0 {
                self.negative += 1;
            } else {
                self.negative -= 1;
            }
        }
        match (before > 0, after > 0) {
            (false, true) => Visibility::Appeared,
            (true, false) => Visibility::Disappeared,
            _ => Visibility::Unchanged,
        }
    }

    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.counts.get(tuple).map_or(0, |s| s.count)
    }

    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.count(tuple) > 0
    }

    /// Iterates tuples with positive counts.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.counts
            .iter()
            .filter(|(_, s)| s.count > 0)
            .map(|(t, s)| (t, s.count))
    }

    /// Number of distinct visible tuples. O(1).
    pub fn len(&self) -> usize {
        self.visible
    }

    pub fn is_empty(&self) -> bool {
        self.visible == 0
    }

    /// True if any count is negative (an out-of-order deletion is in
    /// flight; fixpoints must end with none). O(1).
    pub fn has_negative_counts(&self) -> bool {
        self.negative > 0
    }

    /// Every stored entry with its raw count — including transiently
    /// negative ones — in arbitrary order. Checkpoints serialize this
    /// rather than [`Multiset::iter`], which hides negative counts.
    pub fn entries(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.counts.iter().map(|(t, s)| (t, s.count))
    }

    /// Discards all state (a restore starts from a blank slate and
    /// re-applies checkpointed entries, rebuilding the counters).
    pub fn clear(&mut self) {
        *self = Multiset::default();
    }

    /// Pre-sizes the map for `n` incoming [`Multiset::load_entry`] calls.
    pub fn reserve(&mut self, n: usize) {
        self.counts.reserve(n);
    }

    /// Bulk-loads one checkpoint entry, bypassing [`Multiset::apply`]'s
    /// read-modify-write: the visible/negative counters are still
    /// rebuilt here (never trusted from disk), only the per-entry map
    /// probe is saved. Returns `false` — leaving the counters garbage,
    /// callers must then discard the whole relation — if the tuple was
    /// already present, which a well-formed image (serialized from a
    /// map) cannot produce.
    pub fn load_entry(&mut self, t: Tuple, c: i64) -> bool {
        debug_assert_ne!(c, 0, "zero-count entries are never stored");
        if c > 0 {
            self.visible += 1;
        } else {
            self.negative += 1;
        }
        self.counts.insert(t, Slot { count: c, stamp: 0 }).is_none()
    }

    /// Visible tuples, sorted (deterministic test output).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().map(|(t, _)| t.clone()).collect();
        v.sort();
        v
    }

    /// Opens an epoch: the first [`Multiset::apply`] touching each
    /// tuple snapshots its pre-epoch count so
    /// [`Multiset::rollback_epoch`] can restore it. Clears any stale
    /// journal but keeps its capacity.
    pub fn begin_epoch(&mut self) {
        self.journal.clear();
        self.was_empty = self.counts.is_empty();
        self.recording = !self.was_empty;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // 0 is the fresh-slot sentinel; skip it on wraparound.
            self.epoch = 1;
        }
    }

    /// Commits the open epoch: the journal is discarded (capacity
    /// retained) and recording stops.
    pub fn commit_epoch(&mut self) {
        self.journal.clear();
        self.recording = false;
        self.was_empty = false;
    }

    /// Rolls the open epoch back by restoring each journaled snapshot,
    /// in reverse order (a tuple removed and re-created within one
    /// epoch snapshots twice; reverse replay makes the oldest — true
    /// pre-epoch — snapshot win).
    pub fn rollback_epoch(&mut self) {
        self.recording = false;
        if self.was_empty {
            // Nothing pre-existed: rollback is truncation.
            self.was_empty = false;
            self.counts.clear();
            self.visible = 0;
            self.negative = 0;
            self.journal.clear();
            return;
        }
        let journal = std::mem::take(&mut self.journal);
        for (tuple, before) in journal.into_iter().rev() {
            let now = self.count(&tuple);
            if now != before {
                self.apply(&Delta::with_count(tuple, before - now));
            }
        }
    }
}

/// Buckets up to this many entries are scanned linearly on update;
/// larger ones maintain a tuple→position index.
const LINEAR_BUCKET_MAX: usize = 8;

/// One key's entries. Both layouts keep the tuples in a flat vector so
/// probes — the join's inner loop — iterate densely; they differ only
/// in how updates locate an entry.
#[derive(Clone, Debug)]
enum Bucket {
    /// Few entries: linear scan.
    Small(Vec<(Tuple, i64)>),
    /// Many entries (e.g. a transitive-closure node with many
    /// ancestors): positions held in a side index, `swap_remove` keeps
    /// it consistent.
    Large {
        entries: Vec<(Tuple, i64)>,
        index: FxHashMap<Tuple, u32>,
    },
}

impl Bucket {
    #[inline]
    fn entries(&self) -> &[(Tuple, i64)] {
        match self {
            Bucket::Small(v) => v,
            Bucket::Large { entries, .. } => entries,
        }
    }
}

/// A multiset indexed by a key projection — join-side state.
///
/// The index is keyed by the *hash of the key columns*, computed
/// directly from each tuple ([`Tuple::hash_cols`]) — no key tuple is
/// ever materialized. Hash buckets store full tuples in flat vectors
/// ([`Bucket`]): probes iterate densely, updates scan linearly while
/// the bucket is small and through a position index once it grows.
/// Probes re-check key-column equality, so colliding keys sharing a
/// bucket stay correct.
#[derive(Clone, Debug, Default)]
pub struct IndexedMultiset {
    key_cols: Vec<usize>,
    by_key: FxHashMap<u64, Bucket>,
    total: usize,
    /// Undo log for the open epoch (applied deltas, in order). Only
    /// populated while `recording`.
    journal: Vec<(Tuple, i64)>,
    recording: bool,
    /// True when the index held nothing at epoch open: rollback is then
    /// plain truncation and journaling is skipped (see
    /// [`Multiset::begin_epoch`]).
    was_empty: bool,
}

impl IndexedMultiset {
    pub fn new(key_cols: Vec<usize>) -> IndexedMultiset {
        IndexedMultiset {
            key_cols,
            by_key: FxHashMap::default(),
            total: 0,
            journal: Vec::new(),
            recording: false,
            was_empty: false,
        }
    }

    /// The columns this side is keyed on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// The index hash of `t`'s key columns — computed once per delta by
    /// the batch-aware join and shared between [`apply_hashed`] and
    /// [`matches_hashed`].
    ///
    /// [`apply_hashed`]: IndexedMultiset::apply_hashed
    /// [`matches_hashed`]: IndexedMultiset::matches_hashed
    #[inline]
    pub fn key_hash(&self, t: &Tuple) -> u64 {
        t.hash_cols(&self.key_cols)
    }

    /// Applies a delta to the indexed state.
    pub fn apply(&mut self, delta: &Delta) {
        self.apply_hashed(delta, delta.tuple.hash_cols(&self.key_cols));
    }

    /// [`IndexedMultiset::apply`] with the key hash already computed
    /// (must equal `self.key_hash(&delta.tuple)`).
    pub fn apply_hashed(&mut self, delta: &Delta, h: u64) {
        self.apply_run_hashed(h, std::iter::once(delta));
    }

    /// Applies a run of deltas sharing one key hash — one bucket lookup
    /// for the whole run (batch-aware joins feed each sorted same-key
    /// run here; update pairs touch their bucket once).
    pub fn apply_run_hashed<'a>(
        &mut self,
        h: u64,
        deltas: impl Iterator<Item = &'a Delta>,
    ) {
        let mut emptied = false;
        let group = self
            .by_key
            .entry(h)
            .or_insert_with(|| Bucket::Small(Vec::new()));
        for delta in deltas {
            if delta.count == 0 {
                continue;
            }
            debug_assert_eq!(h, delta.tuple.hash_cols(&self.key_cols));
            if self.recording {
                self.journal.push((delta.tuple.clone(), delta.count));
            }
            Self::bucket_apply(group, delta, &mut self.total, &mut emptied);
        }
        if emptied && group.entries().is_empty() {
            self.by_key.remove(&h);
        }
    }

    /// Applies one delta to a bucket, maintaining `total` and flagging
    /// a (possibly transient) empty bucket.
    fn bucket_apply(group: &mut Bucket, delta: &Delta, total: &mut usize, emptied: &mut bool) {
        match group {
            Bucket::Small(v) => {
                match v.iter().position(|(t, _)| *t == delta.tuple) {
                    Some(i) => {
                        v[i].1 += delta.count;
                        if v[i].1 == 0 {
                            v.swap_remove(i);
                            *total -= 1;
                            *emptied |= v.is_empty();
                        }
                    }
                    None => {
                        v.push((delta.tuple.clone(), delta.count));
                        *total += 1;
                        if v.len() > LINEAR_BUCKET_MAX {
                            let entries = std::mem::take(v);
                            let index = entries
                                .iter()
                                .enumerate()
                                .map(|(i, (t, _))| (t.clone(), i as u32))
                                .collect();
                            *group = Bucket::Large { entries, index };
                        }
                    }
                }
            }
            Bucket::Large { entries, index } => match index.get(&delta.tuple) {
                Some(&i) => {
                    let i = i as usize;
                    entries[i].1 += delta.count;
                    if entries[i].1 == 0 {
                        index.remove(&delta.tuple);
                        entries.swap_remove(i);
                        if i < entries.len() {
                            // The moved entry's position changed.
                            *index
                                .get_mut(&entries[i].0)
                                .expect("indexed entry present") = i as u32;
                        }
                        *total -= 1;
                        *emptied |= entries.is_empty();
                    }
                }
                None => {
                    index.insert(delta.tuple.clone(), entries.len() as u32);
                    entries.push((delta.tuple.clone(), delta.count));
                    *total += 1;
                }
            },
        }
    }

    /// Tuples whose key columns equal `probe[probe_cols]` (with counts,
    /// including transiently negative ones — the bilinear join form
    /// needs raw counts). The probe is a tuple from the *other* side
    /// together with that side's key columns; no key tuple is built.
    pub fn matches<'a>(
        &'a self,
        probe: &'a Tuple,
        probe_cols: &'a [usize],
    ) -> impl Iterator<Item = (&'a Tuple, i64)> + 'a {
        self.matches_hashed(probe.hash_cols(probe_cols), probe, probe_cols)
    }

    /// [`IndexedMultiset::matches`] with the probe hash already computed
    /// (must equal `probe.hash_cols(probe_cols)`).
    pub fn matches_hashed<'a>(
        &'a self,
        h: u64,
        probe: &'a Tuple,
        probe_cols: &'a [usize],
    ) -> impl Iterator<Item = (&'a Tuple, i64)> + 'a {
        debug_assert_eq!(h, probe.hash_cols(probe_cols));
        self.bucket(h)
            .iter()
            .filter(move |(t, _)| t.cols_eq(&self.key_cols, probe, probe_cols))
            .map(|(t, c)| (t, *c))
    }

    /// The whole bucket for a key hash, unfiltered (batch probing
    /// filters per entry itself).
    #[inline]
    pub(crate) fn bucket(&self, h: u64) -> &[(Tuple, i64)] {
        self.by_key.get(&h).map_or(&[], Bucket::entries)
    }

    /// Distinct tuples currently stored (any count sign). O(1).
    pub fn total_tuples(&self) -> usize {
        self.total
    }

    /// Every stored entry with its raw count, across all buckets, in
    /// arbitrary order (checkpoint serialization).
    pub fn entries(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.by_key
            .values()
            .flat_map(|b| b.entries().iter().map(|(t, c)| (t, *c)))
    }

    /// Discards all stored tuples, keeping the key columns. Restores
    /// re-apply checkpointed entries so bucket hashes are rebuilt under
    /// the *current* process's interned symbols.
    pub fn clear(&mut self) {
        let key_cols = std::mem::take(&mut self.key_cols);
        *self = IndexedMultiset::new(key_cols);
    }

    /// Pre-sizes the key map for up to `n` incoming
    /// [`IndexedMultiset::load_entry`] calls (an upper bound — entries
    /// sharing a key share a slot).
    pub fn reserve(&mut self, n: usize) {
        self.by_key.reserve(n);
    }

    /// Bulk-loads one checkpoint entry, bypassing the delta machinery.
    /// The key hash is recomputed under the current process's interner
    /// and totals are maintained — nothing structural is trusted from
    /// disk — but the tuple is moved straight into its bucket instead
    /// of going through [`IndexedMultiset::apply`]'s locate-and-merge.
    /// Returns `false` if the tuple was already present (an impossible
    /// image; callers must discard the relation).
    pub fn load_entry(&mut self, t: Tuple, c: i64) -> bool {
        debug_assert_ne!(c, 0, "zero-count entries are never stored");
        let h = t.hash_cols(&self.key_cols);
        let group = self
            .by_key
            .entry(h)
            .or_insert_with(|| Bucket::Small(Vec::with_capacity(4)));
        match group {
            Bucket::Small(v) => {
                if v.iter().any(|(prev, _)| *prev == t) {
                    return false;
                }
                v.push((t, c));
                self.total += 1;
                if v.len() > LINEAR_BUCKET_MAX {
                    let entries = std::mem::take(v);
                    let index = entries
                        .iter()
                        .enumerate()
                        .map(|(i, (t, _))| (t.clone(), i as u32))
                        .collect();
                    *group = Bucket::Large { entries, index };
                }
            }
            Bucket::Large { entries, index } => {
                if index.contains_key(&t) {
                    return false;
                }
                index.insert(t.clone(), entries.len() as u32);
                entries.push((t, c));
                self.total += 1;
            }
        }
        true
    }

    /// Opens an epoch: subsequent applies are journaled for
    /// [`IndexedMultiset::rollback_epoch`] — unless the index is empty,
    /// in which case rollback is truncation and nothing is journaled.
    pub fn begin_epoch(&mut self) {
        self.journal.clear();
        self.was_empty = self.by_key.is_empty();
        self.recording = !self.was_empty;
    }

    /// Commits the open epoch, discarding the journal.
    pub fn commit_epoch(&mut self) {
        self.journal.clear();
        self.recording = false;
        self.was_empty = false;
    }

    /// Rolls the open epoch back by re-applying the journal negated, in
    /// reverse order.
    pub fn rollback_epoch(&mut self) {
        self.recording = false;
        if self.was_empty {
            self.was_empty = false;
            self.by_key.clear();
            self.total = 0;
            self.journal.clear();
            return;
        }
        let journal = std::mem::take(&mut self.journal);
        for (tuple, count) in journal.into_iter().rev() {
            self.apply(&Delta::with_count(tuple, -count));
        }
    }
}

/// A shared, keyed index over one relation — differential dataflow's
/// *arrangement*. The index is maintained exactly once per epoch by a
/// single [`crate::ops::Arrange`] operator (the sole writer) and probed
/// read-only by every [`crate::ops::HashJoin`] attached to it via
/// `share_left`/`share_right`, replacing the per-join [`IndexedMultiset`]
/// copies that would otherwise each re-apply the same deltas.
///
/// Epoch journaling, checkpointing and restore of the shared index are
/// the owning `Arrange`'s responsibility; attached joins treat the
/// handle as immutable state and never open a mutable borrow.
#[derive(Clone, Debug)]
pub struct ArrangementHandle {
    inner: Rc<RefCell<IndexedMultiset>>,
}

impl ArrangementHandle {
    pub fn new(key_cols: Vec<usize>) -> ArrangementHandle {
        ArrangementHandle {
            inner: Rc::new(RefCell::new(IndexedMultiset::new(key_cols))),
        }
    }

    /// Read-only access for probing. Panics if the owning `Arrange` is
    /// mid-mutation — impossible under the scheduler's dispatch
    /// discipline (the writer's borrow ends before its output fans
    /// out).
    pub fn read(&self) -> Ref<'_, IndexedMultiset> {
        self.inner.borrow()
    }

    /// Mutable access for the owning [`crate::ops::Arrange`] only.
    pub fn write(&self) -> RefMut<'_, IndexedMultiset> {
        self.inner.borrow_mut()
    }

    /// The key columns the arrangement is indexed on.
    pub fn key_cols(&self) -> Vec<usize> {
        self.read().key_cols().to_vec()
    }

    /// True if both handles alias the *same* index. A join must never
    /// attach one arrangement to both of its ports (the bilinear form
    /// would double-count Δ²); builders use this to detect that.
    pub fn same_index(&self, other: &ArrangementHandle) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ints;

    #[test]
    fn visibility_transitions() {
        let mut m = Multiset::new();
        let t = ints(&[1]);
        assert_eq!(m.apply(&Delta::insert(t.clone())), Visibility::Appeared);
        assert_eq!(m.apply(&Delta::insert(t.clone())), Visibility::Unchanged);
        assert_eq!(m.apply(&Delta::delete(t.clone())), Visibility::Unchanged);
        assert_eq!(m.apply(&Delta::delete(t.clone())), Visibility::Disappeared);
        assert_eq!(m.count(&t), 0);
    }

    #[test]
    fn out_of_order_deletion_goes_negative_then_converges() {
        let mut m = Multiset::new();
        let t = ints(&[5]);
        assert_eq!(m.apply(&Delta::delete(t.clone())), Visibility::Unchanged);
        assert!(m.has_negative_counts());
        assert!(!m.contains(&t));
        assert_eq!(m.apply(&Delta::insert(t.clone())), Visibility::Unchanged);
        assert!(!m.has_negative_counts());
        assert_eq!(m.count(&t), 0);
    }

    #[test]
    fn iter_skips_invisible() {
        let mut m = Multiset::new();
        m.apply(&Delta::insert(ints(&[1])));
        m.apply(&Delta::delete(ints(&[2]))); // negative count
        assert_eq!(m.len(), 1);
        assert_eq!(m.sorted(), vec![ints(&[1])]);
    }

    #[test]
    fn running_len_tracks_multi_count_transitions() {
        let mut m = Multiset::new();
        let t = ints(&[9]);
        m.apply(&Delta::with_count(t.clone(), 3));
        assert_eq!(m.len(), 1);
        m.apply(&Delta::with_count(t.clone(), -5)); // 3 -> -2: visible and negative
        assert_eq!(m.len(), 0);
        assert!(m.has_negative_counts());
        m.apply(&Delta::with_count(t.clone(), 2)); // -2 -> 0: entry gone
        assert_eq!(m.len(), 0);
        assert!(!m.has_negative_counts());
        assert_eq!(m.count(&t), 0);
    }

    #[test]
    fn zero_count_delta_is_a_no_op() {
        let mut m = Multiset::new();
        assert_eq!(
            m.apply(&Delta::with_count(ints(&[1]), 0)),
            Visibility::Unchanged
        );
        assert_eq!(m.len(), 0);
        assert_eq!(m.count(&ints(&[1])), 0);
    }

    #[test]
    fn indexed_multiset_matches_by_key() {
        let mut m = IndexedMultiset::new(vec![0]);
        m.apply(&Delta::insert(ints(&[1, 10])));
        m.apply(&Delta::insert(ints(&[1, 11])));
        m.apply(&Delta::insert(ints(&[2, 20])));
        // Probe as the "other side" would: key in column 0 of the probe.
        let matches: Vec<i64> = m
            .matches(&ints(&[1, 99]), &[0])
            .map(|(t, _)| t.get(1).as_int())
            .collect();
        assert_eq!(matches.len(), 2);
        assert!(matches.contains(&10) && matches.contains(&11));
        assert_eq!(m.matches(&ints(&[3, 0]), &[0]).count(), 0);
    }

    #[test]
    fn indexed_multiset_probes_with_differing_columns() {
        // Left keyed on col 1; probe tuples carry the key in col 0.
        let mut m = IndexedMultiset::new(vec![1]);
        m.apply(&Delta::insert(ints(&[10, 7])));
        m.apply(&Delta::insert(ints(&[11, 7])));
        let hits: Vec<i64> = m
            .matches(&ints(&[7, 0]), &[0])
            .map(|(t, _)| t.get(0).as_int())
            .collect();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&10) && hits.contains(&11));
    }

    #[test]
    fn indexed_multiset_cleans_up_empty_groups() {
        let mut m = IndexedMultiset::new(vec![0]);
        m.apply(&Delta::insert(ints(&[1, 10])));
        m.apply(&Delta::delete(ints(&[1, 10])));
        assert_eq!(m.total_tuples(), 0);
    }

    #[test]
    fn buckets_promote_to_indexed_layout_and_stay_consistent() {
        // Push one key well past LINEAR_BUCKET_MAX, then delete through
        // the promoted layout: totals, matches and cleanup must agree
        // with the linear regime.
        let mut m = IndexedMultiset::new(vec![0]);
        let n = (LINEAR_BUCKET_MAX * 3) as i64;
        for v in 0..n {
            m.apply(&Delta::insert(ints(&[7, v])));
        }
        assert_eq!(m.total_tuples(), n as usize);
        assert_eq!(m.matches(&ints(&[7, 0]), &[0]).count(), n as usize);
        // Delete from the middle (exercises swap_remove + index fixup).
        for v in (0..n).step_by(2) {
            m.apply(&Delta::delete(ints(&[7, v])));
        }
        assert_eq!(m.total_tuples(), (n / 2) as usize);
        let mut hits: Vec<i64> = m
            .matches(&ints(&[7, 0]), &[0])
            .map(|(t, _)| t.get(1).as_int())
            .collect();
        hits.sort();
        assert_eq!(hits, (0..n).filter(|v| v % 2 == 1).collect::<Vec<_>>());
        for v in (0..n).filter(|v| v % 2 == 1) {
            m.apply(&Delta::delete(ints(&[7, v])));
        }
        assert_eq!(m.total_tuples(), 0);
        assert_eq!(m.matches(&ints(&[7, 0]), &[0]).count(), 0);
    }

    #[test]
    fn multiset_rollback_restores_pre_epoch_state() {
        let mut m = Multiset::new();
        m.apply(&Delta::with_count(ints(&[1]), 2));
        m.apply(&Delta::insert(ints(&[2])));
        let committed: Vec<(Tuple, i64)> = {
            let mut v: Vec<_> = m.iter().map(|(t, c)| (t.clone(), c)).collect();
            v.sort();
            v
        };
        m.begin_epoch();
        m.apply(&Delta::delete(ints(&[1])));
        m.apply(&Delta::delete(ints(&[3]))); // transient negative
        m.apply(&Delta::with_count(ints(&[2]), 4));
        assert!(m.has_negative_counts());
        m.rollback_epoch();
        let mut now: Vec<_> = m.iter().map(|(t, c)| (t.clone(), c)).collect();
        now.sort();
        assert_eq!(committed, now);
        assert!(!m.has_negative_counts());
        assert_eq!(m.count(&ints(&[3])), 0);
        // After rollback, recording is off: applies are not journaled.
        m.apply(&Delta::insert(ints(&[9])));
        m.rollback_epoch(); // no-op, empty journal
        assert_eq!(m.count(&ints(&[9])), 1);
    }

    #[test]
    fn multiset_commit_keeps_epoch_changes() {
        let mut m = Multiset::new();
        m.begin_epoch();
        m.apply(&Delta::insert(ints(&[1])));
        m.commit_epoch();
        m.rollback_epoch(); // journal was discarded at commit
        assert_eq!(m.count(&ints(&[1])), 1);
    }

    #[test]
    fn indexed_multiset_rollback_restores_buckets_and_totals() {
        let mut m = IndexedMultiset::new(vec![0]);
        for v in 0..(LINEAR_BUCKET_MAX as i64 + 4) {
            m.apply(&Delta::insert(ints(&[7, v])));
        }
        m.apply(&Delta::insert(ints(&[8, 0])));
        let total = m.total_tuples();
        m.begin_epoch();
        // Deletes through the promoted layout, fresh inserts, and a
        // bucket emptied entirely.
        for v in 0..4 {
            m.apply(&Delta::delete(ints(&[7, v])));
        }
        m.apply(&Delta::insert(ints(&[9, 1])));
        m.apply(&Delta::delete(ints(&[8, 0])));
        m.rollback_epoch();
        assert_eq!(m.total_tuples(), total);
        assert_eq!(
            m.matches(&ints(&[7, 0]), &[0]).count(),
            LINEAR_BUCKET_MAX + 4
        );
        assert_eq!(m.matches(&ints(&[8, 0]), &[0]).count(), 1);
        assert_eq!(m.matches(&ints(&[9, 0]), &[0]).count(), 0);
    }

    #[test]
    fn apply_run_shares_one_bucket_lookup() {
        // An update pair (−old, +new on one key) through the run API
        // leaves exactly the new tuple.
        let mut m = IndexedMultiset::new(vec![0]);
        m.apply(&Delta::insert(ints(&[5, 1])));
        let h = m.key_hash(&ints(&[5, 2]));
        let run = [Delta::delete(ints(&[5, 1])), Delta::insert(ints(&[5, 2]))];
        m.apply_run_hashed(h, run.iter());
        assert_eq!(m.total_tuples(), 1);
        let hits: Vec<i64> = m
            .matches(&ints(&[5, 0]), &[0])
            .map(|(t, _)| t.get(1).as_int())
            .collect();
        assert_eq!(hits, vec![2]);
        // A run that nets to empty removes the bucket entirely.
        let run = [Delta::delete(ints(&[5, 2]))];
        m.apply_run_hashed(h, run.iter());
        assert_eq!(m.total_tuples(), 0);
        assert_eq!(m.matches(&ints(&[5, 0]), &[0]).count(), 0);
    }
}
