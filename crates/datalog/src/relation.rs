//! Materialized relation state: multisets with (possibly transiently
//! negative) counts, and key-indexed variants for joins.
//!
//! Paper §4: "for stateful operators, we maintain for each encountered
//! tuple value a (possibly temporarily negative) count ... A tuple only
//! affects the output of a stateful operator if its count is positive."

use reopt_common::FxHashMap;

use crate::delta::Delta;
use crate::value::Tuple;

/// A counted multiset of tuples.
#[derive(Clone, Debug, Default)]
pub struct Multiset {
    counts: FxHashMap<Tuple, i64>,
}

/// How applying a delta changed a tuple's *visibility* (positivity of its
/// count) — the unit of downstream propagation for set-semantics
/// operators such as `Distinct`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// Count went from ≤ 0 to > 0.
    Appeared,
    /// Count went from > 0 to ≤ 0.
    Disappeared,
    /// No change in positivity.
    Unchanged,
}

impl Multiset {
    pub fn new() -> Multiset {
        Multiset::default()
    }

    /// Applies a delta, returning the visibility transition.
    pub fn apply(&mut self, delta: &Delta) -> Visibility {
        let entry = self.counts.entry(delta.tuple.clone()).or_insert(0);
        let before = *entry > 0;
        *entry += delta.count;
        let after = *entry > 0;
        if *entry == 0 {
            self.counts.remove(&delta.tuple);
        }
        match (before, after) {
            (false, true) => Visibility::Appeared,
            (true, false) => Visibility::Disappeared,
            _ => Visibility::Unchanged,
        }
    }

    pub fn count(&self, tuple: &Tuple) -> i64 {
        self.counts.get(tuple).copied().unwrap_or(0)
    }

    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.count(tuple) > 0
    }

    /// Iterates tuples with positive counts.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, i64)> {
        self.counts.iter().filter(|(_, &c)| c > 0).map(|(t, &c)| (t, c))
    }

    /// Number of distinct visible tuples.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if any count is negative (an out-of-order deletion is in
    /// flight; fixpoints must end with none).
    pub fn has_negative_counts(&self) -> bool {
        self.counts.values().any(|&c| c < 0)
    }

    /// Visible tuples, sorted (deterministic test output).
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.iter().map(|(t, _)| t.clone()).collect();
        v.sort();
        v
    }
}

/// A multiset indexed by a key projection — join-side state.
#[derive(Clone, Debug, Default)]
pub struct IndexedMultiset {
    key_cols: Vec<usize>,
    by_key: FxHashMap<Tuple, FxHashMap<Tuple, i64>>,
}

impl IndexedMultiset {
    pub fn new(key_cols: Vec<usize>) -> IndexedMultiset {
        IndexedMultiset {
            key_cols,
            by_key: FxHashMap::default(),
        }
    }

    pub fn key_of(&self, tuple: &Tuple) -> Tuple {
        tuple.project(&self.key_cols)
    }

    /// Applies a delta to the indexed state.
    pub fn apply(&mut self, delta: &Delta) {
        let key = self.key_of(&delta.tuple);
        let group = self.by_key.entry(key.clone()).or_default();
        let entry = group.entry(delta.tuple.clone()).or_insert(0);
        *entry += delta.count;
        if *entry == 0 {
            group.remove(&delta.tuple);
            if group.is_empty() {
                self.by_key.remove(&key);
            }
        }
    }

    /// Matching tuples (with counts, including transiently negative
    /// ones — the bilinear join form needs raw counts).
    pub fn matches(&self, key: &Tuple) -> impl Iterator<Item = (&Tuple, i64)> {
        self.by_key
            .get(key)
            .into_iter()
            .flat_map(|g| g.iter().map(|(t, &c)| (t, c)))
    }

    pub fn total_tuples(&self) -> usize {
        self.by_key.values().map(|g| g.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ints;

    #[test]
    fn visibility_transitions() {
        let mut m = Multiset::new();
        let t = ints(&[1]);
        assert_eq!(m.apply(&Delta::insert(t.clone())), Visibility::Appeared);
        assert_eq!(m.apply(&Delta::insert(t.clone())), Visibility::Unchanged);
        assert_eq!(m.apply(&Delta::delete(t.clone())), Visibility::Unchanged);
        assert_eq!(m.apply(&Delta::delete(t.clone())), Visibility::Disappeared);
        assert_eq!(m.count(&t), 0);
    }

    #[test]
    fn out_of_order_deletion_goes_negative_then_converges() {
        let mut m = Multiset::new();
        let t = ints(&[5]);
        assert_eq!(m.apply(&Delta::delete(t.clone())), Visibility::Unchanged);
        assert!(m.has_negative_counts());
        assert!(!m.contains(&t));
        assert_eq!(m.apply(&Delta::insert(t.clone())), Visibility::Unchanged);
        assert!(!m.has_negative_counts());
        assert_eq!(m.count(&t), 0);
    }

    #[test]
    fn iter_skips_invisible() {
        let mut m = Multiset::new();
        m.apply(&Delta::insert(ints(&[1])));
        m.apply(&Delta::delete(ints(&[2]))); // negative count
        assert_eq!(m.len(), 1);
        assert_eq!(m.sorted(), vec![ints(&[1])]);
    }

    #[test]
    fn indexed_multiset_matches_by_key() {
        let mut m = IndexedMultiset::new(vec![0]);
        m.apply(&Delta::insert(ints(&[1, 10])));
        m.apply(&Delta::insert(ints(&[1, 11])));
        m.apply(&Delta::insert(ints(&[2, 20])));
        let matches: Vec<i64> = m
            .matches(&ints(&[1]))
            .map(|(t, _)| t.get(1).as_int())
            .collect();
        assert_eq!(matches.len(), 2);
        assert!(matches.contains(&10) && matches.contains(&11));
        assert_eq!(m.matches(&ints(&[3])).count(), 0);
    }

    #[test]
    fn indexed_multiset_cleans_up_empty_groups() {
        let mut m = IndexedMultiset::new(vec![0]);
        m.apply(&Delta::insert(ints(&[1, 10])));
        m.apply(&Delta::delete(ints(&[1, 10])));
        assert_eq!(m.total_tuples(), 0);
    }
}
