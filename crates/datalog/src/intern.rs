//! Process-wide string interning for tuple values.
//!
//! The rule network flows relation columns like `logOp`/`phyOp` that
//! hold a handful of distinct strings ("scan", "join", "pipelined-hash",
//! …) through every `SearchSpace` tuple. Interning maps each distinct
//! string to a dense [`Sym`] (a `u32`), so:
//! - `Val::Str` carries 4 bytes instead of an `Arc<str>` fat pointer,
//!   shrinking `Val` to 16 bytes;
//! - *every* value kind packs into the [`crate::value::Tuple`] inline
//!   representation — string-bearing tuples up to
//!   [`crate::value::INLINE_CAP`] values no longer heap-allocate;
//! - equality and hashing of string values become `u32` compares.
//!
//! Symbols are never freed: the distinct-string population of a rule
//! network is a small closed set (operator names, relation tags), so the
//! table only ever holds a few dozen entries.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use reopt_common::FxHashMap;

use crate::error::DataflowError;

/// Upper bound on distinct interned strings. Defaults to the id space
/// (`u32::MAX`); tests lower it to exercise the exhaustion path without
/// interning four billion strings.
static CAPACITY: AtomicU32 = AtomicU32::new(u32::MAX);

/// Overrides the interner's capacity (test hook for the exhaustion
/// path). The table is process-global, so callers must restore the
/// previous value — run such tests in their own process (a separate
/// integration-test binary) to avoid starving unrelated tests.
pub fn set_intern_capacity(cap: u32) -> u32 {
    CAPACITY.swap(cap, Ordering::SeqCst)
}

/// An interned string: a dense index into the global symbol table.
/// Equality and hashing are by index; ordering resolves to the
/// underlying strings so `Val` ordering stays lexicographic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    by_str: FxHashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

fn interner() -> MutexGuard<'static, Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER
        .get_or_init(|| {
            Mutex::new(Interner {
                by_str: FxHashMap::default(),
                strings: Vec::new(),
            })
        })
        .lock()
        // The table is append-only and never observably inconsistent,
        // so a panic under the lock (e.g. resolving a fabricated id)
        // must not poison interning for the rest of the process.
        .unwrap_or_else(PoisonError::into_inner)
}

impl Sym {
    /// Interns `s`, returning its symbol (idempotent). Panics on id
    /// exhaustion; use [`Sym::try_intern`] on paths (checkpoint restore,
    /// bulk symbol adoption) that must degrade instead of aborting.
    pub fn intern(s: &str) -> Sym {
        Sym::try_intern(s).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Interns `s`, surfacing id exhaustion as
    /// [`DataflowError::StateCorruption`] so callers can route it
    /// through the rollback/degradation ladder instead of aborting the
    /// process.
    pub fn try_intern(s: &str) -> Result<Sym, DataflowError> {
        let mut t = interner();
        if let Some(&id) = t.by_str.get(s) {
            return Ok(Sym(id));
        }
        // Ids are packed into 32-bit words inside tuples; guard the
        // cast so an id can never silently wrap near `u32::MAX`.
        let next = t.strings.len();
        let cap = CAPACITY.load(Ordering::SeqCst);
        let id = u32::try_from(next)
            .ok()
            .filter(|&id| id < cap)
            .ok_or_else(|| {
                DataflowError::StateCorruption(format!(
                    "interner exhausted: {next} distinct strings at capacity {cap}"
                ))
            })?;
        let arc: Arc<str> = Arc::from(s);
        t.strings.push(arc.clone());
        t.by_str.insert(arc, id);
        Ok(Sym(id))
    }

    /// The interned string. Panics on an id that was never produced by
    /// [`Sym::intern`] (a fabricated index must not alias a symbol).
    pub fn resolve(self) -> Arc<str> {
        let t = interner();
        t.strings
            .get(self.0 as usize)
            .unwrap_or_else(|| panic!("symbol id {} was never interned", self.0))
            .clone()
    }

    /// The raw table index (the word stored in packed tuples).
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Reconstructs a symbol from a packed word. The id must have come
    /// from [`Sym::id`]; resolution panics on a fabricated index.
    #[inline]
    pub fn from_id(id: u32) -> Sym {
        Sym(id)
    }

    /// A snapshot of the whole symbol table in id order (index =
    /// [`Sym::id`]). Checkpoints embed it so a restore into a *fresh
    /// process* — whose interner assigned different ids — can remap
    /// every serialized symbol by re-interning the strings.
    pub fn table_snapshot() -> Vec<Arc<str>> {
        interner().strings.clone()
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    /// Lexicographic on the underlying strings (one lock for both
    /// resolutions); the common equal case short-circuits on the id.
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            return std::cmp::Ordering::Equal;
        }
        let t = interner();
        t.strings[self.0 as usize].cmp(&t.strings[other.0 as usize])
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::intern("hash-join");
        let b = Sym::intern("hash-join");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(&*a.resolve(), "hash-join");
        assert_eq!(Sym::from_id(a.id()), a);
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Sym::intern("scan");
        let b = Sym::intern("join");
        assert_ne!(a, b);
    }

    #[test]
    fn ordering_is_lexicographic_not_by_id() {
        // Intern in reverse lexicographic order: ids ascend, strings
        // descend — ordering must follow the strings.
        let z = Sym::intern("zzz-order-test");
        let a = Sym::intern("aaa-order-test");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_resolves() {
        let s = Sym::intern("local-scan");
        assert_eq!(s.to_string(), "local-scan");
    }
}
