//! Aggregation state with "next-best" recovery.
//!
//! Paper §4.1: "the aggregate operator preserves all the computed, even
//! pruned PlanCost tuples ..., so it can find the 'next best' value even
//! if the minimum is removed. In our implementation we use a priority
//! queue to store the sorted tuples." [`OrderedMultiset`] is that
//! priority queue: an ordered multiset of values with counted
//! multiplicities (negative counts tolerated, invisible).

use std::collections::BTreeMap;

use crate::value::Val;

/// Which aggregate a `GroupAgg` computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggKind {
    Min,
    Max,
    Sum,
    Count,
}

/// An ordered, counted multiset of values.
#[derive(Clone, Debug, Default)]
pub struct OrderedMultiset {
    values: BTreeMap<Val, i64>,
    /// Σ value·count for Sum, maintained incrementally (Int only).
    sum: i64,
    /// Σ count (visible multiplicity total, may transiently dip below 0).
    total: i64,
}

impl OrderedMultiset {
    pub fn new() -> OrderedMultiset {
        OrderedMultiset::default()
    }

    /// Adds `count` occurrences of `v` (negative = deletions).
    pub fn update(&mut self, v: Val, count: i64) {
        if let Val::Int(i) = v {
            self.sum += i * count;
        }
        self.total += count;
        let entry = self.values.entry(v).or_insert(0);
        *entry += count;
        if *entry == 0 {
            self.values.remove(&v);
        }
    }

    /// Smallest visible value — the current MIN aggregate.
    pub fn min(&self) -> Option<&Val> {
        self.values.iter().find(|(_, &c)| c > 0).map(|(v, _)| v)
    }

    /// Largest visible value — the current MAX aggregate.
    pub fn max(&self) -> Option<&Val> {
        self.values
            .iter()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(v, _)| v)
    }

    /// The smallest visible value strictly greater than `v` — the
    /// "second-from-minimum" retrieval of §4.1.
    pub fn next_above(&self, v: &Val) -> Option<&Val> {
        use std::ops::Bound;
        self.values
            .range((Bound::Excluded(*v), Bound::Unbounded))
            .find(|(_, &c)| c > 0)
            .map(|(val, _)| val)
    }

    pub fn count_of(&self, v: &Val) -> i64 {
        self.values.get(v).copied().unwrap_or(0)
    }

    /// Every stored value with its raw count — including transiently
    /// negative ones — in value order (checkpoint serialization;
    /// restore re-feeds them through [`OrderedMultiset::update`]).
    pub fn entries(&self) -> impl Iterator<Item = (&Val, i64)> {
        self.values.iter().map(|(v, c)| (v, *c))
    }

    /// Total visible multiplicity (COUNT aggregate).
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Integer sum (SUM aggregate).
    pub fn sum(&self) -> i64 {
        self.sum
    }

    pub fn is_visible_empty(&self) -> bool {
        self.min().is_none()
    }

    /// Current aggregate value for `kind`, if defined.
    pub fn aggregate(&self, kind: AggKind) -> Option<Val> {
        match kind {
            AggKind::Min => self.min().cloned(),
            AggKind::Max => self.max().cloned(),
            AggKind::Sum => (self.total > 0).then_some(Val::Int(self.sum)),
            AggKind::Count => (self.total > 0).then_some(Val::Int(self.total)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_with_next_best_recovery() {
        let mut m = OrderedMultiset::new();
        m.update(Val::cost(3.0), 1);
        m.update(Val::cost(1.0), 1);
        m.update(Val::cost(2.0), 1);
        assert_eq!(m.min(), Some(&Val::cost(1.0)));
        // Delete the minimum: the second-from-minimum takes over.
        m.update(Val::cost(1.0), -1);
        assert_eq!(m.min(), Some(&Val::cost(2.0)));
        assert_eq!(m.next_above(&Val::cost(2.0)), Some(&Val::cost(3.0)));
    }

    #[test]
    fn duplicate_multiplicities() {
        let mut m = OrderedMultiset::new();
        m.update(Val::Int(5), 2);
        m.update(Val::Int(5), -1);
        assert_eq!(m.min(), Some(&Val::Int(5)));
        m.update(Val::Int(5), -1);
        assert_eq!(m.min(), None);
    }

    #[test]
    fn negative_counts_are_invisible() {
        let mut m = OrderedMultiset::new();
        m.update(Val::Int(1), -1); // out-of-order deletion
        m.update(Val::Int(2), 1);
        assert_eq!(m.min(), Some(&Val::Int(2)));
        m.update(Val::Int(1), 1); // matching insertion arrives
        assert_eq!(m.min(), Some(&Val::Int(2))); // 1 netted out to zero
    }

    #[test]
    fn sum_and_count() {
        let mut m = OrderedMultiset::new();
        m.update(Val::Int(10), 1);
        m.update(Val::Int(5), 2);
        assert_eq!(m.aggregate(AggKind::Sum), Some(Val::Int(20)));
        assert_eq!(m.aggregate(AggKind::Count), Some(Val::Int(3)));
        m.update(Val::Int(5), -2);
        m.update(Val::Int(10), -1);
        assert_eq!(m.aggregate(AggKind::Sum), None);
        assert_eq!(m.aggregate(AggKind::Count), None);
    }

    #[test]
    fn max_mirrors_min() {
        let mut m = OrderedMultiset::new();
        for v in [4, 9, 7] {
            m.update(Val::Int(v), 1);
        }
        assert_eq!(m.max(), Some(&Val::Int(9)));
        m.update(Val::Int(9), -1);
        assert_eq!(m.max(), Some(&Val::Int(7)));
    }
}
