pub mod harness;
