//! Experiment harness: one function per table/figure of the paper's §5.
//!
//! Each function runs the experiment at laptop scale and returns plain
//! data records; `src/bin/figures.rs` renders them as the paper's rows
//! and series. Timings are medians over several runs. Absolute numbers
//! differ from the paper's 2006-era testbed; the reproduction targets
//! are the *shapes*: who wins, by what factor, where crossovers fall.

use std::time::{Duration, Instant};

use reopt_aqp::{run_partitions, AqpConfig, AqpDriver, ReoptMode, StatsMode};
use reopt_baselines::{full_space_size, optimize_volcano};
use reopt_catalog::Catalog;
use reopt_core::{IncrementalOptimizer, PruningConfig};
use reopt_cost::{CostContext, ParamDelta};
use reopt_exec::Database;
use reopt_expr::{JoinGraph, LeafId, QuerySpec};
use reopt_workloads::{fig5_edge_labels, seg_toll_query, LinearRoadGen, QueryId, TpchGen};

/// The ratio sweep used by Figs 5 and 8.
pub const RATIOS: [f64; 7] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Medians over this many repetitions.
const REPS: usize = 5;

fn median_time(mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Default workload scale for the optimizer experiments.
pub fn default_tpch() -> TpchGen {
    TpchGen {
        sf: 0.002,
        zipf_theta: 0.0,
        seed: 7,
        buckets: 32,
    }
}

// ---------------------------------------------------------------- Fig 4

/// One bar group of Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    pub query: &'static str,
    pub volcano: Duration,
    pub system_r: Duration,
    pub evita_raced: Duration,
    pub declarative: Duration,
    /// (plan-table pruning ratio, alternative pruning ratio)
    pub volcano_pruning: (f64, f64),
    pub evita_pruning: (f64, f64),
    pub declarative_pruning: (f64, f64),
}

/// Figure 4: initial optimization across optimizer architectures.
pub fn fig4(catalog: &Catalog) -> Vec<Fig4Row> {
    QueryId::figure4_suite()
        .into_iter()
        .map(|qid| {
            let q = qid.build(catalog);
            let g = JoinGraph::new(&q);
            let (total_groups, total_alts) = full_space_size(&q, &g);
            let volcano = median_time(|| {
                let mut ctx = CostContext::new(catalog, &q);
                let _ = optimize_volcano(&q, &g, &mut ctx);
            });
            let system_r = median_time(|| {
                let mut ctx = CostContext::new(catalog, &q);
                let _ = reopt_baselines::optimize_system_r(&q, &g, &mut ctx);
            });
            let declarative_run = |cfg: PruningConfig| {
                let time = median_time(|| {
                    let mut opt = IncrementalOptimizer::new(catalog, q.clone(), cfg);
                    let _ = opt.optimize();
                });
                let mut opt = IncrementalOptimizer::new(catalog, q.clone(), cfg);
                let out = opt.optimize();
                (
                    time,
                    (
                        out.state.group_pruning_ratio(),
                        out.state.alt_pruning_ratio(),
                    ),
                )
            };
            let (evita_raced, evita_pruning) = declarative_run(PruningConfig::evita_raced());
            let (declarative, declarative_pruning) = declarative_run(PruningConfig::all());
            let mut ctx = CostContext::new(catalog, &q);
            let v = optimize_volcano(&q, &g, &mut ctx);
            let volcano_pruning = (
                1.0 - v.metrics.groups_created as f64 / total_groups as f64,
                v.metrics.alts_pruned as f64 / total_alts as f64,
            );
            Fig4Row {
                query: qid.name(),
                volcano,
                system_r,
                evita_raced,
                declarative,
                volcano_pruning,
                evita_pruning,
                declarative_pruning,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig 5

/// One point of Figure 5: re-optimizing Q5 after scaling one join
/// expression's selectivity.
#[derive(Clone, Debug)]
pub struct Fig5Point {
    pub label: &'static str,
    pub ratio: f64,
    /// Incremental re-optimization time / Volcano-from-scratch time.
    pub time_vs_volcano: f64,
    pub group_update_ratio: f64,
    pub alt_update_ratio: f64,
}

/// Figure 5: incremental re-optimization under synthetic join
/// selectivity changes on each of Q5's expressions A–E.
pub fn fig5(catalog: &Catalog) -> Vec<Fig5Point> {
    let q = QueryId::Q5.build(catalog);
    let g = JoinGraph::new(&q);
    let mut out = Vec::new();
    for (label, edge) in fig5_edge_labels() {
        for ratio in RATIOS {
            let deltas = [ParamDelta::EdgeSelectivity(edge, ratio)];
            // Incremental path.
            let mut opt = IncrementalOptimizer::new(catalog, q.clone(), PruningConfig::all());
            opt.optimize();
            let t0 = Instant::now();
            let res = opt.reoptimize(&deltas);
            let inc = t0.elapsed();
            // From-scratch comparator on identical parameters.
            let volcano = median_time(|| {
                let mut ctx = CostContext::new(catalog, &q);
                ctx.apply(&deltas);
                let _ = optimize_volcano(&q, &g, &mut ctx);
            });
            out.push(Fig5Point {
                label,
                ratio,
                time_vs_volcano: inc.as_secs_f64() / volcano.as_secs_f64().max(1e-12),
                group_update_ratio: res.run.group_update_ratio(res.state.total_groups),
                alt_update_ratio: res.run.alt_update_ratio(res.state.total_alts),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- Fig 6

/// One round of Figure 6: Q5 re-optimized from real execution feedback
/// over skewed partitions.
#[derive(Clone, Debug)]
pub struct Fig6Point {
    pub round: usize,
    pub time_vs_volcano: f64,
    pub group_update_ratio: f64,
    pub alt_update_ratio: f64,
}

/// Figure 6: updates to costs based on real execution over skewed data.
pub fn fig6() -> Vec<Fig6Point> {
    let gen = TpchGen {
        sf: 0.002,
        zipf_theta: 0.5,
        seed: 13,
        buckets: 32,
    };
    let (catalog, db) = gen.generate();
    let q = QueryId::Q5.build(&catalog);
    let parts = gen.partition(&db, &catalog, 9);
    let reports = run_partitions(&catalog, &q, &parts, PruningConfig::all(), 0.5);
    reports
        .iter()
        .map(|r| Fig6Point {
            round: r.round + 1,
            time_vs_volcano: r.incremental_reopt.as_secs_f64()
                / r.volcano_reopt.as_secs_f64().max(1e-12),
            group_update_ratio: r.run.group_update_ratio(r.state.total_groups),
            alt_update_ratio: r.run.alt_update_ratio(r.state.total_alts),
        })
        .collect()
}

// ---------------------------------------------------------------- Fig 7

/// The ablation configurations of Figs 7/8.
pub fn ablation_configs() -> [(&'static str, PruningConfig); 4] {
    [
        ("AggSel", PruningConfig::aggsel()),
        ("AggSel+RefCount", PruningConfig::aggsel_refcount()),
        ("AggSel+Branch&Bounding", PruningConfig::aggsel_bounding()),
        ("All", PruningConfig::all()),
    ]
}

/// One bar of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    pub query: &'static str,
    pub config: &'static str,
    pub time_vs_volcano: f64,
    pub group_pruning_ratio: f64,
    pub alt_pruning_ratio: f64,
}

/// Figure 7: contribution of each pruning strategy at initial
/// optimization.
pub fn fig7(catalog: &Catalog) -> Vec<Fig7Row> {
    let mut out = Vec::new();
    for qid in QueryId::figure4_suite() {
        let q = qid.build(catalog);
        let g = JoinGraph::new(&q);
        let volcano = median_time(|| {
            let mut ctx = CostContext::new(catalog, &q);
            let _ = optimize_volcano(&q, &g, &mut ctx);
        });
        for (name, cfg) in ablation_configs() {
            let time = median_time(|| {
                let mut opt = IncrementalOptimizer::new(catalog, q.clone(), cfg);
                let _ = opt.optimize();
            });
            let mut opt = IncrementalOptimizer::new(catalog, q.clone(), cfg);
            let state = opt.optimize().state;
            out.push(Fig7Row {
                query: qid.name(),
                config: name,
                time_vs_volcano: time.as_secs_f64() / volcano.as_secs_f64().max(1e-12),
                group_pruning_ratio: state.group_pruning_ratio(),
                alt_pruning_ratio: state.alt_pruning_ratio(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- Fig 8

/// One point of Figure 8.
#[derive(Clone, Debug)]
pub struct Fig8Point {
    pub config: &'static str,
    pub ratio: f64,
    pub time_vs_volcano: f64,
    pub group_pruning_ratio: f64,
    pub alt_pruning_ratio: f64,
}

/// Figure 8: pruning-technique ablation during incremental
/// re-optimization of Q5 when Orders' scan cost is updated.
pub fn fig8(catalog: &Catalog) -> Vec<Fig8Point> {
    let q = QueryId::Q5.build(catalog);
    let g = JoinGraph::new(&q);
    // Orders is leaf 3 in the Q5 builder (region, nation, customer,
    // orders, lineitem, supplier).
    let orders = LeafId(3);
    let mut out = Vec::new();
    for (name, cfg) in ablation_configs() {
        for ratio in RATIOS {
            let deltas = [ParamDelta::LeafScanCost(orders, ratio)];
            let mut opt = IncrementalOptimizer::new(catalog, q.clone(), cfg);
            opt.optimize();
            let t0 = Instant::now();
            let res = opt.reoptimize(&deltas);
            let inc = t0.elapsed();
            let volcano = median_time(|| {
                let mut ctx = CostContext::new(catalog, &q);
                ctx.apply(&deltas);
                let _ = optimize_volcano(&q, &g, &mut ctx);
            });
            out.push(Fig8Point {
                config: name,
                ratio,
                time_vs_volcano: inc.as_secs_f64() / volcano.as_secs_f64().max(1e-12),
                group_pruning_ratio: res.state.group_pruning_ratio(),
                alt_pruning_ratio: res.state.alt_pruning_ratio(),
            });
        }
    }
    out
}

// ------------------------------------------------------------- Fig 9/10

/// Stream workload for the adaptive experiments.
pub fn default_stream() -> (Catalog, QuerySpec, LinearRoadGen) {
    let mut c = Catalog::new();
    let mut gen = LinearRoadGen::new(11);
    gen.rate = 40.0;
    gen.n_cars = 400;
    gen.n_segments = 25;
    gen.register(&mut c);
    let q = seg_toll_query(&c);
    (c, q, gen)
}

/// One slice of Figure 9.
#[derive(Clone, Debug)]
pub struct Fig9Point {
    pub slice: usize,
    pub incremental: Duration,
    pub from_scratch: Duration,
}

/// Figure 9: per-slice re-optimization time, incremental vs Tukwila-style
/// from-scratch, over the Linear Road stream.
pub fn fig9(slices: usize, slice_dur: f64) -> Vec<Fig9Point> {
    let (c, q, gen0) = default_stream();
    let mut inc_gen = gen0.clone();
    let mut scr_gen = gen0;
    let mut inc = AqpDriver::new(&c, q.clone(), AqpConfig::default());
    let mut scr = AqpDriver::new(
        &c,
        q,
        AqpConfig {
            mode: ReoptMode::FromScratch,
            ..Default::default()
        },
    );
    (0..slices)
        .map(|i| {
            let t = i as f64 * slice_dur;
            let a = inc.run_slice(&inc_gen.slice(t, slice_dur));
            let b = scr.run_slice(&scr_gen.slice(t, slice_dur));
            Fig9Point {
                slice: i + 1,
                incremental: a.reopt_time,
                from_scratch: b.reopt_time,
            }
        })
        .collect()
}

/// One slice of Figure 10.
#[derive(Clone, Debug)]
pub struct Fig10Point {
    pub slice: usize,
    pub bad_plan: Duration,
    pub good_plan: Duration,
    pub aqp_cumulative: Duration,
    pub aqp_non_cumulative: Duration,
}

/// Figure 10: per-slice execution time — static bad plan, static good
/// plan, and the two adaptive variants.
///
/// The static baselines are oracle-selected: a set of candidate plans
/// (cold-start, adaptive-converged, and several produced under
/// perturbed statistics) is *measured* over a warm-up prefix of the
/// stream, and the fastest/slowest become the "good"/"bad" single
/// plans. This matches the paper's framing — the good plan is the one
/// the optimizer "would pick given complete information" — while
/// staying honest about residual cost-model/executor divergence (see
/// EXPERIMENTS.md).
pub fn fig10(slices: usize, slice_dur: f64) -> Vec<Fig10Point> {
    let (c, q, gen0) = default_stream();
    let mut candidates: Vec<reopt_expr::PlanNode> = Vec::new();
    // Cold-start plan (initial catalog estimates).
    {
        let mut opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        candidates.push(opt.optimize().plan);
    }
    // Adaptive-converged plan after a warm-up pass.
    {
        let mut driver = AqpDriver::new(&c, q.clone(), AqpConfig::default());
        let mut gen = gen0.clone();
        for i in 0..slices {
            driver.run_slice(&gen.slice(i as f64 * slice_dur, slice_dur));
        }
        candidates.push(driver.current_plan().clone());
    }
    // Plans chosen under perturbed statistics.
    for factors in [
        [0.001, 500.0, 500.0, 0.01, 1.0],
        [100.0, 0.01, 0.01, 100.0, 1.0],
        [1.0, 1.0, 200.0, 0.005, 50.0],
    ] {
        let mut opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        opt.optimize();
        let deltas: Vec<ParamDelta> = factors
            .iter()
            .enumerate()
            .map(|(l, &f)| ParamDelta::LeafCardinality(LeafId(l as u32), f))
            .collect();
        candidates.push(opt.reoptimize(&deltas).plan);
    }
    candidates.dedup_by_key(|p| p.fingerprint());
    // Oracle measurement over a warm-up prefix.
    let measure = |plan: &reopt_expr::PlanNode| -> f64 {
        let mut se = reopt_exec::StreamExecutor::new(&q);
        let mut gen = gen0.clone();
        let mut total = 0.0;
        let warmup = (slices / 2).max(4);
        for i in 0..warmup {
            se.ingest(&gen.slice(i as f64 * slice_dur, slice_dur));
            let t = Instant::now();
            se.execute(plan);
            total += t.elapsed().as_secs_f64();
        }
        total
    };
    let measured: Vec<f64> = candidates.iter().map(measure).collect();
    let good_idx = measured
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let bad_idx = measured
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let good_plan = candidates[good_idx].clone();
    let bad_plan = candidates[bad_idx].clone();
    let mk_static = |plan: reopt_expr::PlanNode| {
        let mut d = AqpDriver::new(&c, q.clone(), AqpConfig::default());
        d.pin_plan(plan);
        d
    };
    let mut drivers = [
        (mk_static(bad_plan), gen0.clone()),
        (mk_static(good_plan), gen0.clone()),
        (
            AqpDriver::new(&c, q.clone(), AqpConfig::default()),
            gen0.clone(),
        ),
        (
            AqpDriver::new(
                &c,
                q.clone(),
                AqpConfig {
                    stats: StatsMode::NonCumulative,
                    ..Default::default()
                },
            ),
            gen0,
        ),
    ];
    (0..slices)
        .map(|i| {
            let t = i as f64 * slice_dur;
            let times: Vec<Duration> = drivers
                .iter_mut()
                .map(|(d, gen)| d.run_slice(&gen.slice(t, slice_dur)).exec_time)
                .collect();
            Fig10Point {
                slice: i + 1,
                bad_plan: times[0],
                good_plan: times[1],
                aqp_cumulative: times[2],
                aqp_non_cumulative: times[3],
            }
        })
        .collect()
}

// --------------------------------------------------------------- Table 3

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    pub per_slice: f64,
    pub reopt_time: Duration,
    pub exec_time: Duration,
    pub total_time: Duration,
}

/// Table 3: frequency-of-adaptation sweep over a fixed-length stream.
pub fn table3(stream_seconds: f64, slice_sizes: &[f64]) -> Vec<Table3Row> {
    slice_sizes
        .iter()
        .map(|&dur| {
            let (c, q, mut gen) = default_stream();
            let mut driver = AqpDriver::new(&c, q, AqpConfig::default());
            let slices = (stream_seconds / dur).round() as usize;
            let mut reopt = Duration::ZERO;
            let mut exec = Duration::ZERO;
            for i in 0..slices {
                let r = driver.run_slice(&gen.slice(i as f64 * dur, dur));
                reopt += r.reopt_time;
                exec += r.exec_time;
            }
            Table3Row {
                per_slice: dur,
                reopt_time: reopt,
                exec_time: exec,
                total_time: reopt + exec,
            }
        })
        .collect()
}

/// Convenience: generate the default TPC-H catalog once.
pub fn tpch_catalog() -> (Catalog, Database) {
    default_tpch().generate()
}
