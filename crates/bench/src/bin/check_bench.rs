//! Bench-regression gate: compares a freshly produced `REOPT_BENCH_JSON`
//! report against a committed baseline and fails (exit 1) if any shared
//! benchmark's median regressed beyond the tolerance.
//!
//! Usage: `check_bench <baseline.json> <current.json> [tolerance]`
//! where `tolerance` is a fraction (default 0.25 = 25%). On top of the
//! relative tolerance, a small absolute slack ([`ABS_SLACK_NS`]) is
//! granted so microsecond-scale medians — whose run-to-run noise on a
//! shared runner easily exceeds any sane percentage — cannot flake the
//! gate; ms-scale medians are unaffected. Benchmarks present in the
//! baseline but missing from the current run fail the gate (a silently
//! dropped bench is not a pass), and an entire baseline *group* with no
//! current entries fails with its own loud message — that shape means a
//! bench binary never ran at all. New benchmarks are reported and
//! ignored.

use std::process::ExitCode;

/// Absolute regression slack: a median must exceed both the relative
/// tolerance *and* this many nanoseconds over baseline to fail.
const ABS_SLACK_NS: f64 = 2_000.0;

/// Parses the criterion stand-in's report format: one
/// `{"name": "...", "median_ns": N}` object per line.
fn parse_report(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name_at) = line.find("\"name\":") else {
            continue;
        };
        let rest = &line[name_at + 7..];
        let open = rest.find('"').ok_or_else(|| format!("bad line: {line}"))?;
        let rest = &rest[open + 1..];
        let close = rest.find('"').ok_or_else(|| format!("bad line: {line}"))?;
        let name = rest[..close].to_string();
        let med_at = line
            .find("\"median_ns\":")
            .ok_or_else(|| format!("no median on line: {line}"))?;
        let digits: String = line[med_at + 12..]
            .chars()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_ascii_digit())
            .collect();
        let ns: f64 = digits.parse().map_err(|e| format!("bad median ({e}): {line}"))?;
        out.push((name, ns));
    }
    if out.is_empty() {
        return Err(format!("no benchmark entries found in {path}"));
    }
    Ok(out)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (baseline_path, current_path) = match args.as_slice() {
        [b, c] | [b, c, _] => (b.as_str(), c.as_str()),
        _ => {
            return Err("usage: check_bench <baseline.json> <current.json> [tolerance]".into())
        }
    };
    let tolerance: f64 = match args.get(2) {
        Some(t) => t.parse().map_err(|e| format!("bad tolerance: {e}"))?,
        None => 0.25,
    };
    let baseline = parse_report(baseline_path)?;
    let current = parse_report(current_path)?;
    let mut ok = true;
    // A whole baseline *group* (the name's prefix up to the first '/',
    // i.e. one bench binary) absent from the current report means the
    // binary never ran — a harness wiring failure, not a set of
    // individually dropped benchmarks. Fail loudly and by name so the
    // gate can't quietly pass on a partial run.
    let group = |name: &str| name.split('/').next().unwrap_or(name).to_string();
    let current_groups: std::collections::BTreeSet<String> =
        current.iter().map(|(n, _)| group(n)).collect();
    for g in baseline
        .iter()
        .map(|(n, _)| group(n))
        .collect::<std::collections::BTreeSet<_>>()
    {
        if !current_groups.contains(&g) {
            eprintln!(
                "bench gate: baseline group '{g}' has no entries in the \
                 current report — did its bench binary run?"
            );
            ok = false;
        }
    }
    println!(
        "{:<55} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "current", "ratio"
    );
    for (name, base_ns) in &baseline {
        match current.iter().find(|(n, _)| n == name) {
            None => {
                println!("{name:<55} {base_ns:>12.0} {:>12} {:>8}  MISSING", "-", "-");
                ok = false;
            }
            Some((_, cur_ns)) => {
                let ratio = cur_ns / base_ns;
                let verdict = if *cur_ns > base_ns * (1.0 + tolerance) + ABS_SLACK_NS {
                    ok = false;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "{name:<55} {base_ns:>12.0} {cur_ns:>12.0} {ratio:>8.2}  {verdict}"
                );
            }
        }
    }
    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<55} (new, not in baseline — ignored)");
        }
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => {
            println!("bench gate: all medians within tolerance");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("bench gate: regression detected");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("check_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
