//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! Usage: `cargo run --release -p reopt-bench --bin figures -- [exp...]`
//! where `exp` is any of `fig4 fig5 fig6 fig7 fig8 fig9 fig10 table3 all`
//! (default: `all`).

use reopt_bench::harness::{self, RATIOS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| {
        args.is_empty() || args.iter().any(|a| a == name || a == "all")
    };
    let (catalog, _db) = harness::tpch_catalog();
    if want("fig4") {
        fig4(&catalog);
    }
    if want("fig5") {
        fig5(&catalog);
    }
    if want("fig6") {
        fig6();
    }
    if want("fig7") {
        fig7(&catalog);
    }
    if want("fig8") {
        fig8(&catalog);
    }
    if want("fig9") {
        fig9();
    }
    if want("fig10") {
        fig10();
    }
    if want("table3") {
        table3();
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn fig4(catalog: &reopt_catalog::Catalog) {
    header("Figure 4: initial query optimization across optimizer architectures");
    println!(
        "{:<8} {:>12} {:>10} {:>11} {:>11} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "query",
        "volcano(us)",
        "sysR/volc",
        "evita/volc",
        "decl/volc",
        "prunG:vol",
        "prunG:ER",
        "prunG:dec",
        "prunA:vol",
        "prunA:ER",
        "prunA:dec"
    );
    for r in harness::fig4(catalog) {
        let v = r.volcano.as_secs_f64();
        println!(
            "{:<8} {:>12.0} {:>10.2} {:>11.2} {:>11.2} | {:>9.2} {:>9.2} {:>9.2} | {:>9.2} {:>9.2} {:>9.2}",
            r.query,
            v * 1e6,
            r.system_r.as_secs_f64() / v,
            r.evita_raced.as_secs_f64() / v,
            r.declarative.as_secs_f64() / v,
            r.volcano_pruning.0,
            r.evita_pruning.0,
            r.declarative_pruning.0,
            r.volcano_pruning.1,
            r.evita_pruning.1,
            r.declarative_pruning.1,
        );
    }
}

fn fig5(catalog: &reopt_catalog::Catalog) {
    header("Figure 5: incremental re-optimization of Q5 — join selectivity changes");
    println!(
        "{:<18} {}",
        "series",
        RATIOS
            .iter()
            .map(|r| format!("{r:>8}"))
            .collect::<String>()
    );
    let points = harness::fig5(catalog);
    for metric in ["time/volcano", "updG", "updA"] {
        println!("-- {metric}");
        for (label, _) in reopt_workloads::fig5_edge_labels() {
            let series: String = points
                .iter()
                .filter(|p| p.label == label)
                .map(|p| {
                    let v = match metric {
                        "time/volcano" => p.time_vs_volcano,
                        "updG" => p.group_update_ratio,
                        _ => p.alt_update_ratio,
                    };
                    format!("{v:>8.3}")
                })
                .collect();
            println!("{label:<18} {series}");
        }
    }
}

fn fig6() {
    header("Figure 6: incremental re-optimization of Q5 — real execution over skewed data");
    println!(
        "{:<6} {:>14} {:>10} {:>10}",
        "round", "time/volcano", "updG", "updA"
    );
    for p in harness::fig6() {
        println!(
            "{:<6} {:>14.3} {:>10.3} {:>10.3}",
            p.round, p.time_vs_volcano, p.group_update_ratio, p.alt_update_ratio
        );
    }
}

fn fig7(catalog: &reopt_catalog::Catalog) {
    header("Figure 7: pruning-strategy ablation at initial optimization");
    println!(
        "{:<8} {:<24} {:>12} {:>8} {:>8}",
        "query", "config", "time/volcano", "prunG", "prunA"
    );
    for r in harness::fig7(catalog) {
        println!(
            "{:<8} {:<24} {:>12.2} {:>8.2} {:>8.2}",
            r.query, r.config, r.time_vs_volcano, r.group_pruning_ratio, r.alt_pruning_ratio
        );
    }
}

fn fig8(catalog: &reopt_catalog::Catalog) {
    header("Figure 8: ablation during incremental re-optimization (Orders scan cost)");
    println!(
        "{:<24} {:>8} {:>14} {:>8} {:>8}",
        "config", "ratio", "time/volcano", "prunG", "prunA"
    );
    for p in harness::fig8(catalog) {
        println!(
            "{:<24} {:>8} {:>14.3} {:>8.2} {:>8.2}",
            p.config, p.ratio, p.time_vs_volcano, p.group_pruning_ratio, p.alt_pruning_ratio
        );
    }
}

fn fig9() {
    header("Figure 9: per-slice re-optimization time (ms), incremental vs from-scratch");
    println!("{:<6} {:>14} {:>14}", "slice", "incremental", "non-inc");
    for p in harness::fig9(60, 2.0) {
        if p.slice % 5 == 0 || p.slice <= 5 {
            println!(
                "{:<6} {:>14.3} {:>14.3}",
                p.slice,
                p.incremental.as_secs_f64() * 1e3,
                p.from_scratch.as_secs_f64() * 1e3
            );
        }
    }
}

fn fig10() {
    header("Figure 10: per-slice execution time (ms)");
    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>14}",
        "slice", "bad", "good", "aqp-cumul", "aqp-noncumul"
    );
    let points = harness::fig10(40, 3.0);
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    for p in &points {
        if p.slice % 4 == 0 || p.slice <= 4 {
            println!(
                "{:<6} {:>10.2} {:>10.2} {:>12.2} {:>14.2}",
                p.slice,
                ms(p.bad_plan),
                ms(p.good_plan),
                ms(p.aqp_cumulative),
                ms(p.aqp_non_cumulative)
            );
        }
    }
    let sum = |f: fn(&harness::Fig10Point) -> std::time::Duration| -> f64 {
        points.iter().map(|p| f(p).as_secs_f64() * 1e3).sum()
    };
    println!(
        "{:<6} {:>10.1} {:>10.1} {:>12.1} {:>14.1}",
        "TOTAL",
        sum(|p| p.bad_plan),
        sum(|p| p.good_plan),
        sum(|p| p.aqp_cumulative),
        sum(|p| p.aqp_non_cumulative)
    );
}

fn table3() {
    header("Table 3: frequency of adaptation (stream of 20 virtual seconds)");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "per-slice", "reopt(ms)", "exec(ms)", "total(ms)"
    );
    for r in harness::table3(20.0, &[1.0, 5.0, 10.0]) {
        println!(
            "{:<10} {:>14.2} {:>14.2} {:>14.2}",
            format!("{}s", r.per_slice),
            r.reopt_time.as_secs_f64() * 1e3,
            r.exec_time.as_secs_f64() * 1e3,
            r.total_time.as_secs_f64() * 1e3
        );
    }
}
