//! Criterion micro-benchmarks for incremental re-optimization — the
//! timing substrate behind Figures 5, 6 and 8. Each iteration alternates
//! a parameter between two values so every `reoptimize` call performs
//! real propagation work.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reopt_baselines::optimize_volcano;
use reopt_bench::harness::default_tpch;
use reopt_core::{IncrementalOptimizer, PruningConfig};
use reopt_cost::{CostContext, ParamDelta};
use reopt_expr::{JoinGraph, LeafId};
use reopt_workloads::{fig5_edge_labels, QueryId};

fn incremental_reopt(c: &mut Criterion) {
    let (catalog, _db) = default_tpch().generate();
    let q = QueryId::Q5.build(&catalog);
    let g = JoinGraph::new(&q);
    let mut group = c.benchmark_group("incremental_reopt_q5");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    // One series per Figure 5 expression.
    for (label, edge) in fig5_edge_labels() {
        group.bench_function(BenchmarkId::new("edge_selectivity", label), |b| {
            let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
            opt.optimize();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                let f = if flip { 2.0 } else { 1.0 };
                opt.reoptimize(&[ParamDelta::EdgeSelectivity(edge, f)]).cost
            })
        });
    }
    // The Figure 8 change class: Orders scan cost.
    group.bench_function("orders_scan_cost", |b| {
        let mut opt = IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
        opt.optimize();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let f = if flip { 4.0 } else { 1.0 };
            opt.reoptimize(&[ParamDelta::LeafScanCost(LeafId(3), f)]).cost
        })
    });
    // Comparator: a full Volcano run on the perturbed parameters.
    group.bench_function("volcano_from_scratch", |b| {
        let mut ctx = CostContext::new(&catalog, &q);
        ctx.apply(&[ParamDelta::EdgeSelectivity(fig5_edge_labels()[2].1, 2.0)]);
        b.iter(|| optimize_volcano(&q, &g, &mut ctx).cost)
    });
    group.finish();
}

criterion_group!(benches, incremental_reopt);
criterion_main!(benches);
