//! Head-to-head benchmark of the two executions of the same declarative
//! optimizer specification:
//!
//! - `declarative`: the rule network compiled onto the generic batched
//!   dataflow substrate (`reopt_bridge::DataflowOptimizer`) — the §4
//!   "optimizer maintained as a view" story, executed literally;
//! - `hand_rolled`: the typed delta-propagation engine
//!   (`reopt_core::IncrementalOptimizer`) with no pruning — the same
//!   semantics the dataflow network computes;
//! - `hand_rolled_pruned`: the engine at its headline configuration
//!   (all pruning strategies), the paper's §5 comparison point.
//!
//! Scenarios: initial optimization (network construction + evaluation)
//! and one incremental flip per §4 update kind (scan cost, join
//! selectivity, leaf cardinality). Results land in the committed
//! `BENCH_<pr>.json` baseline via `REOPT_BENCH_JSON`; CI gates
//! regressions against it with `check_bench`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_bridge::DataflowOptimizer;
use reopt_core::fixtures::{chain_query, fixture_catalog};
use reopt_core::{IncrementalOptimizer, PruningConfig};
use reopt_cost::ParamDelta;
use reopt_expr::{EdgeId, LeafId};

fn optimizer_dataflow(c: &mut Criterion) {
    let catalog = fixture_catalog();
    let q = chain_query(&catalog, 5);
    let mut group = c.benchmark_group("optimizer_dataflow");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    group.bench_function("initial_chain5/declarative", |b| {
        b.iter(|| {
            let mut opt = DataflowOptimizer::new(&catalog, q.clone());
            opt.optimize().cost
        })
    });
    group.bench_function("initial_chain5/hand_rolled", |b| {
        b.iter(|| {
            let mut opt =
                IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::none());
            opt.optimize().cost
        })
    });
    group.bench_function("initial_chain5/hand_rolled_pruned", |b| {
        b.iter(|| {
            let mut opt =
                IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
            opt.optimize().cost
        })
    });

    // One flip per §4 update kind: alternating between two factor
    // values so every reoptimize performs real propagation.
    type DeltaFor = fn(bool) -> ParamDelta;
    let scenarios: [(&str, DeltaFor); 3] = [
        ("reopt_scan_cost", |flip| {
            ParamDelta::LeafScanCost(LeafId(4), if flip { 4.0 } else { 1.0 })
        }),
        ("reopt_selectivity", |flip| {
            ParamDelta::EdgeSelectivity(EdgeId(1), if flip { 2.0 } else { 1.0 })
        }),
        ("reopt_cardinality", |flip| {
            ParamDelta::LeafCardinality(LeafId(2), if flip { 2.0 } else { 1.0 })
        }),
    ];
    for (name, delta) in scenarios {
        group.bench_function(format!("{name}/declarative"), |b| {
            let mut opt = DataflowOptimizer::new(&catalog, q.clone());
            opt.optimize();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                opt.reoptimize(&[delta(flip)]).cost
            })
        });
        group.bench_function(format!("{name}/hand_rolled"), |b| {
            let mut opt =
                IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::none());
            opt.optimize();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                opt.reoptimize(&[delta(flip)]).cost
            })
        });
        group.bench_function(format!("{name}/hand_rolled_pruned"), |b| {
            let mut opt =
                IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
            opt.optimize();
            let mut flip = false;
            b.iter(|| {
                flip = !flip;
                opt.reoptimize(&[delta(flip)]).cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, optimizer_dataflow);
criterion_main!(benches);
