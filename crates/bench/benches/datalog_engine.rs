//! Criterion micro-benchmarks for the delta-processing dataflow
//! substrate: transitive-closure maintenance and min-view maintenance,
//! the primitive operations the declarative optimizer's rules reduce to.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_datalog::{
    AggKind, Dataflow, Distinct, GroupAgg, HashJoin, Map, NodeId, SinkId, Union,
};
use reopt_datalog::value::ints;

fn tc_dataflow() -> (Dataflow, NodeId, SinkId) {
    let mut df = Dataflow::new();
    let edge = df.add_input("edge");
    let union = df.add_op_unwired(Union::new(2));
    df.connect(edge, union, 0);
    let path = df.add_op(Distinct::new(), &[union]);
    let join = df.add_op_unwired(HashJoin::new(vec![1], vec![0]));
    df.connect(path, join, 0);
    df.connect(edge, join, 1);
    let proj = df.add_op(Map::project(vec![0, 3]), &[join]);
    df.connect(proj, union, 1);
    let sink = df.add_sink(path);
    (df, edge, sink)
}

fn datalog_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("datalog_engine");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("transitive_closure_chain_64", |b| {
        b.iter(|| {
            let (mut df, edge, sink) = tc_dataflow();
            for i in 0..64i64 {
                df.insert(edge, ints(&[i, i + 1]));
            }
            df.run().unwrap();
            df.sink(sink).len()
        })
    });
    group.bench_function("tc_incremental_bridge_edge", |b| {
        // Pre-build two chains, then repeatedly insert/delete a bridge.
        let (mut df, edge, sink) = tc_dataflow();
        for i in 0..20i64 {
            df.insert(edge, ints(&[i, i + 1]));
            df.insert(edge, ints(&[100 + i, 101 + i]));
        }
        df.run().unwrap();
        let mut present = false;
        b.iter(|| {
            if present {
                df.delete(edge, ints(&[20, 100]));
            } else {
                df.insert(edge, ints(&[20, 100]));
            }
            present = !present;
            df.run().unwrap();
            df.sink(sink).len()
        })
    });
    group.bench_function("tc_batch_churn_32", |b| {
        // A churn slice queued as one batch: delete 32 edges and
        // re-insert them shifted, all before a single `run`. The batched
        // scheduler coalesces the overlap in the queue; the per-delta
        // seed replayed every retraction cascade.
        let (mut df, edge, sink) = tc_dataflow();
        for i in 0..64i64 {
            df.insert(edge, ints(&[i, i + 1]));
        }
        df.run().unwrap();
        let mut phase = 0i64;
        b.iter(|| {
            let (del, ins) = if phase == 0 { (0, 1) } else { (1, 0) };
            phase ^= 1;
            for i in (0..64i64).step_by(2) {
                df.delete(edge, ints(&[i + del, i + del + 1]));
                df.insert(edge, ints(&[i + ins, i + ins + 1]));
            }
            df.run().unwrap();
            df.sink(sink).len()
        })
    });
    group.bench_function("min_view_maintenance_1k", |b| {
        let mut df = Dataflow::new();
        let costs = df.add_input("costs");
        let agg = df.add_op(GroupAgg::new(vec![0], 1, AggKind::Min), &[costs]);
        let sink = df.add_sink(agg);
        for i in 0..1000i64 {
            df.insert(costs, ints(&[i % 50, 1000 - i]));
        }
        df.run().unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            df.insert(costs, ints(&[i % 50, -i]));
            df.delete(costs, ints(&[(i - 1) % 50, -(i - 1)]));
            df.run().unwrap();
            df.sink(sink).len()
        })
    });
    group.finish();
}

criterion_group!(benches, datalog_engine);
criterion_main!(benches);
