//! Durability benchmarks: what a checkpoint costs to cut, and whether
//! restore-plus-WAL-replay actually beats re-optimizing from scratch —
//! the whole point of persisting the incremental state. Gated in CI by
//! `check_bench` against the committed baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_bridge::{AuditMode, DataflowOptimizer};
use reopt_core::fixtures::{chain_query, fixture_catalog};
use reopt_cost::ParamDelta;
use reopt_expr::{EdgeId, LeafId};

fn fresh_dir(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("reopt-bench-ckpt-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn warm_batches() -> Vec<Vec<ParamDelta>> {
    vec![
        vec![ParamDelta::EdgeSelectivity(EdgeId(1), 2.0)],
        vec![ParamDelta::LeafCardinality(LeafId(2), 2.0)],
        vec![ParamDelta::EdgeSelectivity(EdgeId(3), 0.5)],
        vec![ParamDelta::LeafScanCost(LeafId(4), 4.0)],
    ]
}

fn checkpoint_restore(c: &mut Criterion) {
    let catalog = fixture_catalog();
    let q = chain_query(&catalog, 5);
    let batches = warm_batches();
    let mut group = c.benchmark_group("checkpoint_restore");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));

    // Cutting a durable checkpoint of a warmed chain-5 optimizer:
    // serialize the snapshot + atomic tmp/fsync/rename.
    group.bench_function("checkpoint_write/chain5", |b| {
        let dir = fresh_dir("write");
        let mut opt = DataflowOptimizer::new(&catalog, q.clone());
        opt.set_audit_mode(AuditMode::Off);
        opt.set_durable_dir(&dir).unwrap();
        opt.optimize();
        for batch in &batches {
            opt.reoptimize(batch);
        }
        b.iter(|| opt.checkpoint_durable().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Full restart: restore the checkpoint, replay the WAL record past
    // its watermark, pass post-restore verification. The payoff bench —
    // must come in under `from_scratch_initial/chain5` and under the
    // plain `initial_chain5` optimize, or durability buys nothing.
    group.bench_function("restore_replay/chain5", |b| {
        let dir = fresh_dir("restore");
        {
            let mut victim = DataflowOptimizer::new(&catalog, q.clone());
            victim.set_audit_mode(AuditMode::Off);
            victim.set_durable_dir(&dir).unwrap();
            victim.optimize();
            victim.reoptimize(&batches[0]);
            victim.reoptimize(&batches[1]);
            victim.reoptimize(&batches[2]);
            victim.checkpoint_durable().unwrap();
            victim.reoptimize(&batches[3]);
        }
        b.iter(|| {
            let (_opt, out) = DataflowOptimizer::recover(&catalog, q.clone(), &dir).unwrap();
            assert!(out.recovery.errors.is_empty());
            out.cost
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    // The alternative a restart would otherwise pay: build and evaluate
    // the network from nothing, then re-apply the parameter history.
    group.bench_function("from_scratch_initial/chain5", |b| {
        b.iter(|| {
            let mut opt = DataflowOptimizer::new(&catalog, q.clone());
            opt.set_audit_mode(AuditMode::Off);
            opt.optimize();
            for batch in &batches {
                opt.reoptimize(batch);
            }
            opt.best_cost()
        })
    });

    group.finish();
}

criterion_group!(benches, checkpoint_restore);
criterion_main!(benches);
