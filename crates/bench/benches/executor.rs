//! Criterion micro-benchmarks for the execution engine: Q5 over stored
//! TPC-H data and one `SegTollS` stream slice.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use reopt_baselines::optimize_system_r;
use reopt_bench::harness::{default_stream, default_tpch};
use reopt_cost::CostContext;
use reopt_exec::{Executor, StreamExecutor};
use reopt_expr::JoinGraph;
use reopt_workloads::QueryId;

fn executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    // Stored: Q5 over the default TPC-H instance.
    let (catalog, db) = default_tpch().generate();
    let q5 = QueryId::Q5.build(&catalog);
    let g = JoinGraph::new(&q5);
    let mut ctx = CostContext::new(&catalog, &q5);
    let plan = optimize_system_r(&q5, &g, &mut ctx).plan;
    group.bench_function("q5_stored_optimal_plan", |b| {
        b.iter(|| {
            let mut exec = Executor::from_database(&q5, &catalog, &db);
            exec.run(&plan).0.len()
        })
    });
    // Streaming: one SegTollS slice over warm windows.
    let (sc, sq, mut gen) = default_stream();
    let sg = JoinGraph::new(&sq);
    let mut sctx = CostContext::new(&sc, &sq);
    let splan = optimize_system_r(&sq, &sg, &mut sctx).plan;
    let mut se = StreamExecutor::new(&sq);
    for i in 0..10 {
        se.ingest(&gen.slice(i as f64 * 5.0, 5.0));
    }
    group.bench_function("segtolls_slice_warm_windows", |b| {
        b.iter(|| se.execute(&splan).out_rows)
    });
    group.finish();
}

criterion_group!(benches, executor);
criterion_main!(benches);
