//! Criterion micro-benchmarks for initial ("from scratch") optimization
//! — the timing substrate behind Figures 4 and 7.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reopt_baselines::{optimize_system_r, optimize_volcano};
use reopt_bench::harness::default_tpch;
use reopt_core::{IncrementalOptimizer, PruningConfig};
use reopt_cost::CostContext;
use reopt_expr::JoinGraph;
use reopt_workloads::QueryId;

fn initial_optimization(c: &mut Criterion) {
    let (catalog, _db) = default_tpch().generate();
    let mut group = c.benchmark_group("initial_opt");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for qid in QueryId::figure4_suite() {
        let q = qid.build(&catalog);
        let g = JoinGraph::new(&q);
        group.bench_with_input(BenchmarkId::new("volcano", qid.name()), &q, |b, q| {
            b.iter(|| {
                let mut ctx = CostContext::new(&catalog, q);
                optimize_volcano(q, &g, &mut ctx).cost
            })
        });
        group.bench_with_input(BenchmarkId::new("system_r", qid.name()), &q, |b, q| {
            b.iter(|| {
                let mut ctx = CostContext::new(&catalog, q);
                optimize_system_r(q, &g, &mut ctx).cost
            })
        });
        group.bench_with_input(
            BenchmarkId::new("declarative_all", qid.name()),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut opt =
                        IncrementalOptimizer::new(&catalog, q.clone(), PruningConfig::all());
                    opt.optimize().cost
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("declarative_evita", qid.name()),
            &q,
            |b, q| {
                b.iter(|| {
                    let mut opt = IncrementalOptimizer::new(
                        &catalog,
                        q.clone(),
                        PruningConfig::evita_raced(),
                    );
                    opt.optimize().cost
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, initial_optimization);
criterion_main!(benches);
