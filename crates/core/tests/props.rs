//! Property-based tests: random join topologies, random statistics, and
//! random update sequences, cross-checked against the System-R dynamic
//! programming reference (exact by the principle of optimality).

use proptest::prelude::*;

use reopt_baselines::optimize_system_r;
use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};
use reopt_core::{IncrementalOptimizer, PruningConfig};
use reopt_cost::{CostContext, ParamDelta};
use reopt_expr::{EdgeId, JoinGraph, LeafId, QuerySpec};

/// Deterministic description of a random query instance.
#[derive(Clone, Debug)]
struct QueryGen {
    /// Per-leaf row counts (log scale 1..=6 → 10^x rows).
    rows: Vec<u8>,
    /// Per-leaf: has an index on column `a`.
    indexed: Vec<bool>,
    /// For leaf i>0: joins to leaf `parent[i-1] % i` (random tree).
    parent: Vec<u8>,
    /// Close a cycle between leaf 0 and the last leaf.
    cycle: bool,
}

fn query_gen(max_leaves: usize) -> impl Strategy<Value = QueryGen> {
    (2..=max_leaves).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u8..=5, n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<u8>(), n - 1),
            any::<bool>(),
        )
            .prop_map(|(rows, indexed, parent, cycle)| QueryGen {
                rows,
                indexed,
                parent,
                cycle,
            })
    })
}

fn build(gen: &QueryGen) -> (Catalog, QuerySpec) {
    let n = gen.rows.len();
    let mut c = Catalog::new();
    for i in 0..n {
        let rows = 10f64.powi(gen.rows[i] as i32);
        let name = format!("t{i}");
        let indexed = gen.indexed[i];
        c.add_table(
            |id| {
                let mut b = TableBuilder::new(&name).int_col("a").int_col("b");
                if indexed {
                    b = b.index_on("a");
                }
                b.build(id)
            },
            TableStats {
                row_count: rows,
                columns: vec![ColumnStats::uniform_key(rows); 2],
            },
        );
    }
    let mut b = QuerySpec::builder("prop");
    let leaves: Vec<_> = (0..n).map(|i| b.leaf(&c, &format!("t{i}"))).collect();
    for i in 1..n {
        let p = (gen.parent[i - 1] as usize) % i;
        b.join(&c, leaves[p], "b", leaves[i], "a");
    }
    if gen.cycle && n > 2 {
        b.join(&c, leaves[n - 1], "b", leaves[0], "a");
    }
    (c, b.build())
}

/// One random update: kind 0 = edge selectivity, 1 = leaf cardinality,
/// 2 = leaf scan cost. `mag` maps to a factor.
fn deltas_for(q: &QuerySpec, raw: &[(u8, u8, u8)], increase_only: bool) -> Vec<ParamDelta> {
    raw.iter()
        .map(|&(kind, idx, mag)| {
            let factor = if increase_only {
                // 1.0 .. 8.0
                1.0 + (mag as f64 % 8.0)
            } else {
                // 0.125 .. 8.0 in powers of two
                2f64.powi((mag as i32 % 7) - 3)
            };
            match kind % 3 {
                0 if !q.edges.is_empty() => {
                    ParamDelta::EdgeSelectivity(EdgeId(idx as u32 % q.edges.len() as u32), factor)
                }
                1 => ParamDelta::LeafCardinality(LeafId(idx as u32 % q.n_leaves()), factor),
                _ => ParamDelta::LeafScanCost(LeafId(idx as u32 % q.n_leaves()), factor),
            }
        })
        .collect()
}

fn reference(c: &Catalog, q: &QuerySpec, deltas: &[ParamDelta]) -> reopt_common::Cost {
    let g = JoinGraph::new(q);
    let mut ctx = CostContext::new(c, q);
    ctx.apply(deltas);
    optimize_system_r(q, &g, &mut ctx).cost
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Initial optimization is exact under every pruning configuration.
    #[test]
    fn initial_matches_dp(gen in query_gen(6)) {
        let (c, q) = build(&gen);
        let want = reference(&c, &q, &[]);
        for cfg in [
            PruningConfig::none(),
            PruningConfig::evita_raced(),
            PruningConfig::aggsel(),
            PruningConfig::aggsel_refcount(),
            PruningConfig::aggsel_bounding(),
            PruningConfig::all(),
        ] {
            let mut opt = IncrementalOptimizer::new(&c, q.clone(), cfg);
            let out = opt.optimize();
            prop_assert!(out.cost.approx_eq(want),
                "{}: got {:?} want {:?}", cfg.label(), out.cost, want);
            opt.check_invariants().map_err(|e| {
                TestCaseError::fail(format!("{}: {e}", cfg.label()))
            })?;
        }
    }

    /// Increase-only update batches keep every configuration exact
    /// (stale frozen costs are optimistic, so revival triggers are
    /// complete — DESIGN.md §3.3).
    #[test]
    fn increases_stay_exact_under_full_pruning(
        gen in query_gen(5),
        raw in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..4),
    ) {
        let (c, q) = build(&gen);
        let mut opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        opt.optimize();
        let deltas = deltas_for(&q, &raw, true);
        let out = opt.reoptimize(&deltas);
        let want = reference(&c, &q, &deltas);
        prop_assert!(out.cost.approx_eq(want), "got {:?} want {:?}", out.cost, want);
        opt.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// Arbitrary (mixed-direction) update sequences stay exact whenever
    /// state is never reclaimed (no reference counting) …
    #[test]
    fn arbitrary_updates_exact_without_refcounting(
        gen in query_gen(5),
        seq in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..3), 1..4),
    ) {
        let (c, q) = build(&gen);
        for cfg in [PruningConfig::aggsel(), PruningConfig::aggsel_bounding()] {
            let mut opt = IncrementalOptimizer::new(&c, q.clone(), cfg);
            opt.optimize();
            let mut ctx = CostContext::new(&c, &q);
            for raw in &seq {
                let deltas = deltas_for(&q, raw, false);
                let out = opt.reoptimize(&deltas);
                ctx.apply(&deltas);
                let g = JoinGraph::new(&q);
                let want = optimize_system_r(&q, &g, &mut ctx).cost;
                prop_assert!(out.cost.approx_eq(want),
                    "{}: got {:?} want {:?}", cfg.label(), out.cost, want);
                opt.check_invariants().map_err(|e| {
                    TestCaseError::fail(format!("{}: {e}", cfg.label()))
                })?;
            }
        }
    }

    /// … and under full pruning with strict revalidation.
    #[test]
    fn arbitrary_updates_exact_with_strict_revalidation(
        gen in query_gen(5),
        seq in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..3), 1..4),
    ) {
        let (c, q) = build(&gen);
        let mut opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all_strict());
        opt.optimize();
        let mut ctx = CostContext::new(&c, &q);
        for raw in &seq {
            let deltas = deltas_for(&q, raw, false);
            let out = opt.reoptimize(&deltas);
            ctx.apply(&deltas);
            let g = JoinGraph::new(&q);
            let want = optimize_system_r(&q, &g, &mut ctx).cost;
            prop_assert!(out.cost.approx_eq(want),
                "got {:?} want {:?}", out.cost, want);
            opt.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    /// Under full pruning with paper semantics, mixed updates always
    /// produce a *valid* (exactly costed) plan, and one at least as good
    /// as the plan the optimizer previously ran — re-optimization never
    /// regresses the plan in hand.
    #[test]
    fn arbitrary_updates_yield_valid_plans_under_full_pruning(
        gen in query_gen(5),
        seq in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..3), 1..4),
    ) {
        let (c, q) = build(&gen);
        let mut opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        opt.optimize();
        let mut cumulative: Vec<ParamDelta> = Vec::new();
        for raw in &seq {
            let deltas = deltas_for(&q, raw, false);
            cumulative.extend(deltas.iter().copied());
            let out = opt.reoptimize(&deltas);
            // The reported cost is the plan's exact cost under current
            // parameters (the chosen tree is validated/unfrozen).
            let mut ctx = CostContext::new(&c, &q);
            ctx.apply(&cumulative);
            let recomputed = ctx.plan_cost(&q, &out.plan);
            prop_assert!(out.cost.approx_eq(recomputed),
                "reported {:?} but plan costs {:?}", out.cost, recomputed);
            opt.check_invariants().map_err(TestCaseError::fail)?;
        }
    }
}
