//! The optimizer's declarative specification: the ten datalog rules of
//! the paper's Appendix A plus the four bound rules of Figure 3,
//! reproduced verbatim. Each propagation routine in [`crate::optimizer`]
//! cites the rule(s) it implements; the tests here pin the counts the
//! paper states ("we specify an entire optimizer in only three stages
//! and 10 rules").

/// Plan enumeration (stage 1, rules R1–R5): `SearchSpace` derivation.
pub const PLAN_ENUMERATION: [&str; 5] = [
    "R1: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     Expr(expr,prop), Fn_isleaf(expr,false), \
     Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "R2: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     SearchSpace(-,-,-,-,-,expr,prop,-,-), Fn_isleaf(expr,false), \
     Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "R3: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     SearchSpace(-,-,-,-,-,-,-,expr,prop), Fn_isleaf(expr,false), \
     Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "R4: SearchSpace(expr,prop,-,'scan',phyOp,-,-,-,-) :- \
     SearchSpace(-,-,-,-,-,expr,prop,-,-), Fn_isleaf(expr,true), Fn_phyOp(prop,phyOp);",
    "R5: SearchSpace(expr,prop,-,'scan',phyOp,-,-,-,-) :- \
     SearchSpace(-,-,-,-,-,-,-,expr,prop), Fn_isleaf(expr,true), Fn_phyOp(prop,phyOp);",
];

/// Cost estimation (stage 2, rules R6–R8): `PlanCost` derivation.
pub const COST_ESTIMATION: [&str; 3] = [
    "R6: PlanCost(expr,prop,index,logOp,phyOp,-,-,-,-,md,cost) :- \
     SearchSpace(expr,prop,index,logOp,phyOp,-,-,-,-), \
     Fn_scansummary(expr,prop,md), Fn_scancost(expr,prop,md,cost);",
    "R7: PlanCost(expr,prop,index,logOp,phyOp,lExpr,lProp,-,-,md,cost) :- \
     SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,-,-), Fn_isleaf(lExpr,false), \
     PlanCost(lExpr,lProp,-,-,-,-,-,-,-,lMd,lCost), \
     Fn_nonscansummary(expr,prop,index,logOp,lMd,-,md), \
     Fn_nonscancost(expr,prop,index,logOp,phyOp,lExpr,lProp,-,-,md,localCost), \
     Fn_sum(lCost,null,localCost,cost);",
    "R8: PlanCost(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp,md,cost) :- \
     SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp), \
     Fn_isleaf(lExpr,false), Fn_isleaf(rExpr,false), \
     PlanCost(lExpr,lProp,-,-,-,-,-,-,-,lMd,lCost), \
     PlanCost(rExpr,rProp,-,-,-,-,-,-,-,rMd,rCost), \
     Fn_nonscansummary(expr,prop,index,logOp,lMd,rMd,md), \
     Fn_nonscancost(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp,md,localCost), \
     Fn_sum(lCost,rCost,localCost,cost);",
];

/// Plan selection (stage 3, rules R9–R10): `BestCost` / `BestPlan`.
pub const PLAN_SELECTION: [&str; 2] = [
    "R9: BestCost(expr,prop,min<cost>) :- \
     PlanCost(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp,md,cost);",
    "R10: BestPlan(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp,md,cost) :- \
     BestCost(expr,prop,cost), \
     PlanCost(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp,md,cost);",
];

/// Recursive bounding (§3.3, Figure 3): the `Bound` relation.
pub const BOUND_RULES: [&str; 4] = [
    "r1: ParentBound(lExpr,lProp,bound-rCost-localCost) :- \
     Bound(expr,prop,bound), BestCost(rExpr,rProp,rCost), \
     LocalCost(expr,prop,index,lExpr,lProp,rExpr,rProp,-,localCost);",
    "r2: ParentBound(rExpr,rProp,bound-lCost-localCost) :- \
     Bound(expr,prop,bound), BestCost(lExpr,lProp,lCost), \
     LocalCost(expr,prop,index,lExpr,lProp,rExpr,rProp,-,localCost);",
    "r3: MaxBound(expr,prop,max<bound>) :- ParentBound(expr,prop,bound);",
    "r4: Bound(expr,prop,min<minCost,maxBound>) :- \
     BestCost(expr,prop,minCost), MaxBound(expr,prop,maxBound);",
];

/// All rule texts in stage order.
pub fn all_rules() -> Vec<&'static str> {
    PLAN_ENUMERATION
        .iter()
        .chain(COST_ESTIMATION.iter())
        .chain(PLAN_SELECTION.iter())
        .chain(BOUND_RULES.iter())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules_ir::{parse_rule, parse_rules, AggFunc, Term};

    #[test]
    fn rule_counts_match_paper() {
        // "Plan enumeration (SearchSpace) consists of 5 rules, cost
        // estimation (PlanCost) 3 rules, and plan selection (BestPlan)
        // 2 rules" — Figure 1 caption. Counted over the *parsed* rules,
        // so a malformed rule text cannot satisfy the pin.
        assert_eq!(parse_rules(PLAN_ENUMERATION).unwrap().len(), 5);
        assert_eq!(parse_rules(COST_ESTIMATION).unwrap().len(), 3);
        assert_eq!(parse_rules(PLAN_SELECTION).unwrap().len(), 2);
        assert_eq!(parse_rules(BOUND_RULES).unwrap().len(), 4);
        assert_eq!(crate::rules_ir::paper_rules().len(), 14);
    }

    #[test]
    fn rules_derive_their_head_relations() {
        // Head relations read from the AST, not substring matches.
        for r in parse_rules(PLAN_ENUMERATION).unwrap() {
            assert_eq!(r.head.relation, "SearchSpace", "{}", r.label);
        }
        for (i, r) in parse_rules(COST_ESTIMATION).unwrap().iter().enumerate() {
            assert_eq!(r.label, format!("R{}", 6 + i));
            assert_eq!(r.head.relation, "PlanCost");
        }
        let selection = parse_rules(PLAN_SELECTION).unwrap();
        assert_eq!(selection[0].head.relation, "BestCost");
        assert_eq!(selection[1].head.relation, "BestPlan");
        let bounds = parse_rules(BOUND_RULES).unwrap();
        let heads: Vec<&str> = bounds.iter().map(|r| r.head.relation.as_str()).collect();
        assert_eq!(heads, ["ParentBound", "ParentBound", "MaxBound", "Bound"]);
    }

    #[test]
    fn selection_and_bounding_aggregate_as_stated() {
        // R9 minimizes cost; r3 maximizes bound — pinned on the parsed
        // aggregate terms.
        let r9 = parse_rule(PLAN_SELECTION[0]).unwrap();
        assert_eq!(
            r9.head_aggregate().map(|(f, a)| (*f, a.to_vec())),
            Some((AggFunc::Min, vec!["cost".to_string()]))
        );
        let r3 = parse_rule(BOUND_RULES[2]).unwrap();
        assert_eq!(
            r3.head_aggregate().map(|(f, a)| (*f, a.to_vec())),
            Some((AggFunc::Max, vec!["bound".to_string()]))
        );
        // r1 propagates bounds arithmetically: bound - rCost - localCost.
        let r1 = parse_rule(BOUND_RULES[0]).unwrap();
        assert!(r1
            .head
            .terms
            .iter()
            .any(|t| matches!(t, Term::Diff(args) if args.len() == 3)));
    }

    #[test]
    fn every_rule_round_trips_through_the_printer() {
        for src in all_rules() {
            let parsed = parse_rule(src).unwrap();
            assert_eq!(parsed, parse_rule(&parsed.to_string()).unwrap());
        }
    }
}
