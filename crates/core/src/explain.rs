//! Introspection: render the optimizer's live state in the paper's own
//! vocabulary — the `SearchSpace` relation of Table 1 and a per-group
//! `BestCost`/`Bound` summary — for debugging and for the examples.

use std::fmt::Write;

use crate::memo::GroupId;
use crate::optimizer::IncrementalOptimizer;

impl IncrementalOptimizer {
    /// Renders the live `SearchSpace` relation in the shape of the
    /// paper's Table 1: one row per live alternative with its
    /// expression, property, operator, and child references.
    pub fn explain_search_space(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<18} {:<6} {:<22} {:<26} {:<26}",
            "Expr", "Prop", "LogOp", "PhyOp", "lExpr/lProp", "rExpr/rProp"
        );
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !self.group_state(g).live {
                continue;
            }
            let def = self.memo().group(g);
            for a in self.memo().alts_of(g) {
                if !self.alt_state(a).live {
                    continue;
                }
                let alt = self.memo().alt(a);
                let side = |c: Option<crate::memo::GroupId>| match c {
                    None => "–".to_string(),
                    Some(c) => {
                        let d = self.memo().group(c);
                        format!("{} {}", d.expr.rel, d.prop)
                    }
                };
                let _ = writeln!(
                    out,
                    "{:<14} {:<18} {:<6} {:<22} {:<26} {:<26}",
                    format!("{}{}", def.expr.rel, if def.expr.agg { "+agg" } else { "" }),
                    def.prop.to_string(),
                    alt.op.logical_name(),
                    alt.op.to_string(),
                    side(alt.left),
                    side(alt.right),
                );
            }
        }
        out
    }

    /// Renders the query's join graph: one row per leaf with its alias
    /// and the aliases it is joined to. Plan enumeration only considers
    /// connected splits of this graph, so this is the map to read the
    /// `SearchSpace` rows against.
    pub fn explain_join_graph(&self) -> String {
        let q = self.query();
        let g = self.join_graph();
        let mut out = String::new();
        let _ = writeln!(out, "{:<14} joined-with", "Leaf");
        for (i, leaf) in q.leaves.iter().enumerate() {
            let nbrs = g.neighbors(reopt_expr::RelSet::singleton(i as u32));
            let names: Vec<&str> = q
                .leaves
                .iter()
                .enumerate()
                .filter(|(j, _)| nbrs.contains(*j as u32))
                .map(|(_, l)| l.alias.as_str())
                .collect();
            let _ = writeln!(out, "{:<14} {}", leaf.alias, names.join(", "));
        }
        out
    }

    /// Renders per-group `BestCost` / `Bound` / refcount state (the
    /// paper's Figure 2 annotations).
    pub fn explain_groups(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:<18} {:>6} {:>12} {:>12} {:>5} {:>5}",
            "Expr", "Prop", "live", "BestCost", "Bound", "refs", "alts"
        );
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            let def = self.memo().group(g);
            let s = self.group_state(g);
            let live_alts = self
                .memo()
                .alts_of(g)
                .filter(|a| self.alt_state(*a).live)
                .count();
            let _ = writeln!(
                out,
                "{:<14} {:<18} {:>6} {:>12} {:>12} {:>5} {:>5}",
                format!("{}{}", def.expr.rel, if def.expr.agg { "+agg" } else { "" }),
                def.prop.to_string(),
                if s.live { "yes" } else { "DEAD" },
                format!("{}", s.best),
                format!("{}", s.bound),
                s.refs,
                format!("{}/{}", live_alts, self.memo().alts_of(g).count()),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::PruningConfig;
    use crate::fixtures::{chain_query, fixture_catalog};
    use crate::optimizer::IncrementalOptimizer;

    #[test]
    fn search_space_rendering_matches_table1_shape() {
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let mut opt = IncrementalOptimizer::new(&c, q, PruningConfig::all());
        let out = opt.optimize();
        let table = opt.explain_search_space();
        // Header columns from Table 1.
        assert!(table.contains("Expr"));
        assert!(table.contains("PhyOp"));
        // With full pruning, the live alternatives collapse to the
        // optimal tree's (plus any exact cost ties): one data row per
        // plan node, modulo ties.
        let rows = table.lines().count() - 1;
        assert!(
            rows >= out.plan.size() && rows <= out.plan.size() + 3,
            "{rows} live rows vs plan size {}",
            out.plan.size()
        );
        // Scan rows carry the paper's `–` placeholders.
        assert!(table.contains("–"));
    }

    #[test]
    fn join_graph_rendering_lists_every_leaf_with_neighbors() {
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        let table = opt.explain_join_graph();
        // One row per leaf plus the header.
        assert_eq!(table.lines().count(), q.leaves.len() + 1);
        for leaf in &q.leaves {
            assert!(table.contains(leaf.alias.as_str()), "missing {}", leaf.alias);
        }
        // A chain's interior leaf has two neighbors.
        let middle = table
            .lines()
            .find(|l| l.starts_with(&q.leaves[1].alias))
            .unwrap();
        assert_eq!(middle.matches(", ").count(), 1, "{middle}");
    }

    #[test]
    fn group_rendering_reports_dead_state() {
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let mut opt = IncrementalOptimizer::new(&c, q, PruningConfig::all());
        opt.optimize();
        let table = opt.explain_groups();
        assert!(table.contains("DEAD"), "no reclaimed groups rendered");
        assert!(table.contains("BestCost"));
        // Every memo group appears.
        assert_eq!(table.lines().count() - 1, opt.memo().n_groups());
    }

    #[test]
    fn evita_raced_renders_more_live_rows() {
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let mut all = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        all.optimize();
        let mut er = IncrementalOptimizer::new(&c, q, PruningConfig::evita_raced());
        er.optimize();
        // Evita-Raced keeps every group live; its SearchSpace view keeps
        // at least as many rows.
        assert!(
            er.explain_search_space().lines().count()
                >= all.explain_search_space().lines().count()
        );
        assert!(!er.explain_groups().contains("DEAD"));
    }
}
