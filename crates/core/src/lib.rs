//! The paper's contribution: a declarative, incrementally maintained,
//! pruning query re-optimizer.
//!
//! The optimizer is specified by the ten datalog rules R1–R10 (plan
//! enumeration, cost estimation, plan selection — [`rules`]) plus the
//! four recursive bound rules r1–r4 (§3.3). This crate executes those
//! rules as typed delta propagation over the and-or graph — the same
//! specialization the authors performed when they extended the ASPEN
//! engine with ~10K lines of pruning/propagation support (§5) — while
//! `reopt-datalog` demonstrates the generic engine mechanics the rules
//! rely on (counted multisets, min-aggregates with next-best recovery,
//! pipelined fixpoints).
//!
//! Pruning strategies (all order-independent, §3):
//! - aggregate selection with tuple source suppression (§3.1),
//! - reference counting of parent plans (§3.2),
//! - recursive branch-and-bound via the `Bound` relation (§3.3),
//!
//! each incrementally maintained under cost/cardinality updates (§4).

pub mod config;
pub mod explain;
pub mod fixtures;
pub mod memo;
pub mod metrics;
pub mod optimizer;
pub mod rules;
pub mod rules_ir;
pub mod state;
pub mod verify;

pub use config::PruningConfig;
pub use memo::{AltId, GroupId, Memo};
pub use metrics::{RunMetrics, StateMetrics};
pub use optimizer::{IncrementalOptimizer, Outcome};
