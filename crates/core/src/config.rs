//! Pruning-strategy configuration — the experimental knobs of the
//! paper's §5.3 ablation ("we systematically considered all techniques
//! individually and in combination").

/// Which pruning strategies the optimizer runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruningConfig {
    /// §3.1 aggregate selection: suppress `PlanCost` tuples that cannot
    /// beat the group's current best.
    pub aggregate_selection: bool,
    /// §3.1 tuple source suppression: cascade aggregate-selection prunes
    /// into `SearchSpace` deletions (which is what lets reference counts
    /// drop). The Evita-Raced comparison point keeps aggregate selection
    /// but not source suppression — it "never prunes plan table entries"
    /// (Fig 4b).
    pub source_suppression: bool,
    /// §3.2 reference counting: reclaim groups no live parent references.
    pub ref_counting: bool,
    /// §3.3 recursive bounding: the `Bound` relation of rules r1–r4;
    /// suppression then tests against `Bound` instead of `BestCost`.
    pub recursive_bounding: bool,
    /// Reproduction extension (see DESIGN.md §3.3): on re-optimization,
    /// conservatively revalidate frozen state whose parameters changed,
    /// restoring the unconditional optimality guarantee for cost
    /// *decreases* landing entirely inside reclaimed regions, at the
    /// price of touching more state.
    pub strict_revalidation: bool,
}

impl PruningConfig {
    /// No pruning at all (the paper's omitted-from-graphs baseline whose
    /// "running times were over 2 minutes").
    pub fn none() -> PruningConfig {
        PruningConfig {
            aggregate_selection: false,
            source_suppression: false,
            ref_counting: false,
            recursive_bounding: false,
            strict_revalidation: false,
        }
    }

    /// The Evita Raced [8] pruning level: "pruning is only done against
    /// logically equivalent plans for the same output properties".
    pub fn evita_raced() -> PruningConfig {
        PruningConfig {
            aggregate_selection: true,
            ..PruningConfig::none()
        }
    }

    /// `AggSel` in Figs 7/8: aggregate selection with source suppression.
    pub fn aggsel() -> PruningConfig {
        PruningConfig {
            aggregate_selection: true,
            source_suppression: true,
            ..PruningConfig::none()
        }
    }

    /// `AggSel+RefCount` in Figs 7/8.
    pub fn aggsel_refcount() -> PruningConfig {
        PruningConfig {
            ref_counting: true,
            ..PruningConfig::aggsel()
        }
    }

    /// `AggSel+Branch&Bounding` in Figs 7/8.
    pub fn aggsel_bounding() -> PruningConfig {
        PruningConfig {
            recursive_bounding: true,
            ..PruningConfig::aggsel()
        }
    }

    /// All three techniques (the paper's `Declarative` / `All` bars).
    pub fn all() -> PruningConfig {
        PruningConfig {
            aggregate_selection: true,
            source_suppression: true,
            ref_counting: true,
            recursive_bounding: true,
            strict_revalidation: false,
        }
    }

    /// `all()` plus strict revalidation.
    pub fn all_strict() -> PruningConfig {
        PruningConfig {
            strict_revalidation: true,
            ..PruningConfig::all()
        }
    }

    /// Human-readable label used by the benchmark harness.
    pub fn label(&self) -> &'static str {
        match (
            self.aggregate_selection,
            self.source_suppression,
            self.ref_counting,
            self.recursive_bounding,
        ) {
            (false, _, _, _) => "NoPruning",
            (true, false, _, _) => "Evita-Raced",
            (true, true, false, false) => "AggSel",
            (true, true, true, false) => "AggSel+RefCount",
            (true, true, false, true) => "AggSel+Branch&Bounding",
            (true, true, true, true) => "All",
        }
    }
}

impl Default for PruningConfig {
    fn default() -> PruningConfig {
        PruningConfig::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_matrix() {
        assert!(!PruningConfig::evita_raced().source_suppression);
        assert!(PruningConfig::aggsel().source_suppression);
        assert!(!PruningConfig::aggsel().ref_counting);
        assert!(PruningConfig::aggsel_refcount().ref_counting);
        assert!(PruningConfig::aggsel_bounding().recursive_bounding);
        let all = PruningConfig::all();
        assert!(all.aggregate_selection && all.ref_counting && all.recursive_bounding);
    }

    #[test]
    fn labels() {
        assert_eq!(PruningConfig::none().label(), "NoPruning");
        assert_eq!(PruningConfig::evita_raced().label(), "Evita-Raced");
        assert_eq!(PruningConfig::all().label(), "All");
        assert_eq!(
            PruningConfig::aggsel_bounding().label(),
            "AggSel+Branch&Bounding"
        );
    }
}
