//! The interned and-or graph the optimizer's state lives on.
//!
//! Structure only — costs, liveness, bounds are [`crate::state`]. Groups
//! are the paper's "OR" nodes (`(expression, property)` pairs keying the
//! `SearchSpace`/`BestCost` relations); alternatives are the "AND" nodes
//! (`SearchSpace`/`PlanCost` tuples, keyed by `*Expr,*Prop,*Index` in
//! Table 1).

use reopt_common::FxHashMap;
use reopt_expr::{
    AltSpec, ExprId, JoinGraph, PhysOp, PhysProp, QuerySpec, Space,
};

/// Group ("OR" node) id — dense index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Alternative ("AND" node) id — dense global index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AltId(pub u32);

/// Static data of one alternative.
#[derive(Clone, Debug)]
pub struct AltDef {
    pub op: PhysOp,
    pub group: GroupId,
    pub left: Option<GroupId>,
    pub right: Option<GroupId>,
    /// The original enumeration record (children with property
    /// requirements) — needed for cost calls and plan extraction.
    pub spec: AltSpec,
}

impl AltDef {
    pub fn children(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.left.into_iter().chain(self.right)
    }

    /// The sibling of `child` in a binary alternative, if any.
    pub fn sibling(&self, child: GroupId) -> Option<GroupId> {
        match (self.left, self.right) {
            (Some(l), Some(r)) if l == child => Some(r),
            (Some(l), Some(r)) if r == child => Some(l),
            _ => None,
        }
    }
}

/// Static data of one group.
#[derive(Clone, Debug)]
pub struct GroupDefC {
    pub expr: ExprId,
    pub prop: PhysProp,
    /// Dense range into [`Memo::alts`].
    pub alts_start: u32,
    pub alts_end: u32,
}

/// The interned and-or graph.
#[derive(Clone, Debug)]
pub struct Memo {
    pub groups: Vec<GroupDefC>,
    pub alts: Vec<AltDef>,
    /// Per group: alternatives referencing it as a child (the reverse
    /// edges reference counting and bound propagation walk).
    pub parents: Vec<Vec<AltId>>,
    /// Bottom-up positions: children of any alternative have strictly
    /// smaller `topo_pos` than the alternative's own group.
    pub topo_pos: Vec<u32>,
    /// Groups in ascending `topo_pos` order.
    pub topo: Vec<GroupId>,
    pub root: GroupId,
    index: FxHashMap<(ExprId, PhysProp), GroupId>,
}

impl Memo {
    /// Builds the memo by exploring the full reachable space (rules
    /// R1–R5 run to fixpoint with no pruning; what the pruning
    /// strategies then reclaim is *state*, tracked in `OptimizerState`).
    pub fn build(q: &QuerySpec, g: &JoinGraph) -> Memo {
        let space = Space::explore(q, g);
        // The space's group order is BFS from the root; re-index groups
        // in topo order so dense ids are also bottom-up.
        let order = space.topo_order().to_vec();
        let mut remap: FxHashMap<(ExprId, PhysProp), GroupId> = FxHashMap::default();
        for (new_idx, gi) in order.iter().enumerate() {
            let def = space.group(*gi);
            remap.insert((def.expr, def.prop), GroupId(new_idx as u32));
        }
        let mut groups = Vec::with_capacity(order.len());
        let mut alts: Vec<AltDef> = Vec::new();
        for (new_idx, gi) in order.iter().enumerate() {
            let def = space.group(*gi);
            let start = alts.len() as u32;
            for spec in &def.alts {
                alts.push(AltDef {
                    op: spec.op,
                    group: GroupId(new_idx as u32),
                    left: spec.left.map(|c| remap[&(c.expr, c.prop)]),
                    right: spec.right.map(|c| remap[&(c.expr, c.prop)]),
                    spec: *spec,
                });
            }
            groups.push(GroupDefC {
                expr: def.expr,
                prop: def.prop,
                alts_start: start,
                alts_end: alts.len() as u32,
            });
        }
        let mut parents = vec![Vec::new(); groups.len()];
        for (ai, alt) in alts.iter().enumerate() {
            for child in alt.children() {
                parents[child.0 as usize].push(AltId(ai as u32));
            }
        }
        let topo: Vec<GroupId> = (0..groups.len() as u32).map(GroupId).collect();
        let topo_pos: Vec<u32> = (0..groups.len() as u32).collect();
        let root = remap[&(q.root_expr(), PhysProp::Any)];
        Memo {
            groups,
            alts,
            parents,
            topo_pos,
            topo,
            root,
            index: remap,
        }
    }

    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    pub fn n_alts(&self) -> usize {
        self.alts.len()
    }

    pub fn group(&self, g: GroupId) -> &GroupDefC {
        &self.groups[g.0 as usize]
    }

    pub fn alt(&self, a: AltId) -> &AltDef {
        &self.alts[a.0 as usize]
    }

    pub fn lookup(&self, expr: ExprId, prop: PhysProp) -> Option<GroupId> {
        self.index.get(&(expr, prop)).copied()
    }

    /// Alternative ids of a group.
    pub fn alts_of(&self, g: GroupId) -> impl Iterator<Item = AltId> {
        let def = self.group(g);
        (def.alts_start..def.alts_end).map(AltId)
    }

    /// Alternatives referencing `g` as a child.
    pub fn parents_of(&self, g: GroupId) -> &[AltId] {
        &self.parents[g.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{chain_query, fixture_catalog};

    #[test]
    fn memo_ids_are_topo_ordered() {
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let g = JoinGraph::new(&q);
        let memo = Memo::build(&q, &g);
        for alt in &memo.alts {
            for child in alt.children() {
                assert!(
                    child.0 < alt.group.0,
                    "child {:?} not before parent group {:?}",
                    child,
                    alt.group
                );
            }
        }
        // Root is the last-ish group (largest expr) and looked up
        // consistently.
        assert_eq!(
            memo.lookup(q.root_expr(), PhysProp::Any),
            Some(memo.root)
        );
    }

    #[test]
    fn parent_edges_invert_child_edges() {
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let g = JoinGraph::new(&q);
        let memo = Memo::build(&q, &g);
        for gi in 0..memo.n_groups() as u32 {
            let gid = GroupId(gi);
            for &pa in memo.parents_of(gid) {
                assert!(
                    memo.alt(pa).children().any(|ch| ch == gid),
                    "parent edge without matching child edge"
                );
            }
        }
        let child_edge_count: usize = memo.alts.iter().map(|a| a.children().count()).sum();
        let parent_edge_count: usize = (0..memo.n_groups() as u32)
            .map(|g| memo.parents_of(GroupId(g)).len())
            .sum();
        assert_eq!(child_edge_count, parent_edge_count);
    }

    #[test]
    fn alts_of_ranges_partition_all_alts() {
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let g = JoinGraph::new(&q);
        let memo = Memo::build(&q, &g);
        let mut seen = vec![false; memo.n_alts()];
        for gi in 0..memo.n_groups() as u32 {
            for a in memo.alts_of(GroupId(gi)) {
                assert!(!seen[a.0 as usize], "alt in two groups");
                seen[a.0 as usize] = true;
                assert_eq!(memo.alt(a).group, GroupId(gi));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
