//! Mutable optimizer state attached to the memo: per-alternative costs
//! (`PlanCost`), per-group aggregates (`BestCost`), liveness
//! (`SearchSpace` membership under suppression), reference counts (§3.2)
//! and bounds (§3.3).

use reopt_common::Cost;

use crate::memo::AltId;

/// State of one alternative ("AND" node / `PlanCost` tuple).
#[derive(Clone, Copy, Debug)]
pub struct AltState {
    /// `Fn_scancost` / `Fn_nonscancost` output for this root operator.
    pub local: Cost,
    /// `Fn_sum(local, lBest, rBest)` — the `PlanCost` value. Stale (last
    /// computed) while the alternative is frozen.
    pub total: Cost,
    /// Present in the live `SearchSpace` / `PlanCost` views. Suppressed
    /// alternatives (live = false) keep maintained costs — they sit in
    /// the aggregate's internal priority queue (§4.1) — but contribute
    /// no reference counts when source suppression is on.
    pub live: bool,
    /// Local cost must be recomputed (a cost parameter affecting it
    /// changed).
    pub local_dirty: bool,
    /// Total must be recomputed (local or a child's best changed).
    pub dirty: bool,
}

impl Default for AltState {
    fn default() -> AltState {
        AltState {
            local: Cost::INFINITY,
            total: Cost::INFINITY,
            live: true,
            local_dirty: true,
            dirty: true,
        }
    }
}

/// State of one group ("OR" node / `BestCost` + `Bound` entries).
#[derive(Clone, Copy, Debug)]
pub struct GroupState {
    /// State is maintained. `false` = tombstoned by reference counting;
    /// the costs freeze at their last values ("the aggregate operator
    /// preserves all the computed, even pruned tuples").
    pub live: bool,
    /// Number of live parent alternatives referencing this group (plus
    /// one pin for the root). Only meaningful with source suppression.
    pub refs: u32,
    /// `BestCost`: minimum maintained (non-frozen) alternative total.
    pub best: Cost,
    pub best_alt: Option<AltId>,
    /// `MaxBound` (rule r3): the loosest allowance any live parent plan
    /// grants; `+inf` when unconstrained (the root, or no live parents).
    pub mpb: Cost,
    /// `Bound` (rule r4): `min(best, mpb)` under recursive bounding,
    /// otherwise `best`.
    pub bound: Cost,
}

impl Default for GroupState {
    fn default() -> GroupState {
        GroupState {
            live: true,
            refs: 0,
            best: Cost::INFINITY,
            best_alt: None,
            mpb: Cost::INFINITY,
            bound: Cost::INFINITY,
        }
    }
}

/// Suppression comparison with a relative epsilon: bounds are computed
/// through subtraction chains (r1/r2), so an exact `<=` could suppress a
/// group's own best alternative on floating-point noise and disconnect
/// the chosen plan tree.
#[inline]
pub fn le_with_slack(total: Cost, threshold: Cost) -> bool {
    if threshold == Cost::INFINITY {
        return true;
    }
    total.value() <= threshold.value() * (1.0 + 1e-9) + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = AltState::default();
        assert!(a.live && a.dirty && a.local_dirty);
        assert_eq!(a.total, Cost::INFINITY);
        let g = GroupState::default();
        assert!(g.live);
        assert_eq!(g.bound, Cost::INFINITY);
    }

    #[test]
    fn slack_comparison() {
        assert!(le_with_slack(Cost::new(1.0), Cost::INFINITY));
        assert!(le_with_slack(Cost::new(1.0), Cost::new(1.0)));
        // Tiny FP noise above the threshold still passes…
        assert!(le_with_slack(Cost::new(1.0 + 1e-12), Cost::new(1.0)));
        // …but a real difference does not.
        assert!(!le_with_slack(Cost::new(1.001), Cost::new(1.0)));
    }
}
