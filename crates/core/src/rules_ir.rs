//! Typed intermediate representation of the paper's datalog rules.
//!
//! [`crate::rules`] keeps the 14 rule texts verbatim; this module parses
//! them into an AST so that (a) the tests pin structural facts derived
//! from the rules themselves rather than substring matches, and (b) the
//! `reopt-bridge` crate can compile rule programs onto the
//! `reopt-datalog` dataflow substrate.
//!
//! The grammar covers exactly the constructs the paper's rules use:
//!
//! ```text
//! rule  := LABEL ':' atom ':-' atom (',' atom)* ';'?
//! atom  := IDENT '(' term (',' term)* ')'
//! term  := '-'                        wildcard
//!        | '\'' chars '\''            string constant        ('scan')
//!        | 'null' | 'true' | 'false'  typed constants
//!        | IDENT '<' IDENT (',' IDENT)* '>'
//!                                     min/max — an aggregate over the
//!                                     rule's derivations with one
//!                                     argument (min<cost>), a per-tuple
//!                                     scalar combine with several
//!                                     (min<minCost,maxBound>)
//!        | IDENT ('-' IDENT)*         variable, or a subtraction chain
//!                                     (bound-rCost-localCost)
//! ```
//!
//! Body atoms whose relation starts with `Fn_` are *external functions*
//! (`Fn_split`, `Fn_scancost`, `Fn_sum`, …): computed predicates backed
//! by host code rather than derived relations.

use std::fmt;

/// Aggregate / scalar-combine function name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    Min,
    Max,
}

impl AggFunc {
    fn name(self) -> &'static str {
        match self {
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One argument position of an atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// A named variable.
    Var(String),
    /// `-`: an anonymous variable (body) / an unused output column
    /// (head).
    Wildcard,
    /// `'...'` string constant.
    Str(String),
    /// `true` / `false` (the `Fn_isleaf` guards).
    Bool(bool),
    /// `null` (absent child references, `Fn_sum`'s missing operand).
    Null,
    /// `min<...>` / `max<...>`: with one argument, an aggregate over the
    /// rule's derivations grouped by the other head columns; with more,
    /// a per-tuple scalar combine.
    Agg(AggFunc, Vec<String>),
    /// `a-b-c`: the first variable minus the remaining ones.
    Diff(Vec<String>),
}

impl Term {
    /// The variables this term references.
    pub fn vars(&self) -> Vec<&str> {
        match self {
            Term::Var(v) => vec![v],
            Term::Agg(_, vs) | Term::Diff(vs) => vs.iter().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Wildcard => write!(f, "-"),
            Term::Str(s) => write!(f, "'{s}'"),
            Term::Bool(b) => write!(f, "{b}"),
            Term::Null => write!(f, "null"),
            Term::Agg(func, args) => write!(f, "{}<{}>", func.name(), args.join(",")),
            Term::Diff(args) => write!(f, "{}", args.join("-")),
        }
    }
}

/// A relation atom: `Relation(t1, ..., tn)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    pub relation: String,
    pub terms: Vec<Term>,
}

impl Atom {
    /// True for `Fn_*` computed predicates (external functions).
    pub fn is_external(&self) -> bool {
        self.relation.starts_with("Fn_")
    }

    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables referenced by this atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for t in &self.terms {
            for v in t.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// One parsed rule: `LABEL: head :- body1, ..., bodyn;`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    pub label: String,
    pub head: Atom,
    pub body: Vec<Atom>,
}

impl Rule {
    /// The head's aggregate term, if any (`min<cost>` in R9).
    pub fn head_aggregate(&self) -> Option<(&AggFunc, &[String])> {
        self.head.terms.iter().find_map(|t| match t {
            Term::Agg(f, args) => Some((f, args.as_slice())),
            _ => None,
        })
    }

    /// True if the head relation also appears in the body (recursive
    /// rules R2/R3, and the `Bound` cycle of r1–r4 taken as a program).
    pub fn is_recursive(&self) -> bool {
        self.body.iter().any(|a| a.relation == self.head.relation)
    }

    /// Safety: every variable the head references must be bound by some
    /// body atom.
    pub fn check_safety(&self) -> Result<(), ParseError> {
        let bound: Vec<&str> = self.body.iter().flat_map(|a| a.vars()).collect();
        for v in self.head.vars() {
            if !bound.contains(&v) {
                return Err(ParseError {
                    rule: self.label.clone(),
                    message: format!("unsafe head variable `{v}`"),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} :- ", self.label, self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ";")
    }
}

/// A parse failure, with the offending rule label when known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub rule: String,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule `{}`: {}", self.rule, self.message)
    }
}

impl std::error::Error for ParseError {}

// ----- lexer ---------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Colon,
    Turnstile,
    Lt,
    Gt,
    Dash,
}

fn lex(src: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            ';' => {
                toks.push(Tok::Semi);
                i += 1;
            }
            '<' => {
                toks.push(Tok::Lt);
                i += 1;
            }
            '>' => {
                toks.push(Tok::Gt);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Dash);
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push(Tok::Turnstile);
                    i += 2;
                } else {
                    toks.push(Tok::Colon);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err("unterminated string constant".to_string());
                }
                toks.push(Tok::Quoted(src[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push(Tok::Ident(src[start..i].to_string()));
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(toks)
}

// ----- parser --------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    rule: String,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            rule: self.rule.clone(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => Err(self.err(format!("expected {want:?}, got {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let label = self.ident()?;
        self.rule = label.clone();
        self.expect(Tok::Colon)?;
        let head = self.atom()?;
        self.expect(Tok::Turnstile)?;
        let mut body = vec![self.atom()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            body.push(self.atom()?);
        }
        if self.peek() == Some(&Tok::Semi) {
            self.next();
        }
        if let Some(t) = self.peek() {
            return Err(self.err(format!("trailing input after rule: {t:?}")));
        }
        Ok(Rule { label, head, body })
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let relation = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut terms = vec![self.term()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            terms.push(self.term()?);
        }
        self.expect(Tok::RParen)?;
        Ok(Atom { relation, terms })
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Dash) => {
                // A lone dash is a wildcard; `-x` (dash then identifier)
                // does not occur in the grammar.
                match self.peek() {
                    Some(Tok::Comma) | Some(Tok::RParen) => Ok(Term::Wildcard),
                    other => Err(self.err(format!("dangling `-` before {other:?}"))),
                }
            }
            Some(Tok::Quoted(s)) => Ok(Term::Str(s)),
            Some(Tok::Ident(name)) => match name.as_str() {
                "null" => Ok(Term::Null),
                "true" => Ok(Term::Bool(true)),
                "false" => Ok(Term::Bool(false)),
                _ => match self.peek() {
                    // min<...> / max<...>
                    Some(Tok::Lt) if name == "min" || name == "max" => {
                        self.next();
                        let func = if name == "min" {
                            AggFunc::Min
                        } else {
                            AggFunc::Max
                        };
                        let mut args = vec![self.ident()?];
                        while self.peek() == Some(&Tok::Comma) {
                            self.next();
                            args.push(self.ident()?);
                        }
                        self.expect(Tok::Gt)?;
                        Ok(Term::Agg(func, args))
                    }
                    // a-b-c subtraction chain
                    Some(Tok::Dash) => {
                        let mut args = vec![name];
                        while self.peek() == Some(&Tok::Dash) {
                            self.next();
                            args.push(self.ident()?);
                        }
                        Ok(Term::Diff(args))
                    }
                    _ => Ok(Term::Var(name)),
                },
            },
            other => Err(self.err(format!("expected term, got {other:?}"))),
        }
    }
}

/// Parses one rule text.
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let toks = lex(src).map_err(|message| ParseError {
        rule: String::new(),
        message,
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        rule: String::new(),
    };
    let rule = p.rule()?;
    rule.check_safety()?;
    Ok(rule)
}

/// Parses a batch of rule texts.
pub fn parse_rules<'a>(srcs: impl IntoIterator<Item = &'a str>) -> Result<Vec<Rule>, ParseError> {
    srcs.into_iter().map(parse_rule).collect()
}

/// All 14 paper rules ([`crate::rules::all_rules`]) in IR form.
pub fn paper_rules() -> Vec<Rule> {
    parse_rules(crate::rules::all_rules())
        .expect("the paper's rule texts parse (pinned by tests)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{BOUND_RULES, COST_ESTIMATION, PLAN_ENUMERATION, PLAN_SELECTION};

    #[test]
    fn all_fourteen_rules_parse() {
        let rules = paper_rules();
        assert_eq!(rules.len(), 14);
        for r in &rules {
            r.check_safety().unwrap();
        }
    }

    #[test]
    fn round_trip_parse_print_parse() {
        for src in crate::rules::all_rules() {
            let first = parse_rule(src).unwrap();
            let printed = first.to_string();
            let second = parse_rule(&printed)
                .unwrap_or_else(|e| panic!("re-parse of `{printed}` failed: {e}"));
            assert_eq!(first, second, "round trip changed `{}`", first.label);
        }
    }

    #[test]
    fn enumeration_rules_have_expected_shape() {
        let rules = parse_rules(PLAN_ENUMERATION).unwrap();
        for r in &rules {
            assert_eq!(r.head.relation, "SearchSpace");
            assert_eq!(r.head.arity(), 9);
        }
        // R1 is the seed (reads Expr); R2/R3 recurse through SearchSpace.
        assert_eq!(rules[0].body[0].relation, "Expr");
        assert!(!rules[0].is_recursive());
        assert!(rules[1].is_recursive() && rules[2].is_recursive());
        // R2 demands the *left* child slot, R3 the right.
        assert_eq!(rules[1].body[0].terms[5], Term::Var("expr".into()));
        assert_eq!(rules[2].body[0].terms[7], Term::Var("expr".into()));
        // R4/R5 are the scan rules: constant 'scan' logOp in the head,
        // guarded by Fn_isleaf(expr,true).
        for r in &rules[3..] {
            assert_eq!(r.head.terms[3], Term::Str("scan".into()));
            assert!(r.body.iter().any(|a| a.relation == "Fn_isleaf"
                && a.terms[1] == Term::Bool(true)));
        }
        // Non-leaf expansion goes through the Fn_split external.
        for r in &rules[..3] {
            assert!(r.body.iter().any(|a| a.is_external() && a.relation == "Fn_split"));
            assert!(r.body.iter().any(|a| a.relation == "Fn_isleaf"
                && a.terms[1] == Term::Bool(false)));
        }
    }

    #[test]
    fn cost_rules_sum_child_costs() {
        let rules = parse_rules(COST_ESTIMATION).unwrap();
        for r in &rules {
            assert_eq!(r.head.relation, "PlanCost");
            assert_eq!(r.head.arity(), 11);
        }
        // R6 (scan costing) uses Fn_scancost and no recursive PlanCost.
        assert!(rules[0].body.iter().any(|a| a.relation == "Fn_scancost"));
        assert!(!rules[0].is_recursive());
        // R7 reads one child PlanCost, R8 two; both total via Fn_sum.
        for (r, n_children) in [(&rules[1], 1), (&rules[2], 2)] {
            let plan_cost_atoms = r
                .body
                .iter()
                .filter(|a| a.relation == "PlanCost")
                .count();
            assert_eq!(plan_cost_atoms, n_children, "{}", r.label);
            assert!(r.body.iter().any(|a| a.relation == "Fn_sum"));
        }
        // R7's Fn_sum has a null operand (no right child).
        let sum7 = rules[1]
            .body
            .iter()
            .find(|a| a.relation == "Fn_sum")
            .unwrap();
        assert_eq!(sum7.terms[1], Term::Null);
    }

    #[test]
    fn selection_rules_aggregate_then_join_back() {
        let rules = parse_rules(PLAN_SELECTION).unwrap();
        // R9: BestCost(expr,prop,min<cost>) — a 1-argument (true)
        // aggregate keyed on the remaining head columns.
        assert_eq!(rules[0].head.relation, "BestCost");
        let (func, args) = rules[0].head_aggregate().unwrap();
        assert_eq!(*func, AggFunc::Min);
        assert_eq!(args, ["cost".to_string()]);
        assert_eq!(
            rules[0].head.terms[..2],
            [Term::Var("expr".into()), Term::Var("prop".into())]
        );
        // R10 joins BestCost back to PlanCost on the shared cost var.
        assert_eq!(rules[1].head.relation, "BestPlan");
        let shared: Vec<&str> = rules[1].body[0]
            .vars()
            .into_iter()
            .filter(|v| rules[1].body[1].vars().contains(v))
            .collect();
        assert_eq!(shared, ["expr", "prop", "cost"]);
    }

    #[test]
    fn bound_rules_use_arithmetic_and_both_aggregates() {
        let rules = parse_rules(BOUND_RULES).unwrap();
        // r1/r2: subtraction chains in the head.
        for r in &rules[..2] {
            assert_eq!(r.head.relation, "ParentBound");
            let diff = r
                .head
                .terms
                .iter()
                .find_map(|t| match t {
                    Term::Diff(args) => Some(args.clone()),
                    _ => None,
                })
                .unwrap();
            assert_eq!(diff[0], "bound");
            assert_eq!(diff.len(), 3);
        }
        // r3: a true max aggregate; r4: a 2-argument scalar min combine.
        let (f3, a3) = rules[2].head_aggregate().unwrap();
        assert_eq!((*f3, a3.len()), (AggFunc::Max, 1));
        let (f4, a4) = rules[3].head_aggregate().unwrap();
        assert_eq!((*f4, a4.len()), (AggFunc::Min, 2));
        // The program is recursive through Bound: r4 derives it, r1/r2
        // consume it.
        assert_eq!(rules[3].head.relation, "Bound");
        assert!(rules[..2]
            .iter()
            .all(|r| r.body.iter().any(|a| a.relation == "Bound")));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_rule("R: Broken(x :- Y(x);").is_err());
        assert!(parse_rule("R: Head(x) :- Body(y);").is_err()); // unsafe
        assert!(parse_rule("R: Head('unterminated) :- B(x);").is_err());
        assert!(parse_rule("").is_err());
    }

    #[test]
    fn wildcards_and_constants_round_trip() {
        let r = parse_rule(
            "T: Out(a,-,'lit',null,true,min<a,b>,a-b) :- In(a,b), Fn_f(a,b,false);",
        );
        // `-` in the head plus every constant kind.
        let r = r.unwrap();
        assert_eq!(r.head.terms[1], Term::Wildcard);
        assert_eq!(r.head.terms[2], Term::Str("lit".into()));
        assert_eq!(r.head.terms[3], Term::Null);
        assert_eq!(r.head.terms[4], Term::Bool(true));
        assert_eq!(
            r.head.terms[5],
            Term::Agg(AggFunc::Min, vec!["a".into(), "b".into()])
        );
        assert_eq!(r.head.terms[6], Term::Diff(vec!["a".into(), "b".into()]));
        let reparsed = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, reparsed);
    }
}
