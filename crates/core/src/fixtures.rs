//! Small synthetic catalogs and queries shared by this crate's unit
//! tests and property tests. (The realistic TPC-H / Linear Road suite
//! lives in `reopt-workloads`; keeping these here avoids a dependency
//! cycle, since `reopt-workloads` sits above this crate.)

use reopt_catalog::{Catalog, CmpOp, ColumnStats, Datum, TableBuilder, TableStats};
use reopt_expr::{AggFunc, AggSpec, LeafCol, QuerySpec};

/// Eight tables `t0..t7` with varied cardinalities; even-numbered tables
/// are indexed on `a`, `t1` is clustered on `a`.
pub fn fixture_catalog() -> Catalog {
    let mut c = Catalog::new();
    let rows = [100.0, 2_000.0, 50.0, 40_000.0, 500.0, 10.0, 8_000.0, 300.0];
    for (i, &r) in rows.iter().enumerate() {
        let name = format!("t{i}");
        c.add_table(
            |id| {
                let mut b = TableBuilder::new(&name).int_col("a").int_col("b").int_col("c");
                if i % 2 == 0 {
                    b = b.index_on("a");
                }
                if i == 1 {
                    b = b.clustered_on("a");
                }
                b.build(id)
            },
            TableStats {
                row_count: r,
                columns: vec![ColumnStats::uniform_key(r); 3],
            },
        );
    }
    c
}

/// Chain query `t0 ⋈ t1 ⋈ … ⋈ t{n-1}` joining `b = a`.
pub fn chain_query(c: &Catalog, n: usize) -> QuerySpec {
    assert!(n <= 8);
    let mut b = QuerySpec::builder(format!("chain{n}"));
    let leaves: Vec<_> = (0..n).map(|i| b.leaf(c, &format!("t{i}"))).collect();
    for w in leaves.windows(2) {
        b.join(c, w[0], "b", w[1], "a");
    }
    b.build()
}

/// Chain query with a filter on the last leaf and a group-by aggregate —
/// exercises interesting orders and the aggregate root.
pub fn agg_chain_query(c: &Catalog, n: usize) -> QuerySpec {
    let mut b = QuerySpec::builder(format!("aggchain{n}"));
    let leaves: Vec<_> = (0..n).map(|i| b.leaf(c, &format!("t{i}"))).collect();
    for w in leaves.windows(2) {
        b.join(c, w[0], "b", w[1], "a");
    }
    b.filter(
        c,
        *leaves.last().unwrap(),
        "c",
        CmpOp::Lt,
        Datum::Int((c.stats(reopt_catalog::TableId(n as u32 - 1)).row_count / 2.0) as i64),
    );
    b.aggregate(AggSpec {
        group_by: vec![LeafCol::new(0, 0)],
        aggs: vec![AggFunc::CountStar, AggFunc::Sum(LeafCol::new(n as u32 - 1, 2))],
    });
    b.build()
}

/// A cyclic join graph (4-cycle) — exercises multiple parents per group,
/// the interesting case for reference counting and bounds.
pub fn cycle_query(c: &Catalog) -> QuerySpec {
    let mut b = QuerySpec::builder("cycle4");
    let l: Vec<_> = (0..4).map(|i| b.leaf(c, &format!("t{i}"))).collect();
    b.join(c, l[0], "b", l[1], "a");
    b.join(c, l[1], "b", l[2], "a");
    b.join(c, l[2], "b", l[3], "a");
    b.join(c, l[3], "b", l[0], "a");
    b.build()
}

/// Star query: `t3` (fact) joined to three dimensions.
pub fn star_query(c: &Catalog) -> QuerySpec {
    let mut b = QuerySpec::builder("star");
    let f = b.leaf(c, "t3");
    let d: Vec<_> = [0, 2, 5]
        .iter()
        .map(|&i| b.leaf(c, &format!("t{i}")))
        .collect();
    b.join(c, f, "a", d[0], "a");
    b.join(c, f, "b", d[1], "a");
    b.join(c, f, "c", d[2], "a");
    b.build()
}
