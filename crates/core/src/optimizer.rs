//! The incremental re-optimizer: delta propagation over the and-or
//! graph, implementing rules R6–R10 (cost estimation and plan selection)
//! with the three pruning strategies of §3 and the incremental
//! maintenance of §4.
//!
//! Execution model. Two work queues drive a fixpoint, with no constraint
//! on external update order (§3: "our solutions are valid for any
//! execution order"):
//! - a **cost queue**, drained in ascending topological order, refreshes
//!   `PlanCost` totals and `BestCost` aggregates (rules R6–R9, and the
//!   incremental cases 1–4 of §4.1 via the maintained cost-ordered
//!   state);
//! - a **bound queue**, drained in descending topological order,
//!   refreshes `MaxBound`/`Bound` (rules r1–r4) and re-evaluates
//!   suppression (§4.3 cases 1–3), which in turn adjusts reference
//!   counts and revives or tombstones groups (§4.2).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use reopt_catalog::Catalog;
use reopt_common::Cost;
use reopt_cost::{CostContext, ParamDelta};
use reopt_expr::{JoinGraph, PlanNode, QuerySpec};

use crate::config::PruningConfig;
use crate::memo::{AltId, GroupId, Memo};
use crate::metrics::{RunMetrics, StateMetrics};
use crate::state::{le_with_slack, AltState, GroupState};

/// Result of one (re)optimization fixpoint.
#[derive(Clone, Debug)]
pub struct Outcome {
    pub cost: Cost,
    pub plan: PlanNode,
    pub run: RunMetrics,
    pub state: StateMetrics,
}

/// The incremental declarative optimizer.
pub struct IncrementalOptimizer {
    q: QuerySpec,
    graph: JoinGraph,
    memo: Memo,
    ctx: CostContext,
    cfg: PruningConfig,
    groups: Vec<GroupState>,
    alts: Vec<AltState>,
    cost_queue: BinaryHeap<Reverse<u32>>,
    bound_queue: BinaryHeap<u32>,
    in_cost_queue: Vec<bool>,
    in_bound_queue: Vec<bool>,
    run: RunMetrics,
    epoch: u32,
    group_epoch: Vec<u32>,
    alt_epoch: Vec<u32>,
    initialized: bool,
    /// Union of every parameter ever changed: a revived group only needs
    /// its local costs recomputed where this union touches them (params
    /// outside it cannot have changed while the group was tombstoned).
    dirty_union: reopt_cost::AffectedSet,
}

impl IncrementalOptimizer {
    pub fn new(catalog: &Catalog, q: QuerySpec, cfg: PruningConfig) -> IncrementalOptimizer {
        let graph = JoinGraph::new(&q);
        let memo = Memo::build(&q, &graph);
        let ctx = CostContext::new(catalog, &q);
        let n_groups = memo.n_groups();
        let n_alts = memo.n_alts();
        let mut groups = vec![GroupState::default(); n_groups];
        // Initial reference counts: every alternative is live, so refs =
        // parent-edge count; the root gets an extra pin.
        for (gi, g) in groups.iter_mut().enumerate() {
            g.refs = memo.parents_of(GroupId(gi as u32)).len() as u32;
        }
        groups[memo.root.0 as usize].refs += 1;
        IncrementalOptimizer {
            q,
            graph,
            memo,
            ctx,
            cfg,
            groups,
            alts: vec![AltState::default(); n_alts],
            cost_queue: BinaryHeap::new(),
            bound_queue: BinaryHeap::new(),
            in_cost_queue: vec![false; n_groups],
            in_bound_queue: vec![false; n_groups],
            run: RunMetrics::default(),
            epoch: 0,
            group_epoch: vec![0; n_groups],
            alt_epoch: vec![0; n_alts],
            initialized: false,
            dirty_union: reopt_cost::AffectedSet::default(),
        }
    }

    pub fn query(&self) -> &QuerySpec {
        &self.q
    }

    pub fn config(&self) -> PruningConfig {
        self.cfg
    }

    pub fn memo(&self) -> &Memo {
        &self.memo
    }

    /// The query's join graph (connectivity the enumeration respected —
    /// rendered by `explain_join_graph`).
    pub fn join_graph(&self) -> &JoinGraph {
        &self.graph
    }

    pub fn cost_context(&self) -> &CostContext {
        &self.ctx
    }

    /// Initial optimization: derives the full space bottom-up, then lets
    /// suppression / reference counting / bounding collapse the state.
    pub fn optimize(&mut self) -> Outcome {
        self.begin_run();
        if !self.initialized {
            self.initialized = true;
            for gi in 0..self.memo.n_groups() as u32 {
                self.push_cost(GroupId(gi));
            }
        }
        self.process();
        self.outcome()
    }

    /// Incremental re-optimization under a batch of cost/cardinality
    /// updates (§4). Only state in the affected cone is recomputed.
    pub fn reoptimize(&mut self, deltas: &[ParamDelta]) -> Outcome {
        assert!(self.initialized, "call optimize() before reoptimize()");
        self.begin_run();
        let affected = self.ctx.apply(deltas);
        if affected.is_empty() {
            return self.outcome();
        }
        self.dirty_union
            .leaves_card
            .extend(affected.leaves_card.iter().copied());
        self.dirty_union
            .edges
            .extend(affected.edges.iter().copied());
        self.dirty_union
            .leaves_scan
            .extend(affected.leaves_scan.iter().copied());
        let mut pinned: Vec<GroupId> = Vec::new();
        if self.cfg.strict_revalidation {
            // Conservative completeness: revive (and pin) any reclaimed
            // group whose own parameters changed, and any reclaimed
            // child of an *affected frozen* alternative — its stale total
            // would otherwise never be revalidated against the change.
            let mut to_revive: Vec<GroupId> = Vec::new();
            for gi in 0..self.memo.n_groups() as u32 {
                let g = GroupId(gi);
                let expr = self.memo.group(g).expr;
                if !self.groups[gi as usize].live {
                    // A tombstoned group anywhere in the dependency cone
                    // (its expression contains a changed leaf or edge)
                    // may hold a stale best; revive the whole cone so
                    // changes cascade through dead ancestors too.
                    let in_cone = affected
                        .leaves_card
                        .iter()
                        .chain(affected.leaves_scan.iter())
                        .any(|l| expr.rel.contains(l.0))
                        || affected
                            .edges
                            .iter()
                            .any(|&e| self.ctx.edge_rels(e).is_subset_of(expr.rel));
                    if in_cone {
                        to_revive.push(g);
                    }
                    continue;
                }
                for a in self.memo.alts_of(g) {
                    if !self
                        .ctx
                        .alt_affected(expr, &self.memo.alt(a).spec, &affected)
                    {
                        continue;
                    }
                    // An affected *frozen* alternative: revive its dead
                    // children so its stale total gets revalidated.
                    for c in self.memo.alt(a).children() {
                        if !self.groups[c.0 as usize].live {
                            to_revive.push(c);
                        }
                    }
                }
            }
            for g in to_revive {
                if !self.groups[g.0 as usize].live {
                    self.revive(g);
                    self.groups[g.0 as usize].refs += 1; // pin
                    pinned.push(g);
                }
            }
        }
        for gi in 0..self.memo.n_groups() as u32 {
            let g = GroupId(gi);
            let expr = self.memo.group(g).expr;
            if !self.groups[gi as usize].live {
                continue;
            }
            let mut any = false;
            for a in self.memo.alts_of(g) {
                if self
                    .ctx
                    .alt_affected(expr, &self.memo.alt(a).spec, &affected)
                {
                    let s = &mut self.alts[a.0 as usize];
                    s.local_dirty = true;
                    s.dirty = true;
                    any = true;
                }
            }
            if any {
                self.push_cost(g);
            }
        }
        self.process();
        // Remove pins; anything no longer referenced is reclaimed again.
        for g in pinned {
            let gs = &mut self.groups[g.0 as usize];
            gs.refs -= 1;
            if gs.refs == 0 && self.cfg.ref_counting && g != self.memo.root {
                self.tombstone(g);
            }
        }
        self.process();
        self.outcome()
    }

    /// Current best cost at the root.
    pub fn best_cost(&self) -> Cost {
        self.groups[self.memo.root.0 as usize].best
    }

    /// Extracts the current best plan tree (the `BestPlan` closure).
    pub fn best_plan(&self) -> PlanNode {
        self.extract(self.memo.root)
    }

    /// State snapshot for the pruning-ratio metrics.
    pub fn state_metrics(&self) -> StateMetrics {
        let total_groups = self.memo.n_groups() as u64;
        let total_alts = self.memo.n_alts() as u64;
        let pruned_groups = self.groups.iter().filter(|g| !g.live).count() as u64;
        let live_alts = self
            .memo
            .alts
            .iter()
            .enumerate()
            .filter(|(ai, a)| {
                self.groups[a.group.0 as usize].live && self.alts[*ai].live
            })
            .count() as u64;
        StateMetrics {
            total_groups,
            total_alts,
            pruned_groups,
            pruned_alts: total_alts - live_alts,
        }
    }

    // ----- internals -------------------------------------------------

    fn begin_run(&mut self) {
        self.epoch += 1;
        self.run = RunMetrics::default();
    }

    fn outcome(&mut self) -> Outcome {
        self.validate_chosen_tree();
        Outcome {
            cost: self.best_cost(),
            plan: self.best_plan(),
            run: self.run,
            state: self.state_metrics(),
        }
    }

    fn push_cost(&mut self, g: GroupId) {
        if !self.in_cost_queue[g.0 as usize] {
            self.in_cost_queue[g.0 as usize] = true;
            self.cost_queue.push(Reverse(g.0));
        }
    }

    fn push_bound(&mut self, g: GroupId) {
        if self.cfg.recursive_bounding && !self.in_bound_queue[g.0 as usize] {
            self.in_bound_queue[g.0 as usize] = true;
            self.bound_queue.push(g.0);
        }
    }

    fn touch_group(&mut self, g: GroupId) {
        if self.group_epoch[g.0 as usize] != self.epoch {
            self.group_epoch[g.0 as usize] = self.epoch;
            self.run.touched_groups += 1;
        }
    }

    fn touch_alt(&mut self, a: AltId) {
        if self.alt_epoch[a.0 as usize] != self.epoch {
            self.alt_epoch[a.0 as usize] = self.epoch;
            self.run.touched_alts += 1;
        }
    }

    /// Main fixpoint loop: drain cost work bottom-up, then bound work
    /// top-down, until both queues are empty.
    fn process(&mut self) {
        let guard_limit = 10_000u64 * (self.memo.n_groups() as u64 + 10);
        let mut guard = 0u64;
        loop {
            guard += 1;
            assert!(
                guard < guard_limit,
                "optimizer fixpoint did not converge (bug): {} pops",
                self.run.queue_pops
            );
            if let Some(Reverse(g)) = self.cost_queue.pop() {
                self.in_cost_queue[g as usize] = false;
                self.refresh_group(GroupId(g));
                continue;
            }
            if let Some(g) = self.bound_queue.pop() {
                self.in_bound_queue[g as usize] = false;
                self.process_bound(GroupId(g));
                continue;
            }
            break;
        }
    }

    /// Rules R6–R9 for one group: recompute dirty `PlanCost` totals and
    /// the `BestCost` aggregate; propagate changes to parents (cost) and
    /// dependents (bounds); re-evaluate suppression.
    fn refresh_group(&mut self, g: GroupId) {
        self.run.queue_pops += 1;
        if !self.groups[g.0 as usize].live {
            return;
        }
        let def_expr = self.memo.group(g).expr;
        let def_prop = self.memo.group(g).prop;
        let mut local_changed_children: Vec<GroupId> = Vec::new();
        for a in self.memo.alts_of(g) {
            if !self.alts[a.0 as usize].dirty {
                continue;
            }
            // Frozen alternatives (a child group tombstoned) keep their
            // stale totals and their dirty flags: they are recomputed on
            // revival. Under strict revalidation a dirty frozen
            // alternative unfreezes on demand — its dead children are
            // revived so the recomputation can happen exactly (covers
            // cost changes arriving through its *live* children).
            let frozen_children: Vec<GroupId> = self
                .memo
                .alt(a)
                .children()
                .filter(|c| !self.groups[c.0 as usize].live)
                .collect();
            if !frozen_children.is_empty() {
                if self.cfg.strict_revalidation {
                    for c in frozen_children {
                        self.revive(c);
                    }
                    self.push_cost(g);
                }
                continue;
            }
            self.alts[a.0 as usize].dirty = false;
            if self.alts[a.0 as usize].local_dirty {
                self.alts[a.0 as usize].local_dirty = false;
                let new_local =
                    self.ctx
                        .local_cost(&self.q, def_expr, def_prop, &self.memo.alt(a).spec);
                if new_local != self.alts[a.0 as usize].local {
                    self.alts[a.0 as usize].local = new_local;
                    local_changed_children.extend(self.memo.alt(a).children());
                }
            }
            // Fn_sum(localCost, lBest, rBest) — rules R6/R7/R8.
            let mut total = self.alts[a.0 as usize].local;
            for c in self.memo.alt(a).children() {
                total += self.groups[c.0 as usize].best;
            }
            if total != self.alts[a.0 as usize].total {
                self.alts[a.0 as usize].total = total;
                self.touch_alt(a);
            }
        }
        // Rule R9: BestCost = min over *all* retained totals — the
        // paper's aggregate keeps every PlanCost tuple in its internal
        // queue, pruned or not, so frozen alternatives participate with
        // their last-known (stale) values. If a stale value wins, plan
        // extraction revalidates it (`validate_chosen_tree`), reviving
        // and re-pricing the subtree until the chosen tree is exact.
        let mut best = Cost::INFINITY;
        let mut best_alt = None;
        for a in self.memo.alts_of(g) {
            let t = self.alts[a.0 as usize].total;
            if t < best {
                best = t;
                best_alt = Some(a);
            }
        }
        let best_changed = best != self.groups[g.0 as usize].best;
        if best_changed {
            self.groups[g.0 as usize].best = best;
            self.groups[g.0 as usize].best_alt = best_alt;
            self.touch_group(g);
        } else {
            self.groups[g.0 as usize].best_alt = best_alt;
        }
        self.recompute_bound_value(g);
        self.refresh_liveness(g);
        if best_changed {
            // Parents' PlanCost totals depend on this BestCost (R7/R8
            // incremental joins).
            let parents = self.memo.parents_of(g).to_vec();
            for pa in parents {
                let pg = self.memo.alt(pa).group;
                if self.groups[pg.0 as usize].live {
                    self.alts[pa.0 as usize].dirty = true;
                    self.push_cost(pg);
                    // Sibling bounds depend on this best (r1/r2).
                    if self.alts[pa.0 as usize].live {
                        if let Some(sib) = self.memo.alt(pa).sibling(g) {
                            self.push_bound(sib);
                        }
                    }
                }
            }
            // bound(g) = min(best, mpb) may have changed: children's
            // parent-bounds depend on it.
            self.push_children_bounds(g);
        }
        for c in local_changed_children {
            self.push_bound(c);
        }
    }

    /// Rules r1–r4 for one group: recompute `MaxBound` from live parent
    /// plans and `Bound`; on change, re-evaluate suppression and push
    /// the children.
    fn process_bound(&mut self, g: GroupId) {
        self.run.queue_pops += 1;
        if !self.groups[g.0 as usize].live || !self.cfg.recursive_bounding {
            return;
        }
        let mut mpb = if g == self.memo.root {
            Cost::INFINITY
        } else {
            // r1/r2: ParentBound = parent bound − sibling best − local;
            // r3: MaxBound = max over parent plans. No live parent
            // derivations ⇒ unconstrained (the paper's MaxBound simply
            // has no tuples, so Bound falls back to BestCost via r4).
            let mut any = false;
            let mut m = Cost::ZERO;
            for &pa in self.memo.parents_of(g) {
                let pg = self.memo.alt(pa).group;
                if !self.groups[pg.0 as usize].live || !self.alts[pa.0 as usize].live {
                    continue;
                }
                let parent_bound = self.groups[pg.0 as usize].bound;
                let sibling_best = self
                    .memo
                    .alt(pa)
                    .sibling(g)
                    .map_or(Cost::ZERO, |s| self.groups[s.0 as usize].best);
                let allowance = parent_bound - sibling_best - self.alts[pa.0 as usize].local;
                if !any || allowance > m {
                    m = allowance;
                    any = true;
                }
            }
            if any {
                m
            } else {
                Cost::INFINITY
            }
        };
        // Bounds never constrain below zero in a non-negative cost model;
        // clamping avoids chasing meaningless negative allowances.
        mpb = mpb.max(Cost::ZERO);
        self.groups[g.0 as usize].mpb = mpb;
        let new_bound = self.groups[g.0 as usize].best.min(mpb);
        if new_bound != self.groups[g.0 as usize].bound {
            self.groups[g.0 as usize].bound = new_bound;
            self.touch_group(g);
            self.refresh_liveness(g);
            self.push_children_bounds(g);
        }
    }

    fn push_children_bounds(&mut self, g: GroupId) {
        if !self.cfg.recursive_bounding {
            return;
        }
        let alts: Vec<AltId> = self.memo.alts_of(g).collect();
        for a in alts {
            if self.alts[a.0 as usize].live {
                let children: Vec<GroupId> = self.memo.alt(a).children().collect();
                for c in children {
                    self.push_bound(c);
                }
            }
        }
    }

    fn recompute_bound_value(&mut self, g: GroupId) {
        let gs = &mut self.groups[g.0 as usize];
        gs.bound = if self.cfg.recursive_bounding {
            gs.best.min(gs.mpb)
        } else {
            gs.best
        };
    }

    /// Aggregate selection (§3.1) / bound pruning (§3.3): re-evaluate
    /// which alternatives are live against the current threshold, with
    /// reference-count side effects (§3.2). Re-introduction of
    /// previously suppressed state (§4.1/§4.3 cases) happens here too:
    /// a suppressed alternative whose (possibly stale) cost now passes
    /// the threshold flips back to live, re-adding references and
    /// triggering recomputation.
    fn refresh_liveness(&mut self, g: GroupId) {
        if !self.cfg.aggregate_selection || !self.groups[g.0 as usize].live {
            return;
        }
        let threshold = if self.cfg.recursive_bounding {
            self.groups[g.0 as usize].bound
        } else {
            self.groups[g.0 as usize].best
        };
        let alts: Vec<AltId> = self.memo.alts_of(g).collect();
        for a in alts {
            let should_live = le_with_slack(self.alts[a.0 as usize].total, threshold);
            if should_live == self.alts[a.0 as usize].live {
                continue;
            }
            self.alts[a.0 as usize].live = should_live;
            self.touch_alt(a);
            if should_live {
                // Re-introduction: undo tuple source suppression
                // (§4.1: "propagate an insertion to the previous
                // stage"). Recompute after any revived children settle.
                self.alts[a.0 as usize].dirty = true;
                self.push_cost(g);
            }
            let children: Vec<GroupId> = self.memo.alt(a).children().collect();
            if self.cfg.source_suppression {
                for &c in &children {
                    if should_live {
                        self.on_ref_inc(c);
                    } else {
                        self.on_ref_dec(c);
                    }
                }
            }
            // A ParentBound derivation (r1/r2) appeared or disappeared:
            // the children's MaxBound must be re-aggregated.
            for c in children {
                self.push_bound(c);
            }
        }
    }

    fn on_ref_inc(&mut self, g: GroupId) {
        self.groups[g.0 as usize].refs += 1;
        if self.groups[g.0 as usize].refs == 1
            && !self.groups[g.0 as usize].live
            && self.cfg.ref_counting
        {
            self.revive(g);
        }
    }

    fn on_ref_dec(&mut self, g: GroupId) {
        let gs = &mut self.groups[g.0 as usize];
        debug_assert!(gs.refs > 0, "reference count underflow on {g:?}");
        gs.refs -= 1;
        if gs.refs == 0 && self.cfg.ref_counting && g != self.memo.root {
            self.tombstone(g);
        }
    }

    /// §4.2, count 1→0: reclaim the group's state. Its last costs are
    /// retained (frozen) for later re-introduction checks.
    fn tombstone(&mut self, g: GroupId) {
        if !self.groups[g.0 as usize].live {
            return;
        }
        self.groups[g.0 as usize].live = false;
        self.run.tombstoned_groups += 1;
        self.touch_group(g);
        let alts: Vec<AltId> = self.memo.alts_of(g).collect();
        for a in alts {
            if self.alts[a.0 as usize].live {
                let children: Vec<GroupId> = self.memo.alt(a).children().collect();
                for c in children {
                    self.on_ref_dec(c);
                    // This group's ParentBound derivations vanish.
                    self.push_bound(c);
                }
            }
        }
    }

    /// §4.2, count 0→1: "recompute all of the physical plans associated
    /// with this expression-property pair".
    fn revive(&mut self, g: GroupId) {
        if self.groups[g.0 as usize].live {
            return;
        }
        self.groups[g.0 as usize].live = true;
        self.run.revived_groups += 1;
        self.touch_group(g);
        let expr = self.memo.group(g).expr;
        let alts: Vec<AltId> = self.memo.alts_of(g).collect();
        for a in alts {
            self.alts[a.0 as usize].dirty = true;
            if self
                .ctx
                .alt_affected(expr, &self.memo.alt(a).spec, &self.dirty_union)
            {
                self.alts[a.0 as usize].local_dirty = true;
            }
            if self.alts[a.0 as usize].live {
                let children: Vec<GroupId> = self.memo.alt(a).children().collect();
                for c in children {
                    self.on_ref_inc(c);
                    self.push_bound(c);
                }
            }
        }
        // Parents referencing this group had frozen totals; let them
        // recompute against the refreshed best.
        let parents = self.memo.parents_of(g).to_vec();
        for pa in parents {
            let pg = self.memo.alt(pa).group;
            if self.groups[pg.0 as usize].live {
                self.alts[pa.0 as usize].dirty = true;
                self.push_cost(pg);
            }
        }
        self.push_cost(g);
        self.push_bound(g);
    }

    /// The chosen plan tree must consist of live, non-frozen
    /// alternatives; at a converged fixpoint this holds by construction
    /// (bound(root) = best(root) and the equality telescopes down the
    /// tree). The loop is a safety net: if a frozen alternative is ever
    /// chosen (floating-point corner), revive its children and re-run.
    fn validate_chosen_tree(&mut self) {
        // Each iteration permanently de-stales at least one frozen
        // alternative (its total becomes exact for the current
        // parameters), so the loop terminates within |alts| rounds.
        let cap = self.memo.n_alts() + 64;
        for _ in 0..cap {
            match self.find_frozen_in_chosen_tree(self.memo.root) {
                None => return,
                Some(alt) => {
                    let children: Vec<GroupId> = self.memo.alt(alt).children().collect();
                    for c in children {
                        if !self.groups[c.0 as usize].live {
                            self.revive(c);
                        }
                    }
                    let pg = self.memo.alt(alt).group;
                    self.alts[alt.0 as usize].dirty = true;
                    self.push_cost(pg);
                    self.process();
                }
            }
        }
        panic!("chosen plan tree failed to validate (bug)");
    }

    fn find_frozen_in_chosen_tree(&self, g: GroupId) -> Option<AltId> {
        let best_alt = self.groups[g.0 as usize].best_alt?;
        for c in self.memo.alt(best_alt).children() {
            if !self.groups[c.0 as usize].live {
                return Some(best_alt);
            }
            if let Some(f) = self.find_frozen_in_chosen_tree(c) {
                return Some(f);
            }
        }
        None
    }

    fn extract(&self, g: GroupId) -> PlanNode {
        let def = self.memo.group(g);
        let best_alt = self.groups[g.0 as usize]
            .best_alt
            .unwrap_or_else(|| panic!("no plan for group {:?} ({:?})", g, def.expr));
        let alt = self.memo.alt(best_alt);
        PlanNode {
            expr: def.expr,
            prop: def.prop,
            op: alt.op,
            children: alt.children().map(|c| self.extract(c)).collect(),
        }
    }

    // Test/diagnostic accessors.
    pub(crate) fn group_state(&self, g: GroupId) -> &GroupState {
        &self.groups[g.0 as usize]
    }

    pub(crate) fn alt_state(&self, a: AltId) -> &AltState {
        &self.alts[a.0 as usize]
    }

    // Corruption hooks for the invariant-checker tests: hand-damaging
    // converged state is the only way to prove each check can fire.
    #[cfg(test)]
    pub(crate) fn group_state_mut(&mut self, g: GroupId) -> &mut GroupState {
        &mut self.groups[g.0 as usize]
    }

    #[cfg(test)]
    pub(crate) fn alt_state_mut(&mut self, a: AltId) -> &mut AltState {
        &mut self.alts[a.0 as usize]
    }

    /// Recomputes an alternative's local cost from the cost context
    /// (invariant checking).
    pub(crate) fn recompute_local(
        &mut self,
        q: &QuerySpec,
        g: GroupId,
        spec: &reopt_expr::AltSpec,
    ) -> Cost {
        let (expr, prop) = {
            let d = self.memo.group(g);
            (d.expr, d.prop)
        };
        self.ctx.local_cost(q, expr, prop, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{agg_chain_query, chain_query, cycle_query, fixture_catalog, star_query};
    use reopt_baselines::optimize_system_r;
    use reopt_common::FxHashSet;
    use reopt_expr::{EdgeId, LeafId};

    fn all_configs() -> Vec<PruningConfig> {
        vec![
            PruningConfig::none(),
            PruningConfig::evita_raced(),
            PruningConfig::aggsel(),
            PruningConfig::aggsel_refcount(),
            PruningConfig::aggsel_bounding(),
            PruningConfig::all(),
            PruningConfig::all_strict(),
        ]
    }

    fn fixture_queries() -> Vec<QuerySpec> {
        let c = fixture_catalog();
        vec![
            chain_query(&c, 2),
            chain_query(&c, 3),
            chain_query(&c, 5),
            agg_chain_query(&c, 4),
            cycle_query(&c),
            star_query(&c),
        ]
    }

    /// Reference optimum on the *current* parameters of a fresh context
    /// with the same deltas applied.
    fn reference_cost(q: &QuerySpec, deltas: &[ParamDelta]) -> Cost {
        let c = fixture_catalog();
        let g = JoinGraph::new(q);
        let mut ctx = CostContext::new(&c, q);
        ctx.apply(deltas);
        optimize_system_r(q, &g, &mut ctx).cost
    }

    #[test]
    fn initial_optimization_is_optimal_under_every_config() {
        for q in fixture_queries() {
            let want = reference_cost(&q, &[]);
            for cfg in all_configs() {
                let c = fixture_catalog();
                let mut opt = IncrementalOptimizer::new(&c, q.clone(), cfg);
                let out = opt.optimize();
                assert!(
                    out.cost.approx_eq(want),
                    "{} under {}: got {:?}, want {want:?}",
                    q.name,
                    cfg.label(),
                    out.cost
                );
                opt.check_invariants()
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", q.name, cfg.label()));
            }
        }
    }

    #[test]
    fn full_pruning_collapses_state_to_the_optimal_plan_tree() {
        // Paper §3.2: "by the end of the process, the combination of
        // aggregate selection and reference counts ensure SearchSpace
        // and PlanCost only contain those plans that are on the final
        // optimal plan tree."
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut opt = IncrementalOptimizer::new(&c, q, PruningConfig::all());
        let out = opt.optimize();
        let mut tree_groups: FxHashSet<(reopt_expr::ExprId, reopt_expr::PhysProp)> =
            FxHashSet::default();
        let mut stack = vec![&out.plan];
        while let Some(n) = stack.pop() {
            tree_groups.insert((n.expr, n.prop));
            stack.extend(n.children.iter());
        }
        for gi in 0..opt.memo().n_groups() as u32 {
            let g = GroupId(gi);
            let live = opt.group_state(g).live;
            let def = opt.memo().group(g);
            let in_tree = tree_groups.contains(&(def.expr, def.prop));
            assert_eq!(
                live, in_tree,
                "group {:?}/{} live={live} but in_tree={in_tree}",
                def.expr, def.prop
            );
        }
        // And every surviving alternative is (tied-)optimal for its
        // group: exact cost ties may keep more than one alternative, but
        // nothing worse than the best survives.
        for gi in 0..opt.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !opt.group_state(g).live {
                continue;
            }
            let best = opt.group_state(g).best;
            for a in opt.memo().alts_of(g).collect::<Vec<_>>() {
                if opt.alt_state(a).live {
                    assert!(
                        crate::state::le_with_slack(opt.alt_state(a).total, best),
                        "suboptimal live alternative {a:?}"
                    );
                }
            }
        }
        let live_alts = opt.memo().n_alts() as u64 - out.state.pruned_alts;
        assert!(live_alts as usize >= tree_groups.len());
    }

    #[test]
    fn evita_raced_never_prunes_plan_table_entries() {
        // Fig 4(b): the Evita-Raced strategy's plan-table pruning is 0.
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut opt = IncrementalOptimizer::new(&c, q, PruningConfig::evita_raced());
        let out = opt.optimize();
        assert_eq!(out.state.pruned_groups, 0);
        assert!(out.state.pruned_alts > 0, "aggregate selection inactive");
    }

    #[test]
    fn aggsel_without_refcount_keeps_groups() {
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        for cfg in [PruningConfig::aggsel(), PruningConfig::aggsel_bounding()] {
            let mut opt = IncrementalOptimizer::new(&c, q.clone(), cfg);
            let out = opt.optimize();
            assert_eq!(out.state.pruned_groups, 0, "{}", cfg.label());
            assert!(out.state.pruned_alts > 0);
        }
    }

    #[test]
    fn pruning_strictly_increases_across_the_ablation() {
        // Fig 7(c): each technique adds pruning capability.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let ratios: Vec<f64> = [
            PruningConfig::evita_raced(),
            PruningConfig::aggsel_refcount(),
            PruningConfig::all(),
        ]
        .into_iter()
        .map(|cfg| {
            let mut opt = IncrementalOptimizer::new(&c, q.clone(), cfg);
            opt.optimize().state.alt_pruning_ratio()
        })
        .collect();
        assert!(
            ratios.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "{ratios:?}"
        );
        assert!(ratios[2] > 0.5, "All config prunes most alternatives");
    }

    #[test]
    fn reoptimize_cost_increase_matches_reference_under_every_config() {
        let c = fixture_catalog();
        for q in fixture_queries() {
            // Increase every kind of parameter, one at a time.
            let batches: Vec<Vec<ParamDelta>> = vec![
                vec![ParamDelta::EdgeSelectivity(EdgeId(0), 8.0)],
                vec![ParamDelta::LeafCardinality(LeafId(1), 4.0)],
                vec![ParamDelta::LeafScanCost(LeafId(0), 6.0)],
                vec![
                    ParamDelta::EdgeSelectivity(EdgeId(0), 8.0),
                    ParamDelta::LeafScanCost(LeafId(2), 3.0),
                ],
            ];
            for cfg in all_configs() {
                for batch in &batches {
                    let mut opt = IncrementalOptimizer::new(&c, q.clone(), cfg);
                    opt.optimize();
                    let out = opt.reoptimize(batch);
                    let want = reference_cost(&q, batch);
                    assert!(
                        out.cost.approx_eq(want),
                        "{} under {} after {batch:?}: got {:?}, want {want:?}",
                        q.name,
                        cfg.label(),
                        out.cost
                    );
                    opt.check_invariants()
                        .unwrap_or_else(|e| panic!("{} under {}: {e}", q.name, cfg.label()));
                }
            }
        }
    }

    #[test]
    fn reoptimize_cost_decrease_matches_reference_without_tombstones() {
        // Without reference counting every group stays maintained, so
        // arbitrary (including decreasing) updates stay exact.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let batch = vec![
            ParamDelta::EdgeSelectivity(EdgeId(2), 0.125),
            ParamDelta::LeafScanCost(LeafId(3), 0.25),
        ];
        for cfg in [
            PruningConfig::none(),
            PruningConfig::evita_raced(),
            PruningConfig::aggsel(),
            PruningConfig::aggsel_bounding(),
            PruningConfig::all_strict(),
        ] {
            let mut opt = IncrementalOptimizer::new(&c, q.clone(), cfg);
            opt.optimize();
            let out = opt.reoptimize(&batch);
            let want = reference_cost(&q, &batch);
            assert!(
                out.cost.approx_eq(want),
                "under {}: got {:?}, want {want:?}",
                cfg.label(),
                out.cost
            );
            opt.check_invariants().unwrap();
        }
    }

    #[test]
    fn reoptimize_triggers_plan_switch_and_revival() {
        // Make the currently chosen plan drastically worse; the
        // optimizer must re-introduce previously pruned state (§4) and
        // land on the reference optimum.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        let initial = opt.optimize();
        // Find an edge actually used early in the chosen plan and blow
        // up its selectivity.
        let batch = vec![ParamDelta::EdgeSelectivity(EdgeId(1), 8.0)];
        let out = opt.reoptimize(&batch);
        let want = reference_cost(&q, &batch);
        assert!(out.cost.approx_eq(want), "got {:?} want {want:?}", out.cost);
        assert!(out.cost > initial.cost);
        assert!(
            out.run.revived_groups > 0 || out.plan.fingerprint() == initial.plan.fingerprint(),
            "plan changed without revivals under full pruning"
        );
        opt.check_invariants().unwrap();
    }

    #[test]
    fn incremental_update_touches_a_fraction_of_state() {
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut opt = IncrementalOptimizer::new(&c, q, PruningConfig::all());
        let init = opt.optimize();
        // Initial run touches everything.
        assert_eq!(init.run.touched_groups, init.state.total_groups);
        // A scan-cost tweak on one leaf touches only its cone.
        let out = opt.reoptimize(&[ParamDelta::LeafScanCost(LeafId(4), 1.3)]);
        assert!(
            out.run.touched_alts < init.state.total_alts / 2,
            "touched {} of {}",
            out.run.touched_alts,
            init.state.total_alts
        );
    }

    #[test]
    fn empty_delta_batch_is_a_noop() {
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let mut opt = IncrementalOptimizer::new(&c, q, PruningConfig::all());
        let first = opt.optimize();
        let out = opt.reoptimize(&[]);
        assert_eq!(out.run.touched_groups, 0);
        assert_eq!(out.run.touched_alts, 0);
        assert_eq!(out.cost, first.cost);
        // Re-applying an already-set factor is also a no-op.
        opt.reoptimize(&[ParamDelta::LeafScanCost(LeafId(0), 2.0)]);
        let again = opt.reoptimize(&[ParamDelta::LeafScanCost(LeafId(0), 2.0)]);
        assert_eq!(again.run.touched_alts, 0);
    }

    #[test]
    fn repeated_reoptimization_converges_to_quiescence() {
        // Fig 9's shape: once parameters stop changing, incremental
        // re-optimization cost drops to (near) zero.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut opt = IncrementalOptimizer::new(&c, q, PruningConfig::all());
        opt.optimize();
        let mut pops = Vec::new();
        for round in 0..5 {
            // Same factor every round: only round 0 changes anything.
            let out = opt.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(0), 2.0)]);
            pops.push(out.run.queue_pops);
            if round > 0 {
                assert_eq!(out.run.queue_pops, 0, "round {round}: {pops:?}");
            }
        }
        assert!(pops[0] > 0);
    }

    #[test]
    fn updates_applied_in_sequence_match_fresh_optimizer() {
        let c = fixture_catalog();
        let q = star_query(&c);
        let mut opt = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all_strict());
        opt.optimize();
        let seq: Vec<Vec<ParamDelta>> = vec![
            vec![ParamDelta::EdgeSelectivity(EdgeId(0), 4.0)],
            vec![ParamDelta::LeafCardinality(LeafId(2), 0.2)],
            vec![ParamDelta::LeafScanCost(LeafId(0), 5.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(0), 0.5)],
        ];
        let mut cumulative: Vec<ParamDelta> = Vec::new();
        for batch in seq {
            cumulative.retain(|d| {
                !batch.iter().any(|b| {
                    std::mem::discriminant(b) == std::mem::discriminant(d)
                        && match (b, d) {
                            (
                                ParamDelta::EdgeSelectivity(x, _),
                                ParamDelta::EdgeSelectivity(y, _),
                            ) => x == y,
                            (
                                ParamDelta::LeafCardinality(x, _),
                                ParamDelta::LeafCardinality(y, _),
                            ) => x == y,
                            (ParamDelta::LeafScanCost(x, _), ParamDelta::LeafScanCost(y, _)) => {
                                x == y
                            }
                            _ => false,
                        }
                })
            });
            cumulative.extend(batch.iter().copied());
            let out = opt.reoptimize(&batch);
            let want = reference_cost(&q, &cumulative);
            assert!(
                out.cost.approx_eq(want),
                "after {cumulative:?}: got {:?} want {want:?}",
                out.cost
            );
            opt.check_invariants().unwrap();
        }
    }
}
