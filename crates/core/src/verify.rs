//! Fixpoint invariant checking — used throughout the test suite to make
//! sure every converged state is internally consistent, whatever the
//! update sequence and pruning configuration.

use reopt_common::Cost;

use crate::memo::{AltId, GroupId};
use crate::optimizer::IncrementalOptimizer;
use crate::state::le_with_slack;

impl IncrementalOptimizer {
    /// Checks all state invariants at a (supposed) fixpoint. Returns a
    /// description of the first violation, if any.
    pub fn check_invariants(&mut self) -> Result<(), String> {
        self.check_refcounts()?;
        self.check_costs()?;
        self.check_liveness()?;
        self.check_bounds()?;
        Ok(())
    }

    /// §3.2: a group's reference count equals the number of live parent
    /// alternatives in live groups (plus the root pin); with source
    /// suppression off, every parent alternative keeps its reference.
    fn check_refcounts(&mut self) -> Result<(), String> {
        let suppression = self.config().source_suppression;
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            let mut expected: u32 = 0;
            for &pa in self.memo().parents_of(g) {
                let pg = self.memo().alt(pa).group;
                let counts = if suppression {
                    self.group_state(pg).live && self.alt_state(pa).live
                } else {
                    true
                };
                if counts {
                    expected += 1;
                }
            }
            if g == self.memo().root {
                expected += 1;
            }
            let got = self.group_state(g).refs;
            if got != expected {
                return Err(format!(
                    "refcount mismatch on {g:?}: stored {got}, recomputed {expected}"
                ));
            }
        }
        Ok(())
    }

    /// R6–R9: live, non-frozen alternatives have exact local and total
    /// costs, and the group best is their minimum.
    fn check_costs(&mut self) -> Result<(), String> {
        let q = self.query().clone();
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !self.group_state(g).live {
                continue;
            }
            let (expr, prop) = {
                let d = self.memo().group(g);
                (d.expr, d.prop)
            };
            let mut best = Cost::INFINITY;
            let alts: Vec<AltId> = self.memo().alts_of(g).collect();
            for a in alts {
                let frozen = {
                    let alt = self.memo().alt(a);
                    let dead: Vec<bool> = alt
                        .children()
                        .map(|c| !self.group_state(c).live)
                        .collect();
                    dead.iter().any(|&d| d)
                };
                if frozen {
                    // Frozen alternatives contribute their stale stored
                    // totals to the aggregate (the retained queue).
                    best = best.min(self.alt_state(a).total);
                    continue;
                }
                let spec = self.memo().alt(a).spec;
                let expect_local = self.recompute_local(&q, g, &spec);
                let got_local = self.alt_state(a).local;
                if got_local != expect_local {
                    return Err(format!(
                        "stale local cost on alt {a:?} of {expr:?}/{prop}: {got_local:?} vs {expect_local:?}"
                    ));
                }
                let mut expect_total = expect_local;
                for c in self.memo().alt(a).children().collect::<Vec<_>>() {
                    expect_total += self.group_state(c).best;
                }
                let got_total = self.alt_state(a).total;
                if got_total != expect_total {
                    return Err(format!(
                        "stale total on alt {a:?} of {expr:?}/{prop}: {got_total:?} vs {expect_total:?}"
                    ));
                }
                best = best.min(expect_total);
            }
            if self.group_state(g).best != best {
                return Err(format!(
                    "best mismatch on {g:?}: stored {:?}, recomputed {best:?}",
                    self.group_state(g).best
                ));
            }
        }
        Ok(())
    }

    /// §3.1/§3.3: alternative liveness agrees with the suppression
    /// threshold; frozen alternatives are never live.
    fn check_liveness(&mut self) -> Result<(), String> {
        if !self.config().aggregate_selection {
            return Ok(());
        }
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !self.group_state(g).live {
                continue;
            }
            let threshold = if self.config().recursive_bounding {
                self.group_state(g).bound
            } else {
                self.group_state(g).best
            };
            let alts: Vec<AltId> = self.memo().alts_of(g).collect();
            for a in alts {
                let frozen = self
                    .memo()
                    .alt(a)
                    .children()
                    .collect::<Vec<_>>()
                    .iter()
                    .any(|c| !self.group_state(*c).live);
                let live = self.alt_state(a).live;
                if frozen {
                    if live {
                        return Err(format!("frozen alternative {a:?} is live"));
                    }
                    continue;
                }
                let should = le_with_slack(self.alt_state(a).total, threshold);
                if live != should {
                    return Err(format!(
                        "liveness mismatch on alt {a:?}: live={live}, total={:?}, threshold={threshold:?}",
                        self.alt_state(a).total
                    ));
                }
            }
        }
        Ok(())
    }

    /// r1–r4: bound values are consistent with parents and bests.
    fn check_bounds(&mut self) -> Result<(), String> {
        if !self.config().recursive_bounding {
            return Ok(());
        }
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !self.group_state(g).live {
                continue;
            }
            let expect_mpb = self.recompute_mpb(g);
            let got = self.group_state(g).mpb;
            if got != expect_mpb {
                return Err(format!(
                    "mpb mismatch on {g:?}: stored {got:?}, recomputed {expect_mpb:?}"
                ));
            }
            let expect_bound = self.group_state(g).best.min(expect_mpb);
            if self.group_state(g).bound != expect_bound {
                return Err(format!(
                    "bound mismatch on {g:?}: stored {:?}, recomputed {expect_bound:?}",
                    self.group_state(g).bound
                ));
            }
        }
        Ok(())
    }

    fn recompute_mpb(&self, g: GroupId) -> Cost {
        if g == self.memo().root {
            return Cost::INFINITY;
        }
        let mut any = false;
        let mut m = Cost::ZERO;
        for &pa in self.memo().parents_of(g) {
            let pg = self.memo().alt(pa).group;
            if !self.group_state(pg).live || !self.alt_state(pa).live {
                continue;
            }
            let sibling_best = self
                .memo()
                .alt(pa)
                .sibling(g)
                .map_or(Cost::ZERO, |s| self.group_state(s).best);
            let allowance =
                self.group_state(pg).bound - sibling_best - self.alt_state(pa).local;
            if !any || allowance > m {
                m = allowance;
                any = true;
            }
        }
        if any {
            m.max(Cost::ZERO)
        } else {
            Cost::INFINITY
        }
    }
}

/// Each invariant checker must actually be able to fire: converge a
/// fixpoint, hand-corrupt exactly one piece of state, and assert the
/// checker reports that corruption (and nothing masked it). These are
/// the same checks the bridge's audit mode surfaces as
/// `DataflowError::InvariantViolation`.
#[cfg(test)]
mod tests {
    use reopt_common::Cost;

    use crate::fixtures::{chain_query, fixture_catalog};
    use crate::memo::{AltId, GroupId};
    use crate::optimizer::IncrementalOptimizer;
    use crate::PruningConfig;

    fn converged(cfg: PruningConfig) -> IncrementalOptimizer {
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut o = IncrementalOptimizer::new(&c, q, cfg);
        o.optimize();
        o.check_invariants()
            .expect("clean fixpoint before corruption");
        o
    }

    #[test]
    fn clean_fixpoints_pass_under_every_config() {
        for cfg in [
            PruningConfig::none(),
            PruningConfig::evita_raced(),
            PruningConfig::aggsel(),
            PruningConfig::aggsel_refcount(),
            PruningConfig::aggsel_bounding(),
            PruningConfig::all(),
            PruningConfig::all_strict(),
        ] {
            converged(cfg);
        }
    }

    #[test]
    fn corrupted_refcount_is_caught() {
        let mut o = converged(PruningConfig::aggsel());
        o.group_state_mut(GroupId(0)).refs += 1;
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("refcount mismatch"), "{msg}");
    }

    #[test]
    fn stale_local_cost_is_caught() {
        let mut o = converged(PruningConfig::none());
        let bad = o.alt_state(AltId(0)).local + Cost::new(1.0);
        o.alt_state_mut(AltId(0)).local = bad;
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("stale local cost"), "{msg}");
    }

    #[test]
    fn stale_total_is_caught() {
        let mut o = converged(PruningConfig::none());
        let bad = o.alt_state(AltId(0)).total + Cost::new(1.0);
        o.alt_state_mut(AltId(0)).total = bad;
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("stale total"), "{msg}");
    }

    #[test]
    fn corrupted_group_best_is_caught() {
        let mut o = converged(PruningConfig::none());
        // The root is nobody's child, so only its own check can fire.
        let root = o.memo().root;
        let bad = o.group_state(root).best + Cost::new(1.0);
        o.group_state_mut(root).best = bad;
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("best mismatch"), "{msg}");
    }

    #[test]
    fn corrupted_alt_liveness_is_caught() {
        // Aggregate selection without source suppression: liveness is
        // checked but never feeds the refcount recompute, so flipping a
        // childless (leaf) alternative trips exactly one checker.
        let mut o = converged(PruningConfig::evita_raced());
        let victim = (0..o.memo().n_groups() as u32)
            .flat_map(|gi| o.memo().alts_of(GroupId(gi)).collect::<Vec<_>>())
            .find(|&a| o.memo().alt(a).children().next().is_none() && o.alt_state(a).live)
            .expect("fixture has a live scan alternative");
        o.alt_state_mut(victim).live = false;
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("liveness mismatch"), "{msg}");
    }

    #[test]
    fn live_frozen_alternative_is_caught() {
        // Killing a group freezes every parent alternative referencing
        // it; a parent left live must be reported.
        let mut o = converged(PruningConfig::evita_raced());
        let victim = (0..o.memo().n_groups() as u32)
            .map(GroupId)
            .find(|&g| {
                g != o.memo().root
                    && o.memo()
                        .parents_of(g)
                        .iter()
                        .any(|&pa| o.alt_state(pa).live)
            })
            .expect("fixture has a referenced group with a live parent");
        o.group_state_mut(victim).live = false;
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("frozen alternative"), "{msg}");
    }

    #[test]
    fn corrupted_mpb_is_caught() {
        let mut o = converged(PruningConfig::aggsel_bounding());
        let victim = (0..o.memo().n_groups() as u32)
            .map(GroupId)
            .find(|&g| g != o.memo().root && o.group_state(g).live)
            .expect("fixture has a live non-root group");
        let cur = o.group_state(victim).mpb;
        o.group_state_mut(victim).mpb = if cur == Cost::INFINITY {
            Cost::new(7.0)
        } else {
            Cost::INFINITY
        };
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("mpb mismatch"), "{msg}");
    }

    #[test]
    fn corrupted_bound_is_caught() {
        // A leaf group's bound constrains no other group's mpb, and if
        // all its alternatives are live, *raising* the bound cannot flip
        // a liveness verdict — so only the bound check can fire.
        let mut o = converged(PruningConfig::aggsel_bounding());
        let victim = (0..o.memo().n_groups() as u32)
            .map(GroupId)
            .find(|&g| {
                o.group_state(g).live
                    && o.group_state(g).bound != Cost::INFINITY
                    && o.memo().alts_of(g).collect::<Vec<_>>().iter().all(|&a| {
                        o.alt_state(a).live && o.memo().alt(a).children().next().is_none()
                    })
            })
            .expect("fixture has a fully-live leaf group with a finite bound");
        let bad = o.group_state(victim).bound + Cost::new(1000.0);
        o.group_state_mut(victim).bound = bad;
        let msg = o.check_invariants().unwrap_err();
        assert!(msg.contains("bound mismatch"), "{msg}");
    }
}
