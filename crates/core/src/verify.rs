//! Fixpoint invariant checking — used throughout the test suite to make
//! sure every converged state is internally consistent, whatever the
//! update sequence and pruning configuration.

use reopt_common::Cost;

use crate::memo::{AltId, GroupId};
use crate::optimizer::IncrementalOptimizer;
use crate::state::le_with_slack;

impl IncrementalOptimizer {
    /// Checks all state invariants at a (supposed) fixpoint. Returns a
    /// description of the first violation, if any.
    pub fn check_invariants(&mut self) -> Result<(), String> {
        self.check_refcounts()?;
        self.check_costs()?;
        self.check_liveness()?;
        self.check_bounds()?;
        Ok(())
    }

    /// §3.2: a group's reference count equals the number of live parent
    /// alternatives in live groups (plus the root pin); with source
    /// suppression off, every parent alternative keeps its reference.
    fn check_refcounts(&mut self) -> Result<(), String> {
        let suppression = self.config().source_suppression;
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            let mut expected: u32 = 0;
            for &pa in self.memo().parents_of(g) {
                let pg = self.memo().alt(pa).group;
                let counts = if suppression {
                    self.group_state(pg).live && self.alt_state(pa).live
                } else {
                    true
                };
                if counts {
                    expected += 1;
                }
            }
            if g == self.memo().root {
                expected += 1;
            }
            let got = self.group_state(g).refs;
            if got != expected {
                return Err(format!(
                    "refcount mismatch on {g:?}: stored {got}, recomputed {expected}"
                ));
            }
        }
        Ok(())
    }

    /// R6–R9: live, non-frozen alternatives have exact local and total
    /// costs, and the group best is their minimum.
    fn check_costs(&mut self) -> Result<(), String> {
        let q = self.query().clone();
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !self.group_state(g).live {
                continue;
            }
            let (expr, prop) = {
                let d = self.memo().group(g);
                (d.expr, d.prop)
            };
            let mut best = Cost::INFINITY;
            let alts: Vec<AltId> = self.memo().alts_of(g).collect();
            for a in alts {
                let frozen = {
                    let alt = self.memo().alt(a);
                    let dead: Vec<bool> = alt
                        .children()
                        .map(|c| !self.group_state(c).live)
                        .collect();
                    dead.iter().any(|&d| d)
                };
                if frozen {
                    // Frozen alternatives contribute their stale stored
                    // totals to the aggregate (the retained queue).
                    best = best.min(self.alt_state(a).total);
                    continue;
                }
                let spec = self.memo().alt(a).spec;
                let expect_local = self.recompute_local(&q, g, &spec);
                let got_local = self.alt_state(a).local;
                if got_local != expect_local {
                    return Err(format!(
                        "stale local cost on alt {a:?} of {expr:?}/{prop}: {got_local:?} vs {expect_local:?}"
                    ));
                }
                let mut expect_total = expect_local;
                for c in self.memo().alt(a).children().collect::<Vec<_>>() {
                    expect_total += self.group_state(c).best;
                }
                let got_total = self.alt_state(a).total;
                if got_total != expect_total {
                    return Err(format!(
                        "stale total on alt {a:?} of {expr:?}/{prop}: {got_total:?} vs {expect_total:?}"
                    ));
                }
                best = best.min(expect_total);
            }
            if self.group_state(g).best != best {
                return Err(format!(
                    "best mismatch on {g:?}: stored {:?}, recomputed {best:?}",
                    self.group_state(g).best
                ));
            }
        }
        Ok(())
    }

    /// §3.1/§3.3: alternative liveness agrees with the suppression
    /// threshold; frozen alternatives are never live.
    fn check_liveness(&mut self) -> Result<(), String> {
        if !self.config().aggregate_selection {
            return Ok(());
        }
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !self.group_state(g).live {
                continue;
            }
            let threshold = if self.config().recursive_bounding {
                self.group_state(g).bound
            } else {
                self.group_state(g).best
            };
            let alts: Vec<AltId> = self.memo().alts_of(g).collect();
            for a in alts {
                let frozen = self
                    .memo()
                    .alt(a)
                    .children()
                    .collect::<Vec<_>>()
                    .iter()
                    .any(|c| !self.group_state(*c).live);
                let live = self.alt_state(a).live;
                if frozen {
                    if live {
                        return Err(format!("frozen alternative {a:?} is live"));
                    }
                    continue;
                }
                let should = le_with_slack(self.alt_state(a).total, threshold);
                if live != should {
                    return Err(format!(
                        "liveness mismatch on alt {a:?}: live={live}, total={:?}, threshold={threshold:?}",
                        self.alt_state(a).total
                    ));
                }
            }
        }
        Ok(())
    }

    /// r1–r4: bound values are consistent with parents and bests.
    fn check_bounds(&mut self) -> Result<(), String> {
        if !self.config().recursive_bounding {
            return Ok(());
        }
        for gi in 0..self.memo().n_groups() as u32 {
            let g = GroupId(gi);
            if !self.group_state(g).live {
                continue;
            }
            let expect_mpb = self.recompute_mpb(g);
            let got = self.group_state(g).mpb;
            if got != expect_mpb {
                return Err(format!(
                    "mpb mismatch on {g:?}: stored {got:?}, recomputed {expect_mpb:?}"
                ));
            }
            let expect_bound = self.group_state(g).best.min(expect_mpb);
            if self.group_state(g).bound != expect_bound {
                return Err(format!(
                    "bound mismatch on {g:?}: stored {:?}, recomputed {expect_bound:?}",
                    self.group_state(g).bound
                ));
            }
        }
        Ok(())
    }

    fn recompute_mpb(&self, g: GroupId) -> Cost {
        if g == self.memo().root {
            return Cost::INFINITY;
        }
        let mut any = false;
        let mut m = Cost::ZERO;
        for &pa in self.memo().parents_of(g) {
            let pg = self.memo().alt(pa).group;
            if !self.group_state(pg).live || !self.alt_state(pa).live {
                continue;
            }
            let sibling_best = self
                .memo()
                .alt(pa)
                .sibling(g)
                .map_or(Cost::ZERO, |s| self.group_state(s).best);
            let allowance =
                self.group_state(pg).bound - sibling_best - self.alt_state(pa).local;
            if !any || allowance > m {
                m = allowance;
                any = true;
            }
        }
        if any {
            m.max(Cost::ZERO)
        } else {
            Cost::INFINITY
        }
    }
}
