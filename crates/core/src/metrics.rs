//! Optimizer metrics: the quantities the paper's figures report.

/// Snapshot of optimizer *state* after a fixpoint: live vs pruned
/// entries. Pruning ratios (Figs 4b/4c, 7b/7c) are derived from these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateMetrics {
    /// Total "OR" nodes (plan-table entries) in the full space.
    pub total_groups: u64,
    /// Total "AND" nodes (plan alternatives) in the full space.
    pub total_alts: u64,
    /// Groups whose state was reclaimed (reference count zero).
    pub pruned_groups: u64,
    /// Alternatives suppressed by aggregate selection / bounding.
    pub pruned_alts: u64,
}

impl StateMetrics {
    /// Fig 4(b) / 7(b): fraction of plan-table entries pruned.
    pub fn group_pruning_ratio(&self) -> f64 {
        if self.total_groups == 0 {
            0.0
        } else {
            self.pruned_groups as f64 / self.total_groups as f64
        }
    }

    /// Fig 4(c) / 7(c): fraction of plan alternatives pruned.
    pub fn alt_pruning_ratio(&self) -> f64 {
        if self.total_alts == 0 {
            0.0
        } else {
            self.pruned_alts as f64 / self.total_alts as f64
        }
    }
}

/// Work performed by one (re)optimization run: the "update ratio"
/// numerators of Figs 5(b,c)/6(b,c) and the effort proxy behind the
/// running-time plots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Groups whose state (best cost, bound, liveness) was recomputed.
    pub touched_groups: u64,
    /// Alternatives whose cost was recomputed.
    pub touched_alts: u64,
    /// Groups revived from tombstoned state (§4.2 count 0→1).
    pub revived_groups: u64,
    /// Groups newly tombstoned (§4.2 count 1→0).
    pub tombstoned_groups: u64,
    /// Work-queue pops (total propagation effort).
    pub queue_pops: u64,
}

impl RunMetrics {
    /// Fig 5(b)/6(b): fraction of plan-table entries updated.
    pub fn group_update_ratio(&self, total_groups: u64) -> f64 {
        if total_groups == 0 {
            0.0
        } else {
            self.touched_groups as f64 / total_groups as f64
        }
    }

    /// Fig 5(c)/6(c): fraction of plan alternatives updated.
    pub fn alt_update_ratio(&self, total_alts: u64) -> f64 {
        if total_alts == 0 {
            0.0
        } else {
            self.touched_alts as f64 / total_alts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = StateMetrics {
            total_groups: 100,
            total_alts: 400,
            pruned_groups: 40,
            pruned_alts: 300,
        };
        assert!((s.group_pruning_ratio() - 0.4).abs() < 1e-12);
        assert!((s.alt_pruning_ratio() - 0.75).abs() < 1e-12);
        let r = RunMetrics {
            touched_groups: 10,
            touched_alts: 20,
            ..Default::default()
        };
        assert!((r.group_update_ratio(100) - 0.1).abs() < 1e-12);
        assert!((r.alt_update_ratio(400) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn empty_denominators_do_not_divide_by_zero() {
        assert_eq!(StateMetrics::default().group_pruning_ratio(), 0.0);
        assert_eq!(RunMetrics::default().alt_update_ratio(0), 0.0);
    }
}
