//! Volcano-style top-down optimization (Graefe & McKenna [12]):
//! goal-driven memoized search with branch-and-bound pruning. The cost
//! limit flows down the single recursive descent — the execution-order
//! restriction §3.3 of the paper contrasts with its order-independent
//! recursive bounding.

use reopt_common::{Cost, FxHashMap};
use reopt_cost::CostContext;
use reopt_expr::{AltSpec, ExprId, JoinGraph, PhysProp, PlanNode, QuerySpec, SplitCache};

use crate::result::{BaselineMetrics, OptResult};

/// Memo entry. `best` is the cheapest plan found with cost strictly
/// below the largest limit this group has been explored under
/// (`explored_limit`). Invariant: if `best` is `Some((c, _))` then `c`
/// is the group's true optimum (branch-and-bound only discards plans
/// that cannot beat an already-found one); if `best` is `None`, no plan
/// costs less than `explored_limit`.
#[derive(Clone, Debug)]
struct Entry {
    best: Option<(Cost, AltSpec)>,
    explored_limit: Cost,
}

struct Volcano<'a> {
    q: &'a QuerySpec,
    g: &'a JoinGraph,
    ctx: &'a mut CostContext,
    cache: SplitCache,
    memo: FxHashMap<(ExprId, PhysProp), Entry>,
    metrics: BaselineMetrics,
}

/// Runs top-down branch-and-bound optimization from the query root.
pub fn optimize_volcano(q: &QuerySpec, g: &JoinGraph, ctx: &mut CostContext) -> OptResult {
    let mut v = Volcano {
        q,
        g,
        ctx,
        cache: SplitCache::new(),
        memo: FxHashMap::default(),
        metrics: BaselineMetrics::default(),
    };
    let root = (q.root_expr(), PhysProp::Any);
    let cost = v
        .optimize_group(root.0, root.1, Cost::INFINITY)
        .unwrap_or_else(|| panic!("query `{}` has no feasible plan", q.name));
    v.metrics.groups_created = v.memo.len() as u64;
    let plan = v.extract(root.0, root.1);
    OptResult {
        cost,
        plan,
        metrics: v.metrics,
    }
}

impl Volcano<'_> {
    /// Returns the optimal cost for the group if it is below `limit`.
    fn optimize_group(&mut self, expr: ExprId, prop: PhysProp, limit: Cost) -> Option<Cost> {
        let first_visit = match self.memo.get(&(expr, prop)) {
            Some(e) => {
                match &e.best {
                    // A recorded best is the exact optimum.
                    Some((c, _)) => return (*c < limit).then_some(*c),
                    // Proven: nothing below explored_limit.
                    None if limit <= e.explored_limit => return None,
                    None => {} // must re-explore with the larger limit
                }
                false
            }
            None => true,
        };
        let alts = self.cache.get(self.q, self.g, expr, prop).to_vec();
        // Cost local operators first and explore cheapest-first: the
        // sooner a good plan is found, the tighter the bound (the paper's
        // observation that exploration order drives pruning quality).
        let mut ordered: Vec<(Cost, AltSpec)> = alts
            .iter()
            .map(|a| {
                if first_visit {
                    self.metrics.alts_costed += 1;
                }
                (self.ctx.local_cost(self.q, expr, prop, a), *a)
            })
            .collect();
        ordered.sort_by_key(|(c, _)| *c);
        let mut running = limit;
        let mut best: Option<(Cost, AltSpec)> = None;
        for (local, alt) in ordered {
            if local >= running {
                // Every remaining alternative is at least this expensive
                // locally; they could still win via cheaper children, so
                // prune only this one.
                if first_visit {
                    self.metrics.alts_pruned += 1;
                }
                continue;
            }
            let mut total = local;
            let mut feasible = true;
            for child in alt.children() {
                let budget = running - total;
                match self.optimize_group(child.expr, child.prop, budget) {
                    Some(c) => total += c,
                    None => {
                        feasible = false;
                        if first_visit {
                            self.metrics.alts_pruned += 1;
                        }
                        break;
                    }
                }
            }
            if feasible && total < running {
                running = total;
                best = Some((total, alt));
            }
        }
        let result = best.as_ref().map(|(c, _)| *c);
        let entry = self
            .memo
            .entry((expr, prop))
            .or_insert_with(|| Entry {
                best: None,
                explored_limit: Cost::ZERO,
            });
        entry.explored_limit = entry.explored_limit.max(limit);
        if best.is_some() {
            entry.best = best;
        }
        result
    }

    fn extract(&self, expr: ExprId, prop: PhysProp) -> PlanNode {
        let entry = &self.memo[&(expr, prop)];
        let (_, alt) = entry
            .best
            .as_ref()
            .expect("extracting group without a plan");
        let children = alt
            .children()
            .map(|c| self.extract(c.expr, c.prop))
            .collect();
        PlanNode {
            expr,
            prop,
            op: alt.op,
            children,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system_r::{full_space_size, optimize_system_r};
    use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};
    use reopt_cost::ParamDelta;
    use reopt_expr::EdgeId;

    fn chain_fixture(rows: &[f64]) -> (Catalog, QuerySpec) {
        let mut c = Catalog::new();
        for (i, &r) in rows.iter().enumerate() {
            let name = format!("t{i}");
            c.add_table(
                |id| {
                    TableBuilder::new(&name)
                        .int_col("a")
                        .int_col("b")
                        .index_on("a")
                        .build(id)
                },
                TableStats {
                    row_count: r,
                    columns: vec![ColumnStats::uniform_key(r); 2],
                },
            );
        }
        let mut b = QuerySpec::builder("chain");
        let leaves: Vec<_> = (0..rows.len())
            .map(|i| b.leaf(&c, &format!("t{i}")))
            .collect();
        for w in leaves.windows(2) {
            b.join(&c, w[0], "b", w[1], "a");
        }
        (c, b.build())
    }

    #[test]
    fn volcano_matches_dp_across_sizes() {
        for rows in [
            vec![10.0, 10_000.0],
            vec![100.0, 50.0, 20_000.0],
            vec![5.0, 500.0, 50.0, 5_000.0],
            vec![1000.0, 10.0, 10.0, 1000.0, 100.0],
        ] {
            let (c, q) = chain_fixture(&rows);
            let g = JoinGraph::new(&q);
            let mut ctx = CostContext::new(&c, &q);
            let dp = optimize_system_r(&q, &g, &mut ctx);
            let vol = optimize_volcano(&q, &g, &mut ctx);
            assert!(
                dp.cost.approx_eq(vol.cost),
                "rows={rows:?}: dp={:?} volcano={:?}\ndp plan:\n{}\nvolcano plan:\n{}",
                dp.cost,
                vol.cost,
                dp.plan,
                vol.plan
            );
        }
    }

    #[test]
    fn volcano_explores_no_more_than_the_full_space() {
        let (c, q) = chain_fixture(&[100.0, 1000.0, 10.0, 10_000.0]);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let vol = optimize_volcano(&q, &g, &mut ctx);
        let (groups, _) = full_space_size(&q, &g);
        assert!(vol.metrics.groups_created <= groups);
        assert!(vol.metrics.alts_pruned > 0, "B&B never pruned anything");
    }

    #[test]
    fn volcano_plan_cost_matches_reported_cost() {
        let (c, q) = chain_fixture(&[100.0, 1000.0, 10.0]);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let vol = optimize_volcano(&q, &g, &mut ctx);
        let recomputed = ctx.plan_cost(&q, &vol.plan);
        assert!(vol.cost.approx_eq(recomputed));
    }

    #[test]
    fn rerun_after_param_change_still_optimal() {
        let (c, q) = chain_fixture(&[100.0, 1000.0, 10.0, 500.0]);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let before = optimize_volcano(&q, &g, &mut ctx);
        ctx.apply(&[ParamDelta::EdgeSelectivity(EdgeId(1), 8.0)]);
        let vol = optimize_volcano(&q, &g, &mut ctx);
        let dp = optimize_system_r(&q, &g, &mut ctx);
        assert!(vol.cost.approx_eq(dp.cost));
        // The update made the middle join more expensive; cost rises.
        assert!(vol.cost > before.cost);
    }
}
