//! Procedural baseline optimizers, mirroring the paper's comparison
//! implementations (§5: "we implemented in Java a Volcano-style top-down
//! query optimizer and a System-R-style dynamic programming optimizer,
//! which reuse the histogram, cost estimation, and other core components
//! as our declarative optimizer").
//!
//! Both baselines here share `reopt-expr`'s enumeration (`Fn_split`) and
//! `reopt-cost`'s estimation with the declarative optimizer; only search
//! strategy, dataflow and pruning differ — which is exactly what the
//! paper's experiments compare.

pub mod result;
pub mod system_r;
pub mod volcano;

pub use result::{BaselineMetrics, OptResult};
pub use system_r::{full_space_size, optimize_system_r};
pub use volcano::optimize_volcano;
