//! System-R-style bottom-up dynamic programming (Selinger et al. [23]):
//! optimize every reachable `(expression, property)` group in ascending
//! expression-size order, keeping the best plan per group — interesting
//! orders included. Exact by the principle of optimality (paper
//! Proposition 5), so this doubles as the ground-truth reference the
//! other optimizers are validated against.

use reopt_common::Cost;
use reopt_cost::CostContext;
use reopt_expr::{AltSpec, GroupIdx, JoinGraph, PlanNode, QuerySpec, Space};

use crate::result::{BaselineMetrics, OptResult};

/// Runs bottom-up DP over the full reachable space.
pub fn optimize_system_r(q: &QuerySpec, g: &JoinGraph, ctx: &mut CostContext) -> OptResult {
    let space = Space::explore(q, g);
    let mut best: Vec<Option<(Cost, AltSpec)>> = vec![None; space.n_groups()];
    let mut metrics = BaselineMetrics::default();
    for &gi in space.topo_order() {
        let def = space.group(gi).clone();
        let mut group_best: Option<(Cost, AltSpec)> = None;
        for alt in &def.alts {
            metrics.alts_costed += 1;
            let local = ctx.local_cost(q, def.expr, def.prop, alt);
            let mut total = local;
            let mut feasible = true;
            for child in alt.children() {
                let ci = space
                    .lookup(child.expr, child.prop)
                    .expect("child group exists in reachable space");
                match &best[ci.0 as usize] {
                    Some((c, _)) => total += *c,
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible && group_best.as_ref().is_none_or(|(c, _)| total < *c) {
                group_best = Some((total, *alt));
            }
        }
        best[gi.0 as usize] = group_best;
    }
    metrics.groups_created = space.n_groups() as u64;
    let root = space.root();
    let (cost, _) = *best[root.0 as usize]
        .as_ref()
        .unwrap_or_else(|| panic!("query `{}` has no feasible plan", q.name));
    let plan = extract(&space, &best, root);
    OptResult {
        cost,
        plan,
        metrics,
    }
}

fn extract(space: &Space, best: &[Option<(Cost, AltSpec)>], gi: GroupIdx) -> PlanNode {
    let def = space.group(gi);
    let (_, alt) = best[gi.0 as usize]
        .as_ref()
        .expect("extracting a group with no plan");
    let children = alt
        .children()
        .map(|c| {
            let ci = space.lookup(c.expr, c.prop).expect("child group");
            extract(space, best, ci)
        })
        .collect();
    PlanNode {
        expr: def.expr,
        prop: def.prop,
        op: alt.op,
        children,
    }
}

/// Space-size denominators for the pruning-ratio metrics (Figs 4b/4c).
pub fn full_space_size(q: &QuerySpec, g: &JoinGraph) -> (u64, u64) {
    let space = Space::explore(q, g);
    (space.n_groups() as u64, space.n_alts() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volcano::optimize_volcano;
    use reopt_catalog::{Catalog, CmpOp, ColumnStats, Datum, TableBuilder, TableStats};

    pub(crate) fn star_catalog() -> Catalog {
        let mut c = Catalog::new();
        let mk_stats = |rows: f64, cols: usize| TableStats {
            row_count: rows,
            columns: (0..cols).map(|_| ColumnStats::uniform_key(rows)).collect(),
        };
        c.add_table(
            |id| {
                TableBuilder::new("fact")
                    .int_col("f_d1")
                    .int_col("f_d2")
                    .int_col("f_d3")
                    .int_col("f_val")
                    .build(id)
            },
            mk_stats(50_000.0, 4),
        );
        for (i, rows) in [(1u32, 100.0), (2, 1000.0), (3, 10.0)] {
            let name = format!("dim{i}");
            c.add_table(
                |id| {
                    TableBuilder::new(&name)
                        .int_col("d_key")
                        .int_col("d_attr")
                        .index_on("d_key")
                        .build(id)
                },
                mk_stats(rows, 2),
            );
        }
        c
    }

    pub(crate) fn star_query(c: &Catalog) -> QuerySpec {
        let mut b = QuerySpec::builder("star");
        let f = b.leaf(c, "fact");
        let d1 = b.leaf(c, "dim1");
        let d2 = b.leaf(c, "dim2");
        let d3 = b.leaf(c, "dim3");
        b.join(c, f, "f_d1", d1, "d_key");
        b.join(c, f, "f_d2", d2, "d_key");
        b.join(c, f, "f_d3", d3, "d_key");
        b.filter(c, d2, "d_attr", CmpOp::Lt, Datum::Int(100));
        b.build()
    }

    #[test]
    fn dp_produces_finite_optimal_plan() {
        let c = star_catalog();
        let q = star_query(&c);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let r = optimize_system_r(&q, &g, &mut ctx);
        assert!(r.cost.is_finite());
        assert_eq!(r.plan.expr, q.root_expr());
        // Plan cost recomputed from the tree matches the DP cost.
        let recomputed = ctx.plan_cost(&q, &r.plan);
        assert!(r.cost.approx_eq(recomputed), "{:?} vs {recomputed:?}", r.cost);
    }

    #[test]
    fn dp_covers_whole_space() {
        let c = star_catalog();
        let q = star_query(&c);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let r = optimize_system_r(&q, &g, &mut ctx);
        let (groups, alts) = full_space_size(&q, &g);
        assert_eq!(r.metrics.groups_created, groups);
        assert_eq!(r.metrics.alts_costed, alts);
    }

    #[test]
    fn volcano_and_system_r_agree_on_cost() {
        let c = star_catalog();
        let q = star_query(&c);
        let g = JoinGraph::new(&q);
        let mut ctx = CostContext::new(&c, &q);
        let dp = optimize_system_r(&q, &g, &mut ctx);
        let vol = optimize_volcano(&q, &g, &mut ctx);
        assert!(
            dp.cost.approx_eq(vol.cost),
            "dp={:?} volcano={:?}",
            dp.cost,
            vol.cost
        );
    }
}
