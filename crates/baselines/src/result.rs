//! Common result type for the baseline optimizers.

use reopt_common::Cost;
use reopt_expr::PlanNode;

/// Search-effort metrics, comparable with the declarative optimizer's.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineMetrics {
    /// Memo groups ("plan table entries", OR nodes) materialized.
    pub groups_created: u64,
    /// Alternatives ("AND" nodes) whose local cost was computed.
    pub alts_costed: u64,
    /// Alternatives skipped by branch-and-bound before full costing
    /// (Volcano only).
    pub alts_pruned: u64,
}

/// An optimization outcome.
#[derive(Clone, Debug)]
pub struct OptResult {
    pub cost: Cost,
    pub plan: PlanNode,
    pub metrics: BaselineMetrics,
}
