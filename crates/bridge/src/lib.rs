//! Bridge between the declarative rule specification (`reopt-core`'s
//! rule IR) and the delta-processing dataflow substrate
//! (`reopt-datalog`): a generic rule-program compiler and the
//! [`DataflowOptimizer`], the optimizer-as-a-materialized-view the
//! paper's §2/§4 describe.
//!
//! Two engines, one spec:
//! - `reopt_core::IncrementalOptimizer` executes rules R1–R10 as
//!   hand-rolled typed delta propagation (the authors' ~10K-line engine
//!   specialization, §5);
//! - [`DataflowOptimizer`] compiles the same program onto the generic
//!   batched dataflow engine and maintains it as a view, feeding §4's
//!   parameter updates in as base-relation deltas.
//!
//! Both are differentially tested to produce the same best-plan cost;
//! the `optimizer_dataflow` bench compares them head-to-head.

pub mod compile;
pub mod durable;
pub mod optimizer;

pub use compile::{CompileError, NetworkBuilder, RuleNetwork};
pub use optimizer::{
    dataflow_program, AuditMode, AuditOutcome, DataflowOptimizer, DataflowOutcome, RecoveryPath,
    RecoveryReport, DATAFLOW_RULES,
};
