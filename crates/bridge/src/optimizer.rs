//! The declarative optimizer, executed on the dataflow substrate.
//!
//! Where `reopt_core::IncrementalOptimizer` hand-rolls the propagation
//! of rules R1–R10 as typed delta queues over the and-or graph, this
//! module *compiles the rules and runs them*: the network below is the
//! executable elaboration of the paper's program, instantiated on
//! `reopt-datalog`'s batched delta engine.
//!
//! ## From the paper's rules to the executable program
//!
//! The paper rules ([`reopt_core::rules`], parsed by
//! [`reopt_core::rules_ir`]) elaborate as follows:
//!
//! - **D1–D3 ≙ R1–R5** (plan enumeration). `Fn_split` is the external
//!   function of R1–R3, backed by the interned [`Memo`] (the memoization
//!   of `Fn_split`/`Fn_nonscansummary` that §2.3 prescribes); it returns
//!   scan alternatives for leaves too, folding in R4/R5's `Fn_phyOp`,
//!   and returns nothing for `null` child slots, folding in the
//!   `Fn_isleaf` guards. The `Expr` base relation seeds the root
//!   `(expr, prop)` demand.
//! - **D6–D8 ≙ R6–R8** (cost estimation) after two standard rewrites:
//!   the summary/cost externals (`Fn_scansummary`, `Fn_scancost`,
//!   `Fn_nonscansummary`, `Fn_nonscancost`) collapse into a `LocalCost`
//!   *base relation* maintained from [`CostContext`] — §4's runtime
//!   updates arrive as deltas to exactly this relation — and the child
//!   `PlanCost` body atoms read `BestCost` instead, the paper's own §3.1
//!   aggregate-selection strategy (a plan's total uses its children's
//!   *best* costs). `Fn_sum` remains the external it is in R7/R8.
//! - **D9–D10 ≙ R9–R10** (plan selection), verbatim: a grouped `min<>`
//!   aggregate and the join back onto `PlanCost`.
//! - **B1–B5 ≙ r1–r4** (recursive bounding, Figure 3): the bound rules
//!   over the same 4-ary `LocalCost`. r1/r2 split into per-child rules
//!   (B1/B2 for two-child alternatives, B3 for one-child — the `null`
//!   child slot fails the `BestCost` join exactly as in D6–D8), B4 is
//!   r3's `max<>` aggregate and B5 is r4's scalar `min<a,b>` combine.
//!   `Bound` is a seeded derived relation: the driver maintains the
//!   root seed `Bound(root) = BestCost(root)` across epochs.
//!
//! ## Pruning (§3.3)
//!
//! Pruning authority lives in the driver: a deterministic DP mirror of
//! B1–B5 over the `LocalCost` mirror computes every group's exact best
//! cost bottom-up and its bound top-down, and every alternative whose
//! total exceeds its group's bound — except each group's argmin, which
//! keeps `BestCost`/`BestPlan` exact — is *excluded from the network's
//! `LocalCost` relation*. `SearchSpace` stays complete (enumeration is
//! not pruned, only costing), so the declarative engine skips the cost
//! propagation for hopeless alternatives exactly like the hand-rolled
//! pruned engine. On every reoptimize the driver recomputes the prune
//! set from the post-delta mirror and feeds the network the difference,
//! so a pruned alternative that becomes viable is re-costed and a newly
//! hopeless one is retracted. The in-network B1–B5 derivations are the
//! *parity diagnostic*: on an unpruned network the materialized `Bound`
//! sink must equal the driver's DP (pinned by tests).
//!
//! Column encoding: `expr` packs an [`ExprId`] (`rel` bits and the `agg`
//! flag) into an `Int`; `prop` is a dense index into the query's
//! property table; `index` is the global [`AltId`]; `logOp`/`phyOp` are
//! interned symbols; absent children are the shared `null` symbol, which
//! simply fails to join `BestCost` — that is how D6/D7/D8 partition the
//! alternatives by arity without any null-test externals.

use std::path::{Path, PathBuf};
use std::rc::Rc;

use reopt_catalog::Catalog;
use reopt_common::{Cost, FxHashMap};
use reopt_core::memo::{AltId, GroupId, Memo};
use reopt_core::rules_ir::{parse_rules, Rule};
use reopt_core::{IncrementalOptimizer, PruningConfig};
use reopt_cost::{CostContext, ParamDelta};
use reopt_datalog::{DataflowError, FaultPlan, Multiset, RunStats, Tuple, Val};
use reopt_expr::{ExprId, JoinGraph, PhysProp, PlanNode, QuerySpec};

use crate::compile::{null_value, NetworkBuilder, RuleNetwork};
use crate::durable;

/// The executable elaboration of the paper's rule program (see the
/// module docs for the R→D mapping).
pub const DATAFLOW_RULES: [&str; 13] = [
    "D1: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     Expr(expr,prop), Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "D2: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     SearchSpace(-,-,-,-,-,expr,prop,-,-), \
     Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "D3: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     SearchSpace(-,-,-,-,-,-,-,expr,prop), \
     Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "D6: PlanCost(expr,prop,index,cost) :- \
     SearchSpace(expr,prop,index,-,-,null,null,null,null), \
     LocalCost(expr,prop,index,cost);",
    // D7/D8 join `LocalCost` *before* the `BestCost` atoms: the driver
    // expresses pruning by withholding `LocalCost` rows, so putting it
    // first makes the (static) `SearchSpace ⋈ LocalCost` prefix a
    // live-alternatives filter. `BestCost` deltas — the hot traffic of
    // every reoptimization epoch — then probe an index that holds only
    // unpruned alternatives, and the prefix join sits outside the
    // recursive D6–D9 component. Joins are commutative, so the derived
    // tuples (and the `Fn_sum` evaluation order) are unchanged.
    "D7: PlanCost(expr,prop,index,cost) :- \
     SearchSpace(expr,prop,index,-,-,lExpr,lProp,null,null), \
     LocalCost(expr,prop,index,localCost), BestCost(lExpr,lProp,lCost), \
     Fn_sum(lCost,null,localCost,cost);",
    "D8: PlanCost(expr,prop,index,cost) :- \
     SearchSpace(expr,prop,index,-,-,lExpr,lProp,rExpr,rProp), \
     LocalCost(expr,prop,index,localCost), \
     BestCost(lExpr,lProp,lCost), BestCost(rExpr,rProp,rCost), \
     Fn_sum(lCost,rCost,localCost,cost);",
    "D9: BestCost(expr,prop,min<cost>) :- PlanCost(expr,prop,index,cost);",
    "D10: BestPlan(expr,prop,index,cost) :- \
     BestCost(expr,prop,cost), PlanCost(expr,prop,index,cost);",
    "B1: ParentBound(lExpr,lProp,bound-rCost-localCost) :- \
     Bound(expr,prop,bound), SearchSpace(expr,prop,index,-,-,lExpr,lProp,rExpr,rProp), \
     LocalCost(expr,prop,index,localCost), BestCost(rExpr,rProp,rCost);",
    "B2: ParentBound(rExpr,rProp,bound-lCost-localCost) :- \
     Bound(expr,prop,bound), SearchSpace(expr,prop,index,-,-,lExpr,lProp,rExpr,rProp), \
     LocalCost(expr,prop,index,localCost), BestCost(lExpr,lProp,lCost);",
    "B3: ParentBound(lExpr,lProp,bound-localCost) :- \
     Bound(expr,prop,bound), SearchSpace(expr,prop,index,-,-,lExpr,lProp,null,null), \
     LocalCost(expr,prop,index,localCost);",
    "B4: MaxBound(expr,prop,max<bound>) :- ParentBound(expr,prop,bound);",
    "B5: Bound(expr,prop,min<minCost,maxBound>) :- \
     BestCost(expr,prop,minCost), MaxBound(expr,prop,maxBound);",
];

/// The executable program in IR form.
pub fn dataflow_program() -> Vec<Rule> {
    parse_rules(DATAFLOW_RULES).expect("the executable rules parse (pinned by tests)")
}

/// Dense encoding of the physical-property column. Interior mutability
/// because the table is shared (`Rc`) with the `Fn_split` closure and
/// must keep assigning ids after the network is built: a `PhysProp`
/// first introduced by later reoptimization gets a fresh dense id on
/// first encode instead of panicking on the build-time map.
struct PropTable {
    by_prop: std::cell::RefCell<FxHashMap<PhysProp, i64>>,
    props: std::cell::RefCell<Vec<PhysProp>>,
}

impl PropTable {
    fn new(memo: &Memo) -> PropTable {
        let t = PropTable {
            by_prop: std::cell::RefCell::new(FxHashMap::default()),
            props: std::cell::RefCell::new(Vec::new()),
        };
        for g in &memo.groups {
            t.encode(g.prop);
        }
        t
    }

    /// The dense id of `p`, assigned on first sight (insert-on-miss).
    fn encode(&self, p: PhysProp) -> Val {
        if let Some(&i) = self.by_prop.borrow().get(&p) {
            return Val::Int(i);
        }
        let mut by_prop = self.by_prop.borrow_mut();
        let mut props = self.props.borrow_mut();
        let i = props.len() as i64;
        by_prop.insert(p, i);
        props.push(p);
        Val::Int(i)
    }

    /// The property behind a dense id (the `Fn_split` decode path).
    fn decode(&self, i: i64) -> PhysProp {
        self.props.borrow()[i as usize]
    }
}

fn encode_expr(e: ExprId) -> Val {
    Val::Int(((e.rel.0 as i64) << 1) | e.agg as i64)
}

/// Result of one dataflow (re)optimization fixpoint.
#[derive(Clone, Debug)]
pub struct DataflowOutcome {
    pub cost: Cost,
    pub plan: PlanNode,
    /// Substrate-level execution statistics for the run.
    pub stats: RunStats,
    /// How the epoch reached its committed fixpoint, including any
    /// failures absorbed along the way and the sampled audit verdict.
    pub recovery: RecoveryReport,
}

/// How a (re)optimization epoch reached its committed fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPath {
    /// The epoch committed on the first attempt.
    Committed,
    /// The first attempt failed; the substrate rolled back to the last
    /// committed fixpoint and a retry under a raised step budget
    /// replayed the same deltas to a committed fixpoint.
    RetriedAfterRollback,
    /// The retry failed too; the network was rebuilt from scratch from
    /// the memo and the `LocalCost` mirror (which already reflects every
    /// applied parameter delta), then evaluated fresh.
    RebuiltFromScratch,
    /// A restart restored the last durable checkpoint, replayed the WAL
    /// tail past its watermark, and passed post-restore verification —
    /// the incremental state survived the process boundary.
    RestoredFromCheckpoint,
    /// A restart found the durable checkpoint torn, truncated, corrupt,
    /// or failing post-restore verification; the optimizer degraded to a
    /// from-scratch optimize plus a full WAL replay. Slower, never wrong.
    RebuiltAfterCorruptCheckpoint,
}

/// Verdict of the sampled post-epoch audit (see [`AuditMode`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditOutcome {
    /// This epoch was not in the sample.
    NotSampled,
    /// The audited state matched a from-scratch recompute and every
    /// cross-engine invariant.
    Passed,
    /// The audit caught drift; the report carries the violation.
    Failed(DataflowError),
}

/// What happened on the way to the outcome the caller sees. Callers
/// always get a correct committed fixpoint; this reports how it was
/// reached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    pub path: RecoveryPath,
    /// Every epoch failure absorbed along the way, in order.
    pub errors: Vec<DataflowError>,
    pub audit: AuditOutcome,
}

impl RecoveryReport {
    fn committed() -> RecoveryReport {
        RecoveryReport {
            path: RecoveryPath::Committed,
            errors: Vec::new(),
            audit: AuditOutcome::NotSampled,
        }
    }

    /// True iff the epoch needed no recovery and no audit flagged it.
    pub fn is_clean(&self) -> bool {
        self.path == RecoveryPath::Committed
            && self.errors.is_empty()
            && !matches!(self.audit, AuditOutcome::Failed(_))
    }
}

/// Post-epoch audit sampling policy. The constructor default comes from
/// the `REOPT_AUDIT` environment variable: unset, `0`, `off` or `false`
/// disable auditing; `1` audits every epoch; any other integer `n`
/// audits every `n`-th epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditMode {
    Off,
    Every(u64),
}

impl AuditMode {
    pub fn from_env() -> AuditMode {
        match std::env::var("REOPT_AUDIT") {
            Err(_) => AuditMode::Off,
            Ok(v) => match v.trim() {
                "" | "0" | "off" | "false" => AuditMode::Off,
                s => AuditMode::Every(s.parse().unwrap_or(1).max(1)),
            },
        }
    }
}

/// The optimizer-as-a-view: rules compiled onto the dataflow substrate,
/// maintained incrementally under [`ParamDelta`] base-relation deltas.
pub struct DataflowOptimizer {
    q: QuerySpec,
    memo: Rc<Memo>,
    ctx: CostContext,
    props: Rc<PropTable>,
    net: RuleNetwork,
    /// Mirror of the `LocalCost` base relation, per [`AltId`] — the
    /// old value is needed to emit the retraction half of an update,
    /// and a from-scratch rebuild re-seeds the relation from it.
    local: Vec<Cost>,
    /// The [`CostContext::alt_affected`] predicate inverted at build
    /// time: parameter → alternatives it can touch, so a reoptimize
    /// visits candidates directly instead of scanning every alternative.
    dirty_index: DirtyIndex,
    initialized: bool,
    /// Kept so the audit can stand up an independent hand-rolled
    /// optimizer against pristine statistics.
    catalog: Catalog,
    /// Deduped log of every applied [`ParamDelta`] (factors are
    /// absolute, so per parameter only the last write matters) — the
    /// audit replays it on the shadow engine.
    applied: Vec<ParamDelta>,
    audit: AuditMode,
    epochs_seen: u64,
    /// Durable-directory state, armed by [`DataflowOptimizer::set_durable_dir`]
    /// (or by [`DataflowOptimizer::recover`]). `None` keeps the optimizer
    /// purely in-memory, exactly as before.
    durable: Option<Durable>,
    /// Driver-side pruning (the B1–B5 DP mirror; see module docs).
    pruning: Pruning,
    /// Cached [`topo_order`] of the (immutable) memo, reused by every
    /// per-epoch [`BoundDp::compute`].
    topo: Vec<GroupId>,
}

/// WAL bookkeeping for a durably armed optimizer.
struct Durable {
    dir: PathBuf,
    /// Next WAL record sequence number = intact records currently on
    /// disk; a checkpoint stores this as its replay watermark.
    wal_seq: u64,
}

/// Per-parameter candidate alternatives (see
/// [`DataflowOptimizer::reoptimize`]).
#[derive(Default)]
struct DirtyIndex {
    by_leaf_card: FxHashMap<u32, Vec<AltId>>,
    by_edge: FxHashMap<u32, Vec<AltId>>,
    by_leaf_scan: FxHashMap<u32, Vec<AltId>>,
}

impl DirtyIndex {
    /// Builds the inverted index by probing the live predicate with
    /// singleton affected sets — no duplicated dirty logic.
    fn build(memo: &Memo, ctx: &CostContext, q: &QuerySpec) -> DirtyIndex {
        use reopt_cost::AffectedSet;
        let mut idx = DirtyIndex::default();
        let probe = |affected: &AffectedSet, bucket: &mut Vec<AltId>| {
            for gi in 0..memo.n_groups() as u32 {
                let g = GroupId(gi);
                let expr = memo.group(g).expr;
                for a in memo.alts_of(g) {
                    if ctx.alt_affected(expr, &memo.alt(a).spec, affected) {
                        bucket.push(a);
                    }
                }
            }
        };
        for l in 0..q.n_leaves() {
            let leaf = reopt_expr::LeafId(l);
            let mut bucket = Vec::new();
            probe(
                &AffectedSet {
                    leaves_card: vec![leaf],
                    ..AffectedSet::default()
                },
                &mut bucket,
            );
            idx.by_leaf_card.insert(l, bucket);
            let mut bucket = Vec::new();
            probe(
                &AffectedSet {
                    leaves_scan: vec![leaf],
                    ..AffectedSet::default()
                },
                &mut bucket,
            );
            idx.by_leaf_scan.insert(l, bucket);
        }
        for e in 0..q.edges.len() as u32 {
            let mut bucket = Vec::new();
            probe(
                &AffectedSet {
                    edges: vec![reopt_expr::EdgeId(e)],
                    ..AffectedSet::default()
                },
                &mut bucket,
            );
            idx.by_edge.insert(e, bucket);
        }
        idx
    }
}

/// Driver-side pruning state: which alternatives are currently excluded
/// from the network's `LocalCost` relation, and the `Bound(root)` seed
/// value the network currently holds.
struct Pruning {
    enabled: bool,
    pruned: Vec<bool>,
    root_bound: Option<Cost>,
}

/// The DP mirror of rules B1–B5 (see the module docs): exact best cost
/// per group bottom-up, bound per group top-down. With `mask`, masked
/// alternatives contribute neither totals nor allowances — the state an
/// already-pruned network computes, used by the parity diagnostic; the
/// *pruning decision* always runs unmasked.
struct BoundDp {
    /// Total cost per alternative (`Fn_sum` association order, so the
    /// values agree bit-for-bit with the network's `PlanCost`).
    alt_cost: Vec<Cost>,
    /// Best total per group, and the alternative achieving it.
    best: Vec<Cost>,
    argmin: Vec<Option<AltId>>,
    /// `min(best, max over parent allowances)`; the root's is its best.
    /// `None` for a group no unmasked parent alternative bounds.
    bound: Vec<Option<Cost>>,
}

/// Postorder topological order of the memo's groups from the root:
/// children before parents. The memo is immutable after construction,
/// so the driver computes this once and reuses it for every per-epoch
/// [`BoundDp::compute`].
fn topo_order(memo: &Memo) -> Vec<GroupId> {
    let n_groups = memo.n_groups();
    let mut order: Vec<GroupId> = Vec::with_capacity(n_groups);
    let mut seen = vec![false; n_groups];
    let mut stack: Vec<(GroupId, bool)> = vec![(memo.root, false)];
    while let Some((g, expanded)) = stack.pop() {
        if expanded {
            order.push(g);
            continue;
        }
        // Expansion marks `seen`, not the push: a group pushed
        // before being reached again deeper in the DAG must still
        // be expanded at its deepest position so every child
        // precedes every parent in the postorder.
        if seen[g.0 as usize] {
            continue;
        }
        seen[g.0 as usize] = true;
        stack.push((g, true));
        for a in memo.alts_of(g) {
            for c in memo.alt(a).children() {
                if !seen[c.0 as usize] {
                    stack.push((c, false));
                }
            }
        }
    }
    order
}

impl BoundDp {
    /// `order` must be [`topo_order`] of the same memo (postorder:
    /// children before parents; its reverse visits parents first).
    fn compute(memo: &Memo, local: &[Cost], mask: Option<&[bool]>, order: &[GroupId]) -> BoundDp {
        let n_groups = memo.n_groups();
        let masked = |a: AltId| mask.is_some_and(|m| m[a.0 as usize]);
        let mut dp = BoundDp {
            alt_cost: vec![Cost::INFINITY; memo.n_alts()],
            best: vec![Cost::INFINITY; n_groups],
            argmin: vec![None; n_groups],
            bound: vec![None; n_groups],
        };
        for &g in order {
            for a in memo.alts_of(g) {
                if masked(a) {
                    continue;
                }
                let alt = memo.alt(a);
                // Fn_sum's association order: local, then left, right.
                let mut c = local[a.0 as usize];
                if let Some(l) = alt.left {
                    c += dp.best[l.0 as usize];
                }
                if let Some(r) = alt.right {
                    c += dp.best[r.0 as usize];
                }
                dp.alt_cost[a.0 as usize] = c;
                let gi = g.0 as usize;
                if c < dp.best[gi] {
                    dp.best[gi] = c;
                    dp.argmin[gi] = Some(a);
                }
            }
        }
        // Top-down: each group's bound is fixed before its children's
        // allowances are derived from it (reverse topological order).
        let mut max_bound: Vec<Option<Cost>> = vec![None; n_groups];
        let relax = |mb: &mut Option<Cost>, allowance: Cost| match mb {
            Some(prev) if *prev >= allowance => {}
            _ => *mb = Some(allowance),
        };
        for &g in order.iter().rev() {
            let gi = g.0 as usize;
            dp.bound[gi] = if g == memo.root {
                // The seeded `Bound(root)`: never settle for worse than
                // the best plan already known.
                Some(dp.best[gi])
            } else {
                // B5: min(minCost, maxBound); ties keep the first
                // argument, matching the scalar combine.
                max_bound[gi].map(|mb| if mb < dp.best[gi] { mb } else { dp.best[gi] })
            };
            let Some(b) = dp.bound[gi] else { continue };
            for a in memo.alts_of(g) {
                if masked(a) {
                    continue;
                }
                let alt = memo.alt(a);
                let local_cost = local[a.0 as usize];
                match (alt.left, alt.right) {
                    (Some(l), Some(r)) => {
                        // B1/B2 subtraction chains, in rule order.
                        let al = b - dp.best[r.0 as usize] - local_cost;
                        relax(&mut max_bound[l.0 as usize], al);
                        let ar = b - dp.best[l.0 as usize] - local_cost;
                        relax(&mut max_bound[r.0 as usize], ar);
                    }
                    (Some(l), None) => {
                        // B3: the single child gets the full remainder.
                        relax(&mut max_bound[l.0 as usize], b - local_cost);
                    }
                    _ => {}
                }
            }
        }
        dp
    }

    /// The prune set: alternatives costlier than their group's bound,
    /// except each group's argmin (so `BestCost` stays exact and plan
    /// extraction always finds a row per group).
    fn prune_set(&self, memo: &Memo) -> Vec<bool> {
        let mut pruned = vec![false; memo.n_alts()];
        for gi in 0..memo.n_groups() as u32 {
            let g = GroupId(gi);
            let Some(b) = self.bound[gi as usize] else {
                continue;
            };
            for a in memo.alts_of(g) {
                if self.alt_cost[a.0 as usize] > b && self.argmin[gi as usize] != Some(a) {
                    pruned[a.0 as usize] = true;
                }
            }
        }
        pruned
    }
}

impl DataflowOptimizer {
    pub fn new(catalog: &Catalog, q: QuerySpec) -> DataflowOptimizer {
        DataflowOptimizer::with_pruning(catalog, q, true)
    }

    /// Builds the optimizer with driver-side pruning on or off. Pruning
    /// is on by default; the unpruned build is the reference for the
    /// pruning differential and the `Bound` parity diagnostic.
    pub fn with_pruning(catalog: &Catalog, q: QuerySpec, pruning: bool) -> DataflowOptimizer {
        let graph = JoinGraph::new(&q);
        let memo = Rc::new(Memo::build(&q, &graph));
        let ctx = CostContext::new(catalog, &q);
        let props = Rc::new(PropTable::new(&memo));
        let net = build_network(Rc::clone(&memo), Rc::clone(&props));
        let local = vec![Cost::INFINITY; memo.n_alts()];
        let dirty_index = DirtyIndex::build(&memo, &ctx, &q);
        let topo = topo_order(&memo);
        let pruning = Pruning {
            enabled: pruning,
            pruned: vec![false; memo.n_alts()],
            root_bound: None,
        };
        DataflowOptimizer {
            q,
            memo,
            ctx,
            props,
            net,
            local,
            dirty_index,
            initialized: false,
            catalog: catalog.clone(),
            applied: Vec::new(),
            audit: AuditMode::from_env(),
            epochs_seen: 0,
            durable: None,
            pruning,
            topo,
        }
    }

    pub fn memo(&self) -> &Memo {
        &self.memo
    }

    pub fn cost_context(&self) -> &CostContext {
        &self.ctx
    }

    /// Initial evaluation: seed the `Expr` root demand and the full
    /// `LocalCost` relation, then run the network to fixpoint.
    pub fn optimize(&mut self) -> DataflowOutcome {
        if !self.initialized {
            self.initialized = true;
            for gi in 0..self.memo.n_groups() as u32 {
                let g = GroupId(gi);
                let (expr, prop) = {
                    let d = self.memo.group(g);
                    (d.expr, d.prop)
                };
                for a in self.memo.alts_of(g) {
                    let spec = self.memo.alt(a).spec;
                    self.local[a.0 as usize] = self.ctx.local_cost(&self.q, expr, prop, &spec);
                }
            }
            // One DP pass gives both the prune set (pruned builds) and
            // the `Bound(root)` seed (diagnostic builds; see
            // `seed_network` for why the seed is gated).
            let dp = BoundDp::compute(&self.memo, &self.local, None, &self.topo);
            if self.pruning.enabled {
                self.pruning.pruned = dp.prune_set(&self.memo);
            }
            self.pruning.root_bound = dp.bound[self.memo.root.0 as usize];
            self.seed_network();
        }
        let (stats, recovery) = self.run_recovering();
        self.outcome(stats, recovery)
    }

    /// Incremental re-optimization (§4): apply the parameter deltas to
    /// the cost context, re-evaluate the affected local costs, and feed
    /// the changes to the network as `LocalCost` base-relation deltas.
    pub fn reoptimize(&mut self, deltas: &[ParamDelta]) -> DataflowOutcome {
        assert!(self.initialized, "call optimize() before reoptimize()");
        // Write-ahead: the batch reaches the fsynced WAL before any of
        // its effects touch the network, so a crash at any later point
        // replays it. A failed append degrades to in-memory operation
        // for this batch and is reported, never panicked on.
        let wal_error = self.wal_append(deltas);
        self.record_applied(deltas);
        let affected = self.ctx.apply(deltas);
        if affected.is_empty() {
            let mut report = RecoveryReport::committed();
            report.errors.extend(wal_error);
            return self.outcome(RunStats::default(), report);
        }
        // Candidate alternatives straight from the inverted index —
        // equivalent to testing `alt_affected` on every alternative
        // (each predicate branch distributes over the affected set).
        let empty: Vec<AltId> = Vec::new();
        let mut candidates: Vec<AltId> = Vec::new();
        for l in &affected.leaves_card {
            candidates
                .extend_from_slice(self.dirty_index.by_leaf_card.get(&l.0).unwrap_or(&empty));
        }
        for e in &affected.edges {
            candidates.extend_from_slice(self.dirty_index.by_edge.get(&e.0).unwrap_or(&empty));
        }
        for l in &affected.leaves_scan {
            candidates
                .extend_from_slice(self.dirty_index.by_leaf_scan.get(&l.0).unwrap_or(&empty));
        }
        candidates.sort_unstable_by_key(|a| a.0);
        candidates.dedup();
        // Re-evaluate the candidates' local costs in the mirror first;
        // `old_values` remembers what the network currently holds for
        // the alternatives whose value changed.
        let mut old_values: FxHashMap<AltId, Cost> = FxHashMap::default();
        for a in candidates {
            let (expr, prop) = {
                let d = self.memo.group(self.memo.alt(a).group);
                (d.expr, d.prop)
            };
            let spec = self.memo.alt(a).spec;
            let new = self.ctx.local_cost(&self.q, expr, prop, &spec);
            let old = self.local[a.0 as usize];
            if new == old {
                continue;
            }
            self.local[a.0 as usize] = new;
            old_values.insert(a, old);
        }
        // All network deltas — value updates, prune retractions and
        // re-assertions, and the root Bound seed — flow through one
        // diffing pass so the network always mirrors the driver state.
        self.push_pruned_diff(&old_values);
        let (stats, mut recovery) = self.run_recovering();
        if let Some(e) = wal_error {
            recovery.errors.insert(0, e);
        }
        self.outcome(stats, recovery)
    }

    /// Runs the network to fixpoint behind the degradation ladder. The
    /// substrate already guarantees that a failed epoch rolls back to
    /// the last committed fixpoint with its input deltas re-queued, so
    /// each rung replays exactly the same epoch:
    ///
    /// 1. first attempt under the current step budget;
    /// 2. one retry under a ×4 budget (covers genuine fixpoint
    ///    overruns; the raise sticks so a workload that legitimately
    ///    outgrew the budget does not fail every subsequent epoch);
    /// 3. a from-scratch rebuild — fresh network from the memo,
    ///    re-seeded from the post-delta `LocalCost` mirror — which
    ///    leaves every trace of the poisoned instance behind.
    ///
    /// Callers always get a committed fixpoint plus a report of the
    /// failures absorbed on the way.
    fn run_recovering(&mut self) -> (RunStats, RecoveryReport) {
        let mut report = RecoveryReport::committed();
        let stats = match self.net.run() {
            Ok(stats) => stats,
            Err(first) => {
                report.errors.push(first);
                let budget = self.net.max_steps();
                self.net.set_max_steps(budget.saturating_mul(4));
                match self.net.run() {
                    Ok(stats) => {
                        report.path = RecoveryPath::RetriedAfterRollback;
                        stats
                    }
                    Err(second) => {
                        report.errors.push(second);
                        report.path = RecoveryPath::RebuiltFromScratch;
                        self.rebuild_from_scratch()
                    }
                }
            }
        };
        self.epochs_seen += 1;
        report.audit = self.maybe_audit();
        (stats, report)
    }

    /// The ladder's last rung: discard the poisoned network (and with
    /// it any armed fault plan or exhausted budget), compile a fresh
    /// one from the memo, and re-seed it from the `LocalCost` mirror —
    /// which already reflects every applied parameter delta, so the
    /// fresh fixpoint equals the one the incremental epoch should have
    /// produced.
    fn rebuild_from_scratch(&mut self) -> RunStats {
        self.net = build_network(Rc::clone(&self.memo), Rc::clone(&self.props));
        self.seed_network();
        self.net
            .run()
            .expect("a fresh fault-free network converges")
    }

    /// Seeds a freshly built network: the root `Expr` demand, the
    /// unpruned slice of the `LocalCost` relation from the mirror, and
    /// the `Bound(root)` seed when pruning is armed.
    fn seed_network(&mut self) {
        let root = self.memo.group(self.memo.root);
        self.net.insert(
            "Expr",
            Tuple::new(vec![encode_expr(root.expr), self.props.encode(root.prop)]),
        );
        for gi in 0..self.memo.n_groups() as u32 {
            let g = GroupId(gi);
            let (expr, prop) = {
                let d = self.memo.group(g);
                (d.expr, d.prop)
            };
            for a in self.memo.alts_of(g) {
                if self.pruning.pruned[a.0 as usize] {
                    continue;
                }
                let t = self.local_tuple(expr, prop, a, self.local[a.0 as usize]);
                self.net.insert("LocalCost", t);
            }
        }
        // The `Bound(root)` seed is planted only on unpruned builds,
        // where it drives the in-network B1–B5 derivation that the
        // parity diagnostic checks against the driver DP. On pruned
        // builds the driver DP is the pruning authority (it already
        // excluded the pruned `LocalCost` rows above) and the seed is
        // withheld: a maintained in-network bound would re-derive the
        // whole `Bound` relation every epoch — the root's best cost
        // moves on almost every update — turning each incremental
        // epoch into a full bound cascade for no additional pruning.
        if !self.pruning.enabled {
            if let Some(b) = self.pruning.root_bound {
                let t = self.bound_tuple(root.expr, root.prop, b);
                self.net.insert("Bound", t);
            }
        }
    }

    /// Recomputes the prune set from the post-delta mirror and feeds
    /// the network the difference: value updates for surviving
    /// alternatives, retractions for newly pruned ones, assertions for
    /// newly viable ones, and the root `Bound` seed update. The driver
    /// is the pruning authority — the DP runs over *all* alternatives,
    /// so an alternative the network never costed still re-enters the
    /// moment a delta makes it viable.
    fn push_pruned_diff(&mut self, old_values: &FxHashMap<AltId, Cost>) {
        let dp = BoundDp::compute(&self.memo, &self.local, None, &self.topo);
        let new_pruned = if self.pruning.enabled {
            dp.prune_set(&self.memo)
        } else {
            vec![false; self.memo.n_alts()]
        };
        let new_root_bound = dp.bound[self.memo.root.0 as usize];
        for gi in 0..self.memo.n_groups() as u32 {
            let g = GroupId(gi);
            let (expr, prop) = {
                let d = self.memo.group(g);
                (d.expr, d.prop)
            };
            for a in self.memo.alts_of(g) {
                let i = a.0 as usize;
                let was_in = !self.pruning.pruned[i];
                let now_in = !new_pruned[i];
                let nv = self.local[i];
                // What the network holds for a present row: the
                // pre-delta value for this batch's candidates, the
                // (unchanged) mirror value for everything else.
                let ov = old_values.get(&a).copied().unwrap_or(nv);
                match (was_in, now_in) {
                    (true, true) if ov != nv => {
                        let retract = self.local_tuple(expr, prop, a, ov);
                        let assert = self.local_tuple(expr, prop, a, nv);
                        self.net.delete("LocalCost", retract);
                        self.net.insert("LocalCost", assert);
                    }
                    (true, false) => {
                        let retract = self.local_tuple(expr, prop, a, ov);
                        self.net.delete("LocalCost", retract);
                    }
                    (false, true) => {
                        let assert = self.local_tuple(expr, prop, a, nv);
                        self.net.insert("LocalCost", assert);
                    }
                    _ => {}
                }
            }
        }
        // Seed maintenance mirrors `seed_network`: unpruned builds only.
        if !self.pruning.enabled && new_root_bound != self.pruning.root_bound {
            let root = self.memo.group(self.memo.root);
            if let Some(old) = self.pruning.root_bound {
                let t = self.bound_tuple(root.expr, root.prop, old);
                self.net.delete("Bound", t);
            }
            if let Some(new) = new_root_bound {
                let t = self.bound_tuple(root.expr, root.prop, new);
                self.net.insert("Bound", t);
            }
        }
        self.pruning.pruned = new_pruned;
        self.pruning.root_bound = new_root_bound;
    }

    /// Appends to the applied-delta log, keeping only the last write
    /// per parameter (factors are absolute, so replaying the deduped
    /// log reproduces the current [`CostContext`]).
    fn record_applied(&mut self, deltas: &[ParamDelta]) {
        for d in deltas {
            let key = applied_key(d);
            match self.applied.iter_mut().find(|e| applied_key(e) == key) {
                Some(slot) => *slot = *d,
                None => self.applied.push(*d),
            }
        }
    }

    fn maybe_audit(&mut self) -> AuditOutcome {
        let every = match self.audit {
            AuditMode::Off => return AuditOutcome::NotSampled,
            AuditMode::Every(n) => n.max(1),
        };
        if !self.epochs_seen.is_multiple_of(every) {
            return AuditOutcome::NotSampled;
        }
        match self.audit_now() {
            Ok(()) => AuditOutcome::Passed,
            Err(e) => AuditOutcome::Failed(e),
        }
    }

    /// The audit itself, independent of sampling. Three checks, each
    /// surfacing as [`DataflowError::InvariantViolation`]:
    ///
    /// 1. no residual negative counts in any materialized sink (a torn
    ///    rollback would leave the retraction half of an update);
    /// 2. the live sinks match a from-scratch recompute on a fresh
    ///    network whose `LocalCost` rows are re-derived from the
    ///    [`CostContext`] (catches both substrate drift and a torn
    ///    mirror);
    /// 3. a shadow hand-rolled [`IncrementalOptimizer`] replaying the
    ///    deduped delta log passes its own structural invariants
    ///    ([`IncrementalOptimizer::check_invariants`]) and agrees on
    ///    the best cost.
    fn audit_now(&mut self) -> Result<(), DataflowError> {
        for name in ["SearchSpace", "BestCost", "BestPlan", "Bound"] {
            for (t, c) in self.net.sink(name).iter() {
                if c < 0 {
                    return Err(DataflowError::InvariantViolation(format!(
                        "audit: residual negative count {c} for {t:?} in sink {name}"
                    )));
                }
            }
        }
        let mut fresh = build_network(Rc::clone(&self.memo), Rc::clone(&self.props));
        let root = self.memo.group(self.memo.root);
        fresh.insert(
            "Expr",
            Tuple::new(vec![encode_expr(root.expr), self.props.encode(root.prop)]),
        );
        for gi in 0..self.memo.n_groups() as u32 {
            let g = GroupId(gi);
            let (expr, prop) = {
                let d = self.memo.group(g);
                (d.expr, d.prop)
            };
            for a in self.memo.alts_of(g) {
                let spec = self.memo.alt(a).spec;
                let c = self.ctx.local_cost(&self.q, expr, prop, &spec);
                if c != self.local[a.0 as usize] {
                    return Err(DataflowError::InvariantViolation(format!(
                        "audit: LocalCost mirror for alt {} holds {:?} but recompute gives {c:?}",
                        a.0, self.local[a.0 as usize]
                    )));
                }
                // The fresh network seeds the same prune set as the
                // live one — the driver is the pruning authority, so
                // an equal-state recompute excludes the same rows.
                if !self.pruning.pruned[a.0 as usize] {
                    fresh.insert("LocalCost", self.local_tuple(expr, prop, a, c));
                }
            }
        }
        // Gated exactly like `seed_network`: the diagnostic seed exists
        // only on unpruned builds, so the recompute must match.
        if !self.pruning.enabled {
            if let Some(b) = self.pruning.root_bound {
                fresh.insert("Bound", self.bound_tuple(root.expr, root.prop, b));
            }
        }
        fresh.run().map_err(|e| {
            DataflowError::InvariantViolation(format!("audit: from-scratch recompute failed: {e}"))
        })?;
        for name in ["SearchSpace", "BestCost", "BestPlan", "Bound"] {
            let live = counted(self.net.sink(name));
            let want = counted(fresh.sink(name));
            if live != want {
                return Err(DataflowError::InvariantViolation(format!(
                    "audit: sink {name} diverged from from-scratch recompute \
                     ({} live vs {} recomputed tuples)",
                    live.len(),
                    want.len()
                )));
            }
        }
        let mut shadow = IncrementalOptimizer::new(&self.catalog, self.q.clone(), PruningConfig::none());
        let mut want = shadow.optimize();
        if !self.applied.is_empty() {
            let applied = self.applied.clone();
            want = shadow.reoptimize(&applied);
        }
        shadow
            .check_invariants()
            .map_err(|m| DataflowError::InvariantViolation(format!("audit: shadow engine: {m}")))?;
        if !want.cost.approx_eq(self.best_cost()) {
            return Err(DataflowError::InvariantViolation(format!(
                "audit: best cost {:?} disagrees with shadow engine {:?}",
                self.best_cost(),
                want.cost
            )));
        }
        Ok(())
    }

    /// Arms the substrate's deterministic fault injector (chaos tests).
    pub fn inject_fault(&mut self, plan: FaultPlan) {
        self.net.set_fault_plan(Some(plan));
    }

    /// Overrides the audit sampling policy (the constructor default is
    /// [`AuditMode::from_env`]).
    pub fn set_audit_mode(&mut self, mode: AuditMode) {
        self.audit = mode;
    }

    /// Runs the full audit immediately, regardless of sampling.
    pub fn audit(&mut self) -> Result<(), DataflowError> {
        self.audit_now()
    }

    /// Step-budget control, exposed for overrun-recovery tests.
    pub fn set_max_steps(&mut self, steps: u64) {
        self.net.set_max_steps(steps);
    }

    /// A materialized sink relation, by name — chaos tests compare
    /// these across recovery paths.
    pub fn sink(&self, relation: &str) -> &Multiset {
        self.net.sink(relation)
    }

    /// Lifetime count of substrate epoch rollbacks (resets when a
    /// rebuild replaces the network).
    pub fn rollbacks(&self) -> u64 {
        self.net.rollbacks()
    }

    /// Arms durability: every subsequent [`DataflowOptimizer::reoptimize`]
    /// batch is appended to `<dir>/wal.bin` (fsynced, write-ahead) and
    /// [`DataflowOptimizer::checkpoint_durable`] snapshots to
    /// `<dir>/checkpoint.bin`. An existing WAL is adopted — appends
    /// continue after its intact records, and a torn tail from an
    /// earlier crash is truncated away first; an unreadable WAL is
    /// reinitialized empty (a later [`DataflowOptimizer::recover`] will
    /// then degrade rather than trust a stale checkpoint against it).
    pub fn set_durable_dir(&mut self, dir: impl Into<PathBuf>) -> std::io::Result<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        durable::sweep_tmp(&dir);
        let wal_path = dir.join(durable::WAL_FILE);
        let wal_seq = match std::fs::read(&wal_path) {
            Err(_) => {
                durable::wal_init(&wal_path)?;
                0
            }
            Ok(bytes) => match durable::wal_records(&bytes) {
                Ok(scan) => {
                    if scan.torn {
                        let f = std::fs::OpenOptions::new().write(true).open(&wal_path)?;
                        f.set_len(scan.valid_len as u64)?;
                        f.sync_all()?;
                    }
                    scan.batches.len() as u64
                }
                Err(_) => {
                    durable::wal_init(&wal_path)?;
                    0
                }
            },
        };
        self.durable = Some(Durable { dir, wal_seq });
        Ok(())
    }

    /// The armed durable directory, if any.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durable.as_ref().map(|d| d.dir.as_path())
    }

    fn wal_append(&mut self, deltas: &[ParamDelta]) -> Option<DataflowError> {
        let d = self.durable.as_mut()?;
        match durable::wal_append(&d.dir.join(durable::WAL_FILE), d.wal_seq, deltas) {
            Ok(()) => {
                d.wal_seq += 1;
                None
            }
            Err(e) => Some(DataflowError::StateCorruption(format!(
                "WAL append failed, operating in-memory for this batch: {e}"
            ))),
        }
    }

    /// Cuts a durable checkpoint of the committed optimizer state —
    /// applied-delta log, `LocalCost` mirror, the full network dataflow
    /// state (operator indexes, sinks, queue residue, symbol table) and
    /// the WAL watermark — atomically (tmp + fsync + rename). Requires
    /// [`DataflowOptimizer::set_durable_dir`].
    pub fn checkpoint_durable(&mut self) -> std::io::Result<()> {
        let dir = self
            .durable
            .as_ref()
            .expect("set_durable_dir before checkpoint_durable")
            .dir
            .clone();
        let bytes = self.snapshot_bytes();
        reopt_datalog::checkpoint::write_atomic(&dir.join(durable::CHECKPOINT_FILE), &bytes)
    }

    /// Serializes the optimizer snapshot: a record stream (shared
    /// framing with the substrate checkpoint) of
    ///
    /// 1. meta — WAL watermark, epochs seen, mirror length, log length;
    /// 2. the deduped applied-[`ParamDelta`] log;
    /// 3. the `LocalCost` mirror (f64 bit patterns, so `INFINITY` round-
    ///    trips exactly);
    /// 4. the embedded network checkpoint ([`RuleNetwork::checkpoint`]),
    ///    which carries its own symbol table.
    fn snapshot_bytes(&self) -> Vec<u8> {
        use reopt_datalog::checkpoint::{Enc, RecordWriter, MAGIC};
        let mut w = RecordWriter::new(MAGIC);
        let mut meta = Enc::new();
        meta.u64(self.durable.as_ref().map_or(0, |d| d.wal_seq));
        meta.u64(self.epochs_seen);
        meta.u64(self.local.len() as u64);
        meta.u64(self.applied.len() as u64);
        w.record(meta);
        let mut log = Enc::new();
        for d in &self.applied {
            durable::encode_delta(&mut log, d);
        }
        w.record(log);
        let mut mirror = Enc::new();
        for c in &self.local {
            mirror.f64(c.value());
        }
        w.record(mirror);
        let mut net = Enc::new();
        net.raw(&self.net.checkpoint());
        w.record(net);
        w.into_bytes()
    }

    /// Restores a snapshot into this freshly built optimizer; returns
    /// the WAL watermark to replay from. On `Err` the optimizer state
    /// is unspecified and the instance must be discarded (recover
    /// degrades to a from-scratch rebuild).
    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<u64, DataflowError> {
        use reopt_datalog::checkpoint::{Dec, RecordReader, SymRemap, MAGIC};
        let corrupt = |msg: String| DataflowError::StateCorruption(msg);
        fn need(r: Option<&[u8]>) -> Result<&[u8], DataflowError> {
            r.ok_or_else(|| DataflowError::StateCorruption("snapshot ends early".into()))
        }
        // Bridge-level records carry no symbols (the net blob embeds its
        // own table), so an empty remap suffices.
        let remap = SymRemap::from_strings(&[])?;
        let mut r = RecordReader::new(bytes, MAGIC)?;

        let meta = need(r.next_record()?)?;
        let mut d = Dec::new(meta, &remap);
        let watermark = d.u64()?;
        let epochs_seen = d.u64()?;
        let n_local = d.u64()? as usize;
        let n_applied = d.u64()? as usize;
        if !d.is_done() {
            return Err(corrupt("trailing bytes in snapshot meta".into()));
        }
        if n_local != self.local.len() {
            return Err(corrupt(format!(
                "snapshot mirrors {n_local} alternatives but this query builds {}",
                self.local.len()
            )));
        }

        let log = need(r.next_record()?)?;
        let mut d = Dec::new(log, &remap);
        let mut applied = Vec::with_capacity(n_applied.min(log.len() / 13));
        for _ in 0..n_applied {
            let delta = durable::decode_delta(&mut d)?;
            let in_range = match delta {
                ParamDelta::EdgeSelectivity(e, _) => (e.0 as usize) < self.q.edges.len(),
                ParamDelta::LeafCardinality(l, _) | ParamDelta::LeafScanCost(l, _) => {
                    l.0 < self.q.n_leaves()
                }
            };
            if !in_range {
                return Err(corrupt(format!(
                    "snapshot log references a parameter outside this query: {delta:?}"
                )));
            }
            applied.push(delta);
        }
        if !d.is_done() {
            return Err(corrupt("trailing bytes in snapshot delta log".into()));
        }

        let mirror = need(r.next_record()?)?;
        let mut d = Dec::new(mirror, &remap);
        let mut local = Vec::with_capacity(n_local);
        for _ in 0..n_local {
            local.push(Cost::new(d.f64()?));
        }
        if !d.is_done() {
            return Err(corrupt("trailing bytes in snapshot mirror".into()));
        }

        let net_blob = need(r.next_record()?)?;
        let mut d = Dec::new(net_blob, &remap);
        self.net.restore(d.rest())?;
        if r.next_record()?.is_some() {
            return Err(corrupt("unexpected trailing snapshot record".into()));
        }

        // Absolute factors: replaying the deduped log onto the fresh
        // catalog-derived context reconstructs it exactly.
        self.ctx.apply(&applied);
        self.applied = applied;
        self.local = local;
        self.epochs_seen = epochs_seen;
        self.initialized = true;
        // The prune set is a deterministic function of the mirror, so
        // it is recomputed rather than persisted; it must equal what
        // the checkpointed instance excluded from the restored network.
        let dp = BoundDp::compute(&self.memo, &self.local, None, &self.topo);
        if self.pruning.enabled {
            self.pruning.pruned = dp.prune_set(&self.memo);
        }
        self.pruning.root_bound = dp.bound[self.memo.root.0 as usize];
        Ok(watermark)
    }

    /// Post-restore verification — satellite of the recovery ladder,
    /// deliberately cheaper than the full [`DataflowOptimizer::audit`]
    /// (no from-scratch dataflow recompute, which would cost more than
    /// the restore saved): no residual negative sink counts, one
    /// `SearchSpace` row per memo alternative, and a shadow hand-rolled
    /// engine replaying the restored delta log must pass
    /// `check_invariants` and agree on the best cost.
    fn post_restore_verify(&mut self) -> Result<(), DataflowError> {
        let bad = |msg: String| Err(DataflowError::StateCorruption(msg));
        for name in ["SearchSpace", "BestCost", "BestPlan", "Bound"] {
            for (t, c) in self.net.sink(name).iter() {
                if c < 0 {
                    return bad(format!(
                        "restored sink {name} holds residual negative count {c} for {t:?}"
                    ));
                }
            }
        }
        let alts = self.net.sink("SearchSpace").iter().count();
        if alts != self.memo.n_alts() {
            return bad(format!(
                "restored SearchSpace has {alts} rows but the memo enumerates {}",
                self.memo.n_alts()
            ));
        }
        let mut shadow =
            IncrementalOptimizer::new(&self.catalog, self.q.clone(), PruningConfig::none());
        let mut want = shadow.optimize();
        if !self.applied.is_empty() {
            let applied = self.applied.clone();
            want = shadow.reoptimize(&applied);
        }
        if let Err(m) = shadow.check_invariants() {
            return bad(format!("shadow engine after restore: {m}"));
        }
        if !want.cost.approx_eq(self.best_cost()) {
            return bad(format!(
                "restored best cost {:?} disagrees with shadow engine {:?}",
                self.best_cost(),
                want.cost
            ));
        }
        Ok(())
    }

    /// Restarts an optimizer from a durable directory. The full ladder:
    ///
    /// 1. checkpoint present and intact → restore it, flush any
    ///    checkpointed queue residue, replay the WAL records past the
    ///    watermark, verify → [`RecoveryPath::RestoredFromCheckpoint`];
    /// 2. checkpoint torn / corrupt / failing verification → discard
    ///    it, optimize from scratch and replay the *whole* WAL →
    ///    [`RecoveryPath::RebuiltAfterCorruptCheckpoint`];
    /// 3. no checkpoint but WAL content (crashed before the first
    ///    checkpoint) → from-scratch plus full replay →
    ///    [`RecoveryPath::RebuiltFromScratch`];
    /// 4. empty directory → a plain first boot →
    ///    [`RecoveryPath::Committed`].
    ///
    /// State damage never panics and never returns `Err`; it degrades
    /// down the ladder with every absorbed error in the report. `Err`
    /// is reserved for failing to arm the directory itself.
    pub fn recover(
        catalog: &Catalog,
        q: QuerySpec,
        dir: impl AsRef<Path>,
    ) -> std::io::Result<(DataflowOptimizer, DataflowOutcome)> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        // A crash between "write checkpoint.tmp" and "rename" strands
        // the staging file; it is dead bytes, never recovered state.
        durable::sweep_tmp(dir);
        let mut errors: Vec<DataflowError> = Vec::new();

        let wal_path = dir.join(durable::WAL_FILE);
        // `wal_fix` remembers what arming durability at the end must do
        // to the file: `Some((torn, valid_len))` for a readable WAL
        // (truncate the torn tail if any), `None` for a missing or
        // corrupt one (reinitialize empty). Keeping the scan outcome
        // here avoids a second read+scan of the WAL when we arm.
        let (wal_batches, wal_fix) = match std::fs::read(&wal_path) {
            Err(_) => (Vec::new(), None), // no WAL yet: fresh boot
            Ok(bytes) => match durable::wal_records(&bytes) {
                Ok(scan) => {
                    let fix = Some((scan.torn, scan.valid_len as u64));
                    (scan.batches, fix)
                }
                Err(e) => {
                    errors.push(e);
                    (Vec::new(), None)
                }
            },
        };
        let ckpt_bytes = std::fs::read(dir.join(durable::CHECKPOINT_FILE)).ok();
        let had_checkpoint = ckpt_bytes.is_some();
        let had_history = !wal_batches.is_empty() || !errors.is_empty();

        let mut restored: Option<(DataflowOptimizer, RunStats)> = None;
        if let Some(bytes) = ckpt_bytes {
            let mut opt = DataflowOptimizer::new(catalog, q.clone());
            match opt.restore_snapshot(&bytes) {
                Ok(watermark) if (watermark as usize) <= wal_batches.len() => {
                    // Flush any queue residue the checkpoint carried,
                    // then replay the tail the snapshot has not seen.
                    let (mut stats, flush) = opt.run_recovering();
                    errors.extend(flush.errors.iter().cloned());
                    if flush.path == RecoveryPath::Committed {
                        for batch in &wal_batches[watermark as usize..] {
                            let out = opt.reoptimize(batch);
                            errors.extend(out.recovery.errors.iter().cloned());
                            stats = out.stats;
                        }
                        match opt.post_restore_verify() {
                            Ok(()) => restored = Some((opt, stats)),
                            Err(e) => errors.push(e),
                        }
                    }
                }
                Ok(watermark) => errors.push(DataflowError::StateCorruption(format!(
                    "checkpoint watermark {watermark} is beyond the {} intact WAL records",
                    wal_batches.len()
                ))),
                Err(e) => errors.push(e),
            }
        }

        let (mut opt, path, stats) = match restored {
            Some((opt, stats)) => (opt, RecoveryPath::RestoredFromCheckpoint, stats),
            None => {
                let mut opt = DataflowOptimizer::new(catalog, q);
                let mut out = opt.optimize();
                for batch in &wal_batches {
                    out = opt.reoptimize(batch);
                }
                let path = if had_checkpoint {
                    RecoveryPath::RebuiltAfterCorruptCheckpoint
                } else if had_history {
                    RecoveryPath::RebuiltFromScratch
                } else {
                    RecoveryPath::Committed
                };
                (opt, path, out.stats)
            }
        };
        // Arm durability from the scan already performed — the same
        // repairs `set_durable_dir` would make, minus its re-read.
        let wal_seq = match wal_fix {
            Some((torn, valid_len)) => {
                if torn {
                    let f = std::fs::OpenOptions::new().write(true).open(&wal_path)?;
                    f.set_len(valid_len)?;
                    f.sync_all()?;
                }
                wal_batches.len() as u64
            }
            None => {
                durable::wal_init(&wal_path)?;
                0
            }
        };
        opt.durable = Some(Durable {
            dir: dir.to_path_buf(),
            wal_seq,
        });
        let report = RecoveryReport {
            path,
            errors,
            audit: AuditOutcome::NotSampled,
        };
        let outcome = opt.outcome(stats, report);
        Ok((opt, outcome))
    }

    fn local_tuple(&self, expr: ExprId, prop: PhysProp, a: AltId, c: Cost) -> Tuple {
        Tuple::new(vec![
            encode_expr(expr),
            self.props.encode(prop),
            Val::Int(a.0 as i64),
            Val::Cost(c),
        ])
    }

    fn bound_tuple(&self, expr: ExprId, prop: PhysProp, b: Cost) -> Tuple {
        Tuple::new(vec![encode_expr(expr), self.props.encode(prop), Val::Cost(b)])
    }

    fn outcome(&self, stats: RunStats, recovery: RecoveryReport) -> DataflowOutcome {
        DataflowOutcome {
            cost: self.best_cost(),
            plan: self.best_plan(),
            stats,
            recovery,
        }
    }

    /// The root's `BestCost` value.
    pub fn best_cost(&self) -> Cost {
        let root = self.memo.group(self.memo.root);
        let (e, p) = (encode_expr(root.expr), self.props.encode(root.prop));
        for (t, _) in self.net.sink("BestCost").iter() {
            if t.get(0) == e && t.get(1) == p {
                return t.get(2).as_cost();
            }
        }
        Cost::INFINITY
    }

    /// Extracts the best plan from the materialized `BestPlan` view
    /// (ties broken towards the lowest alternative id, deterministic).
    pub fn best_plan(&self) -> PlanNode {
        let mut chosen: FxHashMap<GroupId, (Cost, AltId)> = FxHashMap::default();
        for (t, _) in self.net.sink("BestPlan").iter() {
            let a = AltId(t.get(2).as_int() as u32);
            let cost = t.get(3).as_cost();
            let g = self.memo.alt(a).group;
            let e = chosen.entry(g).or_insert((cost, a));
            if (cost, a) < *e {
                *e = (cost, a);
            }
        }
        self.extract(self.memo.root, &chosen)
    }

    fn extract(&self, g: GroupId, chosen: &FxHashMap<GroupId, (Cost, AltId)>) -> PlanNode {
        let def = self.memo.group(g);
        let (_, a) = chosen
            .get(&g)
            .unwrap_or_else(|| panic!("no BestPlan tuple for group {g:?} ({:?})", def.expr));
        let alt = self.memo.alt(*a);
        PlanNode {
            expr: def.expr,
            prop: def.prop,
            op: alt.op,
            children: alt.children().map(|c| self.extract(c, chosen)).collect(),
        }
    }

    /// Distinct `SearchSpace` tuples the network derived — compared by
    /// tests against the memo's alternative count.
    pub fn search_space_size(&self) -> usize {
        self.net.sink("SearchSpace").len()
    }

    /// Dataflow node count (diagnostics).
    pub fn network_nodes(&self) -> usize {
        self.net.node_count()
    }

    /// Operator nodes the compiler absorbed into fused chains
    /// (diagnostics).
    pub fn fused_nodes(&self) -> usize {
        self.net.fused_node_count()
    }

    /// Shared arrangements the compiler built for the executable
    /// program (diagnostics).
    pub fn arrangements(&self) -> usize {
        self.net.arrangement_count()
    }

    /// Per-node `(label, batches, deltas)` lifetime service counters of
    /// the live network (profiling diagnostics).
    pub fn node_stats(&self) -> Vec<(String, u64, u64)> {
        self.net.node_stats()
    }

    /// Alternatives currently excluded from the network's `LocalCost`
    /// relation by driver-side pruning (diagnostics; 0 when pruning is
    /// off).
    pub fn pruned_alternatives(&self) -> usize {
        self.pruning.pruned.iter().filter(|&&p| p).count()
    }

    /// The driver's DP bounds per group, encoded exactly like the
    /// network's `Bound` rows — the parity diagnostic compares this
    /// against the materialized `Bound` sink on an unpruned build.
    pub fn driver_bounds(&self) -> Vec<Tuple> {
        let dp = BoundDp::compute(&self.memo, &self.local, None, &self.topo);
        let mut rows = Vec::new();
        for gi in 0..self.memo.n_groups() as u32 {
            let g = GroupId(gi);
            if let Some(b) = dp.bound[gi as usize] {
                let d = self.memo.group(g);
                rows.push(self.bound_tuple(d.expr, d.prop, b));
            }
        }
        rows.sort();
        rows
    }
}

/// Dedup key for the applied-delta log: parameter kind plus id.
fn applied_key(d: &ParamDelta) -> (u8, u32) {
    match d {
        ParamDelta::EdgeSelectivity(e, _) => (0, e.0),
        ParamDelta::LeafCardinality(l, _) => (1, l.0),
        ParamDelta::LeafScanCost(l, _) => (2, l.0),
    }
}

/// A sink's contents as a comparable `tuple → count` map.
fn counted(sink: &Multiset) -> FxHashMap<Tuple, i64> {
    sink.iter().map(|(t, c)| (t.clone(), c)).collect()
}

/// Compiles [`DATAFLOW_RULES`] with the memo-backed externals.
fn build_network(memo: Rc<Memo>, props: Rc<PropTable>) -> RuleNetwork {
    let split_memo = Rc::clone(&memo);
    let split_props = Rc::clone(&props);
    // Pre-encode Fn_split's output rows once per alternative: the
    // function sits on the network's hottest path (every enumeration
    // delta re-invokes it), so its emissions must not re-intern symbols
    // or format operator names per call.
    let split_rows: Vec<[Val; 7]> = (0..memo.n_alts() as u32)
        .map(|ai| {
            let alt = memo.alt(AltId(ai));
            let child = |c: Option<GroupId>| -> (Val, Val) {
                match c {
                    None => (null_value(), null_value()),
                    Some(cg) => {
                        let d = memo.group(cg);
                        (encode_expr(d.expr), props.encode(d.prop))
                    }
                }
            };
            let (le, lp) = child(alt.left);
            let (re, rp) = child(alt.right);
            [
                Val::Int(ai as i64),
                Val::str(alt.op.logical_name()),
                Val::str(&alt.op.to_string()),
                le,
                lp,
                re,
                rp,
            ]
        })
        .collect();
    NetworkBuilder::new()
        .input("Expr", 2)
        .input("LocalCost", 4)
        // Seeded derived relation: the driver maintains `Bound(root)`
        // as a base fact; B5 derives the rest of the relation.
        .input("Bound", 3)
        .rules(dataflow_program())
        // Fn_split(expr,prop | index,logOp,phyOp,lExpr,lProp,rExpr,rProp):
        // every alternative of the demanded (expr,prop) group, from the
        // interned memo (the §2.3 memoization). `null` demands — the
        // child slots of scan tuples fed back by D2/D3 — expand to
        // nothing, which is the Fn_isleaf guard of R1–R3.
        .external("Fn_split", 2, move |args, emit| {
            let (Val::Int(e), Val::Int(p)) = (args[0], args[1]) else {
                return;
            };
            let expr = ExprId {
                rel: reopt_expr::RelSet((e >> 1) as u32),
                agg: e & 1 == 1,
            };
            let prop = split_props.decode(p);
            let Some(g) = split_memo.lookup(expr, prop) else {
                return;
            };
            for a in split_memo.alts_of(g) {
                emit(&split_rows[a.0 as usize]);
            }
        })
        // Fn_sum(lCost,rCost,localCost | cost): R7/R8's total, summed in
        // the same association order as the hand-rolled optimizer
        // (local, then left, then right) so totals agree bit-for-bit.
        // Non-cost operands (the `null` of R7) contribute nothing.
        .external("Fn_sum", 3, move |args, emit| {
            let mut total = args[2].as_cost();
            if let Val::Cost(l) = args[0] {
                total += l;
            }
            if let Val::Cost(r) = args[1] {
                total += r;
            }
            emit(&[Val::Cost(total)]);
        })
        .sink("SearchSpace")
        .sink("BestCost")
        .sink("BestPlan")
        .sink("Bound")
        .build()
        .expect("the executable program compiles (pinned by tests)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_core::fixtures::{
        agg_chain_query, chain_query, cycle_query, fixture_catalog, star_query,
    };
    use reopt_core::{IncrementalOptimizer, PruningConfig};
    use reopt_expr::{EdgeId, LeafId};

    fn fixture_queries() -> Vec<QuerySpec> {
        let c = fixture_catalog();
        vec![
            chain_query(&c, 2),
            chain_query(&c, 3),
            chain_query(&c, 5),
            agg_chain_query(&c, 4),
            cycle_query(&c),
            star_query(&c),
        ]
    }

    /// Asserts both engines agree on the current best cost, and that the
    /// dataflow engine's extracted plan re-prices to that cost.
    fn assert_agree(df: &DataflowOutcome, hand: &reopt_core::Outcome, what: &str) {
        assert!(
            df.cost.approx_eq(hand.cost),
            "{what}: dataflow {:?} vs hand-rolled {:?}",
            df.cost,
            hand.cost
        );
    }

    #[test]
    fn the_executable_program_parses_and_compiles() {
        assert_eq!(dataflow_program().len(), 13);
        let c = fixture_catalog();
        let opt = DataflowOptimizer::new(&c, chain_query(&c, 3));
        assert!(opt.network_nodes() > 10);
    }

    #[test]
    fn initial_optimization_matches_hand_rolled_on_fixtures() {
        let c = fixture_catalog();
        for q in fixture_queries() {
            let mut df = DataflowOptimizer::new(&c, q.clone());
            let mut hand = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::none());
            let got = df.optimize();
            let want = hand.optimize();
            assert_agree(&got, &want, &q.name);
            // The network derived the full SearchSpace: one tuple per
            // memo alternative (rules R1–R5 at fixpoint).
            assert_eq!(df.search_space_size(), df.memo().n_alts(), "{}", q.name);
            // The extracted plan re-prices to the claimed cost.
            let mut ctx = CostContext::new(&c, &q);
            assert!(ctx.plan_cost(&q, &got.plan).approx_eq(got.cost), "{}", q.name);
        }
    }

    #[test]
    fn three_kinds_of_incremental_updates_match_hand_rolled() {
        // The acceptance gate: cardinality, cost-parameter (scan) and
        // selectivity deltas, singly and batched, on every fixture.
        let c = fixture_catalog();
        let batches: Vec<Vec<ParamDelta>> = vec![
            vec![ParamDelta::LeafCardinality(LeafId(1), 4.0)],
            vec![ParamDelta::LeafScanCost(LeafId(0), 6.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(0), 8.0)],
            vec![
                ParamDelta::EdgeSelectivity(EdgeId(0), 0.25),
                ParamDelta::LeafScanCost(LeafId(1), 3.0),
                ParamDelta::LeafCardinality(LeafId(0), 0.5),
            ],
        ];
        for q in fixture_queries() {
            for batch in &batches {
                let mut df = DataflowOptimizer::new(&c, q.clone());
                let mut hand =
                    IncrementalOptimizer::new(&c, q.clone(), PruningConfig::none());
                df.optimize();
                hand.optimize();
                let got = df.reoptimize(batch);
                let want = hand.reoptimize(batch);
                assert_agree(&got, &want, &format!("{} after {batch:?}", q.name));
            }
        }
    }

    #[test]
    fn update_sequences_stay_in_lockstep() {
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        let mut hand = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::none());
        assert_agree(&df.optimize(), &hand.optimize(), "initial");
        let seq: Vec<Vec<ParamDelta>> = vec![
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 8.0)],
            vec![ParamDelta::LeafCardinality(LeafId(2), 0.2)],
            vec![ParamDelta::LeafScanCost(LeafId(4), 5.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 1.0)], // revert
            vec![ParamDelta::LeafScanCost(LeafId(4), 0.5)],
        ];
        for (i, batch) in seq.iter().enumerate() {
            let got = df.reoptimize(batch);
            let want = hand.reoptimize(batch);
            assert_agree(&got, &want, &format!("step {i}"));
        }
    }

    #[test]
    fn plan_switch_is_tracked_incrementally() {
        // Blowing up a selectivity makes the previously best plan
        // expensive; the maintained view must land on the new optimum
        // (priced by an independent context) without re-seeding.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        let initial = df.optimize();
        let batch = vec![ParamDelta::EdgeSelectivity(EdgeId(1), 8.0)];
        let out = df.reoptimize(&batch);
        assert!(out.cost > initial.cost);
        let mut ctx = CostContext::new(&c, &q);
        ctx.apply(&batch);
        assert!(ctx.plan_cost(&q, &out.plan).approx_eq(out.cost));
    }

    #[test]
    fn compiled_network_collapses_work_visibly() {
        // The tentpole's observability: the compiler fused chains
        // (Fn_split scan chains), and runs report shared probes.
        let c = fixture_catalog();
        let mut df = DataflowOptimizer::new(&c, chain_query(&c, 5));
        assert!(
            df.network_nodes() > df.memo().n_alts() / 10,
            "sanity: network exists"
        );
        assert!(df.arrangements() > 0, "compiler shared no arrangements");
        let init = df.optimize();
        assert!(init.stats.fused_stages_saved > 0, "{:?}", init.stats);
        assert!(
            init.stats.join_probes < init.stats.join_probe_deltas,
            "batch probing shared nothing: {:?}",
            init.stats
        );
        let re = df.reoptimize(&[ParamDelta::LeafCardinality(LeafId(2), 2.0)]);
        assert!(
            re.stats.join_probes < re.stats.join_probe_deltas,
            "incremental probing shared nothing: {:?}",
            re.stats
        );
    }

    #[test]
    fn scheduler_matrix_agrees_on_the_executable_program() {
        // The same DATAFLOW_RULES network under {batched+fusion,
        // batched, per-delta} — pinned here at the optimizer level; the
        // generic-network matrix lives in reopt-datalog's differential
        // suite. The compiler path is exercised via NetworkBuilder
        // options inside build_network only for the default, so this
        // compares DataflowOptimizer (fused default) against the
        // hand-rolled engine after a mixed update sequence — and the
        // fused network against its own unfused node diagnostics.
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        df.optimize();
        assert!(df.fused_nodes() > 0, "compiler emitted no fused chains");
        let mut hand = IncrementalOptimizer::new(&c, q, PruningConfig::none());
        hand.optimize();
        for batch in [
            vec![ParamDelta::LeafScanCost(LeafId(0), 2.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 4.0)],
            vec![ParamDelta::LeafCardinality(LeafId(3), 0.25)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 1.0)],
        ] {
            let got = df.reoptimize(&batch);
            let want = hand.reoptimize(&batch);
            assert_agree(&got, &want, &format!("{batch:?}"));
        }
    }

    #[test]
    fn unchanged_parameters_cause_no_work() {
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut df = DataflowOptimizer::new(&c, q);
        df.optimize();
        let first = df.reoptimize(&[ParamDelta::LeafScanCost(LeafId(0), 2.0)]);
        assert!(first.stats.deltas_processed > 0);
        // Same factor again: no affected parameters, no deltas pushed,
        // nothing propagates (Fig 9's quiescence).
        let second = df.reoptimize(&[ParamDelta::LeafScanCost(LeafId(0), 2.0)]);
        assert_eq!(second.stats.deltas_processed, 0);
        assert_eq!(second.cost, first.cost);
    }

    #[test]
    fn injected_fault_recovers_via_rollback_and_retry() {
        // One shot: the epoch aborts mid-flight, the substrate rolls
        // back, and the retry replays the same deltas to the same
        // fixpoint a fault-free twin reaches.
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut oracle = DataflowOptimizer::new(&c, q.clone());
        oracle.optimize();
        let mut victim = DataflowOptimizer::new(&c, q.clone());
        victim.optimize();
        let batch = vec![ParamDelta::EdgeSelectivity(EdgeId(1), 6.0)];
        let want = oracle.reoptimize(&batch);
        victim.inject_fault(reopt_datalog::FaultPlan::one_shot(3));
        let got = victim.reoptimize(&batch);
        assert_eq!(got.recovery.path, RecoveryPath::RetriedAfterRollback);
        assert_eq!(got.recovery.errors.len(), 1);
        assert!(matches!(
            got.recovery.errors[0],
            DataflowError::InjectedFault { .. }
        ));
        assert_eq!(victim.rollbacks(), 1);
        assert!(got.cost.approx_eq(want.cost), "{:?} vs {:?}", got.cost, want.cost);
        assert_eq!(got.plan, want.plan);
        for name in ["SearchSpace", "BestCost", "BestPlan"] {
            assert_eq!(counted(victim.sink(name)), counted(oracle.sink(name)), "{name}");
        }
    }

    #[test]
    fn repeated_faults_degrade_to_a_from_scratch_rebuild() {
        // Two shots kill the retry too; the ladder's last rung rebuilds
        // the network from the memo + mirror and still converges to the
        // oracle's fixpoint.
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut oracle = DataflowOptimizer::new(&c, q.clone());
        oracle.optimize();
        let mut victim = DataflowOptimizer::new(&c, q.clone());
        victim.optimize();
        let batch = vec![ParamDelta::LeafCardinality(LeafId(2), 0.2)];
        let want = oracle.reoptimize(&batch);
        victim.inject_fault(reopt_datalog::FaultPlan::with_shots(2, 2));
        let got = victim.reoptimize(&batch);
        assert_eq!(got.recovery.path, RecoveryPath::RebuiltFromScratch);
        assert_eq!(got.recovery.errors.len(), 2);
        assert!(got.cost.approx_eq(want.cost));
        assert_eq!(got.plan, want.plan);
        for name in ["SearchSpace", "BestCost", "BestPlan"] {
            assert_eq!(counted(victim.sink(name)), counted(oracle.sink(name)), "{name}");
        }
        // The rebuilt instance is fully serviceable: further updates and
        // a full audit behave as if the faults never happened.
        let b2 = vec![ParamDelta::LeafScanCost(LeafId(0), 4.0)];
        let got2 = victim.reoptimize(&b2);
        let want2 = oracle.reoptimize(&b2);
        assert_eq!(got2.recovery.path, RecoveryPath::Committed);
        assert!(got2.cost.approx_eq(want2.cost));
        victim.audit().expect("rebuilt state passes the audit");
    }

    #[test]
    fn budget_starvation_degrades_to_a_rebuild_with_default_budget() {
        // A budget so tight even the ×4 retry overruns: the rebuild
        // comes up with the compiled default and converges.
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut oracle = DataflowOptimizer::new(&c, q.clone());
        oracle.optimize();
        let mut victim = DataflowOptimizer::new(&c, q.clone());
        victim.optimize();
        let batch = vec![ParamDelta::EdgeSelectivity(EdgeId(0), 9.0)];
        let want = oracle.reoptimize(&batch);
        victim.set_max_steps(1);
        let got = victim.reoptimize(&batch);
        assert_eq!(got.recovery.path, RecoveryPath::RebuiltFromScratch);
        assert!(got
            .recovery
            .errors
            .iter()
            .all(|e| matches!(e, DataflowError::FixpointOverrun { .. })));
        assert!(got.cost.approx_eq(want.cost));
        assert_eq!(got.plan, want.plan);
    }

    #[test]
    fn audit_passes_on_every_fixture_and_epoch() {
        let c = fixture_catalog();
        for q in fixture_queries() {
            let mut df = DataflowOptimizer::new(&c, q.clone());
            df.set_audit_mode(AuditMode::Every(1));
            let init = df.optimize();
            assert_eq!(init.recovery.audit, AuditOutcome::Passed, "{}", q.name);
            assert!(init.recovery.is_clean());
            let re = df.reoptimize(&[ParamDelta::LeafCardinality(LeafId(0), 3.0)]);
            assert_eq!(re.recovery.audit, AuditOutcome::Passed, "{}", q.name);
        }
    }

    #[test]
    fn audit_catches_a_torn_local_cost_mirror() {
        // Hand-corrupt the mirror behind the network's back: the audit
        // must flag the divergence instead of silently drifting.
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let mut df = DataflowOptimizer::new(&c, q);
        df.optimize();
        df.local[0] = Cost::new(12345.0);
        let err = df.audit().expect_err("torn mirror must fail the audit");
        match err {
            DataflowError::InvariantViolation(m) => {
                assert!(m.contains("LocalCost mirror"), "{m}")
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn audit_sampling_respects_the_period() {
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let mut df = DataflowOptimizer::new(&c, q);
        df.set_audit_mode(AuditMode::Every(2));
        // Epochs are 1-based: epoch 1 is off-sample, epoch 2 audits.
        let first = df.optimize();
        assert_eq!(first.recovery.audit, AuditOutcome::NotSampled);
        let second = df.reoptimize(&[ParamDelta::LeafScanCost(LeafId(0), 2.0)]);
        assert_eq!(second.recovery.audit, AuditOutcome::Passed);
    }

    #[test]
    fn incremental_updates_touch_a_fraction_of_the_network() {
        // A single-leaf scan-cost tweak must not re-derive the space:
        // the incremental run processes far fewer deltas than the
        // initial evaluation.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut df = DataflowOptimizer::new(&c, q);
        let init = df.optimize();
        let out = df.reoptimize(&[ParamDelta::LeafScanCost(LeafId(4), 1.3)]);
        assert!(
            out.stats.deltas_processed * 3 < init.stats.deltas_processed,
            "incremental {} vs initial {}",
            out.stats.deltas_processed,
            init.stats.deltas_processed
        );
    }

    #[test]
    fn prop_table_interns_unseen_properties_instead_of_panicking() {
        // Regression: `encode` used to index a map frozen at build time
        // and panicked on any property the memo's groups never carried
        // (reachable through probe paths that price foreign interesting
        // orders). It now interns on miss with a stable fresh id.
        let c = fixture_catalog();
        let q = chain_query(&c, 3);
        let memo = Memo::build(&q, &JoinGraph::new(&q));
        let props = PropTable::new(&memo);
        let alien = PhysProp::Sorted(reopt_expr::LeafCol::new(97, 42));
        let Val::Int(id) = props.encode(alien) else {
            panic!("encode yields dense Int ids")
        };
        assert_eq!(props.encode(alien), Val::Int(id), "fresh ids are stable");
        assert_eq!(props.decode(id), alien);
        let Val::Int(any) = props.encode(PhysProp::Any) else {
            panic!("encode yields dense Int ids")
        };
        assert_ne!(any, id, "known properties keep their dense ids");
        assert_eq!(props.decode(any), PhysProp::Any);
    }

    #[test]
    fn pruned_and_unpruned_builds_agree_with_hand_rolled() {
        // The pruning differential: driver-side pruning must be purely
        // an optimization — costs stay exact against both the unpruned
        // network and the hand-rolled engine across every fixture and a
        // mixed update sequence (including a revert), while SearchSpace
        // stays complete so Fn_split demand is unaffected.
        let c = fixture_catalog();
        let batches: Vec<Vec<ParamDelta>> = vec![
            vec![ParamDelta::EdgeSelectivity(EdgeId(0), 7.0)],
            vec![ParamDelta::LeafCardinality(LeafId(1), 0.3)],
            vec![ParamDelta::LeafScanCost(LeafId(0), 5.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(0), 1.0)], // revert
        ];
        let mut ever_pruned = 0usize;
        for q in fixture_queries() {
            let mut pruned = DataflowOptimizer::new(&c, q.clone());
            let mut full = DataflowOptimizer::with_pruning(&c, q.clone(), false);
            let mut hand = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::none());
            let w = hand.optimize();
            assert_agree(&pruned.optimize(), &w, &q.name);
            assert_agree(&full.optimize(), &w, &format!("{} unpruned", q.name));
            assert_eq!(full.pruned_alternatives(), 0, "{}", q.name);
            assert_eq!(pruned.search_space_size(), pruned.memo().n_alts(), "{}", q.name);
            ever_pruned += pruned.pruned_alternatives();
            for batch in &batches {
                let a = pruned.reoptimize(batch);
                let b = full.reoptimize(batch);
                let want = hand.reoptimize(batch);
                assert_agree(&a, &want, &format!("{} pruned after {batch:?}", q.name));
                assert_agree(&b, &want, &format!("{} unpruned after {batch:?}", q.name));
                assert_eq!(
                    pruned.search_space_size(),
                    pruned.memo().n_alts(),
                    "{}: pruning leaked into SearchSpace",
                    q.name
                );
            }
            pruned.audit().expect("pruned state passes the audit");
        }
        assert!(ever_pruned > 0, "pruning never excluded an alternative");
    }

    #[test]
    fn bound_sink_matches_the_driver_dp_on_an_unpruned_build() {
        // Parity diagnostic for the in-network B1–B5 rules: on a build
        // whose LocalCost relation is complete, the materialized
        // `Bound` sink must equal the driver DP row-for-row — same
        // groups, bit-identical bound values (both sides subtract and
        // aggregate in the same order).
        let c = fixture_catalog();
        for q in fixture_queries() {
            let mut df = DataflowOptimizer::with_pruning(&c, q.clone(), false);
            df.optimize();
            let check = |df: &DataflowOptimizer, what: &str| {
                let mut got: Vec<Tuple> = df
                    .sink("Bound")
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(t, _)| t.clone())
                    .collect();
                got.sort();
                assert_eq!(got, df.driver_bounds(), "{what}");
            };
            check(&df, &q.name);
            df.reoptimize(&[ParamDelta::EdgeSelectivity(EdgeId(0), 6.0)]);
            check(&df, &format!("{} after a selectivity delta", q.name));
        }
    }
}
