//! The declarative optimizer, executed on the dataflow substrate.
//!
//! Where `reopt_core::IncrementalOptimizer` hand-rolls the propagation
//! of rules R1–R10 as typed delta queues over the and-or graph, this
//! module *compiles the rules and runs them*: the network below is the
//! executable elaboration of the paper's program, instantiated on
//! `reopt-datalog`'s batched delta engine.
//!
//! ## From the paper's rules to the executable program
//!
//! The paper rules ([`reopt_core::rules`], parsed by
//! [`reopt_core::rules_ir`]) elaborate as follows:
//!
//! - **D1–D3 ≙ R1–R5** (plan enumeration). `Fn_split` is the external
//!   function of R1–R3, backed by the interned [`Memo`] (the memoization
//!   of `Fn_split`/`Fn_nonscansummary` that §2.3 prescribes); it returns
//!   scan alternatives for leaves too, folding in R4/R5's `Fn_phyOp`,
//!   and returns nothing for `null` child slots, folding in the
//!   `Fn_isleaf` guards. The `Expr` base relation seeds the root
//!   `(expr, prop)` demand.
//! - **D6–D8 ≙ R6–R8** (cost estimation) after two standard rewrites:
//!   the summary/cost externals (`Fn_scansummary`, `Fn_scancost`,
//!   `Fn_nonscansummary`, `Fn_nonscancost`) collapse into a `LocalCost`
//!   *base relation* maintained from [`CostContext`] — §4's runtime
//!   updates arrive as deltas to exactly this relation — and the child
//!   `PlanCost` body atoms read `BestCost` instead, the paper's own §3.1
//!   aggregate-selection strategy (a plan's total uses its children's
//!   *best* costs). `Fn_sum` remains the external it is in R7/R8.
//! - **D9–D10 ≙ R9–R10** (plan selection), verbatim: a grouped `min<>`
//!   aggregate and the join back onto `PlanCost`.
//!
//! Column encoding: `expr` packs an [`ExprId`] (`rel` bits and the `agg`
//! flag) into an `Int`; `prop` is a dense index into the query's
//! property table; `index` is the global [`AltId`]; `logOp`/`phyOp` are
//! interned symbols; absent children are the shared `null` symbol, which
//! simply fails to join `BestCost` — that is how D6/D7/D8 partition the
//! alternatives by arity without any null-test externals.

use std::rc::Rc;

use reopt_catalog::Catalog;
use reopt_common::{Cost, FxHashMap};
use reopt_core::memo::{AltId, GroupId, Memo};
use reopt_core::rules_ir::{parse_rules, Rule};
use reopt_cost::{CostContext, ParamDelta};
use reopt_datalog::{RunStats, Tuple, Val};
use reopt_expr::{ExprId, JoinGraph, PhysProp, PlanNode, QuerySpec};

use crate::compile::{null_value, NetworkBuilder, RuleNetwork};

/// The executable elaboration of the paper's rule program (see the
/// module docs for the R→D mapping).
pub const DATAFLOW_RULES: [&str; 8] = [
    "D1: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     Expr(expr,prop), Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "D2: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     SearchSpace(-,-,-,-,-,expr,prop,-,-), \
     Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "D3: SearchSpace(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp) :- \
     SearchSpace(-,-,-,-,-,-,-,expr,prop), \
     Fn_split(expr,prop,index,logOp,phyOp,lExpr,lProp,rExpr,rProp);",
    "D6: PlanCost(expr,prop,index,cost) :- \
     SearchSpace(expr,prop,index,-,-,null,null,null,null), \
     LocalCost(expr,prop,index,cost);",
    "D7: PlanCost(expr,prop,index,cost) :- \
     SearchSpace(expr,prop,index,-,-,lExpr,lProp,null,null), \
     BestCost(lExpr,lProp,lCost), LocalCost(expr,prop,index,localCost), \
     Fn_sum(lCost,null,localCost,cost);",
    "D8: PlanCost(expr,prop,index,cost) :- \
     SearchSpace(expr,prop,index,-,-,lExpr,lProp,rExpr,rProp), \
     BestCost(lExpr,lProp,lCost), BestCost(rExpr,rProp,rCost), \
     LocalCost(expr,prop,index,localCost), Fn_sum(lCost,rCost,localCost,cost);",
    "D9: BestCost(expr,prop,min<cost>) :- PlanCost(expr,prop,index,cost);",
    "D10: BestPlan(expr,prop,index,cost) :- \
     BestCost(expr,prop,cost), PlanCost(expr,prop,index,cost);",
];

/// The executable program in IR form.
pub fn dataflow_program() -> Vec<Rule> {
    parse_rules(DATAFLOW_RULES).expect("the executable rules parse (pinned by tests)")
}

/// Dense encoding of the physical-property column.
struct PropTable {
    by_prop: FxHashMap<PhysProp, i64>,
    props: Vec<PhysProp>,
}

impl PropTable {
    fn new(memo: &Memo) -> PropTable {
        let mut t = PropTable {
            by_prop: FxHashMap::default(),
            props: Vec::new(),
        };
        for g in &memo.groups {
            if !t.by_prop.contains_key(&g.prop) {
                t.by_prop.insert(g.prop, t.props.len() as i64);
                t.props.push(g.prop);
            }
        }
        t
    }

    fn encode(&self, p: PhysProp) -> Val {
        Val::Int(self.by_prop[&p])
    }
}

fn encode_expr(e: ExprId) -> Val {
    Val::Int(((e.rel.0 as i64) << 1) | e.agg as i64)
}

/// Result of one dataflow (re)optimization fixpoint.
#[derive(Clone, Debug)]
pub struct DataflowOutcome {
    pub cost: Cost,
    pub plan: PlanNode,
    /// Substrate-level execution statistics for the run.
    pub stats: RunStats,
}

/// The optimizer-as-a-view: rules compiled onto the dataflow substrate,
/// maintained incrementally under [`ParamDelta`] base-relation deltas.
pub struct DataflowOptimizer {
    q: QuerySpec,
    memo: Rc<Memo>,
    ctx: CostContext,
    props: Rc<PropTable>,
    net: RuleNetwork,
    /// Mirror of the `LocalCost` base relation, per [`AltId`] — the
    /// old value is needed to emit the retraction half of an update.
    local: Vec<Cost>,
    /// The [`CostContext::alt_affected`] predicate inverted at build
    /// time: parameter → alternatives it can touch, so a reoptimize
    /// visits candidates directly instead of scanning every alternative.
    dirty_index: DirtyIndex,
    initialized: bool,
}

/// Per-parameter candidate alternatives (see
/// [`DataflowOptimizer::reoptimize`]).
#[derive(Default)]
struct DirtyIndex {
    by_leaf_card: FxHashMap<u32, Vec<AltId>>,
    by_edge: FxHashMap<u32, Vec<AltId>>,
    by_leaf_scan: FxHashMap<u32, Vec<AltId>>,
}

impl DirtyIndex {
    /// Builds the inverted index by probing the live predicate with
    /// singleton affected sets — no duplicated dirty logic.
    fn build(memo: &Memo, ctx: &CostContext, q: &QuerySpec) -> DirtyIndex {
        use reopt_cost::AffectedSet;
        let mut idx = DirtyIndex::default();
        let probe = |affected: &AffectedSet, bucket: &mut Vec<AltId>| {
            for gi in 0..memo.n_groups() as u32 {
                let g = GroupId(gi);
                let expr = memo.group(g).expr;
                for a in memo.alts_of(g) {
                    if ctx.alt_affected(expr, &memo.alt(a).spec, affected) {
                        bucket.push(a);
                    }
                }
            }
        };
        for l in 0..q.n_leaves() {
            let leaf = reopt_expr::LeafId(l);
            let mut bucket = Vec::new();
            probe(
                &AffectedSet {
                    leaves_card: vec![leaf],
                    ..AffectedSet::default()
                },
                &mut bucket,
            );
            idx.by_leaf_card.insert(l, bucket);
            let mut bucket = Vec::new();
            probe(
                &AffectedSet {
                    leaves_scan: vec![leaf],
                    ..AffectedSet::default()
                },
                &mut bucket,
            );
            idx.by_leaf_scan.insert(l, bucket);
        }
        for e in 0..q.edges.len() as u32 {
            let mut bucket = Vec::new();
            probe(
                &AffectedSet {
                    edges: vec![reopt_expr::EdgeId(e)],
                    ..AffectedSet::default()
                },
                &mut bucket,
            );
            idx.by_edge.insert(e, bucket);
        }
        idx
    }
}

impl DataflowOptimizer {
    pub fn new(catalog: &Catalog, q: QuerySpec) -> DataflowOptimizer {
        let graph = JoinGraph::new(&q);
        let memo = Rc::new(Memo::build(&q, &graph));
        let ctx = CostContext::new(catalog, &q);
        let props = Rc::new(PropTable::new(&memo));
        let net = build_network(Rc::clone(&memo), Rc::clone(&props));
        let local = vec![Cost::INFINITY; memo.n_alts()];
        let dirty_index = DirtyIndex::build(&memo, &ctx, &q);
        DataflowOptimizer {
            q,
            memo,
            ctx,
            props,
            net,
            local,
            dirty_index,
            initialized: false,
        }
    }

    pub fn memo(&self) -> &Memo {
        &self.memo
    }

    pub fn cost_context(&self) -> &CostContext {
        &self.ctx
    }

    /// Initial evaluation: seed the `Expr` root demand and the full
    /// `LocalCost` relation, then run the network to fixpoint.
    pub fn optimize(&mut self) -> DataflowOutcome {
        if !self.initialized {
            self.initialized = true;
            let root = self.memo.group(self.memo.root);
            self.net.insert(
                "Expr",
                Tuple::new(vec![encode_expr(root.expr), self.props.encode(root.prop)]),
            );
            for gi in 0..self.memo.n_groups() as u32 {
                let g = GroupId(gi);
                let (expr, prop) = {
                    let d = self.memo.group(g);
                    (d.expr, d.prop)
                };
                for a in self.memo.alts_of(g) {
                    let spec = self.memo.alt(a).spec;
                    let c = self.ctx.local_cost(&self.q, expr, prop, &spec);
                    self.local[a.0 as usize] = c;
                    let t = self.local_tuple(expr, prop, a, c);
                    self.net.insert("LocalCost", t);
                }
            }
        }
        let stats = self.net.run().expect("acyclic cost propagation converges");
        self.outcome(stats)
    }

    /// Incremental re-optimization (§4): apply the parameter deltas to
    /// the cost context, re-evaluate the affected local costs, and feed
    /// the changes to the network as `LocalCost` base-relation deltas.
    pub fn reoptimize(&mut self, deltas: &[ParamDelta]) -> DataflowOutcome {
        assert!(self.initialized, "call optimize() before reoptimize()");
        let affected = self.ctx.apply(deltas);
        if affected.is_empty() {
            return self.outcome(RunStats::default());
        }
        // Candidate alternatives straight from the inverted index —
        // equivalent to testing `alt_affected` on every alternative
        // (each predicate branch distributes over the affected set).
        let empty: Vec<AltId> = Vec::new();
        let mut candidates: Vec<AltId> = Vec::new();
        for l in &affected.leaves_card {
            candidates
                .extend_from_slice(self.dirty_index.by_leaf_card.get(&l.0).unwrap_or(&empty));
        }
        for e in &affected.edges {
            candidates.extend_from_slice(self.dirty_index.by_edge.get(&e.0).unwrap_or(&empty));
        }
        for l in &affected.leaves_scan {
            candidates
                .extend_from_slice(self.dirty_index.by_leaf_scan.get(&l.0).unwrap_or(&empty));
        }
        candidates.sort_unstable_by_key(|a| a.0);
        candidates.dedup();
        for a in candidates {
            let (expr, prop) = {
                let d = self.memo.group(self.memo.alt(a).group);
                (d.expr, d.prop)
            };
            let spec = self.memo.alt(a).spec;
            let new = self.ctx.local_cost(&self.q, expr, prop, &spec);
            let old = self.local[a.0 as usize];
            if new == old {
                continue;
            }
            self.local[a.0 as usize] = new;
            let retract = self.local_tuple(expr, prop, a, old);
            let assert = self.local_tuple(expr, prop, a, new);
            self.net.delete("LocalCost", retract);
            self.net.insert("LocalCost", assert);
        }
        let stats = self.net.run().expect("acyclic cost propagation converges");
        self.outcome(stats)
    }

    fn local_tuple(&self, expr: ExprId, prop: PhysProp, a: AltId, c: Cost) -> Tuple {
        Tuple::new(vec![
            encode_expr(expr),
            self.props.encode(prop),
            Val::Int(a.0 as i64),
            Val::Cost(c),
        ])
    }

    fn outcome(&self, stats: RunStats) -> DataflowOutcome {
        DataflowOutcome {
            cost: self.best_cost(),
            plan: self.best_plan(),
            stats,
        }
    }

    /// The root's `BestCost` value.
    pub fn best_cost(&self) -> Cost {
        let root = self.memo.group(self.memo.root);
        let (e, p) = (encode_expr(root.expr), self.props.encode(root.prop));
        for (t, _) in self.net.sink("BestCost").iter() {
            if t.get(0) == e && t.get(1) == p {
                return t.get(2).as_cost();
            }
        }
        Cost::INFINITY
    }

    /// Extracts the best plan from the materialized `BestPlan` view
    /// (ties broken towards the lowest alternative id, deterministic).
    pub fn best_plan(&self) -> PlanNode {
        let mut chosen: FxHashMap<GroupId, (Cost, AltId)> = FxHashMap::default();
        for (t, _) in self.net.sink("BestPlan").iter() {
            let a = AltId(t.get(2).as_int() as u32);
            let cost = t.get(3).as_cost();
            let g = self.memo.alt(a).group;
            let e = chosen.entry(g).or_insert((cost, a));
            if (cost, a) < *e {
                *e = (cost, a);
            }
        }
        self.extract(self.memo.root, &chosen)
    }

    fn extract(&self, g: GroupId, chosen: &FxHashMap<GroupId, (Cost, AltId)>) -> PlanNode {
        let def = self.memo.group(g);
        let (_, a) = chosen
            .get(&g)
            .unwrap_or_else(|| panic!("no BestPlan tuple for group {g:?} ({:?})", def.expr));
        let alt = self.memo.alt(*a);
        PlanNode {
            expr: def.expr,
            prop: def.prop,
            op: alt.op,
            children: alt.children().map(|c| self.extract(c, chosen)).collect(),
        }
    }

    /// Distinct `SearchSpace` tuples the network derived — compared by
    /// tests against the memo's alternative count.
    pub fn search_space_size(&self) -> usize {
        self.net.sink("SearchSpace").len()
    }

    /// Dataflow node count (diagnostics).
    pub fn network_nodes(&self) -> usize {
        self.net.node_count()
    }

    /// Operator nodes the compiler absorbed into fused chains
    /// (diagnostics).
    pub fn fused_nodes(&self) -> usize {
        self.net.fused_node_count()
    }
}

/// Compiles [`DATAFLOW_RULES`] with the memo-backed externals.
fn build_network(memo: Rc<Memo>, props: Rc<PropTable>) -> RuleNetwork {
    let split_memo = Rc::clone(&memo);
    let split_props = Rc::clone(&props);
    // Pre-encode Fn_split's output rows once per alternative: the
    // function sits on the network's hottest path (every enumeration
    // delta re-invokes it), so its emissions must not re-intern symbols
    // or format operator names per call.
    let split_rows: Vec<[Val; 7]> = (0..memo.n_alts() as u32)
        .map(|ai| {
            let alt = memo.alt(AltId(ai));
            let child = |c: Option<GroupId>| -> (Val, Val) {
                match c {
                    None => (null_value(), null_value()),
                    Some(cg) => {
                        let d = memo.group(cg);
                        (encode_expr(d.expr), props.encode(d.prop))
                    }
                }
            };
            let (le, lp) = child(alt.left);
            let (re, rp) = child(alt.right);
            [
                Val::Int(ai as i64),
                Val::str(alt.op.logical_name()),
                Val::str(&alt.op.to_string()),
                le,
                lp,
                re,
                rp,
            ]
        })
        .collect();
    NetworkBuilder::new()
        .input("Expr", 2)
        .input("LocalCost", 4)
        .rules(dataflow_program())
        // Fn_split(expr,prop | index,logOp,phyOp,lExpr,lProp,rExpr,rProp):
        // every alternative of the demanded (expr,prop) group, from the
        // interned memo (the §2.3 memoization). `null` demands — the
        // child slots of scan tuples fed back by D2/D3 — expand to
        // nothing, which is the Fn_isleaf guard of R1–R3.
        .external("Fn_split", 2, move |args, emit| {
            let (Val::Int(e), Val::Int(p)) = (args[0], args[1]) else {
                return;
            };
            let expr = ExprId {
                rel: reopt_expr::RelSet((e >> 1) as u32),
                agg: e & 1 == 1,
            };
            let prop = split_props.props[p as usize];
            let Some(g) = split_memo.lookup(expr, prop) else {
                return;
            };
            for a in split_memo.alts_of(g) {
                emit(&split_rows[a.0 as usize]);
            }
        })
        // Fn_sum(lCost,rCost,localCost | cost): R7/R8's total, summed in
        // the same association order as the hand-rolled optimizer
        // (local, then left, then right) so totals agree bit-for-bit.
        // Non-cost operands (the `null` of R7) contribute nothing.
        .external("Fn_sum", 3, move |args, emit| {
            let mut total = args[2].as_cost();
            if let Val::Cost(l) = args[0] {
                total += l;
            }
            if let Val::Cost(r) = args[1] {
                total += r;
            }
            emit(&[Val::Cost(total)]);
        })
        .sink("SearchSpace")
        .sink("BestCost")
        .sink("BestPlan")
        .build()
        .expect("the executable program compiles (pinned by tests)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_core::fixtures::{
        agg_chain_query, chain_query, cycle_query, fixture_catalog, star_query,
    };
    use reopt_core::{IncrementalOptimizer, PruningConfig};
    use reopt_expr::{EdgeId, LeafId};

    fn fixture_queries() -> Vec<QuerySpec> {
        let c = fixture_catalog();
        vec![
            chain_query(&c, 2),
            chain_query(&c, 3),
            chain_query(&c, 5),
            agg_chain_query(&c, 4),
            cycle_query(&c),
            star_query(&c),
        ]
    }

    /// Asserts both engines agree on the current best cost, and that the
    /// dataflow engine's extracted plan re-prices to that cost.
    fn assert_agree(df: &DataflowOutcome, hand: &reopt_core::Outcome, what: &str) {
        assert!(
            df.cost.approx_eq(hand.cost),
            "{what}: dataflow {:?} vs hand-rolled {:?}",
            df.cost,
            hand.cost
        );
    }

    #[test]
    fn the_executable_program_parses_and_compiles() {
        assert_eq!(dataflow_program().len(), 8);
        let c = fixture_catalog();
        let opt = DataflowOptimizer::new(&c, chain_query(&c, 3));
        assert!(opt.network_nodes() > 10);
    }

    #[test]
    fn initial_optimization_matches_hand_rolled_on_fixtures() {
        let c = fixture_catalog();
        for q in fixture_queries() {
            let mut df = DataflowOptimizer::new(&c, q.clone());
            let mut hand = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::none());
            let got = df.optimize();
            let want = hand.optimize();
            assert_agree(&got, &want, &q.name);
            // The network derived the full SearchSpace: one tuple per
            // memo alternative (rules R1–R5 at fixpoint).
            assert_eq!(df.search_space_size(), df.memo().n_alts(), "{}", q.name);
            // The extracted plan re-prices to the claimed cost.
            let mut ctx = CostContext::new(&c, &q);
            assert!(ctx.plan_cost(&q, &got.plan).approx_eq(got.cost), "{}", q.name);
        }
    }

    #[test]
    fn three_kinds_of_incremental_updates_match_hand_rolled() {
        // The acceptance gate: cardinality, cost-parameter (scan) and
        // selectivity deltas, singly and batched, on every fixture.
        let c = fixture_catalog();
        let batches: Vec<Vec<ParamDelta>> = vec![
            vec![ParamDelta::LeafCardinality(LeafId(1), 4.0)],
            vec![ParamDelta::LeafScanCost(LeafId(0), 6.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(0), 8.0)],
            vec![
                ParamDelta::EdgeSelectivity(EdgeId(0), 0.25),
                ParamDelta::LeafScanCost(LeafId(1), 3.0),
                ParamDelta::LeafCardinality(LeafId(0), 0.5),
            ],
        ];
        for q in fixture_queries() {
            for batch in &batches {
                let mut df = DataflowOptimizer::new(&c, q.clone());
                let mut hand =
                    IncrementalOptimizer::new(&c, q.clone(), PruningConfig::none());
                df.optimize();
                hand.optimize();
                let got = df.reoptimize(batch);
                let want = hand.reoptimize(batch);
                assert_agree(&got, &want, &format!("{} after {batch:?}", q.name));
            }
        }
    }

    #[test]
    fn update_sequences_stay_in_lockstep() {
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        let mut hand = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::none());
        assert_agree(&df.optimize(), &hand.optimize(), "initial");
        let seq: Vec<Vec<ParamDelta>> = vec![
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 8.0)],
            vec![ParamDelta::LeafCardinality(LeafId(2), 0.2)],
            vec![ParamDelta::LeafScanCost(LeafId(4), 5.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 1.0)], // revert
            vec![ParamDelta::LeafScanCost(LeafId(4), 0.5)],
        ];
        for (i, batch) in seq.iter().enumerate() {
            let got = df.reoptimize(batch);
            let want = hand.reoptimize(batch);
            assert_agree(&got, &want, &format!("step {i}"));
        }
    }

    #[test]
    fn plan_switch_is_tracked_incrementally() {
        // Blowing up a selectivity makes the previously best plan
        // expensive; the maintained view must land on the new optimum
        // (priced by an independent context) without re-seeding.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        let initial = df.optimize();
        let batch = vec![ParamDelta::EdgeSelectivity(EdgeId(1), 8.0)];
        let out = df.reoptimize(&batch);
        assert!(out.cost > initial.cost);
        let mut ctx = CostContext::new(&c, &q);
        ctx.apply(&batch);
        assert!(ctx.plan_cost(&q, &out.plan).approx_eq(out.cost));
    }

    #[test]
    fn compiled_network_collapses_work_visibly() {
        // The tentpole's observability: the compiler fused chains
        // (Fn_split scan chains), and runs report shared probes.
        let c = fixture_catalog();
        let mut df = DataflowOptimizer::new(&c, chain_query(&c, 5));
        assert!(
            df.network_nodes() > df.memo().n_alts() / 10,
            "sanity: network exists"
        );
        let init = df.optimize();
        assert!(init.stats.fused_stages_saved > 0, "{:?}", init.stats);
        assert!(
            init.stats.join_probes < init.stats.join_probe_deltas,
            "batch probing shared nothing: {:?}",
            init.stats
        );
        let re = df.reoptimize(&[ParamDelta::LeafCardinality(LeafId(2), 2.0)]);
        assert!(
            re.stats.join_probes < re.stats.join_probe_deltas,
            "incremental probing shared nothing: {:?}",
            re.stats
        );
    }

    #[test]
    fn scheduler_matrix_agrees_on_the_executable_program() {
        // The same DATAFLOW_RULES network under {batched+fusion,
        // batched, per-delta} — pinned here at the optimizer level; the
        // generic-network matrix lives in reopt-datalog's differential
        // suite. The compiler path is exercised via NetworkBuilder
        // options inside build_network only for the default, so this
        // compares DataflowOptimizer (fused default) against the
        // hand-rolled engine after a mixed update sequence — and the
        // fused network against its own unfused node diagnostics.
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        df.optimize();
        assert!(df.fused_nodes() > 0, "compiler emitted no fused chains");
        let mut hand = IncrementalOptimizer::new(&c, q, PruningConfig::none());
        hand.optimize();
        for batch in [
            vec![ParamDelta::LeafScanCost(LeafId(0), 2.0)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 4.0)],
            vec![ParamDelta::LeafCardinality(LeafId(3), 0.25)],
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 1.0)],
        ] {
            let got = df.reoptimize(&batch);
            let want = hand.reoptimize(&batch);
            assert_agree(&got, &want, &format!("{batch:?}"));
        }
    }

    #[test]
    fn unchanged_parameters_cause_no_work() {
        let c = fixture_catalog();
        let q = chain_query(&c, 4);
        let mut df = DataflowOptimizer::new(&c, q);
        df.optimize();
        let first = df.reoptimize(&[ParamDelta::LeafScanCost(LeafId(0), 2.0)]);
        assert!(first.stats.deltas_processed > 0);
        // Same factor again: no affected parameters, no deltas pushed,
        // nothing propagates (Fig 9's quiescence).
        let second = df.reoptimize(&[ParamDelta::LeafScanCost(LeafId(0), 2.0)]);
        assert_eq!(second.stats.deltas_processed, 0);
        assert_eq!(second.cost, first.cost);
    }

    #[test]
    fn incremental_updates_touch_a_fraction_of_the_network() {
        // A single-leaf scan-cost tweak must not re-derive the space:
        // the incremental run processes far fewer deltas than the
        // initial evaluation.
        let c = fixture_catalog();
        let q = chain_query(&c, 5);
        let mut df = DataflowOptimizer::new(&c, q);
        let init = df.optimize();
        let out = df.reoptimize(&[ParamDelta::LeafScanCost(LeafId(4), 1.3)]);
        assert!(
            out.stats.deltas_processed * 3 < init.stats.deltas_processed,
            "incremental {} vs initial {}",
            out.stats.deltas_processed,
            init.stats.deltas_processed
        );
    }
}
