//! Generic rule-program → dataflow compiler.
//!
//! Takes a set of parsed [`Rule`]s (the IR of `reopt_core::rules_ir`),
//! declared base relations, and a registry of external functions, and
//! instantiates a [`Dataflow`] network:
//!
//! - every derived relation becomes `Union(rule outputs) → Distinct`
//!   (set semantics with counting, so recursive rules terminate and
//!   deletions retract exactly);
//! - each rule body compiles left-to-right into a join tree:
//!   constants/duplicate variables become filters, stored relations
//!   [`HashJoin`] on the shared variables (an empty share is a cross
//!   join), and `Fn_*` atoms become [`ExternalFn`] nodes that extend the
//!   bindings with computed columns;
//! - heads project bindings through a `Map`, evaluating constants,
//!   subtraction chains and scalar `min<a,b>` combines; a one-argument
//!   `min<x>`/`max<x>` head compiles to a (multi-column-key)
//!   [`GroupAgg`] over the remaining head columns;
//! - join sides that read a relation directly attach to *shared
//!   arrangements*: one [`Arrange`] node per `(relation, key columns)`
//!   maintains the keyed index, and every join demanding that index
//!   probes it through a handle instead of keeping an owned copy (see
//!   [`NetworkBuilder::share_arrangements`]).
//!
//! A relation may be *both* derived and a base input ("seeded"): the
//! input feeds port 0 of the relation's union — how `Bound(root)` is
//! seeded in the paper's Figure 3 program.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use reopt_common::{FxHashMap, FxHashSet};
use reopt_core::rules_ir::{AggFunc, Atom, Rule, Term};
use reopt_datalog::{
    AggKind, Arrange, ArrangementHandle, Dataflow, DataflowError, Delta, Distinct, ExternalFn,
    FaultPlan, GroupAgg, HashJoin, Map, Multiset, NodeId, RunStats, SchedulerMode, SinkId,
    Tuple, Union, Val,
};

/// The value standing in for the rules' `null` constant: a dedicated
/// interned symbol. It joins and filters like any other value and can
/// never collide with an `Int`/`Cost` column.
pub fn null_value() -> Val {
    Val::str("null")
}

/// The value encoding of the rules' `true`/`false` constants.
pub fn bool_value(b: bool) -> Val {
    Val::Int(b as i64)
}

/// Variables the rule head references (liveness roots) — the head is
/// itself an [`Atom`], so this is its `vars()` owned.
fn head_var_names(rule: &Rule) -> Vec<String> {
    rule.head.vars().into_iter().map(String::from).collect()
}

fn const_value(t: &Term) -> Option<Val> {
    match t {
        Term::Str(s) => Some(Val::str(s)),
        Term::Bool(b) => Some(bool_value(*b)),
        Term::Null => Some(null_value()),
        _ => None,
    }
}

/// An external function body: receives the values of the atom's input
/// positions and emits rows of values for its output positions.
pub type ExternalBody = Rc<RefCell<dyn FnMut(&[Val], &mut dyn FnMut(&[Val]))>>;

struct ExternalDef {
    /// How many leading argument positions are inputs; the rest are
    /// outputs produced by the body.
    inputs: usize,
    body: ExternalBody,
}

/// A compile failure.
#[derive(Clone, Debug)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule compilation failed: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError(msg.into()))
}

/// Builder for a [`RuleNetwork`].
pub struct NetworkBuilder {
    rules: Vec<Rule>,
    inputs: Vec<(String, usize)>,
    externals: FxHashMap<String, ExternalDef>,
    sinks: Vec<String>,
    mode: SchedulerMode,
    fusion: bool,
    share_arrangements: bool,
}

impl Default for NetworkBuilder {
    fn default() -> NetworkBuilder {
        NetworkBuilder {
            rules: Vec::new(),
            inputs: Vec::new(),
            externals: FxHashMap::default(),
            sinks: Vec::new(),
            mode: SchedulerMode::Batched,
            fusion: true,
            share_arrangements: true,
        }
    }
}

impl NetworkBuilder {
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Selects the substrate scheduler (default batched).
    pub fn scheduler_mode(mut self, mode: SchedulerMode) -> NetworkBuilder {
        self.mode = mode;
        self
    }

    /// Enables or disables operator-chain fusion (default on; only
    /// effective under the batched scheduler). The compiler fuses the
    /// wired network once at [`NetworkBuilder::build`] time, so every
    /// single-consumer stateless chain a rule body lowers to — scan
    /// filter → external function → head projection — runs as one
    /// operator.
    pub fn fusion(mut self, on: bool) -> NetworkBuilder {
        self.fusion = on;
        self
    }

    /// Adds parsed rules.
    pub fn rules(mut self, rules: impl IntoIterator<Item = Rule>) -> NetworkBuilder {
        self.rules.extend(rules);
        self
    }

    /// Parses and adds rule texts.
    pub fn rule_texts<'a>(
        self,
        texts: impl IntoIterator<Item = &'a str>,
    ) -> Result<NetworkBuilder, CompileError> {
        let parsed = reopt_core::rules_ir::parse_rules(texts)
            .map_err(|e| CompileError(e.to_string()))?;
        Ok(self.rules(parsed))
    }

    /// Declares a base (input) relation.
    pub fn input(mut self, name: &str, arity: usize) -> NetworkBuilder {
        self.inputs.push((name.to_string(), arity));
        self
    }

    /// Registers an external function: the first `inputs` argument
    /// positions of its atoms are inputs, the rest are outputs the body
    /// emits. The body must be deterministic.
    pub fn external(
        mut self,
        name: &str,
        inputs: usize,
        body: impl FnMut(&[Val], &mut dyn FnMut(&[Val])) + 'static,
    ) -> NetworkBuilder {
        self.externals.insert(
            name.to_string(),
            ExternalDef {
                inputs,
                body: Rc::new(RefCell::new(body)),
            },
        );
        self
    }

    /// Enables or disables shared arrangements (default on). When on,
    /// every join side that reads a relation directly probes a keyed
    /// index maintained once per `(relation, key signature)` by an
    /// [`Arrange`] node, instead of each join keeping an owned copy of
    /// the same index. Dedup is by key columns, so `SearchSpace` joined
    /// on `(expr,prop)` by several rules is indexed exactly once.
    pub fn share_arrangements(mut self, on: bool) -> NetworkBuilder {
        self.share_arrangements = on;
        self
    }

    /// Requests a materialized sink on a relation.
    pub fn sink(mut self, name: &str) -> NetworkBuilder {
        self.sinks.push(name.to_string());
        self
    }

    /// Compiles the program into a runnable network.
    pub fn build(self) -> Result<RuleNetwork, CompileError> {
        Compiler::new(self)?.compile()
    }
}

struct RelInfo {
    arity: usize,
    /// Node downstream consumers read (input for EDB-only relations,
    /// the post-union `Distinct` for derived ones).
    read: NodeId,
    /// Union collecting rule outputs (derived relations only).
    union: Option<NodeId>,
    next_port: usize,
    input: Option<NodeId>,
}

struct Compiler {
    b: NetworkBuilder,
    df: Dataflow,
    rels: FxHashMap<String, RelInfo>,
    /// Relation read nodes — the only join sides worth arranging:
    /// anything else (a per-rule filter/projection `Map`) has exactly
    /// one consumer, so a shared index could never be reused.
    rel_reads: FxHashSet<NodeId>,
    /// Shared indexes already built, by `(source node, key columns)`.
    arrangements: FxHashMap<(NodeId, Vec<usize>), (NodeId, ArrangementHandle)>,
}

/// A partially compiled rule body: the node producing the current
/// intermediate tuples and the variable each column holds.
struct Binding {
    node: NodeId,
    vars: Vec<String>,
}

impl Binding {
    fn col(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }
}

impl Compiler {
    fn new(b: NetworkBuilder) -> Result<Compiler, CompileError> {
        let mut df = Dataflow::with_mode(b.mode);
        df.set_fusion(b.fusion);
        Ok(Compiler {
            b,
            df,
            rels: FxHashMap::default(),
            rel_reads: FxHashSet::default(),
            arrangements: FxHashMap::default(),
        })
    }

    fn compile(mut self) -> Result<RuleNetwork, CompileError> {
        let rules = std::mem::take(&mut self.b.rules);
        self.collect_relations(&rules)?;
        for rule in &rules {
            self.compile_rule(rule)?;
        }
        // Materialize requested sinks.
        let mut sinks = FxHashMap::default();
        for name in std::mem::take(&mut self.b.sinks) {
            let rel = self
                .rels
                .get(&name)
                .ok_or_else(|| CompileError(format!("sink on unknown relation `{name}`")))?;
            sinks.insert(name.clone(), self.df.add_sink(rel.read));
        }
        // The network is fully wired: fuse single-consumer stateless
        // chains now so the first run doesn't pay the pass.
        if self.b.fusion && self.b.mode == SchedulerMode::Batched {
            self.df.fuse();
        }
        let inputs = self
            .rels
            .iter()
            .filter_map(|(n, r)| r.input.map(|id| (n.clone(), (id, r.arity))))
            .collect();
        Ok(RuleNetwork {
            df: self.df,
            inputs,
            sinks,
            arrangements: self.arrangements.len(),
        })
    }

    /// Pass 1: derive every relation's arity, create input / union /
    /// distinct nodes, and validate consistency.
    fn collect_relations(&mut self, rules: &[Rule]) -> Result<(), CompileError> {
        let mut arity: FxHashMap<String, usize> = FxHashMap::default();
        let mut note = |name: &str, n: usize| -> Result<(), CompileError> {
            match arity.insert(name.to_string(), n) {
                Some(prev) if prev != n => err(format!(
                    "relation `{name}` used with arities {prev} and {n}"
                )),
                _ => Ok(()),
            }
        };
        for (name, n) in &self.b.inputs {
            note(name, *n)?;
        }
        let mut rule_count: FxHashMap<&str, usize> = FxHashMap::default();
        let mut agg_rule: FxHashMap<&str, bool> = FxHashMap::default();
        let mut head_order: Vec<&str> = Vec::new();
        for r in rules {
            if r.head.is_external() {
                return err(format!("{}: external head `{}`", r.label, r.head.relation));
            }
            note(&r.head.relation, r.head.arity())?;
            if !rule_count.contains_key(r.head.relation.as_str()) {
                head_order.push(&r.head.relation);
            }
            *rule_count.entry(&r.head.relation).or_insert(0) += 1;
            let is_agg = matches!(
                r.head_aggregate(),
                Some((_, args)) if args.len() == 1
            );
            *agg_rule.entry(&r.head.relation).or_insert(false) |= is_agg;
            for a in &r.body {
                if a.is_external() {
                    if !self.b.externals.contains_key(&a.relation) {
                        return err(format!(
                            "{}: unregistered external `{}`",
                            r.label, a.relation
                        ));
                    }
                } else {
                    note(&a.relation, a.arity())?;
                }
            }
        }
        // Every non-external body relation must be derived or declared.
        for r in rules {
            for a in &r.body {
                if !a.is_external()
                    && !rule_count.contains_key(a.relation.as_str())
                    && !self.b.inputs.iter().any(|(n, _)| n == &a.relation)
                {
                    return err(format!(
                        "{}: relation `{}` is neither derived nor a declared input",
                        r.label, a.relation
                    ));
                }
            }
        }
        // An aggregate head must be its relation's only derivation —
        // other rules or a seeding input would union raw tuples with
        // the aggregate's output, which has no coherent incremental
        // semantics.
        for (rel, has_agg) in &agg_rule {
            if *has_agg && rule_count[rel] > 1 {
                return err(format!(
                    "relation `{rel}` mixes an aggregate rule with other rules"
                ));
            }
            if *has_agg && self.b.inputs.iter().any(|(n, _)| n == rel) {
                return err(format!(
                    "relation `{rel}` mixes an aggregate rule with a seeding input"
                ));
            }
        }
        // Create input nodes (declaration order), then derived-relation
        // unions/distincts (first-head order).
        for (name, n) in self.b.inputs.clone() {
            let input = self.df.add_input(&name);
            self.rels.insert(
                name.clone(),
                RelInfo {
                    arity: n,
                    read: input,
                    union: None,
                    next_port: 0,
                    input: Some(input),
                },
            );
        }
        for name in head_order {
            let n_rules = rule_count[name];
            let seeded = self.rels.contains_key(name);
            let ports = n_rules + seeded as usize;
            let union = self.df.add_op_unwired(Union::new(ports));
            let distinct = self.df.add_op(Distinct::new(), &[union]);
            match self.rels.get_mut(name) {
                Some(rel) => {
                    // Seeded derived relation: the input feeds port 0.
                    let input = rel.input.expect("seeded relation has an input");
                    self.df.connect(input, union, 0);
                    rel.read = distinct;
                    rel.union = Some(union);
                    rel.next_port = 1;
                }
                None => {
                    self.rels.insert(
                        name.to_string(),
                        RelInfo {
                            arity: arity[name],
                            read: distinct,
                            union: Some(union),
                            next_port: 0,
                            input: None,
                        },
                    );
                }
            }
        }
        self.rel_reads = self.rels.values().map(|r| r.read).collect();
        Ok(())
    }

    /// The shared arrangement over `source` keyed on `key`, creating
    /// its [`Arrange`] node on first demand.
    fn arrangement(&mut self, source: NodeId, key: Vec<usize>) -> (NodeId, ArrangementHandle) {
        if let Some(found) = self.arrangements.get(&(source, key.clone())) {
            return found.clone();
        }
        let op = Arrange::new(key.clone());
        let handle = op.handle();
        let node = self.df.add_op(op, &[source]);
        self.arrangements
            .insert((source, key), (node, handle.clone()));
        (node, handle)
    }

    fn compile_rule(&mut self, rule: &Rule) -> Result<(), CompileError> {
        let first_new = self.df.node_count();
        // Liveness, computed right-to-left: `needed[i]` holds the
        // variables referenced by body atoms after position `i` or by
        // the head — the only columns worth carrying past atom `i`.
        // Everything else is projected away inside the joins/externals
        // themselves (dead-column elimination), which keeps most
        // intermediate tuples at or under the inline width.
        let n = rule.body.len();
        let mut needed: Vec<Vec<String>> = vec![Vec::new(); n];
        let mut acc = head_var_names(rule);
        for i in (0..n).rev() {
            needed[i] = acc.clone();
            for v in rule.body[i].vars() {
                if !acc.iter().any(|a| a == v) {
                    acc.push(v.to_string());
                }
            }
        }
        let mut binding: Option<Binding> = None;
        for (i, atom) in rule.body.iter().enumerate() {
            let live = &needed[i];
            binding = Some(if atom.is_external() {
                let b = match binding {
                    Some(b) => b,
                    None => {
                        return err(format!(
                            "{}: rule body must start with a stored relation",
                            rule.label
                        ))
                    }
                };
                self.compile_external(rule, atom, b, live)?
            } else {
                let prior: Vec<String> = binding
                    .as_ref()
                    .map(|b| b.vars.clone())
                    .unwrap_or_default();
                let scan = self.compile_scan(rule, atom, live, &prior)?;
                match binding {
                    None => scan,
                    Some(b) => self.compile_join(b, scan, live),
                }
            });
        }
        let binding = binding.expect("parser guarantees a non-empty body");
        let out = self.compile_head(rule, binding)?;
        // Tag every node this rule created with its label so profiling
        // (`node_stats`) attributes work to rules, not bare op names.
        self.df.label_suffix_from(first_new, &rule.label);
        let rel = self.rels.get_mut(&rule.head.relation).unwrap();
        let union = rel.union.expect("derived relation has a union");
        let port = rel.next_port;
        rel.next_port += 1;
        self.df.connect(out, union, port);
        Ok(())
    }

    /// One stored-relation body atom: filter constants / duplicate
    /// variables, project to the distinct variable columns that are
    /// still *needed* — either live downstream (`live`) or join keys
    /// shared with the accumulated binding (`prior`).
    fn compile_scan(
        &mut self,
        rule: &Rule,
        atom: &Atom,
        live: &[String],
        prior: &[String],
    ) -> Result<Binding, CompileError> {
        let rel = &self.rels[&atom.relation];
        if rel.arity != atom.arity() {
            return err(format!(
                "{}: `{}` has arity {}, atom uses {}",
                rule.label,
                atom.relation,
                rel.arity,
                atom.arity()
            ));
        }
        let source = rel.read;
        enum Check {
            ConstEq(usize, Val),
            ColEq(usize, usize),
        }
        let mut checks = Vec::new();
        let mut proj: Vec<usize> = Vec::new();
        let mut vars: Vec<String> = Vec::new();
        for (i, t) in atom.terms.iter().enumerate() {
            match t {
                Term::Var(v) => match vars.iter().position(|x| x == v) {
                    Some(first) => checks.push(Check::ColEq(proj[first], i)),
                    None => {
                        proj.push(i);
                        vars.push(v.clone());
                    }
                },
                Term::Wildcard => {}
                Term::Agg(..) | Term::Diff(..) => {
                    return err(format!(
                        "{}: computed term `{t}` in body atom `{atom}`",
                        rule.label
                    ))
                }
                other => {
                    let v = const_value(other).expect("remaining terms are constants");
                    checks.push(Check::ConstEq(i, v));
                }
            }
        }
        // Dead-column elimination: drop variables neither live after
        // this atom nor joining against the accumulated binding.
        let mut k = 0;
        for i in 0..vars.len() {
            if live.contains(&vars[i]) || prior.contains(&vars[i]) {
                proj.swap(k, i);
                vars.swap(k, i);
                k += 1;
            }
        }
        proj.truncate(k);
        vars.truncate(k);
        // Identity scan (all positions distinct live vars): read
        // directly.
        if checks.is_empty() && proj.len() == atom.arity() {
            return Ok(Binding { node: source, vars });
        }
        let node = self.df.add_op(
            Map::new(move |t| {
                for c in &checks {
                    let ok = match c {
                        Check::ConstEq(i, v) => t.get(*i) == *v,
                        Check::ColEq(i, j) => t.get(*i) == t.get(*j),
                    };
                    if !ok {
                        return None;
                    }
                }
                Some(t.project(&proj))
            }),
            &[source],
        );
        Ok(Binding { node, vars })
    }

    /// Joins the intermediate with a scanned atom on their shared
    /// variables (an empty share degenerates to a cross join),
    /// projecting away duplicated key columns *and* dead columns inside
    /// the join (the fused join-then-project output path: one tuple
    /// construction per match instead of a wide concat plus a
    /// projection hop).
    fn compile_join(&mut self, left: Binding, right: Binding, live: &[String]) -> Binding {
        let shared: Vec<&String> =
            left.vars.iter().filter(|v| right.vars.contains(v)).collect();
        let lk: Vec<usize> = shared.iter().map(|v| left.col(v).unwrap()).collect();
        let rk: Vec<usize> = shared.iter().map(|v| right.col(v).unwrap()).collect();
        // Output = (left ++ right) restricted to live variables (first
        // occurrence wins; duplicated join keys and dead carriers drop).
        let lw = left.vars.len();
        let mut proj: Vec<usize> = Vec::new();
        let mut vars: Vec<String> = Vec::new();
        for (i, v) in left.vars.iter().chain(&right.vars).enumerate() {
            if live.contains(v) && !vars.contains(v) {
                proj.push(i);
                vars.push(v.clone());
            }
        }
        let mut join = if proj.len() == lw + right.vars.len() {
            HashJoin::new(lk.clone(), rk.clone())
        } else {
            HashJoin::with_projection(lk.clone(), rk.clone(), proj)
        };
        // Shared arrangements: a side reading a relation directly
        // attaches to the keyed index maintained once per
        // `(relation, key)` by an `Arrange` node; the join is rewired
        // through that node so the index update always precedes the
        // probe (the arrangement's sync-fanout dispatch). The same
        // arrangement must never feed both ports — a self-join on one
        // key keeps its right side owned.
        let mut wire = [left.node, right.node];
        let mut left_arr: Option<NodeId> = None;
        if self.b.share_arrangements && self.rel_reads.contains(&left.node) {
            let (node, handle) = self.arrangement(left.node, lk);
            join = join.share_left(handle);
            wire[0] = node;
            left_arr = Some(node);
        }
        if self.b.share_arrangements && self.rel_reads.contains(&right.node) {
            let (node, handle) = self.arrangement(right.node, rk);
            if Some(node) != left_arr {
                join = join.share_right(handle);
                wire[1] = node;
            }
        }
        let node = self.df.add_op(join, &wire);
        Binding { node, vars }
    }

    /// An `Fn_*` atom: evaluate the registered external on the bound
    /// input positions, check/bind the output positions. Emitted rows
    /// carry only the live binding columns and live fresh outputs, so
    /// the tail of a cost rule (`Fn_sum` → head) emits head-shaped,
    /// usually inline, tuples.
    fn compile_external(
        &mut self,
        rule: &Rule,
        atom: &Atom,
        binding: Binding,
        live: &[String],
    ) -> Result<Binding, CompileError> {
        let def = &self.b.externals[&atom.relation];
        if atom.arity() < def.inputs {
            return err(format!(
                "{}: `{}` needs {} inputs, atom has {} terms",
                rule.label,
                atom.relation,
                def.inputs,
                atom.arity()
            ));
        }
        enum In {
            Col(usize),
            Const(Val),
        }
        let mut ins = Vec::new();
        for t in &atom.terms[..def.inputs] {
            ins.push(match t {
                Term::Var(v) => match binding.col(v) {
                    Some(c) => In::Col(c),
                    None => {
                        return err(format!(
                            "{}: `{}` input `{v}` is unbound",
                            rule.label, atom.relation
                        ))
                    }
                },
                Term::Wildcard => {
                    return err(format!(
                        "{}: wildcard input to `{}`",
                        rule.label, atom.relation
                    ))
                }
                Term::Agg(..) | Term::Diff(..) => {
                    return err(format!(
                        "{}: computed input to `{}`",
                        rule.label, atom.relation
                    ))
                }
                other => In::Const(const_value(other).expect("constant")),
            });
        }
        enum Out {
            Bind,
            Ignore,
            CheckConst(Val),
            CheckCol(usize),
            /// Equals an earlier output position of this same atom
            /// (`Fn_f(x,y,y)`: the second `y` must match the first).
            CheckEarlier(usize),
        }
        let mut outs: Vec<Out> = Vec::new();
        let mut fresh: Vec<(String, usize)> = Vec::new();
        for (pos, t) in atom.terms[def.inputs..].iter().enumerate() {
            outs.push(match t {
                Term::Var(v) => match binding.col(v) {
                    Some(c) => Out::CheckCol(c),
                    None => match fresh.iter().find(|(name, _)| name == v) {
                        Some(&(_, first)) => Out::CheckEarlier(first),
                        None => {
                            fresh.push((v.clone(), pos));
                            if live.contains(v) {
                                Out::Bind
                            } else {
                                Out::Ignore
                            }
                        }
                    },
                },
                Term::Wildcard => Out::Ignore,
                Term::Agg(..) | Term::Diff(..) => {
                    return err(format!(
                        "{}: computed output of `{}`",
                        rule.label, atom.relation
                    ))
                }
                other => Out::CheckConst(const_value(other).expect("constant")),
            });
        }
        // Emit only the live binding columns, then the live fresh
        // outputs (in output-position order, matching `Out::Bind`s).
        let mut keep: Vec<usize> = Vec::new();
        let mut vars: Vec<String> = Vec::new();
        for (c, v) in binding.vars.iter().enumerate() {
            if live.contains(v) {
                keep.push(c);
                vars.push(v.clone());
            }
        }
        for (v, _) in &fresh {
            if live.contains(v) {
                vars.push(v.clone());
            }
        }
        let body = Rc::clone(&def.body);
        let label = atom.relation.clone();
        let n_out = outs.len();
        let mut in_scratch: Vec<Val> = Vec::new();
        let mut row_scratch: Vec<Val> = Vec::new();
        let node = self.df.add_op(
            ExternalFn::new(atom.relation.clone(), move |t, emit| {
                in_scratch.clear();
                for i in &ins {
                    in_scratch.push(match i {
                        In::Col(c) => t.get(*c),
                        In::Const(v) => *v,
                    });
                }
                let mut f = body.borrow_mut();
                f(&in_scratch, &mut |row: &[Val]| {
                    assert_eq!(
                        row.len(),
                        n_out,
                        "external `{label}` emitted {} values for {} output positions",
                        row.len(),
                        n_out
                    );
                    row_scratch.clear();
                    row_scratch.extend(keep.iter().map(|&c| t.get(c)));
                    for (spec, v) in outs.iter().zip(row) {
                        match spec {
                            Out::Bind => row_scratch.push(*v),
                            Out::Ignore => {}
                            Out::CheckConst(want) => {
                                if v != want {
                                    return;
                                }
                            }
                            Out::CheckCol(c) => {
                                if *v != t.get(*c) {
                                    return;
                                }
                            }
                            Out::CheckEarlier(p) => {
                                if *v != row[*p] {
                                    return;
                                }
                            }
                        }
                    }
                    emit(Tuple::from_slice(&row_scratch));
                });
            }),
            &[binding.node],
        );
        Ok(Binding { node, vars })
    }

    /// Head construction: a one-argument aggregate compiles to a
    /// `GroupAgg`; anything else to a projection `Map` evaluating
    /// constants, subtraction chains and scalar combines.
    fn compile_head(&mut self, rule: &Rule, binding: Binding) -> Result<NodeId, CompileError> {
        if let Some((func, args)) = rule.head_aggregate() {
            if args.len() == 1 {
                return self.compile_agg_head(rule, binding, *func, &args[0]);
            }
        }
        enum HeadCol {
            Col(usize),
            Const(Val),
            Diff(Vec<usize>),
            Combine(AggFunc, Vec<usize>),
        }
        let mut cols = Vec::new();
        for t in &rule.head.terms {
            let resolve = |names: &[String]| -> Result<Vec<usize>, CompileError> {
                names
                    .iter()
                    .map(|v| {
                        binding.col(v).ok_or_else(|| {
                            CompileError(format!("{}: head var `{v}` unbound", rule.label))
                        })
                    })
                    .collect()
            };
            cols.push(match t {
                Term::Var(v) => HeadCol::Col(binding.col(v).ok_or_else(|| {
                    CompileError(format!("{}: head var `{v}` unbound", rule.label))
                })?),
                // A head wildcard is an unused output column: null.
                Term::Wildcard => HeadCol::Const(null_value()),
                Term::Diff(args) => HeadCol::Diff(resolve(args)?),
                Term::Agg(f, args) => HeadCol::Combine(*f, resolve(args)?),
                other => HeadCol::Const(const_value(other).expect("constant")),
            });
        }
        // Identity head (liveness pruning usually leaves the binding in
        // exactly head shape): no projection node at all.
        if cols.len() == binding.vars.len()
            && cols
                .iter()
                .enumerate()
                .all(|(k, c)| matches!(c, HeadCol::Col(i) if *i == k))
        {
            return Ok(binding.node);
        }
        let mut scratch: Vec<Val> = Vec::new();
        Ok(self.df.add_op(
            Map::new(move |t| {
                scratch.clear();
                for c in &cols {
                    scratch.push(match c {
                        HeadCol::Col(i) => t.get(*i),
                        HeadCol::Const(v) => *v,
                        HeadCol::Diff(idx) => {
                            let mut v = t.get(idx[0]).as_cost();
                            for &i in &idx[1..] {
                                v = v - t.get(i).as_cost();
                            }
                            Val::Cost(v)
                        }
                        // Scalar combine: numeric min/max over the named
                        // columns, preserving the winning value.
                        HeadCol::Combine(f, idx) => {
                            let mut best = t.get(idx[0]);
                            for &i in &idx[1..] {
                                let v = t.get(i);
                                let wins = match f {
                                    AggFunc::Min => v.as_cost() < best.as_cost(),
                                    AggFunc::Max => v.as_cost() > best.as_cost(),
                                };
                                if wins {
                                    best = v;
                                }
                            }
                            best
                        }
                    });
                }
                Some(Tuple::from_slice(&scratch))
            }),
            &[binding.node],
        ))
    }

    /// `Head(k1,...,kn,min<x>)`: a grouped aggregate keyed on the other
    /// head columns (multi-column keys supported by `GroupAgg`).
    fn compile_agg_head(
        &mut self,
        rule: &Rule,
        binding: Binding,
        func: AggFunc,
        value_var: &str,
    ) -> Result<NodeId, CompileError> {
        let terms = &rule.head.terms;
        match terms.last() {
            Some(Term::Agg(..)) => {}
            _ => {
                return err(format!(
                    "{}: aggregate must be the last head column",
                    rule.label
                ))
            }
        }
        let mut key_cols = Vec::new();
        for t in &terms[..terms.len() - 1] {
            match t {
                Term::Var(v) => key_cols.push(binding.col(v).ok_or_else(|| {
                    CompileError(format!("{}: head var `{v}` unbound", rule.label))
                })?),
                other => {
                    return err(format!(
                        "{}: aggregate key must be a variable, got `{other}`",
                        rule.label
                    ))
                }
            }
        }
        let value_col = binding.col(value_var).ok_or_else(|| {
            CompileError(format!(
                "{}: aggregate value `{value_var}` unbound",
                rule.label
            ))
        })?;
        let kind = match func {
            AggFunc::Min => AggKind::Min,
            AggFunc::Max => AggKind::Max,
        };
        Ok(self
            .df
            .add_op(GroupAgg::new(key_cols, value_col, kind), &[binding.node]))
    }
}

/// A compiled, runnable rule network.
pub struct RuleNetwork {
    df: Dataflow,
    inputs: FxHashMap<String, (NodeId, usize)>,
    sinks: FxHashMap<String, SinkId>,
    arrangements: usize,
}

impl fmt::Debug for RuleNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleNetwork")
            .field("nodes", &self.df.node_count())
            .field("arrangements", &self.arrangements)
            .field("inputs", &self.inputs.keys().collect::<Vec<_>>())
            .field("sinks", &self.sinks.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl RuleNetwork {
    /// Queues a delta on a base relation.
    pub fn push(&mut self, relation: &str, delta: Delta) {
        let (node, arity) = self.inputs[relation];
        assert_eq!(
            delta.tuple.len(),
            arity,
            "tuple arity mismatch on `{relation}`"
        );
        self.df.push(node, delta);
    }

    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        self.push(relation, Delta::insert(tuple));
    }

    pub fn delete(&mut self, relation: &str, tuple: Tuple) {
        self.push(relation, Delta::delete(tuple));
    }

    /// Runs to fixpoint as one epoch: a failed run rolls the whole
    /// network back to the last committed fixpoint (see
    /// [`reopt_datalog::Dataflow::run`]).
    pub fn run(&mut self) -> Result<RunStats, DataflowError> {
        self.df.run()
    }

    /// Overrides the fixpoint step budget.
    pub fn set_max_steps(&mut self, max: u64) {
        self.df.set_max_steps(max);
    }

    /// The current fixpoint step budget.
    pub fn max_steps(&self) -> u64 {
        self.df.max_steps()
    }

    /// Arms (or disarms) the chaos fault injector on the underlying
    /// dataflow.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.df.set_fault_plan(plan);
    }

    /// Epochs rolled back (failed runs) so far.
    pub fn rollbacks(&self) -> u64 {
        self.df.rollbacks()
    }

    /// Serializes the network's full dataflow state — operator state,
    /// sinks, queue residue, symbol table — at the current committed
    /// epoch (see `Dataflow::checkpoint`).
    pub fn checkpoint(&self) -> Vec<u8> {
        self.df.checkpoint()
    }

    /// Restores state captured by [`RuleNetwork::checkpoint`] into this
    /// (topologically identical, freshly compiled) network; returns the
    /// restored epoch. On `Err` the network must be discarded.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<u64, DataflowError> {
        self.df.restore(bytes)
    }

    /// A materialized relation (must have been requested via
    /// [`NetworkBuilder::sink`]).
    pub fn sink(&self, relation: &str) -> &Multiset {
        self.df.sink(self.sinks[relation])
    }

    /// Number of dataflow nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.df.node_count()
    }

    /// Number of operator nodes absorbed into fused chains
    /// (diagnostics; 0 when fusion is disabled).
    pub fn fused_node_count(&self) -> usize {
        self.df.fused_node_count()
    }

    /// Per-node lifetime `(label, batches, deltas)` service counters
    /// (see [`reopt_datalog::Dataflow::node_stats`]).
    pub fn node_stats(&self) -> Vec<(String, u64, u64)> {
        self.df.node_stats()
    }

    /// Number of shared arrangements the compiler built (diagnostics;
    /// 0 when arrangement sharing is disabled).
    pub fn arrangement_count(&self) -> usize {
        self.arrangements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_datalog::value::ints;

    fn tc_network() -> RuleNetwork {
        NetworkBuilder::new()
            .input("Edge", 2)
            .rule_texts([
                "T1: Path(x,y) :- Edge(x,y);",
                "T2: Path(x,z) :- Path(x,y), Edge(y,z);",
            ])
            .unwrap()
            .sink("Path")
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_transitive_closure_matches_hand_built_network() {
        // The same program `crates/datalog` wires by hand, produced by
        // the compiler from rule texts.
        let mut net = tc_network();
        for (a, b) in [(1, 2), (2, 3), (3, 4), (1, 3)] {
            net.insert("Edge", ints(&[a, b]));
        }
        net.run().unwrap();
        assert_eq!(net.sink("Path").len(), 6);
        assert!(net.sink("Path").contains(&ints(&[1, 4])));
        // Incremental deletion: counting retracts exactly.
        net.delete("Edge", ints(&[2, 3]));
        net.run().unwrap();
        assert_eq!(
            net.sink("Path").sorted(),
            vec![ints(&[1, 2]), ints(&[1, 3]), ints(&[1, 4]), ints(&[3, 4])]
        );
        assert!(!net.sink("Path").has_negative_counts());
    }

    #[test]
    fn external_functions_bind_check_and_filter() {
        // Fn_inc(x | y): y = x + 1. One rule checks a constant output,
        // one binds a fresh variable, one checks an already-bound one.
        let build = || {
            NetworkBuilder::new()
                .input("In", 2)
                .external("Fn_inc", 1, |args, emit| {
                    emit(&[Val::Int(args[0].as_int() + 1)]);
                })
                .rule_texts([
                    "B: Bound(x,y) :- In(x,-), Fn_inc(x,y);",
                    "C: Hit(x) :- In(x,y), Fn_inc(x,y);",
                ])
                .unwrap()
                .sink("Bound")
                .sink("Hit")
                .build()
                .unwrap()
        };
        let mut net = build();
        net.insert("In", ints(&[3, 4]));
        net.insert("In", ints(&[5, 9]));
        net.run().unwrap();
        assert_eq!(
            net.sink("Bound").sorted(),
            vec![ints(&[3, 4]), ints(&[5, 6])]
        );
        // Only (3,4) satisfies y = x + 1.
        assert_eq!(net.sink("Hit").sorted(), vec![ints(&[3])]);
    }

    #[test]
    fn repeated_fresh_output_var_is_an_equality_check() {
        // `Fn_pair(x | a, b)` with a repeated fresh head var `y` in both
        // output slots: the second occurrence must equal the first, not
        // silently double-bind.
        let mut net = NetworkBuilder::new()
            .input("In", 1)
            .external("Fn_pair", 1, |args, emit| {
                let x = args[0].as_int();
                // Equal pair for even inputs, unequal for odd.
                if x % 2 == 0 {
                    emit(&[Val::Int(x * 10), Val::Int(x * 10)]);
                } else {
                    emit(&[Val::Int(x * 10), Val::Int(x * 10 + 1)]);
                }
            })
            .rule_texts(["P: Eq(x,y) :- In(x), Fn_pair(x,y,y);"])
            .unwrap()
            .sink("Eq")
            .build()
            .unwrap();
        net.insert("In", ints(&[2]));
        net.insert("In", ints(&[3]));
        net.run().unwrap();
        assert_eq!(net.sink("Eq").sorted(), vec![ints(&[2, 20])]);
    }

    #[test]
    fn paper_bound_rules_execute_on_the_substrate() {
        // r1–r4 of Figure 3 compiled VERBATIM from `reopt_core::rules`,
        // over a two-child fixture: root (10,0) with children (20,0) and
        // (30,0), local cost 5, and the root bound seeded at 100.
        // Exercises: a seeded recursive relation, a cross join (r1's
        // Bound × BestCost share no variables), subtraction-chain heads,
        // a max<> aggregate and a scalar min<a,b> combine.
        let rules =
            reopt_core::rules_ir::parse_rules(reopt_core::rules::BOUND_RULES).unwrap();
        let mut net = NetworkBuilder::new()
            .input("Bound", 3)
            .input("BestCost", 3)
            .input("LocalCost", 9)
            .rules(rules)
            .sink("Bound")
            .sink("MaxBound")
            .build()
            .unwrap();
        let t = |e: i64, p: i64, c: f64| {
            Tuple::new(vec![Val::Int(e), Val::Int(p), Val::cost(c)])
        };
        net.insert("Bound", t(10, 0, 100.0));
        net.insert("BestCost", t(20, 0, 10.0));
        net.insert("BestCost", t(30, 0, 20.0));
        net.insert(
            "LocalCost",
            Tuple::new(vec![
                Val::Int(10),
                Val::Int(0),
                Val::Int(0),
                Val::Int(20),
                Val::Int(0),
                Val::Int(30),
                Val::Int(0),
                Val::Int(0),
                Val::cost(5.0),
            ]),
        );
        net.run().unwrap();
        // r1: ParentBound(20,0,100-20-5) → MaxBound 75; r4 takes the
        // child's own best (10) as its bound. Mirrored for (30,0).
        assert_eq!(
            net.sink("MaxBound").sorted(),
            vec![t(20, 0, 75.0), t(30, 0, 85.0)]
        );
        assert_eq!(
            net.sink("Bound").sorted(),
            vec![t(10, 0, 100.0), t(20, 0, 10.0), t(30, 0, 20.0)]
        );
        // Incremental: the left child's best rises past nothing — its
        // bound becomes the parent allowance; the sibling's allowance
        // tightens but stays above its best.
        net.delete("BestCost", t(20, 0, 10.0));
        net.insert("BestCost", t(20, 0, 80.0));
        net.run().unwrap();
        assert_eq!(
            net.sink("MaxBound").sorted(),
            vec![t(20, 0, 75.0), t(30, 0, 15.0)]
        );
        assert_eq!(
            net.sink("Bound").sorted(),
            vec![t(10, 0, 100.0), t(20, 0, 75.0), t(30, 0, 15.0)]
        );
        assert!(!net.sink("Bound").has_negative_counts());
    }

    #[test]
    fn compile_errors_are_descriptive() {
        // Arity mismatch.
        let e = NetworkBuilder::new()
            .input("R", 2)
            .rule_texts(["X: Out(a) :- R(a,b), R(a);"])
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("arities"), "{e}");
        // Unregistered external.
        let e = NetworkBuilder::new()
            .input("R", 1)
            .rule_texts(["X: Out(a) :- R(a), Fn_missing(a,b);"])
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("unregistered"), "{e}");
        // Undeclared body relation.
        let e = NetworkBuilder::new()
            .rule_texts(["X: Out(a) :- Ghost(a);"])
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("neither derived"), "{e}");
        // Aggregate rule mixed with a plain rule for the same head.
        let e = NetworkBuilder::new()
            .input("R", 2)
            .rule_texts([
                "X: Out(a,min<b>) :- R(a,b);",
                "Y: Out(a,b) :- R(a,b);",
            ])
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("mixes an aggregate"), "{e}");
        // Aggregate rule on a seeded relation: raw seeds would union
        // with the aggregate's output.
        let e = NetworkBuilder::new()
            .input("R", 2)
            .input("Out", 2)
            .rule_texts(["X: Out(a,min<b>) :- R(a,b);"])
            .unwrap()
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("seeding input"), "{e}");
    }

    #[test]
    fn scheduler_and_fusion_options_preserve_results() {
        // The same program under {batched+fusion (default), batched,
        // per-delta} — identical sinks after mixed churn, and the fused
        // build visibly collapsed chain nodes.
        let build = |mode: SchedulerMode, fusion: bool| {
            NetworkBuilder::new()
                .scheduler_mode(mode)
                .fusion(fusion)
                .input("In", 2)
                .external("Fn_inc", 1, |args, emit| {
                    emit(&[Val::Int(args[0].as_int() + 1)]);
                })
                .rule_texts([
                    "A: Mid(x,y) :- In(x,y);",
                    "B: Out(y) :- Mid(x,-), Fn_inc(x,y);",
                ])
                .unwrap()
                .sink("Out")
                .build()
                .unwrap()
        };
        let mut nets = [
            build(SchedulerMode::Batched, true),
            build(SchedulerMode::Batched, false),
            build(SchedulerMode::PerDelta, false),
        ];
        for (a, b, ins) in [(1, 10, true), (2, 20, true), (1, 10, false), (3, 5, true)] {
            for net in nets.iter_mut() {
                if ins {
                    net.insert("In", ints(&[a, b]));
                } else {
                    net.delete("In", ints(&[a, b]));
                }
                net.run().unwrap();
            }
        }
        let reference = nets[0].sink("Out").sorted();
        assert_eq!(reference, vec![ints(&[3]), ints(&[4])]);
        for net in &nets[1..] {
            assert_eq!(net.sink("Out").sorted(), reference);
            assert_eq!(net.fused_node_count(), 0);
        }
        assert!(nets[0].fused_node_count() > 0, "no chains fused");
    }

    #[test]
    fn shared_arrangements_dedup_indexes_and_preserve_results() {
        // Three rules join on `R` keyed by its first column — with
        // sharing on, that index is arranged exactly once (plus one for
        // `S`); sinks match the owned-index build through mixed churn,
        // including recursion through `Reach`.
        let build = |share: bool| {
            NetworkBuilder::new()
                .share_arrangements(share)
                .input("R", 2)
                .input("S", 2)
                .rule_texts([
                    "A: Pair(x,z) :- R(x,y), S(y,z);",
                    "B: Wide(x,y,z) :- R(x,y), R(y,z);",
                    "C: Reach(x,y) :- R(x,y);",
                    "D: Reach(x,z) :- Reach(x,y), R(y,z);",
                ])
                .unwrap()
                .sink("Pair")
                .sink("Wide")
                .sink("Reach")
                .build()
                .unwrap()
        };
        let mut shared = build(true);
        let mut owned = build(false);
        assert!(shared.arrangement_count() > 0, "nothing was arranged");
        assert_eq!(owned.arrangement_count(), 0);
        let script: &[(&str, i64, i64, bool)] = &[
            ("R", 1, 2, true),
            ("R", 2, 3, true),
            ("S", 2, 9, true),
            ("R", 3, 4, true),
            ("R", 2, 3, false),
            ("S", 3, 7, true),
            ("R", 2, 4, true),
        ];
        for &(rel, a, b, ins) in script {
            for net in [&mut shared, &mut owned] {
                if ins {
                    net.insert(rel, ints(&[a, b]));
                } else {
                    net.delete(rel, ints(&[a, b]));
                }
                net.run().unwrap();
            }
        }
        for rel in ["Pair", "Wide", "Reach"] {
            assert!(!shared.sink(rel).has_negative_counts());
            assert_eq!(shared.sink(rel).sorted(), owned.sink(rel).sorted(), "{rel}");
        }
    }

    #[test]
    fn dead_columns_are_pruned_from_rule_bodies() {
        // `Wide` carries 6 columns; the rule only ever needs `a` and
        // `f`. Liveness pruning keeps the network correct while the
        // intermediates stay narrow (observable indirectly: results
        // match, and the head Map disappeared so the network is small).
        let mut net = NetworkBuilder::new()
            .input("Wide", 6)
            .input("K", 1)
            .rule_texts(["W: Out(a,f) :- Wide(a,b,c,d,e,f), K(a);"])
            .unwrap()
            .sink("Out")
            .build()
            .unwrap();
        net.insert("Wide", ints(&[1, 2, 3, 4, 5, 6]));
        net.insert("Wide", ints(&[9, 2, 3, 4, 5, 8]));
        net.insert("K", ints(&[1]));
        net.run().unwrap();
        assert_eq!(net.sink("Out").sorted(), vec![ints(&[1, 6])]);
        net.delete("Wide", ints(&[1, 2, 3, 4, 5, 6]));
        net.insert("K", ints(&[9]));
        net.run().unwrap();
        assert_eq!(net.sink("Out").sorted(), vec![ints(&[9, 8])]);
    }

    #[test]
    fn grouped_aggregates_use_multi_column_keys() {
        // min over a two-column group key, maintained under deletion
        // (next-best recovery through the substrate's GroupAgg).
        let mut net = NetworkBuilder::new()
            .input("CostIn", 3)
            .rule_texts(["A: Best(g,h,min<c>) :- CostIn(g,h,c);"])
            .unwrap()
            .sink("Best")
            .build()
            .unwrap();
        net.insert("CostIn", ints(&[1, 2, 30]));
        net.insert("CostIn", ints(&[1, 2, 10]));
        net.insert("CostIn", ints(&[1, 3, 40]));
        net.run().unwrap();
        assert_eq!(
            net.sink("Best").sorted(),
            vec![ints(&[1, 2, 10]), ints(&[1, 3, 40])]
        );
        net.delete("CostIn", ints(&[1, 2, 10]));
        net.run().unwrap();
        assert_eq!(
            net.sink("Best").sorted(),
            vec![ints(&[1, 2, 30]), ints(&[1, 3, 40])]
        );
    }
}
