//! The optimizer's write-ahead log: every applied [`ParamDelta`] batch
//! is appended — CRC-framed and fsynced — *before* its effects touch
//! the network, so a crash between checkpoints loses nothing that was
//! acknowledged.
//!
//! File layout (shared framing with `reopt_datalog::checkpoint`, its
//! own magic):
//!
//! ```text
//! wal    := "RWAL" version(u32 LE) record*
//! record := len(u32 LE) crc32(u32 LE) payload
//! payload:= seq(u64) count(u32) delta*      delta := tag(u8) id(u32) factor(f64)
//! ```
//!
//! `seq` is the record's zero-based position; a mismatch means records
//! were lost or reordered and is reported as corruption. The WAL is
//! never rewritten in place: checkpoints store a *watermark* (how many
//! records existed when the snapshot was cut) and recovery replays the
//! records past it. A torn final record — the image of a crash mid-
//! append — is discarded (write-ahead means its batch was never
//! applied); damage anywhere earlier is [`DataflowError::StateCorruption`].

use std::io::Write as _;
use std::path::Path;

use reopt_cost::ParamDelta;
use reopt_datalog::checkpoint::{crc32, frame_record, stream_header, Dec, Enc, SymRemap};
use reopt_datalog::DataflowError;
use reopt_expr::{EdgeId, LeafId};

/// File magic distinguishing WALs from checkpoints.
pub const WAL_MAGIC: [u8; 4] = *b"RWAL";
/// WAL file name inside a durable directory.
pub const WAL_FILE: &str = "wal.bin";
/// Checkpoint file name inside a durable directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// On-disk format version (lockstep with the checkpoint codec's).
const VERSION: u32 = reopt_datalog::checkpoint::VERSION;

fn corrupt(msg: impl Into<String>) -> DataflowError {
    DataflowError::StateCorruption(msg.into())
}

const TAG_EDGE_SELECTIVITY: u8 = 0;
const TAG_LEAF_CARDINALITY: u8 = 1;
const TAG_LEAF_SCAN_COST: u8 = 2;

/// Encodes one parameter delta: tag, id, absolute factor.
pub fn encode_delta(e: &mut Enc, d: &ParamDelta) {
    let (tag, id, factor) = match d {
        ParamDelta::EdgeSelectivity(eid, f) => (TAG_EDGE_SELECTIVITY, eid.0, *f),
        ParamDelta::LeafCardinality(l, f) => (TAG_LEAF_CARDINALITY, l.0, *f),
        ParamDelta::LeafScanCost(l, f) => (TAG_LEAF_SCAN_COST, l.0, *f),
    };
    e.u8(tag);
    e.u32(id);
    e.f64(factor);
}

/// Decodes one parameter delta (inverse of [`encode_delta`]).
pub fn decode_delta(d: &mut Dec<'_>) -> Result<ParamDelta, DataflowError> {
    let tag = d.u8()?;
    let id = d.u32()?;
    let factor = d.f64()?;
    match tag {
        TAG_EDGE_SELECTIVITY => Ok(ParamDelta::EdgeSelectivity(EdgeId(id), factor)),
        TAG_LEAF_CARDINALITY => Ok(ParamDelta::LeafCardinality(LeafId(id), factor)),
        TAG_LEAF_SCAN_COST => Ok(ParamDelta::LeafScanCost(LeafId(id), factor)),
        t => Err(corrupt(format!("unknown parameter-delta tag {t}"))),
    }
}

/// Creates (or truncates to) an empty WAL: just the stream header,
/// fsynced so the armed log survives a crash that follows immediately.
pub fn wal_init(path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&stream_header(WAL_MAGIC))?;
    f.sync_all()
}

/// Appends one batch as record `seq`, fsyncing before returning — the
/// write-ahead contract: once this returns, recovery will replay the
/// batch even if the process dies before the epoch commits.
pub fn wal_append(path: &Path, seq: u64, deltas: &[ParamDelta]) -> std::io::Result<()> {
    let mut e = Enc::new();
    e.u64(seq);
    e.u32(deltas.len() as u32);
    for d in deltas {
        encode_delta(&mut e, d);
    }
    let mut f = std::fs::OpenOptions::new().append(true).open(path)?;
    f.write_all(&frame_record(e))?;
    f.sync_all()
}

/// Sweeps orphaned `*.tmp` staging files out of a durable directory.
/// The atomic-checkpoint protocol writes `checkpoint.tmp`, fsyncs, then
/// renames — a crash between the write and the rename strands the
/// staging file. An orphan is never live state (the rename is what
/// commits), but left behind it accumulates across crashes and is one
/// `mv` away from masquerading as a checkpoint, so every startup path
/// removes it. Returns how many files were swept; unreadable entries
/// are skipped rather than failing the boot.
pub fn sweep_tmp(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for path in entries.flatten().map(|e| e.path()) {
        if path.extension().is_some_and(|e| e == "tmp")
            && path.is_file()
            && std::fs::remove_file(&path).is_ok()
        {
            swept += 1;
        }
    }
    swept
}

/// The result of scanning a WAL file.
pub struct WalScan {
    /// Every intact batch, in append order (index = record seq).
    pub batches: Vec<Vec<ParamDelta>>,
    /// Bytes covered by the header plus intact records; anything past
    /// this is a torn tail from a crash mid-append.
    pub valid_len: usize,
    /// Whether a torn tail was discarded.
    pub torn: bool,
}

/// Scans a WAL image. A record whose framed length runs past the end
/// of the file is a torn tail — discarded, because write-ahead ordering
/// guarantees its batch was never applied. A CRC mismatch or a sequence
/// gap *within* the intact region is real damage and fails the scan.
pub fn wal_records(bytes: &[u8]) -> Result<WalScan, DataflowError> {
    if bytes.len() < 8 {
        return Err(corrupt("WAL shorter than its header"));
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(corrupt(format!(
            "bad WAL magic {:?} (want {WAL_MAGIC:?})",
            &bytes[..4]
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(corrupt(format!(
            "unsupported WAL version {version} (reader speaks {VERSION})"
        )));
    }
    let empty = SymRemap::from_strings(&[])?;
    let mut batches: Vec<Vec<ParamDelta>> = Vec::new();
    let mut pos = 8usize;
    let mut torn = false;
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let Some(end) = (pos + 8).checked_add(len).filter(|&e| e <= bytes.len()) else {
            torn = true;
            break;
        };
        let payload = &bytes[pos + 8..end];
        if crc32(payload) != want_crc {
            return Err(corrupt(format!(
                "WAL record {} failed its CRC",
                batches.len()
            )));
        }
        let mut d = Dec::new(payload, &empty);
        let seq = d.u64()?;
        if seq != batches.len() as u64 {
            return Err(corrupt(format!(
                "WAL sequence gap: record {} carries seq {seq}",
                batches.len()
            )));
        }
        let count = d.u32()? as usize;
        let mut batch = Vec::new();
        for _ in 0..count {
            batch.push(decode_delta(&mut d)?);
        }
        if !d.is_done() {
            return Err(corrupt(format!(
                "trailing bytes in WAL record {}",
                batches.len()
            )));
        }
        batches.push(batch);
        pos = end;
    }
    // On a torn break `pos` still points at the torn record's start;
    // on a clean scan it equals the file length.
    Ok(WalScan {
        batches,
        valid_len: pos,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batches() -> Vec<Vec<ParamDelta>> {
        vec![
            vec![ParamDelta::EdgeSelectivity(EdgeId(1), 8.0)],
            vec![
                ParamDelta::LeafCardinality(LeafId(2), 0.5),
                ParamDelta::LeafScanCost(LeafId(0), 3.25),
            ],
            vec![],
        ]
    }

    fn written_wal(batches: &[Vec<ParamDelta>]) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!(
            "reopt-wal-test-{}-{batches:p}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        wal_init(&path).unwrap();
        for (i, b) in batches.iter().enumerate() {
            wal_append(&path, i as u64, b).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        bytes
    }

    #[test]
    fn wal_round_trips_batches_in_order() {
        let batches = sample_batches();
        let scan = wal_records(&written_wal(&batches)).unwrap();
        assert_eq!(scan.batches, batches);
        assert!(!scan.torn);
    }

    #[test]
    fn torn_tail_is_discarded_but_intact_prefix_survives() {
        let batches = sample_batches();
        let bytes = written_wal(&batches);
        let intact_two = {
            // Find where record 2 starts by re-scanning lengths.
            let mut pos = 8;
            for _ in 0..2 {
                let len =
                    u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 8 + len;
            }
            pos
        };
        // Cut mid-record-2: records 0 and 1 survive, the tail is torn.
        for cut in intact_two + 1..bytes.len() {
            let scan = wal_records(&bytes[..cut]).unwrap();
            assert_eq!(scan.batches, batches[..2].to_vec(), "cut at {cut}");
            assert!(scan.torn);
            assert_eq!(scan.valid_len, intact_two);
        }
    }

    #[test]
    fn mid_file_damage_is_corruption_not_silent_loss() {
        let bytes = written_wal(&sample_batches());
        // Flip a payload byte of the first record (skip header + frame).
        let mut evil = bytes.clone();
        evil[8 + 8 + 2] ^= 0x40;
        assert!(matches!(
            wal_records(&evil),
            Err(DataflowError::StateCorruption(_))
        ));
    }

    #[test]
    fn every_delta_kind_round_trips() {
        for d in [
            ParamDelta::EdgeSelectivity(EdgeId(7), 0.125),
            ParamDelta::LeafCardinality(LeafId(3), 1e9),
            ParamDelta::LeafScanCost(LeafId(0), f64::MIN_POSITIVE),
        ] {
            let mut e = Enc::new();
            encode_delta(&mut e, &d);
            let bytes = e.into_bytes();
            let empty = SymRemap::from_strings(&[]).unwrap();
            let mut dec = Dec::new(&bytes, &empty);
            assert_eq!(decode_delta(&mut dec).unwrap(), d);
        }
    }
}
