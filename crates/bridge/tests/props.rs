//! Differential property tests: the compiled-rule-network optimizer
//! ([`DataflowOptimizer`]) against the hand-rolled delta-propagation
//! engine ([`IncrementalOptimizer`]) over random join topologies,
//! random statistics, random pruning configurations and random
//! [`ParamDelta`] sequences.
//!
//! Both engines execute the same declarative specification (the
//! R1–R10 rule program), so their best-plan costs must agree within
//! floating-point slack wherever the hand-rolled engine is exact —
//! which is: always for initial optimization; for increase-only
//! updates under every configuration; and for arbitrary updates under
//! configurations that never reclaim state (or reclaim strictly).

use proptest::prelude::*;

use reopt_bridge::{AuditMode, AuditOutcome, DataflowOptimizer, DataflowOutcome};
use reopt_catalog::{Catalog, ColumnStats, TableBuilder, TableStats};
use reopt_core::{IncrementalOptimizer, PruningConfig};
use reopt_cost::{CostContext, ParamDelta};
use reopt_datalog::{FaultPlan, Multiset, Tuple};
use reopt_expr::{EdgeId, LeafId, QuerySpec};

/// Deterministic description of a random query instance (same shape as
/// the `reopt-core` property suite).
#[derive(Clone, Debug)]
struct QueryGen {
    /// Per-leaf row counts (log scale 1..=5 → 10^x rows).
    rows: Vec<u8>,
    /// Per-leaf: has an index on column `a`.
    indexed: Vec<bool>,
    /// For leaf i>0: joins to leaf `parent[i-1] % i` (random tree).
    parent: Vec<u8>,
    /// Close a cycle between leaf 0 and the last leaf.
    cycle: bool,
}

fn query_gen(max_leaves: usize) -> impl Strategy<Value = QueryGen> {
    (2..=max_leaves).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u8..=5, n),
            proptest::collection::vec(any::<bool>(), n),
            proptest::collection::vec(any::<u8>(), n - 1),
            any::<bool>(),
        )
            .prop_map(|(rows, indexed, parent, cycle)| QueryGen {
                rows,
                indexed,
                parent,
                cycle,
            })
    })
}

fn build(gen: &QueryGen) -> (Catalog, QuerySpec) {
    let n = gen.rows.len();
    let mut c = Catalog::new();
    for i in 0..n {
        let rows = 10f64.powi(gen.rows[i] as i32);
        let name = format!("t{i}");
        let indexed = gen.indexed[i];
        c.add_table(
            |id| {
                let mut b = TableBuilder::new(&name).int_col("a").int_col("b");
                if indexed {
                    b = b.index_on("a");
                }
                b.build(id)
            },
            TableStats {
                row_count: rows,
                columns: vec![ColumnStats::uniform_key(rows); 2],
            },
        );
    }
    let mut b = QuerySpec::builder("prop");
    let leaves: Vec<_> = (0..n).map(|i| b.leaf(&c, &format!("t{i}"))).collect();
    for i in 1..n {
        let p = (gen.parent[i - 1] as usize) % i;
        b.join(&c, leaves[p], "b", leaves[i], "a");
    }
    if gen.cycle && n > 2 {
        b.join(&c, leaves[n - 1], "b", leaves[0], "a");
    }
    (c, b.build())
}

/// One random update: kind 0 = edge selectivity, 1 = leaf cardinality,
/// 2 = leaf scan cost. `mag` maps to a factor.
fn deltas_for(q: &QuerySpec, raw: &[(u8, u8, u8)], increase_only: bool) -> Vec<ParamDelta> {
    raw.iter()
        .map(|&(kind, idx, mag)| {
            let factor = if increase_only {
                1.0 + (mag as f64 % 8.0)
            } else {
                2f64.powi((mag as i32 % 7) - 3)
            };
            match kind % 3 {
                0 if !q.edges.is_empty() => {
                    ParamDelta::EdgeSelectivity(EdgeId(idx as u32 % q.edges.len() as u32), factor)
                }
                1 => ParamDelta::LeafCardinality(LeafId(idx as u32 % q.n_leaves()), factor),
                _ => ParamDelta::LeafScanCost(LeafId(idx as u32 % q.n_leaves()), factor),
            }
        })
        .collect()
}

/// Fails if the outcome's sampled audit flagged drift. With `REOPT_AUDIT`
/// unset the audit never runs (`NotSampled`) and this is vacuous; CI runs
/// this suite once with `REOPT_AUDIT=1` so every epoch is cross-checked.
fn audit_ok(out: &DataflowOutcome) -> Result<(), String> {
    match &out.recovery.audit {
        AuditOutcome::Failed(e) => Err(format!("audit failed: {e}")),
        _ => Ok(()),
    }
}

/// A sink's contents with multiplicities, sorted for comparison.
fn sink_sorted(sink: &Multiset) -> Vec<(Tuple, i64)> {
    let mut v: Vec<(Tuple, i64)> = sink.iter().map(|(t, c)| (t.clone(), c)).collect();
    v.sort();
    v
}

/// Replays a delta sequence step by step with fresh engines, checking
/// `BestPlan` equivalence after *every* step: both engines' best costs
/// must agree, and the dataflow's extracted plan must re-price to that
/// cost under an independent cost context (so a stale `BestPlan` view
/// can't hide behind a correct scalar). Returns the first failing step.
fn check_stepwise(c: &Catalog, q: &QuerySpec, seq: &[(u8, u8, u8)]) -> Result<(), String> {
    let mut df = DataflowOptimizer::new(c, q.clone());
    let mut hand = IncrementalOptimizer::new(c, q.clone(), PruningConfig::none());
    let mut pricer = CostContext::new(c, q);
    audit_ok(&df.optimize()).map_err(|e| format!("initial: {e}"))?;
    hand.optimize();
    for (i, raw) in seq.iter().enumerate() {
        let deltas = deltas_for(q, std::slice::from_ref(raw), false);
        let got = df.reoptimize(&deltas);
        let want = hand.reoptimize(&deltas);
        pricer.apply(&deltas);
        audit_ok(&got).map_err(|e| format!("step {i} ({deltas:?}): {e}"))?;
        if !got.cost.approx_eq(want.cost) {
            return Err(format!(
                "step {i} ({deltas:?}): dataflow {:?} vs hand-rolled {:?}",
                got.cost, want.cost
            ));
        }
        let repriced = pricer.plan_cost(q, &got.plan);
        if !repriced.approx_eq(got.cost) {
            return Err(format!(
                "step {i} ({deltas:?}): BestPlan re-prices to {repriced:?}, claimed {:?}",
                got.cost
            ));
        }
        let hand_repriced = pricer.plan_cost(q, &want.plan);
        if !hand_repriced.approx_eq(got.cost) {
            return Err(format!(
                "step {i} ({deltas:?}): hand-rolled plan re-prices to {hand_repriced:?}, \
                 dataflow claimed {:?}",
                got.cost
            ));
        }
    }
    Ok(())
}

fn all_configs() -> Vec<PruningConfig> {
    vec![
        PruningConfig::none(),
        PruningConfig::evita_raced(),
        PruningConfig::aggsel(),
        PruningConfig::aggsel_refcount(),
        PruningConfig::aggsel_bounding(),
        PruningConfig::all(),
        PruningConfig::all_strict(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Initial evaluation of the compiled network agrees with the
    /// hand-rolled engine under every pruning configuration, and the
    /// network derives exactly the memo's SearchSpace.
    #[test]
    fn initial_costs_agree_across_configs(gen in query_gen(5)) {
        let (c, q) = build(&gen);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        let got = df.optimize();
        prop_assert_eq!(df.search_space_size(), df.memo().n_alts());
        for cfg in all_configs() {
            let mut hand = IncrementalOptimizer::new(&c, q.clone(), cfg);
            let want = hand.optimize();
            prop_assert!(got.cost.approx_eq(want.cost),
                "{}: dataflow {:?} vs hand-rolled {:?}", cfg.label(), got.cost, want.cost);
        }
    }

    /// Increase-only delta sequences: every configuration stays exact,
    /// so every configuration must stay in lockstep with the view.
    #[test]
    fn increase_sequences_agree_under_full_pruning(
        gen in query_gen(5),
        seq in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..3), 1..4),
    ) {
        let (c, q) = build(&gen);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        let mut hand = IncrementalOptimizer::new(&c, q.clone(), PruningConfig::all());
        df.optimize();
        hand.optimize();
        for raw in &seq {
            let deltas = deltas_for(&q, raw, true);
            let got = df.reoptimize(&deltas);
            let want = hand.reoptimize(&deltas);
            prop_assert!(got.cost.approx_eq(want.cost),
                "after {deltas:?}: dataflow {:?} vs hand-rolled {:?}", got.cost, want.cost);
        }
    }

    /// Arbitrary (mixed-direction) sequences, against the
    /// configurations that are exact for them: no-reclamation pruning
    /// and full pruning with strict revalidation.
    #[test]
    fn arbitrary_sequences_agree_with_exact_configs(
        gen in query_gen(5),
        seq in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..3), 1..4),
    ) {
        let (c, q) = build(&gen);
        let mut df = DataflowOptimizer::new(&c, q.clone());
        df.optimize();
        let mut hands: Vec<IncrementalOptimizer> = [
            PruningConfig::aggsel(),
            PruningConfig::aggsel_bounding(),
            PruningConfig::all_strict(),
        ]
        .into_iter()
        .map(|cfg| {
            let mut h = IncrementalOptimizer::new(&c, q.clone(), cfg);
            h.optimize();
            h
        })
        .collect();
        for raw in &seq {
            let deltas = deltas_for(&q, raw, false);
            let got = df.reoptimize(&deltas);
            for hand in &mut hands {
                let cfg = hand.config();
                let want = hand.reoptimize(&deltas);
                prop_assert!(got.cost.approx_eq(want.cost),
                    "{} after {deltas:?}: dataflow {:?} vs hand-rolled {:?}",
                    cfg.label(), got.cost, want.cost);
            }
        }
    }

    /// Interleaved cardinality / scan-cost / selectivity updates on
    /// random join graphs, with `BestPlan` checked after *every* step
    /// (not just the final state). On failure, the shortest failing
    /// prefix of the sequence is located by replay and reported — the
    /// stand-in proptest has no shrinking, so the test shrinks the one
    /// dimension that matters for delta-sequence bugs itself.
    #[test]
    fn best_plans_stay_in_lockstep_after_every_step(
        gen in query_gen(5),
        seq in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..10),
    ) {
        let (c, q) = build(&gen);
        if let Err(failure) = check_stepwise(&c, &q, &seq) {
            for n in 1..=seq.len() {
                if let Err(first) = check_stepwise(&c, &q, &seq[..n]) {
                    prop_assert!(
                        false,
                        "shortest failing prefix has {n} of {} steps ({:?}): {first}",
                        seq.len(), &seq[..n]
                    );
                }
            }
            prop_assert!(false, "full sequence failed, no prefix did: {failure}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Chaos: a fault armed at a random step of a random delta sequence
    /// on a random query. The optimizer must absorb it internally
    /// (rollback → budget-raised retry → from-scratch rebuild) and stay
    /// byte-identical to a fault-free oracle — best cost, extracted
    /// plan, and every materialized sink, counts included — with zero
    /// residual negative counts. `shots` = 2 kills the retry too and
    /// drives the rebuild rung.
    #[test]
    fn faulted_reoptimization_matches_the_fault_free_oracle(
        gen in query_gen(5),
        seq in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..6),
        fault_run in any::<u8>(),
        fault_step in 1u64..60,
        shots in 1u32..3,
    ) {
        let (c, q) = build(&gen);
        let mut oracle = DataflowOptimizer::new(&c, q.clone());
        let mut victim = DataflowOptimizer::new(&c, q.clone());
        // Audits off: chaos measures recovery, not the (much slower)
        // shadow cross-check, and `REOPT_AUDIT` must not leak in.
        oracle.set_audit_mode(AuditMode::Off);
        victim.set_audit_mode(AuditMode::Off);
        oracle.optimize();
        victim.optimize();
        let fault_at = fault_run as usize % seq.len();
        for (i, raw) in seq.iter().enumerate() {
            let deltas = deltas_for(&q, std::slice::from_ref(raw), false);
            if i == fault_at {
                victim.inject_fault(FaultPlan::with_shots(fault_step, shots));
            }
            let want = oracle.reoptimize(&deltas);
            let got = victim.reoptimize(&deltas);
            prop_assert!(
                got.cost.approx_eq(want.cost),
                "step {i} ({deltas:?}), {} absorbed ({:?}): victim {:?} vs oracle {:?}",
                got.recovery.errors.len(), got.recovery.path, got.cost, want.cost
            );
            prop_assert_eq!(
                &got.plan, &want.plan,
                "step {} : recovered BestPlan diverged ({:?})", i, got.recovery.path
            );
        }
        for name in ["SearchSpace", "BestCost", "BestPlan"] {
            prop_assert!(
                !victim.sink(name).has_negative_counts(),
                "residual negative counts in {name} after recovery"
            );
            prop_assert_eq!(
                sink_sorted(victim.sink(name)),
                sink_sorted(oracle.sink(name)),
                "sink {} diverged from the fault-free oracle", name
            );
        }
    }
}
